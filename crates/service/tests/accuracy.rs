//! The feedback-driven staleness path, end to end:
//!
//! 1. A **sustained q-error breach with zero table writes** must escalate
//!    to a Theorem-7 probe, and — when the data really drifted — a full
//!    re-ANALYZE. The whole episode is deterministic: `dump()` is
//!    bit-identical drained on 1 vs 4 threads, with global recording
//!    enabled.
//! 2. When the statistics still fit the data (the workload lied, not the
//!    histogram), the probe **passes** and the ledger resets, so the
//!    column doesn't thrash.
//! 3. The std-only HTTP responder serves valid Prometheus text at
//!    `/metrics` and well-formed JSON at `/accuracy`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Once};

use rand::rngs::StdRng;
use rand::SeedableRng;
use samplehist_engine::{AnalyzeOptions, Predicate, Table};
use samplehist_obs::json::{self, Json};
use samplehist_obs::prom::validate_exposition;
use samplehist_service::{
    accuracy_json, render_metrics, AccuracyPolicy, MetricsServer, ServiceConfig, StatsService,
};
use samplehist_storage::Layout;

/// The satellite requirement says the determinism episode must hold
/// *with recording enabled*: install an aggregating global sink once for
/// the whole test binary (first install wins process-wide).
fn enable_recording() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let sink = Arc::new(samplehist_obs::PromSink::new());
        samplehist_obs::set_global(samplehist_obs::Recorder::new(sink));
    });
}

fn table_of(name: &str, values: Vec<i64>, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    Table::builder(name)
        .column_with_blocking("amount", values, 50, Layout::Random, &mut rng)
        .build()
}

fn accuracy_config(seed: u64) -> ServiceConfig {
    ServiceConfig {
        analyze: AnalyzeOptions::full_scan(40),
        accuracy: AccuracyPolicy { min_observations: 32, ..AccuracyPolicy::default() },
        ..ServiceConfig::deterministic(seed)
    }
}

/// Drive the drift episode and return the canonical dump.
///
/// Stats are built over uniform data, then the table is *reloaded* with
/// heavily duplicated values — and crucially, zero modifications are
/// ever recorded, so the mod-counter staleness path stays silent. Only
/// execution feedback can notice the rot.
fn drift_episode(threads: usize) -> (String, u64, u64, u64) {
    enable_recording();
    let rows = 20_000usize;
    let svc = StatsService::new(accuracy_config(7));
    svc.register_table(table_of("orders", (0..rows as i64).collect(), 1), None);
    svc.refresh_now("orders", "amount").expect("warm-up ANALYZE");
    let warm_epoch = svc.catalog().get("orders", "amount").expect("warmed").epoch;

    // Reload: every value now lands in 0..100, each duplicated 200×.
    let drifted: Vec<i64> = (0..rows as i64).map(|i| i % 100).collect();
    svc.register_table(table_of("orders", drifted.clone(), 2), None);

    // Execution feedback: predict from the (stale) snapshot, observe the
    // truth on the drifted data. Not a single write is recorded.
    for x in 0..40i64 {
        let bound = x * 2;
        let predicted = svc
            .estimate_cardinality("orders", "amount", &Predicate::Le(bound))
            .expect("snapshot serves")
            .rows;
        let actual = drifted.iter().filter(|&&v| v <= bound).count() as f64;
        let q = svc
            .record_actual("orders", "amount", &format!("amount <= {bound}"), predicted, actual)
            .expect("snapshot exists to attribute feedback to");
        assert!(q >= 1.0);
    }
    assert!(svc.accuracy_breaches() > 0, "sustained rot must register as breaches");
    assert!(svc.queue_depth() > 0, "a breach queues a refresh despite zero writes");

    let before = svc.tally();
    svc.drain(threads);
    let after = svc.tally();
    let new_epoch = svc.catalog().get("orders", "amount").expect("still served").epoch;
    assert_eq!(warm_epoch, 1);
    (
        svc.dump(),
        after.probes - before.probes,
        after.full_reanalyzes - before.full_reanalyzes,
        new_epoch,
    )
}

#[test]
fn qerror_breach_with_zero_writes_escalates_probe_then_reanalyze() {
    let (dump_1, probes, reanalyzes, epoch) = drift_episode(1);
    assert!(probes >= 1, "the breach must escalate to a Theorem-7 probe first");
    assert!(reanalyzes >= 1, "a probe over drifted data must fail into a full re-ANALYZE");
    assert_eq!(epoch, 2, "the re-ANALYZE installed a new snapshot");
    // The new epoch starts with a clean ledger (reset-on-install).
    assert!(dump_1.contains("qerr_obs=0"), "fresh ledger after install:\n{dump_1}");

    let (dump_4, ..) = drift_episode(4);
    assert_eq!(dump_1, dump_4, "1-thread and 4-thread drains must be bit-identical");
}

#[test]
fn breach_against_healthy_stats_passes_probe_and_rearms_ledger() {
    enable_recording();
    let rows = 20_000usize;
    let svc = StatsService::new(accuracy_config(11));
    svc.register_table(table_of("orders", (0..rows as i64).collect(), 3), None);
    svc.refresh_now("orders", "amount").expect("warm-up ANALYZE");

    // The data never changes; the workload reports wildly wrong actuals
    // (say, a correlated join the estimator can't see).
    for x in 0..40i64 {
        let predicted = svc
            .estimate_cardinality("orders", "amount", &Predicate::Le(x * 100))
            .expect("snapshot serves")
            .rows;
        svc.record_actual(
            "orders",
            "amount",
            &format!("amount <= {} AND region = 'EU'", x * 100),
            predicted,
            predicted * 8.0 + 100.0,
        );
    }
    assert!(svc.accuracy_breaches() > 0);
    let before = svc.tally();
    svc.drain(1);
    let after = svc.tally();
    assert!(after.probes > before.probes, "the breach was probed");
    assert_eq!(
        after.probe_passes - before.probe_passes,
        after.probes - before.probes,
        "healthy statistics survive the probe"
    );
    assert_eq!(after.full_reanalyzes, before.full_reanalyzes, "no re-ANALYZE was paid for");

    let snap = svc.catalog().get("orders", "amount").expect("served");
    assert_eq!(snap.epoch, 1, "the original snapshot is still serving");
    assert_eq!(snap.accuracy.observations(), 0, "a passed probe re-arms the ledger");
    assert!(snap.accuracy.worst().is_none());
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("response has a head and a body");
    (head.to_string(), body.to_string())
}

#[test]
fn metrics_endpoints_serve_valid_prometheus_and_json() {
    enable_recording();
    let svc = StatsService::new(accuracy_config(13));
    svc.register_table(table_of("orders", (0..5_000).collect(), 5), None);
    svc.refresh_now("orders", "amount").expect("warm-up ANALYZE");
    let _ = svc.estimate_cardinality("orders", "amount", &Predicate::Le(100));
    svc.record_actual("orders", "amount", "amount <= 100", 101.0, 101.0);

    let server = MetricsServer::start(&svc, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.addr();

    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    validate_exposition(&body).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{body}"));
    for needle in [
        "samplehist_service_queries_total{outcome=\"hit\"}",
        "samplehist_service_refresh_total{event=\"completed\"}",
        "samplehist_service_queue_depth",
        "samplehist_service_qerror{table=\"orders\",column=\"amount\",quantile=\"0.5\"}",
        "samplehist_service_qerror{table=\"orders\",column=\"amount\",quantile=\"0.95\"}",
        "samplehist_service_qerror{table=\"orders\",column=\"amount\",quantile=\"0.99\"}",
        "samplehist_service_qerror_count{table=\"orders\",column=\"amount\"} 1",
    ] {
        assert!(body.contains(needle), "missing {needle:?} in:\n{body}");
    }
    // The socket serves exactly what the pure renderer produces.
    assert_eq!(body, render_metrics(&svc));

    let (head, body) = http_get(addr, "/accuracy");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    assert_eq!(body, accuracy_json(&svc));
    let doc = json::parse(&body).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{body}"));
    assert!(doc.get("breaches").and_then(Json::as_u64).is_some());
    let Some(Json::Arr(columns)) = doc.get("columns") else {
        panic!("columns must be an array: {body}");
    };
    assert_eq!(columns.len(), 1);
    let col = &columns[0];
    assert_eq!(col.get("table").and_then(Json::as_str), Some("orders"));
    assert_eq!(col.get("column").and_then(Json::as_str), Some("amount"));
    assert_eq!(col.get("observations").and_then(Json::as_u64), Some(1));
    assert_eq!(col.get("worst").and_then(|w| w.get("qerror")).and_then(Json::as_f64), Some(1.0));

    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    server.stop();
}
