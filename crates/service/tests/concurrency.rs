//! The service's two load-bearing guarantees, under fire:
//!
//! 1. **Torture** — many reader threads estimate continuously while
//!    mutator threads churn the data and background workers refresh over
//!    *fault-injecting* storage. No reader may ever observe a
//!    partially-written entry or a stale-epoch regression.
//! 2. **Determinism** — the same driven workload, drained on 1 vs 4
//!    threads, must install a bit-identical catalog.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samplehist_engine::{AnalyzeOptions, Predicate, Table};
use samplehist_service::{ServiceConfig, StalenessPolicy, StatsService};
use samplehist_storage::{FaultSpec, Layout};

fn build_table(name: &str, rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let uniform: Vec<i64> = (0..rows as i64).collect();
    let skewed: Vec<i64> = (0..rows).map(|i| (i as i64) % 97).collect();
    Table::builder(name)
        .column_with_blocking("uniform", uniform, 50, Layout::Random, &mut rng)
        .column_with_blocking("skewed", skewed, 50, Layout::Random, &mut rng)
        .build()
}

/// An eager staleness policy so the torture run actually exercises the
/// probe → re-ANALYZE pipeline instead of idling.
fn eager_staleness() -> StalenessPolicy {
    StalenessPolicy { mod_fraction: 0.05, min_mods: 64, ..StalenessPolicy::default() }
}

#[test]
fn torture_readers_never_see_partial_or_stale_entries() {
    let config = ServiceConfig {
        refresh_threads: 2,
        analyze: AnalyzeOptions::full_scan(40),
        staleness: eager_staleness(),
        backoff_base_ticks: 2,
        ..ServiceConfig::default()
    };
    let svc = StatsService::new(config);
    let rows = 20_000;
    svc.register_table(
        build_table("hot", rows, 1),
        Some(FaultSpec::healthy(2).with_transient(0.05, 2).with_unreadable(0.02)),
    );
    svc.register_table(build_table("cold", rows, 3), None);
    for (t, c) in [("hot", "uniform"), ("hot", "skewed"), ("cold", "uniform"), ("cold", "skewed")] {
        svc.refresh_now(t, c).expect("warm-up ANALYZE succeeds");
    }

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        // Mutators: churn both tables so staleness keeps firing.
        for m in 0..2u64 {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + m);
                while !stop.load(Ordering::Relaxed) {
                    let table = if rng.gen_bool(0.5) { "hot" } else { "cold" };
                    let column = if rng.gen_bool(0.5) { "uniform" } else { "skewed" };
                    assert!(svc.record_modifications(table, column, rng.gen_range(1..500)));
                    std::thread::yield_now();
                }
            });
        }
        // Readers: every answer must come from an internally consistent
        // snapshot, and per-column epochs must never run backwards.
        let mut readers = Vec::new();
        for r in 0..4u64 {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            readers.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(200 + r);
                let mut last_epoch = std::collections::HashMap::new();
                let mut answered = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let table = if rng.gen_bool(0.5) { "hot" } else { "cold" };
                    let column = if rng.gen_bool(0.5) { "uniform" } else { "skewed" };
                    let est = svc
                        .estimate_cardinality(table, column, &Predicate::Le(rng.gen_range(0..97)))
                        .expect("warmed-up columns always serve, even mid-refresh");
                    assert!(
                        est.rows.is_finite() && est.rows >= 0.0,
                        "nonsense estimate {est:?} — partially-written entry?"
                    );
                    let snap = svc.catalog().get(table, column).expect("present");
                    // Snapshot internal consistency: a torn install would
                    // break histogram totals against its own row count.
                    assert_eq!(snap.stats.histogram.total(), rows as u64);
                    assert_eq!(snap.stats.num_rows, rows as u64);
                    assert!(snap.mods_validated() >= snap.mods_at_build);
                    let seen = last_epoch.entry((table, column)).or_insert(0u64);
                    assert!(snap.epoch >= *seen, "epoch ran backwards: {} < {seen}", snap.epoch);
                    *seen = snap.epoch;
                    answered += 1;
                }
                answered
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        let answered: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
        assert!(answered > 0, "readers made progress");
    });

    svc.wait_idle();
    let tally = svc.tally();
    assert!(svc.hits() > 0);
    assert!(svc.stale_hits() > 0, "churn was heavy enough to trip staleness");
    assert!(tally.probes > 0, "suspect columns were probed");
    assert_eq!(svc.misses(), 0, "all columns were warmed up");
    // Every column still serves after the storm.
    for (t, c) in [("hot", "uniform"), ("hot", "skewed"), ("cold", "uniform"), ("cold", "skewed")] {
        assert!(svc.estimate_cardinality(t, c, &Predicate::Ge(0)).is_some());
    }
}

#[test]
fn equijoin_serves_during_refresh_and_counts_misses() {
    let svc = StatsService::new(ServiceConfig {
        refresh_threads: 1,
        analyze: AnalyzeOptions::full_scan(30),
        ..ServiceConfig::default()
    });
    svc.register_table(build_table("l", 5_000, 10), None);
    svc.register_table(build_table("r", 5_000, 11), None);
    assert!(svc.estimate_equijoin("l", "skewed", "r", "skewed").is_none(), "no statistics yet");
    assert!(svc.misses() >= 1);
    svc.wait_idle(); // the misses queued refreshes; let them land
    let join = svc.estimate_equijoin("l", "skewed", "r", "skewed").expect("both sides ready");
    // 97 distinct values each side, ~51.5 rows per value: the System-R
    // shape says about 5000·5000/97 ≈ 258k output rows.
    assert!(join > 50_000.0 && join < 1_000_000.0, "implausible join estimate {join}");
}

/// One fully driven deterministic episode; returns the canonical dump.
fn deterministic_episode(threads: usize) -> String {
    let config = ServiceConfig {
        analyze: AnalyzeOptions::adaptive(50),
        staleness: eager_staleness(),
        backoff_base_ticks: 8,
        ..ServiceConfig::deterministic(42)
    };
    let svc = StatsService::new(config);
    svc.register_table(build_table("hot", 30_000, 7), None);
    svc.register_table(
        build_table("flaky", 30_000, 8),
        Some(FaultSpec::healthy(9).with_transient(0.05, 2).with_unreadable(0.02)),
    );

    // Episode: misses queue builds → drain; churn → stale reads queue
    // probes/re-ANALYZEs → drain; more churn, more reads → drain.
    for (t, c) in [("hot", "uniform"), ("hot", "skewed"), ("flaky", "uniform"), ("flaky", "skewed")]
    {
        let _ = svc.estimate_cardinality(t, c, &Predicate::Le(10));
    }
    svc.drain(threads);
    svc.clock().advance(100);
    for (t, c) in [("hot", "uniform"), ("flaky", "skewed")] {
        svc.record_modifications(t, c, 25_000);
        let _ = svc.estimate_cardinality(t, c, &Predicate::Gt(50));
    }
    svc.drain(threads);
    svc.clock().advance(100);
    svc.record_modifications("flaky", "uniform", 10_000);
    let _ = svc.estimate_equijoin("hot", "uniform", "flaky", "uniform");
    svc.drain(threads);
    svc.dump()
}

#[test]
fn deterministic_mode_is_bit_identical_across_thread_counts() {
    let one = deterministic_episode(1);
    let four = deterministic_episode(4);
    assert!(!one.is_empty());
    assert!(one.contains("flaky.uniform") && one.contains("hot.skewed"), "all columns analyzed");
    assert_eq!(one, four, "1-thread and 4-thread drains must install identical catalogs");
    // And replay is stable, not just thread-independent.
    assert_eq!(one, deterministic_episode(1));
}
