//! Deterministic RNG streams: one independent stream per refresh action.
//!
//! The service's bit-identical-replay guarantee rests on a single rule:
//! **no RNG is ever shared between concurrent actions.** Each probe or
//! re-ANALYZE derives a private stream from a pure function of *what* is
//! being refreshed — `(seed, table, column, kind, epoch, watermark)` —
//! never from *when* or *on which thread* it runs. Two schedules that
//! perform the same set of refreshes therefore draw the same random
//! choices for each, and install bit-identical statistics, whether the
//! work ran on one worker or eight.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive the RNG stream for one refresh action.
///
/// `kind` names the action (`"probe"`, `"refresh"`); `epoch` is the
/// snapshot epoch the action is keyed to; `watermark` distinguishes
/// repeated probes of one snapshot (keyed by the modification watermark
/// they test against). The mix is FNV-1a over the textual identity
/// followed by a SplitMix64 finalizer, so single-bit input changes flip
/// about half the seed bits — distinct columns get decorrelated streams
/// even though xoshiro seeding is itself cheap.
pub fn rng_stream(
    seed: u64,
    table: &str,
    column: &str,
    kind: &str,
    epoch: u64,
    watermark: u64,
) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&seed.to_le_bytes());
    eat(table.as_bytes());
    eat(&[0xff]); // separator: ("ab","c") must differ from ("a","bc")
    eat(column.as_bytes());
    eat(&[0xff]);
    eat(kind.as_bytes());
    eat(&epoch.to_le_bytes());
    eat(&watermark.to_le_bytes());
    StdRng::seed_from_u64(splitmix64(h))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn first_draw(seed: u64, t: &str, c: &str, kind: &str, e: u64, w: u64) -> u64 {
        rng_stream(seed, t, c, kind, e, w).gen()
    }

    #[test]
    fn streams_are_reproducible() {
        assert_eq!(
            first_draw(7, "t", "a", "refresh", 3, 0),
            first_draw(7, "t", "a", "refresh", 3, 0)
        );
    }

    #[test]
    fn every_key_component_matters() {
        let base = first_draw(7, "t", "a", "refresh", 3, 10);
        assert_ne!(base, first_draw(8, "t", "a", "refresh", 3, 10), "seed");
        assert_ne!(base, first_draw(7, "u", "a", "refresh", 3, 10), "table");
        assert_ne!(base, first_draw(7, "t", "b", "refresh", 3, 10), "column");
        assert_ne!(base, first_draw(7, "t", "a", "probe", 3, 10), "kind");
        assert_ne!(base, first_draw(7, "t", "a", "refresh", 4, 10), "epoch");
        assert_ne!(base, first_draw(7, "t", "a", "refresh", 3, 11), "watermark");
    }

    #[test]
    fn name_boundaries_do_not_collide() {
        assert_ne!(
            first_draw(7, "ab", "c", "refresh", 0, 0),
            first_draw(7, "a", "bc", "refresh", 0, 0)
        );
    }
}
