//! A std-only HTTP responder for the telemetry plane: Prometheus text
//! at `GET /metrics`, the accuracy ledger as JSON at `GET /accuracy`.
//!
//! The workspace builds offline, so there is no hyper/axum — just a
//! [`TcpListener`] on a background thread speaking the two lines of
//! HTTP/1.1 a scraper needs. Every response is built from immutable
//! snapshot reads ([`StatsCatalog::snapshot`] + monotone counters), so
//! serving a scrape never blocks estimation or refresh work.
//!
//! The render functions are public on their own so tests and the bench
//! harness can check the exposition without opening a socket.
//!
//! [`StatsCatalog::snapshot`]: samplehist_engine::StatsCatalog::snapshot

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use samplehist_obs::json::write_escaped;
use samplehist_obs::prom::escape_label_value;

use crate::service::StatsService;

/// Render the service's Prometheus text exposition (format 0.0.4):
/// query/refresh counters, the queue-depth gauge, and per-column
/// q-error quantiles from the accuracy ledgers.
pub fn render_metrics(svc: &StatsService) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let tally = svc.tally();

    out.push_str("# HELP samplehist_service_queries_total Queries served, by outcome.\n");
    out.push_str("# TYPE samplehist_service_queries_total counter\n");
    for (outcome, value) in
        [("hit", svc.hits()), ("miss", svc.misses()), ("stale", svc.stale_hits())]
    {
        writeln!(out, "samplehist_service_queries_total{{outcome=\"{outcome}\"}} {value}")
            .expect("write to String");
    }

    out.push_str("# HELP samplehist_service_refresh_total Refresh pipeline outcomes.\n");
    out.push_str("# TYPE samplehist_service_refresh_total counter\n");
    for (event, value) in [
        ("completed", tally.completed),
        ("failed", tally.failed),
        ("probes", tally.probes),
        ("probe_passes", tally.probe_passes),
        ("full_reanalyzes", tally.full_reanalyzes),
        ("rejected", tally.rejected),
    ] {
        writeln!(out, "samplehist_service_refresh_total{{event=\"{event}\"}} {value}")
            .expect("write to String");
    }

    out.push_str(
        "# HELP samplehist_service_accuracy_breaches_total Accuracy-ledger breaches \
         (each queued a feedback-driven refresh).\n",
    );
    out.push_str("# TYPE samplehist_service_accuracy_breaches_total counter\n");
    writeln!(out, "samplehist_service_accuracy_breaches_total {}", svc.accuracy_breaches())
        .expect("write to String");

    out.push_str("# HELP samplehist_service_queue_depth Pending refresh jobs.\n");
    out.push_str("# TYPE samplehist_service_queue_depth gauge\n");
    writeln!(out, "samplehist_service_queue_depth {}", svc.queue_depth()).expect("write to String");

    out.push_str(
        "# HELP samplehist_service_qerror Observed estimation q-error per column \
         (current statistics epoch).\n",
    );
    out.push_str("# TYPE samplehist_service_qerror summary\n");
    for snap in svc.catalog().snapshot() {
        let table = escape_label_value(&snap.stats.table);
        let column = escape_label_value(&snap.stats.column);
        let sketch = snap.accuracy.sketch();
        for (q, value) in [("0.5", sketch.p50()), ("0.95", sketch.p95()), ("0.99", sketch.p99())] {
            if let Some(v) = value {
                writeln!(
                    out,
                    "samplehist_service_qerror{{table=\"{table}\",column=\"{column}\",\
                     quantile=\"{q}\"}} {}",
                    prom_f64(v)
                )
                .expect("write to String");
            }
        }
        writeln!(
            out,
            "samplehist_service_qerror_count{{table=\"{table}\",column=\"{column}\"}} {}",
            sketch.count()
        )
        .expect("write to String");
    }
    out
}

/// Render the accuracy ledgers as one JSON document (the `/accuracy`
/// endpoint): per-column observation counts, q-error quantiles, and the
/// worst-offending predicate, plus the service-wide breach counter.
pub fn accuracy_json(svc: &StatsService) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"breaches\":");
    write!(out, "{}", svc.accuracy_breaches()).expect("write to String");
    out.push_str(",\"columns\":[");
    for (i, snap) in svc.catalog().snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let sketch = snap.accuracy.sketch();
        out.push_str("{\"table\":");
        write_escaped(&snap.stats.table, &mut out);
        out.push_str(",\"column\":");
        write_escaped(&snap.stats.column, &mut out);
        write!(
            out,
            ",\"epoch\":{},\"observations\":{},\"underestimates\":{},\"overestimates\":{}",
            snap.epoch,
            snap.accuracy.observations(),
            snap.accuracy.underestimates(),
            snap.accuracy.overestimates(),
        )
        .expect("write to String");
        for (key, value) in [
            ("p50", sketch.p50()),
            ("p95", sketch.p95()),
            ("p99", sketch.p99()),
            ("max", sketch.max()),
        ] {
            write!(out, ",\"{key}\":").expect("write to String");
            json_f64_opt(value, &mut out);
        }
        out.push_str(",\"worst\":");
        match snap.accuracy.worst() {
            None => out.push_str("null"),
            Some(w) => {
                out.push_str("{\"predicate\":");
                write_escaped(&w.predicate, &mut out);
                out.push_str(",\"predicted\":");
                json_f64_opt(Some(w.predicted), &mut out);
                out.push_str(",\"actual\":");
                json_f64_opt(Some(w.actual), &mut out);
                out.push_str(",\"qerror\":");
                json_f64_opt(Some(w.qerror), &mut out);
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Prometheus sample value: `+Inf`/`-Inf`/`NaN` spellings for the
/// non-finite cases, plain `{}` otherwise.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// JSON number, with `null` for absent or non-finite values (JSON has
/// no Inf/NaN literals).
fn json_f64_opt(v: Option<f64>, out: &mut String) {
    use std::fmt::Write;
    match v {
        Some(v) if v.is_finite() => write!(out, "{v}").expect("write to String"),
        _ => out.push_str("null"),
    }
}

/// The background HTTP responder. Binds at [`start`](Self::start), serves
/// until dropped (or [`stop`](Self::stop)); holds the service only
/// weakly, so a scraper can never keep a shut-down service alive.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (use port 0 for an ephemeral port — the bound address
    /// is reported by [`addr`](Self::addr)) and start serving.
    pub fn start(svc: &Arc<StatsService>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let weak: Weak<StatsService> = Arc::downgrade(svc);
        let handle =
            std::thread::Builder::new().name("metrics-http".to_string()).spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let Some(svc) = weak.upgrade() else { break };
                            let _ = serve_one(stream, &svc);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })?;
        Ok(Self { addr: bound, stop, handle: Some(handle) })
    }

    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the responder thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read one request head, answer it, close. Any I/O error just drops
/// the connection — a scraper retries on its next interval.
fn serve_one(mut stream: TcpStream, svc: &StatsService) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the request head (we ignore
    // bodies: both endpoints are GETs).
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8 * 1024 {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let request_line =
        std::str::from_utf8(&head).ok().and_then(|t| t.lines().next()).unwrap_or("").to_string();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => {
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", render_metrics(svc))
        }
        ("GET", "/accuracy") => ("200 OK", "application/json", accuracy_json(svc)),
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
