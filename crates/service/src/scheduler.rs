//! The refresh queue: bounded, prioritized, coalescing.
//!
//! One [`RefreshJob`] per suspect column, ordered by priority
//! (staleness × access frequency — refresh what's both wrong and hot
//! first), with a `not_before` tick for retry backoff. Three properties
//! matter more than throughput here:
//!
//! * **Coalescing** — at most one pending job per (table, column).
//!   Besides bounding the queue, this is what makes deterministic replay
//!   possible: with a single in-flight refresh per column, epoch
//!   assignment is independent of worker interleaving.
//! * **Bounded** — past `capacity`, submissions are rejected (and
//!   counted), never buffered unboundedly; a stale-but-served histogram
//!   is the designed degradation, an OOM is not.
//! * **Deterministic selection** — among eligible jobs, highest priority
//!   wins, ties broken by (table, column) order, so a drain produces the
//!   same schedule however the jobs were submitted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::clock::Clock;

/// One pending refresh for a (table, column).
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshJob {
    /// Target table.
    pub table: String,
    /// Target column.
    pub column: String,
    /// Scheduling priority (higher first); [`f64::INFINITY`] is reserved
    /// for misses (no statistics at all — nothing to serve stale).
    pub priority: f64,
    /// Earliest tick the job may run (backoff deadline; 0 = immediately).
    pub not_before: u64,
    /// How many times this refresh has already failed.
    pub attempt: u32,
}

/// What [`RefreshScheduler::submit`] did with a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Enqueued as a new pending job.
    Queued,
    /// Merged into an existing pending job for the same column (kept the
    /// higher priority, the earlier deadline, the larger attempt count).
    Coalesced,
    /// Dropped: the queue is at capacity.
    Rejected,
}

#[derive(Debug)]
struct SchedState {
    jobs: Vec<RefreshJob>,
    shutdown: bool,
}

/// The bounded, coalescing priority queue described in the module docs.
#[derive(Debug)]
pub struct RefreshScheduler {
    state: Mutex<SchedState>,
    ready: Condvar,
    capacity: usize,
    /// Jobs handed to a worker via [`pop_blocking`] and not yet finished
    /// ([`job_done`]) — what "idle" must wait out besides an empty queue.
    ///
    /// [`pop_blocking`]: RefreshScheduler::pop_blocking
    /// [`job_done`]: RefreshScheduler::job_done
    active: AtomicU64,
}

/// Index of the best runnable job: eligible (`not_before ≤ now`), max
/// priority, ties to the lexicographically first (table, column).
fn best_ready(jobs: &[RefreshJob], now: u64) -> Option<usize> {
    jobs.iter()
        .enumerate()
        .filter(|(_, j)| j.not_before <= now)
        .max_by(|(_, a), (_, b)| {
            a.priority
                .total_cmp(&b.priority)
                .then_with(|| (&b.table, &b.column).cmp(&(&a.table, &a.column)))
        })
        .map(|(i, _)| i)
}

impl RefreshScheduler {
    /// A scheduler holding at most `capacity` pending jobs (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(SchedState { jobs: Vec::new(), shutdown: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            active: AtomicU64::new(0),
        }
    }

    /// Enqueue, coalesce, or reject a job.
    pub fn submit(&self, job: RefreshJob) -> SubmitOutcome {
        let mut state = self.state.lock().expect("scheduler lock");
        if let Some(existing) =
            state.jobs.iter_mut().find(|j| j.table == job.table && j.column == job.column)
        {
            existing.priority = existing.priority.max(job.priority);
            existing.not_before = existing.not_before.min(job.not_before);
            existing.attempt = existing.attempt.max(job.attempt);
            drop(state);
            self.ready.notify_one();
            return SubmitOutcome::Coalesced;
        }
        if state.jobs.len() >= self.capacity {
            return SubmitOutcome::Rejected;
        }
        state.jobs.push(job);
        drop(state);
        self.ready.notify_one();
        SubmitOutcome::Queued
    }

    /// Pending jobs (including ones still under a backoff deadline).
    pub fn len(&self) -> usize {
        self.state.lock().expect("scheduler lock").jobs.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return the best runnable job at `now`, if any.
    pub fn pop_ready(&self, now: u64) -> Option<RefreshJob> {
        let mut state = self.state.lock().expect("scheduler lock");
        best_ready(&state.jobs, now).map(|i| state.jobs.swap_remove(i))
    }

    /// Remove **all** jobs runnable at `now`, sorted by (table, column) —
    /// the deterministic drain batch.
    pub fn drain_ready(&self, now: u64) -> Vec<RefreshJob> {
        let mut state = self.state.lock().expect("scheduler lock");
        let mut batch = Vec::new();
        let mut i = 0;
        while i < state.jobs.len() {
            if state.jobs[i].not_before <= now {
                batch.push(state.jobs.swap_remove(i));
            } else {
                i += 1;
            }
        }
        batch.sort_by(|a, b| (&a.table, &a.column).cmp(&(&b.table, &b.column)));
        batch
    }

    /// Earliest `not_before` among pending jobs — the tick a virtual-clock
    /// drain should advance to when nothing is currently runnable.
    pub fn next_eligible_at(&self) -> Option<u64> {
        let state = self.state.lock().expect("scheduler lock");
        state.jobs.iter().map(|j| j.not_before).min()
    }

    /// Block until a job is runnable (waiting out backoff deadlines on
    /// the given clock) and return it; `None` once [`shutdown`] is called.
    ///
    /// This is the concurrent workers' loop condition; deterministic
    /// drains use [`pop_ready`] and steer the clock themselves.
    ///
    /// [`shutdown`]: RefreshScheduler::shutdown
    /// [`pop_ready`]: RefreshScheduler::pop_ready
    pub fn pop_blocking(&self, clock: &Clock) -> Option<RefreshJob> {
        let mut state = self.state.lock().expect("scheduler lock");
        loop {
            if state.shutdown {
                return None;
            }
            let now = clock.now();
            if let Some(i) = best_ready(&state.jobs, now) {
                // Counted while the queue lock is held, so an observer
                // never sees "queue empty, nothing active" mid-handoff.
                self.active.fetch_add(1, Ordering::Relaxed);
                return Some(state.jobs.swap_remove(i));
            }
            if let Some(next) = state.jobs.iter().map(|j| j.not_before).min() {
                // Everything pending is under backoff: sleep until the
                // earliest deadline (ticks ≈ ms on the real clock).
                let wait = Duration::from_millis(next.saturating_sub(now).max(1));
                state = self.ready.wait_timeout(state, wait).expect("scheduler lock").0;
            } else {
                state = self.ready.wait(state).expect("scheduler lock");
            }
        }
    }

    /// Jobs popped via [`pop_blocking`] and not yet marked done.
    ///
    /// [`pop_blocking`]: RefreshScheduler::pop_blocking
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Mark one [`pop_blocking`]-popped job finished (after any retry
    /// resubmission, so idleness never flickers while work remains).
    ///
    /// [`pop_blocking`]: RefreshScheduler::pop_blocking
    pub fn job_done(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    /// No jobs pending **and** none being processed.
    pub fn idle(&self) -> bool {
        // Order matters: read `active` first so a job that finishes and
        // re-queues between the two reads shows up in one of them.
        self.active() == 0 && self.is_empty()
    }

    /// Wake every blocked worker with `None`; pending jobs are dropped.
    pub fn shutdown(&self) {
        self.state.lock().expect("scheduler lock").shutdown = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(t: &str, c: &str, prio: f64, not_before: u64) -> RefreshJob {
        RefreshJob {
            table: t.to_string(),
            column: c.to_string(),
            priority: prio,
            not_before,
            attempt: 0,
        }
    }

    #[test]
    fn priority_then_name_order() {
        let s = RefreshScheduler::new(10);
        assert_eq!(s.submit(job("t", "b", 1.0, 0)), SubmitOutcome::Queued);
        assert_eq!(s.submit(job("t", "a", 1.0, 0)), SubmitOutcome::Queued);
        assert_eq!(s.submit(job("t", "c", 9.0, 0)), SubmitOutcome::Queued);
        assert_eq!(s.pop_ready(0).expect("ready").column, "c", "highest priority first");
        assert_eq!(s.pop_ready(0).expect("ready").column, "a", "ties break by name");
        assert_eq!(s.pop_ready(0).expect("ready").column, "b");
        assert!(s.pop_ready(0).is_none());
    }

    #[test]
    fn coalescing_keeps_one_job_per_column() {
        let s = RefreshScheduler::new(10);
        assert_eq!(s.submit(job("t", "a", 1.0, 50)), SubmitOutcome::Queued);
        let mut retry = job("t", "a", 3.0, 10);
        retry.attempt = 2;
        assert_eq!(s.submit(retry), SubmitOutcome::Coalesced);
        assert_eq!(s.len(), 1);
        let merged = s.pop_ready(10).expect("eligible at the earlier deadline");
        assert_eq!(merged.priority, 3.0);
        assert_eq!(merged.not_before, 10);
        assert_eq!(merged.attempt, 2);
    }

    #[test]
    fn capacity_rejects_but_coalescing_still_works() {
        let s = RefreshScheduler::new(2);
        assert_eq!(s.submit(job("t", "a", 1.0, 0)), SubmitOutcome::Queued);
        assert_eq!(s.submit(job("t", "b", 1.0, 0)), SubmitOutcome::Queued);
        assert_eq!(s.submit(job("t", "c", 1.0, 0)), SubmitOutcome::Rejected);
        assert_eq!(s.submit(job("t", "a", 2.0, 0)), SubmitOutcome::Coalesced, "full ≠ closed");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn backoff_deadlines_gate_eligibility() {
        let s = RefreshScheduler::new(10);
        s.submit(job("t", "a", 5.0, 100));
        s.submit(job("t", "b", 1.0, 0));
        assert_eq!(s.pop_ready(0).expect("ready").column, "b", "deferred job is invisible");
        assert!(s.pop_ready(99).is_none());
        assert_eq!(s.next_eligible_at(), Some(100));
        assert_eq!(s.pop_ready(100).expect("ready").column, "a");
    }

    #[test]
    fn drain_ready_is_sorted_and_leaves_deferred() {
        let s = RefreshScheduler::new(10);
        s.submit(job("t", "z", 9.0, 0));
        s.submit(job("s", "a", 1.0, 0));
        s.submit(job("t", "a", 1.0, 500));
        let batch = s.drain_ready(0);
        let keys: Vec<(&str, &str)> =
            batch.iter().map(|j| (j.table.as_str(), j.column.as_str())).collect();
        assert_eq!(keys, vec![("s", "a"), ("t", "z")]);
        assert_eq!(s.len(), 1, "deferred job stays");
    }

    #[test]
    fn pop_blocking_wakes_on_submit_and_shutdown() {
        let s = std::sync::Arc::new(RefreshScheduler::new(10));
        let clock = std::sync::Arc::new(Clock::real());
        let (s2, c2) = (std::sync::Arc::clone(&s), std::sync::Arc::clone(&clock));
        let h = std::thread::spawn(move || {
            let first = s2.pop_blocking(&c2);
            let second = s2.pop_blocking(&c2);
            (first, second)
        });
        std::thread::sleep(Duration::from_millis(10));
        s.submit(job("t", "a", 1.0, 0));
        std::thread::sleep(Duration::from_millis(10));
        s.shutdown();
        let (first, second) = h.join().expect("worker");
        assert_eq!(first.expect("woken by submit").column, "a");
        assert!(second.is_none(), "woken by shutdown");
    }
}
