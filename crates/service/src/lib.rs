//! The concurrent statistics service: keeping histograms fresh while
//! queries keep running.
//!
//! The paper ends where production begins: Section 7 observes that its
//! adaptive sampling was built for SQL Server's `AUTO UPDATE STATISTICS`,
//! where statistics refresh happens *behind* a live workload, triggered
//! by data churn rather than on a timer. This crate is that deployment
//! surface for the workspace:
//!
//! * [`StatsService`] answers `estimate_cardinality` / `estimate_equijoin`
//!   from a lock-striped [`StatsCatalog`], never blocking a read on an
//!   in-flight ANALYZE (readers clone an `Arc` snapshot; refreshes build
//!   off-lock and swap the pointer).
//! * Staleness is driven by per-column modification counters
//!   ([`Table::record_modifications`]) through a two-stage policy
//!   ([`StalenessPolicy`]): enough churn makes a column *suspect*; a
//!   cheap Theorem-7-style cross-validation probe over a small fresh
//!   block sample then tests the stored histogram's error, and only a
//!   **failed** probe pays for a full CVB re-ANALYZE.
//! * Refreshes run on a [`RefreshScheduler`] (bounded queue, priority =
//!   staleness × access frequency, retry with backoff) drained by a
//!   [`WorkerPool`] in concurrent mode — or synchronously, on a virtual
//!   clock with RNG streams keyed by column state, in deterministic mode,
//!   where a run is bit-identical whatever the thread count.
//! * Estimation accuracy feeds back: execution reports observed
//!   cardinalities through [`StatsService::record_actual`], each
//!   snapshot keeps a per-column q-error ledger, and a sustained breach
//!   ([`AccuracyPolicy`]) escalates through the *same* probe-then-
//!   re-ANALYZE machinery — so estimate rot triggers refresh even with
//!   zero writes. The ledgers (plus service counters) are exported by a
//!   std-only HTTP responder ([`MetricsServer`]): Prometheus text at
//!   `/metrics`, JSON at `/accuracy`.
//!
//! [`StatsCatalog`]: samplehist_engine::StatsCatalog
//! [`Table::record_modifications`]: samplehist_engine::Table::record_modifications
//! [`WorkerPool`]: samplehist_parallel::WorkerPool

#![warn(missing_docs)]

mod clock;
mod http;
mod rng_stream;
mod scheduler;
mod service;
mod staleness;

pub use clock::Clock;
pub use http::{accuracy_json, render_metrics, MetricsServer};
pub use rng_stream::rng_stream;
pub use scheduler::{RefreshJob, RefreshScheduler, SubmitOutcome};
pub use service::{RefreshTally, ServiceConfig, StatsService};
pub use staleness::{
    run_probe, run_probe_with, AccuracyPolicy, ProbeOutcome, ProbeScratch, StalenessPolicy,
};
