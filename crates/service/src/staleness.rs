//! When are statistics stale — and how cheaply can we find out?
//!
//! The policy is two-staged, after SQL Server's auto-update-stats design
//! the paper was built for (Section 7):
//!
//! 1. **Suspicion** is free: a column becomes *suspect* once its
//!    modification counter has grown past a fraction of the table (plus
//!    an absolute floor, so tiny tables don't thrash).
//! 2. **Certainty** is cheap: a suspect column gets a *cross-validation
//!    probe* — a small fresh block sample whose empirical distribution is
//!    compared against the stored histogram with the paper's Definition-4
//!    metric (`Δ̂max`, relative max bucket error). Theorem 7's accept
//!    geometry says a stored histogram that still fits the data passes at
//!    threshold `2f`; only a **failed** probe pays for a full CVB
//!    re-ANALYZE.
//!
//! The probe's sample is sized by Corollary 1 but clamped to a small
//! budget: a watchdog doesn't need the precision of a build, it needs to
//! notice gross drift for a handful of page reads. The pass threshold
//! widens accordingly ([`StalenessPolicy::pass_threshold`] plugs the
//! clamped size back into Corollary 1), so the probe never claims more
//! discrimination than its sample can certify.

use rand::Rng;
use samplehist_core::bounds::{corollary1_error, corollary1_sample_size};
use samplehist_core::error::histogram_fractional_error;
use samplehist_core::histogram::EquiHeightHistogram;
use samplehist_core::TryBlockSource;

/// Tuning for staleness detection and the cross-validation probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessPolicy {
    /// Fraction of the table that must have churned before a column is
    /// suspect (SQL Server's classic trigger is ~20%).
    pub mod_fraction: f64,
    /// Absolute modification floor: below this, never suspect (prevents
    /// refresh storms on small tables).
    pub min_mods: u64,
    /// The relative max error `f` the probe aims to test at (before
    /// budget clamping).
    pub probe_f: f64,
    /// Probe failure probability γ for the Corollary-1 sizing.
    pub probe_gamma: f64,
    /// Accept threshold as a multiple of the effective `f` — Theorem 7's
    /// cross-validation accepts at `2f`.
    pub pass_factor: f64,
    /// Smallest probe worth drawing, in tuples.
    pub min_probe_tuples: u64,
    /// Probe budget cap, in tuples — the knob that keeps probes cheap.
    pub max_probe_tuples: u64,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        Self {
            mod_fraction: 0.2,
            min_mods: 512,
            probe_f: 0.25,
            probe_gamma: 0.1,
            pass_factor: 2.0,
            min_probe_tuples: 1024,
            max_probe_tuples: 16_384,
        }
    }
}

impl StalenessPolicy {
    /// Is a column with `num_rows` rows and `mods_since` modifications
    /// since its last build/probe suspect?
    pub fn is_suspect(&self, num_rows: u64, mods_since: u64) -> bool {
        let fraction_floor = (self.mod_fraction * num_rows as f64).ceil() as u64;
        mods_since >= fraction_floor.max(self.min_mods).max(1)
    }

    /// Probe sample size in tuples for a `k`-bucket histogram over `n`
    /// rows: the Corollary-1 size at (`probe_f`, `probe_gamma`), clamped
    /// into `[min_probe_tuples, max_probe_tuples]` and never above `n`.
    pub fn probe_tuples(&self, k: usize, n: u64) -> u64 {
        let ideal = corollary1_sample_size(k, self.probe_f, n, self.probe_gamma) as u64;
        ideal.clamp(self.min_probe_tuples, self.max_probe_tuples).min(n.max(1))
    }

    /// Accept threshold for a probe of `r` tuples: `pass_factor` times the
    /// error the clamped sample can actually certify (Corollary 1 solved
    /// for `f`, floored at `probe_f`, capped at 1 — beyond 1 the sample
    /// certifies nothing and only gross drift can fail the probe).
    pub fn pass_threshold(&self, r: u64, k: usize, n: u64) -> f64 {
        let certifiable = corollary1_error(r.max(1), k, n, self.probe_gamma).min(1.0);
        self.pass_factor * certifiable.max(self.probe_f)
    }
}

/// Tuning for the *feedback-driven* staleness trigger: the accuracy
/// counterpart of [`StalenessPolicy`]'s modification counters.
///
/// Execution feeds observed (predicted, actual) cardinality pairs into
/// each snapshot's accuracy ledger; once a column has accumulated
/// [`min_observations`](Self::min_observations) of them and the watched
/// q-error quantile exceeds
/// [`qerror_threshold`](Self::qerror_threshold), the column is marked
/// suspect **exactly like the mod-counter path** — it escalates to a
/// Theorem-7 probe, and only a failed probe pays for a full re-ANALYZE.
/// This catches estimate rot the modification counters are blind to
/// (drifted reloads, correlated predicates) with zero writes observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPolicy {
    /// Which q-error quantile to watch (0.95 = p95).
    pub quantile: f64,
    /// Breach level for the watched quantile: estimates off by more than
    /// this factor (in either direction) count as rot.
    pub qerror_threshold: f64,
    /// Observations a ledger must accumulate before it can breach —
    /// the "sustained over N observations" guard against one unlucky
    /// predicate triggering a probe.
    pub min_observations: u64,
}

impl Default for AccuracyPolicy {
    fn default() -> Self {
        Self { quantile: 0.95, qerror_threshold: 2.0, min_observations: 64 }
    }
}

impl AccuracyPolicy {
    /// Is a ledger with `observations` recorded pairs and `watched` as
    /// its watched-quantile q-error in breach?
    pub fn is_breach(&self, observations: u64, watched: f64) -> bool {
        observations >= self.min_observations.max(1) && watched > self.qerror_threshold
    }
}

/// What a cross-validation probe concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeOutcome {
    /// The stored histogram still fits: `observed ≤ threshold`.
    Passed {
        /// Measured `Δ̂max` of the stored histogram against the fresh sample.
        observed: f64,
        /// Accept threshold used.
        threshold: f64,
        /// Fresh tuples actually read.
        tuples: u64,
    },
    /// The stored histogram drifted: a full re-ANALYZE is warranted.
    Failed {
        /// Measured `Δ̂max`.
        observed: f64,
        /// Accept threshold used.
        threshold: f64,
        /// Fresh tuples actually read.
        tuples: u64,
    },
    /// Every sampled page failed to read; nothing can be concluded.
    Unreadable {
        /// Page reads attempted.
        blocks_tried: usize,
    },
}

impl ProbeOutcome {
    /// Did the stored histogram survive the probe?
    pub fn passed(&self) -> bool {
        matches!(self, ProbeOutcome::Passed { .. })
    }
}

/// Reusable buffers for [`run_probe_with`] — the page-permutation and
/// sampled-value vectors a probe fills, following the radix `Scratch`
/// pattern: the caller (typically one per worker thread) owns the
/// allocations and successive probes only pay a clear + refill, not a
/// fresh heap round-trip per probe.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Page permutation; refilled with the identity each probe before
    /// the Fisher–Yates prefix shuffle.
    order: Vec<usize>,
    /// Sampled tuples, sorted in place before the error metric.
    values: Vec<i64>,
}

/// Run one cross-validation probe: draw a small fresh block sample from
/// `source` (skipping unreadable pages) and test `histogram` against it.
///
/// Deterministic in `rng`: the page subset is a Fisher–Yates prefix, so
/// the same stream draws the same probe. Allocates its buffers per call;
/// repeated probers should hold a [`ProbeScratch`] and call
/// [`run_probe_with`], which behaves identically.
pub fn run_probe(
    source: &impl TryBlockSource,
    histogram: &EquiHeightHistogram,
    policy: &StalenessPolicy,
    rng: &mut impl Rng,
) -> ProbeOutcome {
    run_probe_with(&mut ProbeScratch::default(), source, histogram, policy, rng)
}

/// [`run_probe`] with caller-held buffers; outcome is identical for any
/// scratch state (both buffers are fully re-initialized per probe).
pub fn run_probe_with(
    scratch: &mut ProbeScratch,
    source: &impl TryBlockSource,
    histogram: &EquiHeightHistogram,
    policy: &StalenessPolicy,
    rng: &mut impl Rng,
) -> ProbeOutcome {
    let n = source.num_tuples();
    let pages = source.num_blocks();
    if n == 0 || pages == 0 {
        return ProbeOutcome::Unreadable { blocks_tried: 0 };
    }
    let k = histogram.num_buckets();
    let want_tuples = policy.probe_tuples(k, n);
    let per_page = (n / pages as u64).max(1);
    let want_pages = (want_tuples.div_ceil(per_page) as usize).clamp(1, pages);

    // Fisher–Yates prefix: `want_pages` distinct pages, order-determined
    // by the stream alone (the reused buffer is rebuilt from the
    // identity, so prior probes leave no trace).
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..pages);
    for i in 0..want_pages {
        let j = rng.gen_range(i..pages);
        order.swap(i, j);
    }

    let values = &mut scratch.values;
    values.clear();
    values.reserve(want_tuples as usize);
    let mut tried = 0usize;
    for &page in &order[..want_pages] {
        tried += 1;
        if let Ok(block) = source.try_block(page) {
            values.extend_from_slice(&block);
        }
    }
    if values.is_empty() {
        return ProbeOutcome::Unreadable { blocks_tried: tried };
    }
    values.sort_unstable();
    let tuples = values.len() as u64;
    let observed = histogram_fractional_error(histogram, values).max;
    let threshold = policy.pass_threshold(tuples, k, n);
    if observed <= threshold {
        ProbeOutcome::Passed { observed, threshold, tuples }
    } else {
        ProbeOutcome::Failed { observed, threshold, tuples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplehist_core::histogram::EquiHeightHistogram;
    use samplehist_core::sampling::Reliable;
    use samplehist_storage::{FaultInjectingStorage, FaultSpec, HeapFile, Layout};

    #[test]
    fn suspicion_needs_both_floors() {
        let p = StalenessPolicy::default();
        assert!(!p.is_suspect(10_000, 511), "below absolute floor");
        assert!(!p.is_suspect(10_000, 1999), "below 20% of 10k");
        assert!(p.is_suspect(10_000, 2000));
        assert!(!p.is_suspect(100, 21), "small table: min_mods dominates");
        assert!(p.is_suspect(100, 512));
    }

    #[test]
    fn probe_size_is_clamped() {
        let p = StalenessPolicy::default();
        let n = 1_000_000;
        assert_eq!(p.probe_tuples(600, n), p.max_probe_tuples, "big k hits the cap");
        assert!(p.probe_tuples(600, 100) <= 100, "never more than the table");
        // Threshold widens when the budget can't certify probe_f.
        let r = p.probe_tuples(600, n);
        assert!(p.pass_threshold(r, 600, n) >= p.pass_factor * p.probe_f);
        assert!(p.pass_threshold(r, 600, n) <= p.pass_factor * 1.0 + 1e-12);
    }

    fn file_of(values: Vec<i64>, seed: u64) -> HeapFile {
        let mut rng = StdRng::seed_from_u64(seed);
        HeapFile::with_layout(values, 50, Layout::Random, &mut rng)
    }

    #[test]
    fn probe_passes_fresh_and_fails_drifted() {
        let mut rng = StdRng::seed_from_u64(3);
        let fresh: Vec<i64> = (0..50_000).collect();
        let hist = EquiHeightHistogram::from_unsorted(fresh.clone(), 100);
        let file = file_of(fresh, 4);
        let policy = StalenessPolicy::default();

        let outcome = run_probe(&Reliable(&file), &hist, &policy, &mut rng);
        assert!(outcome.passed(), "fresh data must pass: {outcome:?}");

        // Replace the data with a clustered distribution: same row count,
        // wildly different shape.
        let drifted: Vec<i64> = (0..50_000).map(|i| i % 100).collect();
        let drifted_file = file_of(drifted, 5);
        let outcome = run_probe(&Reliable(&drifted_file), &hist, &policy, &mut rng);
        assert!(!outcome.passed(), "drifted data must fail: {outcome:?}");
        assert!(matches!(outcome, ProbeOutcome::Failed { .. }));
    }

    #[test]
    fn probe_survives_partial_faults_and_reports_total_loss() {
        let mut rng = StdRng::seed_from_u64(6);
        let fresh: Vec<i64> = (0..50_000).collect();
        let hist = EquiHeightHistogram::from_unsorted(fresh.clone(), 100);
        let file = file_of(fresh, 7);
        let policy = StalenessPolicy::default();

        let flaky = FaultInjectingStorage::new(&file, FaultSpec::healthy(8).with_unreadable(0.3));
        let outcome = run_probe(&flaky, &hist, &policy, &mut rng);
        assert!(outcome.passed(), "30% page loss still leaves a usable probe: {outcome:?}");

        let dead = FaultInjectingStorage::new(&file, FaultSpec::healthy(9).with_unreadable(1.0));
        let outcome = run_probe(&dead, &hist, &policy, &mut rng);
        assert!(matches!(outcome, ProbeOutcome::Unreadable { blocks_tried } if blocks_tried > 0));
    }

    #[test]
    fn probe_is_deterministic_in_the_stream() {
        let fresh: Vec<i64> = (0..20_000).map(|i| i * 3).collect();
        let hist = EquiHeightHistogram::from_unsorted(fresh.clone(), 50);
        let file = file_of(fresh, 10);
        let policy = StalenessPolicy::default();
        let a = run_probe(&Reliable(&file), &hist, &policy, &mut StdRng::seed_from_u64(11));
        let b = run_probe(&Reliable(&file), &hist, &policy, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }

    #[test]
    fn reused_scratch_matches_fresh_allocations() {
        // The same stream through one long-lived scratch must reproduce
        // per-probe allocations exactly, across sources of different
        // page counts (the order buffer is refilled, never assumed).
        let policy = StalenessPolicy::default();
        let mut scratch = ProbeScratch::default();
        for (rows, seed) in [(20_000usize, 30u64), (5_000, 31), (50_000, 32)] {
            let data: Vec<i64> = (0..rows as i64).map(|i| i * 7 % 997).collect();
            let hist = EquiHeightHistogram::from_unsorted(data.clone(), 64);
            let file = file_of(data, seed);
            let fresh =
                run_probe(&Reliable(&file), &hist, &policy, &mut StdRng::seed_from_u64(seed + 100));
            let reused = run_probe_with(
                &mut scratch,
                &Reliable(&file),
                &hist,
                &policy,
                &mut StdRng::seed_from_u64(seed + 100),
            );
            assert_eq!(fresh, reused, "rows = {rows}");
        }
    }
}
