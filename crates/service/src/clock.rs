//! Service time: real milliseconds or a replayable virtual counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The service's notion of "now", in **ticks**.
///
/// Concurrent deployments use [`Clock::real`], where a tick is a
/// millisecond since service start. Deterministic replay uses
/// [`Clock::virtual_at`], where time only moves when the driver calls
/// [`Clock::advance`] — so `built_at` stamps, backoff deadlines and
/// staleness decisions are pure functions of the driven schedule, not of
/// the machine's load.
#[derive(Debug)]
pub enum Clock {
    /// Wall-clock ticks (milliseconds since construction).
    Real(Instant),
    /// Driver-advanced ticks.
    Virtual(AtomicU64),
}

impl Clock {
    /// A wall clock starting at tick 0 now.
    pub fn real() -> Self {
        Clock::Real(Instant::now())
    }

    /// A virtual clock starting at `tick`.
    pub fn virtual_at(tick: u64) -> Self {
        Clock::Virtual(AtomicU64::new(tick))
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        match self {
            Clock::Real(start) => start.elapsed().as_millis() as u64,
            Clock::Virtual(tick) => tick.load(Ordering::Relaxed),
        }
    }

    /// Move a virtual clock forward by `ticks`, returning the new now.
    ///
    /// # Panics
    /// On a real clock — wall time cannot be steered, and a caller that
    /// tries was built for the wrong mode.
    pub fn advance(&self, ticks: u64) -> u64 {
        match self {
            Clock::Real(_) => panic!("advance() on a real clock"),
            Clock::Virtual(tick) => tick.fetch_add(ticks, Ordering::Relaxed) + ticks,
        }
    }

    /// Whether this is a virtual (driver-steered) clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_moves_only_when_advanced() {
        let c = Clock::virtual_at(10);
        assert!(c.is_virtual());
        assert_eq!(c.now(), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn real_clock_is_monotone() {
        let c = Clock::real();
        assert!(!c.is_virtual());
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    #[should_panic(expected = "advance() on a real clock")]
    fn real_clock_rejects_advance() {
        Clock::real().advance(1);
    }
}
