//! [`StatsService`]: the estimation front door plus its refresh machinery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use samplehist_core::sampling::{DegradationPolicy, Reliable};
use samplehist_engine::{
    analyze_resilient, estimate_cardinality as cardinality_from_stats,
    estimate_equijoin as equijoin_from_stats, AnalyzeError, AnalyzeOptions, CardinalityEstimate,
    Predicate, StatsCatalog, Table, VersionedStats, DEFAULT_STRIPES,
};
use samplehist_parallel::WorkerPool;
use samplehist_storage::{FaultInjectingStorage, FaultSpec};

use crate::clock::Clock;
use crate::rng_stream::rng_stream;
use crate::scheduler::{RefreshJob, RefreshScheduler, SubmitOutcome};
use crate::staleness::{
    run_probe_with, AccuracyPolicy, ProbeOutcome, ProbeScratch, StalenessPolicy,
};

std::thread_local! {
    /// Per-thread probe buffers: refresh workers (and [`StatsService::drain`]'s
    /// helper threads) probe repeatedly, so the Fisher–Yates permutation
    /// and sample vectors are reused instead of reallocated per probe.
    /// Probe outcomes are scratch-independent ([`run_probe_with`]), so
    /// thread-locality never perturbs the deterministic mode.
    static PROBE_SCRATCH: std::cell::RefCell<ProbeScratch> =
        std::cell::RefCell::new(ProbeScratch::default());
}

/// Everything tunable about a [`StatsService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Master seed; every refresh action derives its private RNG stream
    /// from this (see [`rng_stream`]).
    pub seed: u64,
    /// Background refresh workers in concurrent mode (clamped to ≥ 1);
    /// ignored in deterministic mode, where [`StatsService::drain`]
    /// chooses the thread count per call.
    pub refresh_threads: usize,
    /// Deterministic mode: virtual clock, no background workers, refreshes
    /// run only when [`StatsService::drain`] is called — and the outcome
    /// is bit-identical whatever thread count the drain uses.
    pub deterministic: bool,
    /// How full refreshes acquire data (default: the paper's adaptive CVB).
    pub analyze: AnalyzeOptions,
    /// Staleness triggers and probe sizing.
    pub staleness: StalenessPolicy,
    /// Feedback-driven (q-error) staleness trigger.
    pub accuracy: AccuracyPolicy,
    /// Fault tolerance for refreshes over fault-injecting storage.
    pub degradation: DegradationPolicy,
    /// Refresh queue bound; beyond it submissions are rejected & counted.
    pub queue_capacity: usize,
    /// Attempts per refresh before giving up (≥ 1).
    pub max_attempts: u32,
    /// First retry backoff in clock ticks; doubles per attempt.
    pub backoff_base_ticks: u64,
    /// Lock stripes in the underlying [`StatsCatalog`].
    pub stripes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            seed: 0x5a17_ab1e,
            refresh_threads: samplehist_parallel::num_threads(),
            deterministic: false,
            analyze: AnalyzeOptions::adaptive(100),
            staleness: StalenessPolicy::default(),
            accuracy: AccuracyPolicy::default(),
            degradation: DegradationPolicy::default(),
            queue_capacity: 1024,
            max_attempts: 4,
            backoff_base_ticks: 25,
            stripes: DEFAULT_STRIPES,
        }
    }
}

impl ServiceConfig {
    /// The replayable configuration: virtual clock, drain-driven
    /// refreshes, all randomness derived from `seed`.
    pub fn deterministic(seed: u64) -> Self {
        Self { seed, deterministic: true, ..Self::default() }
    }
}

/// Cumulative refresh outcomes (monotone counters, snapshot via
/// [`StatsService::tally`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RefreshTally {
    /// Refreshes that ended well (probe pass or successful re-ANALYZE).
    pub completed: u64,
    /// Refreshes abandoned after `max_attempts` failures.
    pub failed: u64,
    /// Cross-validation probes run.
    pub probes: u64,
    /// Probes the stored histogram survived (no re-ANALYZE needed).
    pub probe_passes: u64,
    /// Full CVB re-ANALYZE runs performed.
    pub full_reanalyzes: u64,
    /// Submissions dropped by the bounded queue.
    pub rejected: u64,
}

#[derive(Debug)]
struct TableEntry {
    table: Table,
    fault: Option<FaultSpec>,
    /// Per-column read counts — the "access frequency" half of refresh
    /// priority.
    access: HashMap<String, AtomicU64>,
}

/// A concurrent statistics service over a lock-striped [`StatsCatalog`].
///
/// Readers ([`estimate_cardinality`], [`estimate_equijoin`]) are served
/// from immutable `Arc` snapshots and never block on an in-flight
/// ANALYZE. Staleness (modification counters → probe → re-ANALYZE) feeds
/// a bounded priority queue drained by background workers — or by
/// explicit [`drain`] calls in deterministic mode.
///
/// Constructed as `Arc<StatsService>` ([`StatsService::new`]); background
/// workers hold only a `Weak` reference between jobs, so dropping the
/// last user `Arc` shuts the service down (drop it from outside a
/// refresh worker — in practice: after [`wait_idle`]).
///
/// [`estimate_cardinality`]: StatsService::estimate_cardinality
/// [`estimate_equijoin`]: StatsService::estimate_equijoin
/// [`drain`]: StatsService::drain
/// [`wait_idle`]: StatsService::wait_idle
#[derive(Debug)]
pub struct StatsService {
    config: ServiceConfig,
    catalog: StatsCatalog,
    tables: RwLock<HashMap<String, Arc<TableEntry>>>,
    scheduler: Arc<RefreshScheduler>,
    clock: Arc<Clock>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    probes: AtomicU64,
    probe_passes: AtomicU64,
    full_reanalyzes: AtomicU64,
    rejected: AtomicU64,
    accuracy_breaches: AtomicU64,
    pool: Option<WorkerPool>,
}

impl StatsService {
    /// Start a service. In concurrent mode this spawns
    /// `config.refresh_threads` background workers immediately.
    pub fn new(config: ServiceConfig) -> Arc<Self> {
        let clock =
            Arc::new(if config.deterministic { Clock::virtual_at(0) } else { Clock::real() });
        let scheduler = Arc::new(RefreshScheduler::new(config.queue_capacity));
        let pool = (!config.deterministic).then(|| WorkerPool::new(config.refresh_threads.max(1)));
        let svc = Arc::new(Self {
            catalog: StatsCatalog::new(config.stripes),
            tables: RwLock::new(HashMap::new()),
            scheduler,
            clock,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            probe_passes: AtomicU64::new(0),
            full_reanalyzes: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            accuracy_breaches: AtomicU64::new(0),
            pool,
            config,
        });
        if let Some(pool) = &svc.pool {
            for _ in 0..pool.threads() {
                // Workers capture scheduler and clock strongly but the
                // service only weakly: between jobs no worker pins the
                // service alive, so the user's last `drop` ends it.
                let weak = Arc::downgrade(&svc);
                let scheduler = Arc::clone(&svc.scheduler);
                let clock = Arc::clone(&svc.clock);
                pool.submit(move || {
                    while let Some(job) = scheduler.pop_blocking(&clock) {
                        let live = weak.upgrade();
                        if let Some(svc) = &live {
                            svc.process(job);
                        }
                        scheduler.job_done();
                        if live.is_none() {
                            break;
                        }
                    }
                });
            }
        }
        svc
    }

    /// Register (or replace — data drift) a table, optionally behind a
    /// fault-injecting storage schedule. Statistics already in the
    /// catalog stay served until staleness catches up with the new data.
    pub fn register_table(&self, table: Table, fault: Option<FaultSpec>) {
        let access =
            table.columns().iter().map(|c| (c.name().to_string(), AtomicU64::new(0))).collect();
        let name = table.name().to_string();
        let entry = Arc::new(TableEntry { table, fault, access });
        self.tables.write().expect("tables lock").insert(name, entry);
    }

    /// A handle to a registered table. The clone shares the original's
    /// modification counters, so workload threads can
    /// [`record_modifications`] through it and the service sees them.
    ///
    /// [`record_modifications`]: Table::record_modifications
    pub fn table(&self, name: &str) -> Option<Table> {
        self.tables.read().expect("tables lock").get(name).map(|e| e.table.clone())
    }

    /// Record data churn against a registered column (the staleness
    /// signal). Returns `false` if the table or column is unknown.
    pub fn record_modifications(&self, table: &str, column: &str, count: u64) -> bool {
        let Some(entry) = self.tables.read().expect("tables lock").get(table).cloned() else {
            return false;
        };
        if entry.table.column(column).is_none() {
            return false;
        }
        entry.table.record_modifications(column, count);
        true
    }

    /// Estimate the cardinality of `predicate` on a column, from the
    /// current snapshot. `None` means no statistics exist yet (a refresh
    /// has been queued; a stale snapshot, by contrast, is still served).
    pub fn estimate_cardinality(
        &self,
        table: &str,
        column: &str,
        predicate: &Predicate,
    ) -> Option<CardinalityEstimate> {
        let recorder = samplehist_obs::global();
        let mut span = recorder.span("service.query");
        span.field("op", "cardinality");
        span.field("table", table.to_string());
        span.field("column", column.to_string());
        let snap = self.lookup(table, column);
        span.field("hit", snap.is_some());
        snap.map(|s| cardinality_from_stats(&s.stats, predicate))
    }

    /// Estimate the output cardinality of the equi-join
    /// `t1.c1 = t2.c2`. `None` while either side lacks statistics (both
    /// sides' refreshes get queued).
    pub fn estimate_equijoin(&self, t1: &str, c1: &str, t2: &str, c2: &str) -> Option<f64> {
        let recorder = samplehist_obs::global();
        let mut span = recorder.span("service.query");
        span.field("op", "equijoin");
        span.field("table", t1.to_string());
        span.field("column", c1.to_string());
        let a = self.lookup(t1, c1);
        let b = self.lookup(t2, c2);
        span.field("hit", a.is_some() && b.is_some());
        Some(equijoin_from_stats(&a?.stats, &b?.stats))
    }

    /// Feed one executed predicate's observed cardinality back into the
    /// serving snapshot's accuracy ledger — the estimation feedback loop.
    ///
    /// Returns the observation's q-error, or `None` when the column has
    /// no snapshot to attribute it to (feedback about statistics that
    /// don't exist is meaningless; the read path already queued a build).
    ///
    /// Once the ledger holds [`AccuracyPolicy::min_observations`] pairs
    /// and the watched q-error quantile breaches
    /// [`AccuracyPolicy::qerror_threshold`], the column is escalated
    /// through the same machinery as mod-counter staleness: a refresh
    /// job that starts with a Theorem-7 probe and re-ANALYZEs only on
    /// probe failure. A passed probe resets the ledger (the statistics
    /// were vindicated — the rot was in the workload, not the
    /// histogram), so breaches re-arm instead of thrashing.
    pub fn record_actual(
        &self,
        table: &str,
        column: &str,
        predicate: &str,
        predicted: f64,
        actual: f64,
    ) -> Option<f64> {
        let snap = self.catalog.get(table, column)?;
        let q = snap.accuracy.record(predicate, predicted, actual);
        let recorder = samplehist_obs::global();
        if recorder.is_enabled() {
            recorder.observe("service.qerror", &format!("{table}.{column}"), q);
        }
        let policy = &self.config.accuracy;
        let observations = snap.accuracy.observations();
        if observations >= policy.min_observations.max(1) {
            let watched = snap.accuracy.sketch().quantile(policy.quantile).unwrap_or(1.0);
            if policy.is_breach(observations, watched) {
                self.accuracy_breaches.fetch_add(1, Ordering::Relaxed);
                recorder.counter("service.accuracy.breach", 1);
                // Priority mirrors the stale-read path: how far past the
                // threshold the column has rotted.
                self.request_refresh(
                    table,
                    column,
                    watched / policy.qerror_threshold,
                    0,
                    self.clock.now(),
                );
            }
        }
        Some(q)
    }

    /// Build statistics for one column synchronously, bypassing the
    /// queue — the warm-up path. Uses the same RNG-stream derivation as
    /// background refreshes, so a deterministic run stays replayable.
    pub fn refresh_now(
        &self,
        table: &str,
        column: &str,
    ) -> Result<Arc<VersionedStats>, AnalyzeError> {
        let unknown =
            || AnalyzeError::UnknownColumn { table: table.to_string(), column: column.to_string() };
        let entry =
            self.tables.read().expect("tables lock").get(table).cloned().ok_or_else(unknown)?;
        if entry.table.column(column).is_none() {
            return Err(unknown());
        }
        let snap = self.reanalyze(&entry, column)?;
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.full_reanalyzes.fetch_add(1, Ordering::Relaxed);
        Ok(snap)
    }

    /// Process queued refreshes until none remain, on `threads` threads
    /// (deterministic mode only). The virtual clock advances past backoff
    /// deadlines, so retries resolve within the call. Coalescing
    /// guarantees at most one job per column per batch; jobs touch
    /// disjoint columns and derive private RNG streams, so the installed
    /// catalog is bit-identical for any `threads`.
    ///
    /// # Panics
    /// On a concurrent-mode service — its background workers own the
    /// queue.
    pub fn drain(&self, threads: usize) {
        assert!(
            self.pool.is_none(),
            "drain() drives deterministic services; concurrent ones refresh in the background"
        );
        loop {
            let now = self.clock.now();
            let batch = self.scheduler.drain_ready(now);
            if batch.is_empty() {
                match self.scheduler.next_eligible_at() {
                    Some(next) => {
                        self.clock.advance(next.saturating_sub(now).max(1));
                        continue;
                    }
                    None => break,
                }
            }
            samplehist_parallel::par_map_threads(threads.max(1), &batch, |job| {
                self.process(job.clone())
            });
        }
    }

    /// Block until the refresh queue is empty and no refresh is running.
    /// In deterministic mode this drains on one thread instead.
    pub fn wait_idle(&self) {
        if self.pool.is_none() {
            self.drain(1);
            return;
        }
        while !self.scheduler.idle() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Reads answered from a snapshot.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Reads that found no statistics (refresh queued, `None` returned).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Reads that found a *suspect* snapshot (served anyway, refresh
    /// queued).
    pub fn stale_hits(&self) -> u64 {
        self.stale.load(Ordering::Relaxed)
    }

    /// Cumulative refresh outcomes.
    pub fn tally(&self) -> RefreshTally {
        RefreshTally {
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            probe_passes: self.probe_passes.load(Ordering::Relaxed),
            full_reanalyzes: self.full_reanalyzes.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Accuracy-ledger breaches observed (each one queued a refresh;
    /// coalescing may fold several into one job).
    pub fn accuracy_breaches(&self) -> u64 {
        self.accuracy_breaches.load(Ordering::Relaxed)
    }

    /// Pending refresh jobs.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.len()
    }

    /// The underlying catalog (snapshots, epochs).
    pub fn catalog(&self) -> &StatsCatalog {
        &self.catalog
    }

    /// The service clock (virtual in deterministic mode — advance it to
    /// drive backoff schedules).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Canonical text dump of every snapshot (sorted by table, column) —
    /// two runs are equivalent iff their dumps are byte-identical, which
    /// is exactly what the determinism tests compare.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for snap in self.catalog.snapshot() {
            let s = &snap.stats;
            let sketch = snap.accuracy.sketch();
            writeln!(
                out,
                "{}.{} epoch={} built_at={} mods_at_build={} rows={} sample={} method={} \
                 distinct={:?} density={:?} qerr_obs={} qerr_under={} qerr_over={} \
                 qerr_p95={:?} qerr_worst={:?} separators={:?} counts={:?}",
                s.table,
                s.column,
                snap.epoch,
                snap.built_at,
                snap.mods_at_build,
                s.num_rows,
                s.sample_size,
                s.method,
                s.distinct_estimate,
                s.density,
                snap.accuracy.observations(),
                snap.accuracy.underestimates(),
                snap.accuracy.overestimates(),
                sketch.quantile(0.95),
                snap.accuracy.worst().map(|w| (w.predicate, w.predicted, w.actual, w.qerror)),
                s.histogram.separators(),
                s.histogram.counts(),
            )
            .expect("write to String");
        }
        out
    }

    /// The read path shared by both estimators: bump access, serve the
    /// snapshot, queue a refresh on miss or suspicion.
    fn lookup(&self, table: &str, column: &str) -> Option<Arc<VersionedStats>> {
        let entry = self.tables.read().expect("tables lock").get(table).cloned()?;
        let accesses = entry.access.get(column)?.fetch_add(1, Ordering::Relaxed) + 1;
        let recorder = samplehist_obs::global();
        match self.catalog.get(table, column) {
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                recorder.counter("service.query.miss", 1);
                // Nothing to serve stale: a miss outranks any staleness.
                self.request_refresh(table, column, f64::INFINITY, 0, self.clock.now());
                None
            }
            Some(snap) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                recorder.counter("service.query.hit", 1);
                let mods_since =
                    entry.table.modifications(column).saturating_sub(snap.mods_validated());
                if self.config.staleness.is_suspect(entry.table.num_rows(), mods_since) {
                    self.stale.fetch_add(1, Ordering::Relaxed);
                    recorder.counter("service.query.stale", 1);
                    let staleness = mods_since as f64 / entry.table.num_rows().max(1) as f64;
                    self.request_refresh(
                        table,
                        column,
                        staleness * (1.0 + accesses as f64),
                        0,
                        self.clock.now(),
                    );
                }
                Some(snap)
            }
        }
    }

    fn request_refresh(
        &self,
        table: &str,
        column: &str,
        priority: f64,
        attempt: u32,
        not_before: u64,
    ) {
        let outcome = self.scheduler.submit(RefreshJob {
            table: table.to_string(),
            column: column.to_string(),
            priority,
            not_before,
            attempt,
        });
        let recorder = samplehist_obs::global();
        if outcome == SubmitOutcome::Rejected {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            recorder.counter("service.refresh.rejected", 1);
        }
        recorder.gauge("service.queue_depth", self.scheduler.len() as f64);
    }

    /// One refresh, end to end: probe if a snapshot exists, re-ANALYZE on
    /// probe failure or miss, retry with backoff on errors.
    fn process(&self, job: RefreshJob) {
        let recorder = samplehist_obs::global();
        let mut span = recorder.span("service.refresh");
        span.field("table", job.table.clone());
        span.field("column", job.column.clone());
        span.field("attempt", job.attempt as u64);
        let entry = self.tables.read().expect("tables lock").get(&job.table).cloned();
        let Some(entry) = entry else {
            span.field("outcome", "table_gone");
            return;
        };
        if entry.table.column(&job.column).is_none() {
            span.field("outcome", "column_gone");
            return;
        }

        if let Some(snap) = self.catalog.get(&job.table, &job.column) {
            let mods_now = entry.table.modifications(&job.column);
            self.probes.fetch_add(1, Ordering::Relaxed);
            recorder.counter("service.refresh.probe", 1);
            let mut rng = rng_stream(
                self.config.seed,
                &job.table,
                &job.column,
                "probe",
                snap.epoch,
                snap.mods_validated(),
            );
            let file = entry.table.column(&job.column).expect("checked above").file();
            let outcome = PROBE_SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                match &entry.fault {
                    Some(spec) => run_probe_with(
                        scratch,
                        &FaultInjectingStorage::new(file, *spec),
                        &snap.stats.histogram,
                        &self.config.staleness,
                        &mut rng,
                    ),
                    None => run_probe_with(
                        scratch,
                        &Reliable(file),
                        &snap.stats.histogram,
                        &self.config.staleness,
                        &mut rng,
                    ),
                }
            });
            match outcome {
                ProbeOutcome::Passed { observed, .. } => {
                    // Still good: re-arm staleness at today's counter and
                    // keep serving the stored histogram. The accuracy
                    // ledger resets too — the probe vindicated the
                    // statistics, so accumulated q-errors must not keep
                    // the column permanently in breach.
                    snap.record_probe_pass(mods_now);
                    snap.accuracy.reset();
                    self.probe_passes.fetch_add(1, Ordering::Relaxed);
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    recorder.counter("service.refresh.probe.pass", 1);
                    recorder.counter("service.refresh.completed", 1);
                    span.field("outcome", "probe_pass");
                    span.field("probe_error", observed);
                    recorder.gauge("service.queue_depth", self.scheduler.len() as f64);
                    return;
                }
                ProbeOutcome::Failed { observed, threshold, .. } => {
                    recorder.counter("service.refresh.probe.fail", 1);
                    span.field("probe_error", observed);
                    span.field("probe_threshold", threshold);
                    // Fall through: the histogram drifted, pay for CVB.
                }
                ProbeOutcome::Unreadable { blocks_tried } => {
                    span.field("outcome", "probe_unreadable");
                    span.field("blocks_tried", blocks_tried as u64);
                    self.retry_or_fail(job);
                    return;
                }
            }
        }

        match self.reanalyze(&entry, &job.column) {
            Ok(snap) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.full_reanalyzes.fetch_add(1, Ordering::Relaxed);
                recorder.counter("service.refresh.completed", 1);
                span.field("outcome", "reanalyzed");
                span.field("epoch", snap.epoch);
                recorder.gauge("service.queue_depth", self.scheduler.len() as f64);
            }
            Err(err) => {
                span.field("outcome", "error");
                span.field("error", err.to_string());
                self.retry_or_fail(job);
            }
        }
    }

    /// Full ANALYZE outside any catalog lock, then an `Arc`-swap install.
    fn reanalyze(
        &self,
        entry: &TableEntry,
        column: &str,
    ) -> Result<Arc<VersionedStats>, AnalyzeError> {
        let table_name = entry.table.name();
        // Watermark *before* the scan: churn arriving mid-ANALYZE counts
        // as staleness against the new snapshot.
        let mods_at_build = entry.table.modifications(column);
        let next_epoch = self.catalog.get(table_name, column).map_or(0, |s| s.epoch) + 1;
        let mut rng = rng_stream(self.config.seed, table_name, column, "refresh", next_epoch, 0);
        let file = entry.table.column(column).expect("caller checked").file();
        let result = match &entry.fault {
            Some(spec) => analyze_resilient(
                table_name,
                column,
                &FaultInjectingStorage::new(file, *spec),
                &self.config.analyze,
                &self.config.degradation,
                &mut rng,
            )?,
            None => analyze_resilient(
                table_name,
                column,
                &Reliable(file),
                &self.config.analyze,
                &self.config.degradation,
                &mut rng,
            )?,
        };
        Ok(self.catalog.install(result.stats, mods_at_build, self.clock.now()))
    }

    fn retry_or_fail(&self, mut job: RefreshJob) {
        job.attempt += 1;
        if job.attempt >= self.config.max_attempts {
            self.failed.fetch_add(1, Ordering::Relaxed);
            samplehist_obs::global().counter("service.refresh.failed", 1);
            return;
        }
        let backoff = self.config.backoff_base_ticks << (job.attempt - 1).min(16);
        let not_before = self.clock.now() + backoff;
        self.request_refresh(&job.table, &job.column, job.priority, job.attempt, not_before);
    }
}

impl Drop for StatsService {
    /// Wake blocked workers so the pool (dropped right after, draining
    /// its queue) can join them.
    fn drop(&mut self) {
        self.scheduler.shutdown();
    }
}
