//! A small fixed-size worker pool for **long-lived background work**.
//!
//! The scoped primitives in the crate root cover fork/join data
//! parallelism, where the caller blocks until every task finishes. A
//! statistics *service* needs the opposite shape: a handful of named
//! threads that outlive any one call, draining a shared queue of jobs
//! (refreshes, probes) while foreground readers keep going. This module
//! is the std-only slice of a thread-pool crate the workspace needs for
//! that — submit `FnOnce` jobs, join on quiescence, shut down on drop.
//!
//! Determinism note: the pool makes **no ordering promises** between
//! jobs; callers that need replayable schedules must make job *outputs*
//! independent of execution order (the statistics service keys every
//! refresh's RNG stream by (column, epoch) for exactly this reason) or
//! run jobs on the caller's thread instead of a pool.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A boxed job.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs handed to a worker and not yet finished.
    in_flight: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a job is enqueued or shutdown begins.
    work_ready: Condvar,
    /// Signaled when the pool goes quiescent (empty queue, nothing running).
    quiescent: Condvar,
}

/// A fixed set of worker threads draining a FIFO job queue.
///
/// Jobs are `FnOnce() + Send`; panics in a job abort that worker's thread
/// (and surface at [`WorkerPool::drop`] as a panic while joining), so jobs
/// should catch their own failures and report them through their own
/// channels — the statistics service reenqueues failed refreshes itself.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .field("queued", &self.queued())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), in_flight: 0, shutdown: false }),
            work_ready: Condvar::new(),
            quiescent: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("samplehist-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        samplehist_obs::global().counter("parallel.pool.spawned_threads", threads as u64);
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a job. Returns immediately; the job runs on some worker.
    ///
    /// # Panics
    /// If called after the pool started shutting down (only possible from
    /// inside a job racing `drop`, which is a caller bug).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool lock");
        assert!(!state.shutdown, "submit on a shut-down pool");
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Jobs queued but not yet started (diagnostic snapshot).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Block until the queue is empty **and** no job is running.
    ///
    /// Quiescence is a snapshot: a job submitted by another thread right
    /// after this returns is not waited for. Jobs submitted *by jobs*
    /// (retry reenqueues) are waited for, since the submitting job is
    /// still in flight when it enqueues.
    pub fn wait_quiescent(&self) {
        let mut state = self.shared.state.lock().expect("pool lock");
        while !(state.queue.is_empty() && state.in_flight == 0) {
            state = self.shared.quiescent.wait(state).expect("pool lock");
        }
    }
}

impl Drop for WorkerPool {
    /// Finish every queued job, then join the workers.
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread panicked");
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_ready.wait(state).expect("pool lock");
            }
        };
        job();
        let mut state = shared.state.lock().expect("pool lock");
        state.in_flight -= 1;
        if state.queue.is_empty() && state.in_flight == 0 {
            shared.quiescent.notify_all();
        }
        // A finished job may have reenqueued work (retry with backoff);
        // wake a sibling in case this worker exits first on shutdown.
        if !state.queue.is_empty() {
            shared.work_ready.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_job() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_quiescent();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn drop_drains_the_queue() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn jobs_can_reenqueue_and_quiescence_waits_for_them() {
        let pool = Arc::new(WorkerPool::new(2));
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let p = Arc::clone(&pool);
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
            let c2 = Arc::clone(&c);
            p.submit(move || {
                c2.fetch_add(10, Ordering::SeqCst);
            });
        });
        pool.wait_quiescent();
        assert_eq!(counter.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn at_least_one_thread() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.store(7, Ordering::SeqCst);
        });
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 7);
    }
}
