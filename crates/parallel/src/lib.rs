//! # samplehist-parallel
//!
//! Dependency-free data-parallel primitives for the histogram pipeline,
//! built on [`std::thread::scope`]. The workspace builds with no external
//! crates, so the small slice of `rayon`'s API the pipeline needs —
//! fork/join, an order-preserving parallel map, chunked map/reduce, and a
//! parallel unstable sort — is implemented here directly.
//!
//! ## Determinism policy
//!
//! Every primitive is **bit-deterministic regardless of thread count**:
//!
//! * [`par_map`] (and the in-place [`par_map_mut_threads`]) writes each
//!   result into the slot of its input index, so the output order equals
//!   the input order no matter which thread ran which item; callers
//!   reduce the returned vector sequentially.
//! * [`par_chunks_map`] splits a slice at positions that depend only on
//!   the requested chunk count, never on timing.
//! * [`par_sort_unstable`] operates on totally ordered keys whose equal
//!   elements are indistinguishable (`i64` values here), so the sorted
//!   output is unique and therefore schedule-independent.
//!
//! ## Thread-count policy
//!
//! [`num_threads`] reads `SAMPLEHIST_THREADS` once (then caches); when
//! unset it uses [`std::thread::available_parallelism`]. With one thread
//! every primitive degrades to the serial code path — no threads are
//! spawned, no overhead is paid — which also keeps single-core CI runs
//! honest. The `*_threads` variants take an explicit count so tests can
//! exercise the parallel paths deterministically without touching global
//! state.
//!
//! ## Observability
//!
//! The parallel branches report their fan-out through the process-wide
//! [`samplehist_obs::global`] recorder: `parallel.tasks_spawned` /
//! `parallel.*.calls` counters, a `parallel.threads` gauge, and
//! per-chunk `parallel.chunk_ns` / `parallel.sort_chunk_ns` timings.
//! With no recorder installed (the default) each check is one relaxed
//! atomic load; serial fallbacks are never instrumented, so the
//! single-thread path stays exactly as cheap as before.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::WorkerPool;

use std::sync::OnceLock;
use std::time::Instant;

/// Worker-thread budget: `SAMPLEHIST_THREADS` if set and positive,
/// otherwise the machine's available parallelism. Cached after first read.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("SAMPLEHIST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Run two closures, potentially in parallel, returning both results.
///
/// The second closure runs on a freshly scoped thread while the first
/// runs on the caller's thread; panics propagate to the caller.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    samplehist_obs::global().counter("parallel.join.calls", 1);
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("parallel task panicked");
        (ra, rb)
    })
}

/// Order-preserving parallel map with the default thread budget.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(num_threads(), items, f)
}

/// Order-preserving parallel map with an explicit thread count.
///
/// Results are returned in input order whatever the schedule; with
/// `threads <= 1` the map runs serially on the calling thread.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let recorder = samplehist_obs::global();
    if recorder.is_enabled() {
        recorder.counter("parallel.par_map.calls", 1);
        recorder.counter("parallel.tasks_spawned", items.len().div_ceil(chunk) as u64);
        recorder.gauge("parallel.threads", threads as f64);
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            let recorder = &recorder;
            s.spawn(move || {
                let start = recorder.is_enabled().then(Instant::now);
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
                if let Some(start) = start {
                    recorder.timing("parallel.chunk_ns", start.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Order-preserving parallel map over **mutable** items with an explicit
/// thread count: like [`par_map_threads`], but the mapper gets `&mut T`,
/// so work that rearranges its input in place (the radix resolver sorts
/// gathered slices this way) needs no defensive clone. Results land in
/// the slot of their input index; with `threads <= 1` the map runs
/// serially on the calling thread.
pub fn par_map_mut_threads<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let recorder = samplehist_obs::global();
    if recorder.is_enabled() {
        recorder.counter("parallel.par_map_mut.calls", 1);
        recorder.counter("parallel.tasks_spawned", items.len().div_ceil(chunk) as u64);
        recorder.gauge("parallel.threads", threads as f64);
    }
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        for (in_chunk, out_chunk) in items.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            let recorder = &recorder;
            s.spawn(move || {
                let start = recorder.is_enabled().then(Instant::now);
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
                if let Some(start) = start {
                    recorder.timing("parallel.chunk_ns", start.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Split `data` into at most `chunks` contiguous pieces of near-equal
/// length and map each piece, in parallel, to one result. The piece
/// boundaries depend only on `chunks` and `data.len()`, so the output is
/// deterministic; reduce it sequentially for bit-stable aggregates.
pub fn par_chunks_map<T, R, F>(threads: usize, data: &[T], chunks: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let chunks = chunks.clamp(1, data.len().max(1));
    let chunk_len = data.len().div_ceil(chunks);
    let pieces: Vec<&[T]> = data.chunks(chunk_len.max(1)).collect();
    par_map_threads(threads, &pieces, |piece| f(piece))
}

/// Parallel unstable sort with the default thread budget.
pub fn par_sort_unstable<T: Ord + Copy + Send + Sync>(v: &mut [T]) {
    par_sort_unstable_threads(num_threads(), v);
}

/// Minimum slice length before [`par_sort_unstable`] bothers spawning.
const PAR_SORT_MIN: usize = 1 << 15;

/// Parallel unstable sort with an explicit thread count: sort near-equal
/// chunks on scoped threads, then k-way merge through a loser heap.
/// Falls back to [`slice::sort_unstable`] for small inputs or one thread.
pub fn par_sort_unstable_threads<T: Ord + Copy + Send + Sync>(threads: usize, v: &mut [T]) {
    if threads <= 1 || v.len() < PAR_SORT_MIN {
        v.sort_unstable();
        return;
    }
    let chunk_len = v.len().div_ceil(threads);
    let recorder = samplehist_obs::global();
    if recorder.is_enabled() {
        recorder.counter("parallel.par_sort.calls", 1);
        // All runs but the last sort on spawned threads.
        recorder.counter("parallel.tasks_spawned", (v.len().div_ceil(chunk_len) - 1) as u64);
        recorder.gauge("parallel.threads", threads as f64);
    }
    std::thread::scope(|s| {
        let mut rest: &mut [T] = v;
        while rest.len() > chunk_len {
            let (head, tail) = rest.split_at_mut(chunk_len);
            let recorder = &recorder;
            s.spawn(move || {
                let start = recorder.is_enabled().then(Instant::now);
                head.sort_unstable();
                if let Some(start) = start {
                    recorder.timing("parallel.sort_chunk_ns", start.elapsed().as_nanos() as u64);
                }
            });
            rest = tail;
        }
        rest.sort_unstable();
    });
    // Merge the sorted runs in one pass. A binary heap of (head, run)
    // keyed on the run's current front gives O(n log t) with t = threads.
    let merge_start = recorder.is_enabled().then(Instant::now);
    let runs: Vec<&[T]> = v.chunks(chunk_len).collect();
    let mut merged: Vec<T> = Vec::with_capacity(v.len());
    let mut heads: Vec<usize> = vec![0; runs.len()];
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(T, usize)>> =
        std::collections::BinaryHeap::with_capacity(runs.len());
    for (ri, run) in runs.iter().enumerate() {
        if !run.is_empty() {
            heap.push(std::cmp::Reverse((run[0], ri)));
        }
    }
    while let Some(std::cmp::Reverse((val, ri))) = heap.pop() {
        merged.push(val);
        heads[ri] += 1;
        if let Some(&next) = runs[ri].get(heads[ri]) {
            heap.push(std::cmp::Reverse((next, ri)));
        }
    }
    v.copy_from_slice(&merged);
    if let Some(start) = merge_start {
        recorder.timing("parallel.sort_merge_ns", start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(par_map_threads(threads, &items, |&x| x * x), expect);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u64> = vec![];
        assert!(par_map_threads(4, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(4, &[9u64], |&x| x + 1), vec![10]);
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_preserves_order() {
        let expect_results: Vec<u64> = (0..103).map(|x| x * x).collect();
        let expect_items: Vec<u64> = (0..103).map(|x| x + 1).collect();
        for threads in [1, 2, 3, 8, 200] {
            let mut items: Vec<u64> = (0..103).collect();
            let results = par_map_mut_threads(threads, &mut items, |x| {
                let sq = *x * *x;
                *x += 1;
                sq
            });
            assert_eq!(results, expect_results, "threads = {threads}");
            assert_eq!(items, expect_items, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_mut_empty_and_single() {
        let mut empty: Vec<u64> = vec![];
        assert!(par_map_mut_threads(4, &mut empty, |&mut x| x).is_empty());
        let mut one = [9u64];
        assert_eq!(par_map_mut_threads(4, &mut one, |&mut x| x + 1), vec![10]);
    }

    #[test]
    fn par_chunks_map_covers_everything_once() {
        let data: Vec<u64> = (0..1000).collect();
        for chunks in [1, 3, 7, 16] {
            let sums = par_chunks_map(4, &data, chunks, |c| c.iter().sum::<u64>());
            assert!(sums.len() <= chunks.max(1));
            assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
        }
    }

    #[test]
    fn par_sort_matches_serial_sort() {
        // Deterministic pseudo-random data with heavy duplicates.
        let mut x = 0x1234_5678_9abc_def0u64;
        let data: Vec<i64> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 997) as i64 - 498
            })
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        for threads in [1, 2, 4, 7] {
            let mut got = data.clone();
            par_sort_unstable_threads(threads, &mut got);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_sort_small_input() {
        let mut v = vec![3i64, 1, 2];
        par_sort_unstable_threads(8, &mut v);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "parallel task panicked")]
    fn panics_propagate() {
        let _ = join(|| 1, || panic!("boom"));
    }

    #[test]
    fn fanout_is_reported_when_a_recorder_is_installed() {
        // Installs the process-global recorder: other tests in this
        // binary may also record into the sink, so assertions are
        // lower bounds on *our* traffic, checked via counter totals.
        use samplehist_obs::{MemorySink, PromSink, Recorder};
        use std::sync::Arc;
        let prom = Arc::new(PromSink::new());
        let mem = Arc::new(MemorySink::new());
        samplehist_obs::set_global(Recorder::with_sinks(vec![prom.clone(), mem.clone()]));

        let items: Vec<u64> = (0..1000).collect();
        let out = par_map_threads(4, &items, |&x| x + 1);
        assert_eq!(out.len(), 1000);
        assert!(prom.counter_value("parallel.tasks_spawned").unwrap_or(0) >= 4);
        assert!(prom.counter_value("parallel.par_map.calls").unwrap_or(0) >= 1);

        let mut v: Vec<i64> = (0..PAR_SORT_MIN as i64).rev().collect();
        par_sort_unstable_threads(4, &mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert!(prom.counter_value("parallel.par_sort.calls").unwrap_or(0) >= 1);
        let chunk_timings = mem
            .events()
            .iter()
            .filter(|e| e.name() == "parallel.chunk_ns" || e.name() == "parallel.sort_chunk_ns")
            .count();
        assert!(chunk_timings >= 4, "per-chunk timings recorded, got {chunk_timings}");
    }
}
