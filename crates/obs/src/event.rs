//! The structured-event model every sink consumes.

use crate::json;

/// A typed field value attached to events.
///
/// Deliberately small: everything the pipeline reports is an integer, a
/// float, a flag, or a short label. `From` impls exist for the common
/// source types so call sites read `span.field("blocks", g)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float (serialized as `null` when non-finite — JSON has no NaN).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Short label (route names, verdicts, methods).
    Str(String),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => json::write_escaped(s, out),
        }
    }
}

/// Fields attached to a span end: `(key, value)` in attachment order.
pub type FieldList = Vec<(&'static str, Value)>;

/// One observation flowing from an instrumentation point to the sinks.
///
/// Timestamps (`t_us`) are microseconds of **monotonic** time since the
/// owning [`crate::Recorder`] was created — wall-clock never enters the
/// model, so traces are immune to clock steps and the recorder never
/// perturbs anything the pipeline computes.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened.
    SpanStart {
        /// Recorder-unique span id (> 0).
        id: u64,
        /// Enclosing span, if any — this is what makes traces a tree.
        parent: Option<u64>,
        /// Instrumentation-point name, e.g. `"cvb.round"`.
        name: &'static str,
        /// Monotonic microseconds since the recorder's epoch.
        t_us: u64,
    },
    /// A span closed; carries its duration and accumulated fields.
    SpanEnd {
        /// Id of the matching [`Event::SpanStart`].
        id: u64,
        /// Same name as the start event.
        name: &'static str,
        /// Monotonic microseconds since the recorder's epoch.
        t_us: u64,
        /// Monotonic nanoseconds between start and end.
        dur_ns: u64,
        /// Fields attached while the span was open.
        fields: FieldList,
    },
    /// A monotonically accumulating count (pages read, tasks spawned, …).
    Counter {
        /// Metric name.
        name: &'static str,
        /// Amount to add.
        delta: u64,
        /// Monotonic microseconds since the recorder's epoch.
        t_us: u64,
    },
    /// A point-in-time level (thread budget, sampling rate, …).
    Gauge {
        /// Metric name.
        name: &'static str,
        /// Current value.
        value: f64,
        /// Monotonic microseconds since the recorder's epoch.
        t_us: u64,
    },
    /// One duration observation, aggregated by sinks into log-scale
    /// timing histograms.
    Timing {
        /// Metric name.
        name: &'static str,
        /// Observed nanoseconds.
        nanos: u64,
        /// Monotonic microseconds since the recorder's epoch.
        t_us: u64,
    },
    /// One value observation for a dynamic series (q-error of one
    /// estimate, say), aggregated by sinks into per-`(name, label)`
    /// quantile sketches.
    Observation {
        /// Metric name (the static instrumentation point).
        name: &'static str,
        /// Dynamic series label, e.g. `"orders.amount"` — the one event
        /// field whose cardinality is data-driven, so it is owned.
        label: String,
        /// Observed value.
        value: f64,
        /// Monotonic microseconds since the recorder's epoch.
        t_us: u64,
    },
}

impl Event {
    /// The discriminant as it appears in the JSONL `type` key.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanStart { .. } => "span_start",
            Event::SpanEnd { .. } => "span_end",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Timing { .. } => "timing",
            Event::Observation { .. } => "observation",
        }
    }

    /// The instrumentation-point / metric name.
    pub fn name(&self) -> &'static str {
        match self {
            Event::SpanStart { name, .. }
            | Event::SpanEnd { name, .. }
            | Event::Counter { name, .. }
            | Event::Gauge { name, .. }
            | Event::Timing { name, .. }
            | Event::Observation { name, .. } => name,
        }
    }

    /// Serialize as one JSON object (no trailing newline). The schema is
    /// fixed per `type` and round-trips through [`crate::json::parse`]:
    ///
    /// ```text
    /// {"type":"span_start","id":2,"parent":1,"name":"cvb.round","t_us":17}
    /// {"type":"span_end","id":2,"name":"cvb.round","t_us":420,"dur_ns":403000,"fields":{"round":1}}
    /// {"type":"counter","name":"storage.pages_read","delta":40,"t_us":63}
    /// {"type":"gauge","name":"parallel.threads","value":4,"t_us":70}
    /// {"type":"timing","name":"parallel.chunk_ns","nanos":812,"t_us":75}
    /// {"type":"observation","name":"service.qerror","label":"orders.amount","value":1.5,"t_us":80}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"type\":\"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            Event::SpanStart { id, parent, name, t_us } => {
                out.push_str(&format!(",\"id\":{id},\"parent\":"));
                match parent {
                    Some(p) => out.push_str(&p.to_string()),
                    None => out.push_str("null"),
                }
                out.push_str(",\"name\":");
                json::write_escaped(name, &mut out);
                out.push_str(&format!(",\"t_us\":{t_us}"));
            }
            Event::SpanEnd { id, name, t_us, dur_ns, fields } => {
                out.push_str(&format!(",\"id\":{id},\"name\":"));
                json::write_escaped(name, &mut out);
                out.push_str(&format!(",\"t_us\":{t_us},\"dur_ns\":{dur_ns},\"fields\":{{"));
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_escaped(key, &mut out);
                    out.push(':');
                    value.write_json(&mut out);
                }
                out.push('}');
            }
            Event::Counter { name, delta, t_us } => {
                out.push_str(",\"name\":");
                json::write_escaped(name, &mut out);
                out.push_str(&format!(",\"delta\":{delta},\"t_us\":{t_us}"));
            }
            Event::Gauge { name, value, t_us } => {
                out.push_str(",\"name\":");
                json::write_escaped(name, &mut out);
                out.push_str(",\"value\":");
                Value::F64(*value).write_json(&mut out);
                out.push_str(&format!(",\"t_us\":{t_us}"));
            }
            Event::Timing { name, nanos, t_us } => {
                out.push_str(",\"name\":");
                json::write_escaped(name, &mut out);
                out.push_str(&format!(",\"nanos\":{nanos},\"t_us\":{t_us}"));
            }
            Event::Observation { name, label, value, t_us } => {
                out.push_str(",\"name\":");
                json::write_escaped(name, &mut out);
                out.push_str(",\"label\":");
                json::write_escaped(label, &mut out);
                out.push_str(",\"value\":");
                Value::F64(*value).write_json(&mut out);
                out.push_str(&format!(",\"t_us\":{t_us}"));
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_names() {
        let e = Event::Counter { name: "x", delta: 1, t_us: 0 };
        assert_eq!(e.kind(), "counter");
        assert_eq!(e.name(), "x");
        let e = Event::SpanStart { id: 1, parent: None, name: "s", t_us: 0 };
        assert_eq!(e.kind(), "span_start");
    }

    #[test]
    fn jsonl_shape() {
        let e = Event::SpanEnd {
            id: 2,
            name: "cvb.round",
            t_us: 9,
            dur_ns: 100,
            fields: vec![("round", 1usize.into()), ("verdict", "accept".into())],
        };
        let line = e.to_jsonl();
        assert!(line.starts_with("{\"type\":\"span_end\""), "{line}");
        assert!(line.contains("\"fields\":{\"round\":1,\"verdict\":\"accept\"}"), "{line}");
        assert!(line.ends_with('}'));
    }

    #[test]
    fn observation_carries_its_dynamic_label() {
        let e = Event::Observation {
            name: "service.qerror",
            label: "orders.\"a\"".into(),
            value: 1.5,
            t_us: 3,
        };
        assert_eq!(e.kind(), "observation");
        assert_eq!(e.name(), "service.qerror");
        let line = e.to_jsonl();
        assert!(line.contains("\"label\":\"orders.\\\"a\\\"\""), "{line}");
        assert!(line.contains("\"value\":1.5"), "{line}");
        crate::json::parse(&line).expect("valid json");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::Gauge { name: "g", value: f64::NAN, t_us: 0 };
        assert!(e.to_jsonl().contains("\"value\":null"));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }
}
