//! # samplehist-obs
//!
//! Dependency-free observability for the sampling/ANALYZE pipeline:
//! hierarchical **spans** with monotonic timings, **counters** and
//! **gauges**, log-scale **timing histograms**, and a pluggable
//! [`Sink`] trait with three implementations —
//!
//! * [`MemorySink`] — in-memory event buffer for tests and summaries;
//! * [`JsonlSink`] — one structured JSON event per line (the trace
//!   format `histstat` dumps and CI validates);
//! * [`PromSink`] — aggregating Prometheus-style text exposition
//!   (hygiene helpers and a format validator live in [`prom`]);
//! * [`FlightRecorder`] — a bounded ring buffer of the most recent
//!   events, for post-incident dumps.
//!
//! Value distributions (q-errors, ratios) are recorded with
//! [`Recorder::observe`] and aggregated into mergeable, fixed-size
//! [`QuantileSketch`]es (p50/p95/p99/max).
//!
//! The workspace builds offline, so there is no `tracing`/`metrics`
//! dependency; this crate is the small slice of that ecosystem the
//! pipeline needs, on `std` only.
//!
//! ## Recording model
//!
//! All call sites go through a [`Recorder`] — a cheap, cloneable,
//! thread-safe handle. The default handle is **disabled** and every
//! operation on it is a no-op costing one branch, so instrumentation
//! stays in the code unconditionally. Pipeline entry points take an
//! explicit `&Recorder` (`cvb::run_traced`, `engine::analyze_traced`);
//! library-internal layers (radix routing, the parallel primitives, the
//! storage samplers' default construction) fall back to the process-wide
//! [`global`] recorder, which a binary installs once with
//! [`set_global`].
//!
//! Recording is **passive**: it never touches an RNG stream and never
//! feeds back into any computation, so an instrumented run produces
//! bit-identical results to a bare one.
//!
//! ```
//! use std::sync::Arc;
//! use samplehist_obs::{MemorySink, Recorder};
//!
//! let sink = Arc::new(MemorySink::new());
//! let rec = Recorder::new(sink.clone());
//! {
//!     let mut span = rec.span("analyze");
//!     span.field("rows", 20_000u64);
//!     rec.counter("storage.pages_read", 200);
//!     let round = span.child("cvb.round");
//!     drop(round);
//! }
//! assert_eq!(sink.events().len(), 5); // 2 starts, 2 ends, 1 counter
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod flight;
pub mod json;
pub mod prom;
mod quantile;
mod recorder;
mod sink;
mod timing;

pub use event::{Event, FieldList, Value};
pub use flight::FlightRecorder;
pub use quantile::QuantileSketch;
pub use recorder::{Recorder, Span};
pub use sink::{JsonlSink, MemorySink, PromSink, Sink};
pub use timing::LogHistogram;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// Install the process-wide recorder used by call sites that have no
/// natural place to thread a handle through (the parallel primitives,
/// radix route selection, …). Returns `false` if one was already
/// installed (the first installation wins, matching `log::set_logger`).
pub fn set_global(recorder: Recorder) -> bool {
    if GLOBAL.set(recorder).is_ok() {
        GLOBAL_ENABLED.store(true, Ordering::SeqCst);
        true
    } else {
        false
    }
}

/// The process-wide recorder: disabled until [`set_global`] installs
/// one. The disabled path is a single relaxed atomic load, so deep
/// library code can call this unconditionally.
#[inline]
pub fn global() -> Recorder {
    if !GLOBAL_ENABLED.load(Ordering::Relaxed) {
        Recorder::disabled()
    } else {
        GLOBAL.get().cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn global_starts_disabled_then_installs_once() {
        assert!(!global().is_enabled(), "default global must be a no-op");
        let sink = Arc::new(MemorySink::new());
        assert!(set_global(Recorder::new(sink.clone())));
        assert!(global().is_enabled());
        global().counter("after_install", 1);
        assert_eq!(sink.events().len(), 1);
        // Second installation is refused; the first recorder stays.
        assert!(!set_global(Recorder::disabled()));
        assert!(global().is_enabled());
    }
}
