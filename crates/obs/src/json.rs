//! Minimal JSON support: string escaping for the JSONL writer and a small
//! recursive-descent parser used by the schema tests and by `histstat
//! --check` to validate emitted traces. The workspace is offline (no
//! serde), so the ~subset of JSON the sinks emit is handled here directly.

use std::collections::BTreeMap;

/// Write `s` as a JSON string literal (with quotes) into `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value. Numbers are kept as `f64` — every number the
/// sinks emit is exactly representable or only read approximately.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order preserved by the map's ordering).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parse one complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid; find the char at this offset).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let mut out = String::new();
        write_escaped("a\"b\\c\nd\te\u{1}", &mut out);
        let parsed = parse(&out).expect("parses");
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"hé\"").unwrap().as_str(), Some("hé"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": null}, "x"], "c": {"d": false}}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Json::as_bool), Some(false));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert!(items[1].get("b").is_some_and(Json::is_null));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }
}
