//! Prometheus text-exposition hygiene: name sanitization, escaping, and
//! a validator for the format the workspace's endpoints serve.
//!
//! The exposition rules this module encodes (text format 0.0.4):
//!
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`; label names match
//!   `[a-zA-Z_][a-zA-Z0-9_]*`;
//! * label values escape `\` as `\\`, `"` as `\"`, and newline as `\n`;
//!   `# HELP` text escapes `\` and newline;
//! * `# HELP` and `# TYPE` appear at most once per metric family, before
//!   any of its samples;
//! * histogram families add `_bucket`/`_sum`/`_count` samples, summary
//!   families add `quantile`-labeled and `_sum`/`_count` samples.
//!
//! [`validate_exposition`] checks all of the above plus duplicate-series
//! detection; the CI metrics-endpoint smoke step and `statserve`'s
//! self-check run every served `/metrics` body through it.

use std::collections::{BTreeMap, BTreeSet};

/// Map an event name onto a legal Prometheus metric name: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit
/// gets an `_` prefix (names may not start with a digit).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == ':' || c == '_' { c } else { '_' })
        .collect();
    if out.is_empty() {
        out.push('_');
    }
    if out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escape a label value for `name{label="<here>"}`: backslash, double
/// quote, and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text: backslash and newline (quotes are legal there).
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// The base family of a sample name: `_bucket`/`_sum`/`_count` suffixes
/// belong to their histogram/summary family.
fn family_of(sample_name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = sample_name.strip_suffix(suffix) {
            return stripped;
        }
    }
    sample_name
}

/// Parse one sample line into `(name, label_block, value)`. The label
/// block (without braces) is returned raw for duplicate detection;
/// quoting is validated here.
fn parse_sample(line: &str) -> Result<(String, String, f64), String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| format!("sample has no value: {line:?}"))?;
    let name = &line[..name_end];
    if !is_valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(inner) = rest.strip_prefix('{') {
        let close = find_label_block_end(inner)
            .ok_or_else(|| format!("unterminated label block: {line:?}"))?;
        let block = &inner[..close];
        validate_label_block(block).map_err(|e| format!("{e} in {line:?}"))?;
        (block.to_string(), &inner[close + 1..])
    } else {
        (String::new(), rest)
    };
    let mut parts = rest.split_whitespace();
    let value = parts.next().ok_or_else(|| format!("sample has no value: {line:?}"))?;
    let value =
        parse_prom_value(value).ok_or_else(|| format!("bad value {value:?} in {line:?}"))?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>().map_err(|_| format!("bad timestamp {ts:?} in {line:?}"))?;
    }
    if parts.next().is_some() {
        return Err(format!("trailing tokens after timestamp: {line:?}"));
    }
    Ok((name.to_string(), labels, value))
}

/// Index of the `}` closing a label block (respecting `\"` escapes
/// inside quoted values), given the text after the opening `{`.
fn find_label_block_end(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Validate `k1="v1",k2="v2"` (an empty block is legal).
fn validate_label_block(block: &str) -> Result<(), String> {
    let mut rest = block;
    let mut seen = BTreeSet::new();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = &rest[..eq];
        if !is_valid_label_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        if !seen.insert(key.to_string()) {
            return Err(format!("duplicate label {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label value for {key:?} not quoted"))?;
        // Scan the quoted value, honoring escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("bad escape '\\{c}' in label {key:?}"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("unterminated value for label {key:?}"))?;
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return Err("trailing comma in label block".to_string());
            }
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(())
}

fn parse_prom_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse::<f64>().ok(),
    }
}

/// Validate a whole text exposition (see the module docs for the rules
/// enforced). Returns the first violation found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    let mut series: BTreeSet<(String, String)> = BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !is_valid_metric_name(name) {
                return Err(format!("line {lineno}: invalid TYPE name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {lineno}: unknown TYPE {kind:?} for {name:?}"));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name:?}"));
            }
            if sampled.contains(name) {
                return Err(format!("line {lineno}: TYPE for {name:?} after its samples"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !is_valid_metric_name(name) {
                return Err(format!("line {lineno}: invalid HELP name {name:?}"));
            }
            if !helps.insert(name.to_string()) {
                return Err(format!("line {lineno}: duplicate HELP for {name:?}"));
            }
            if sampled.contains(name) {
                return Err(format!("line {lineno}: HELP for {name:?} after its samples"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let (name, labels, _value) =
            parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let family = family_of(&name).to_string();
        // A TYPE may be declared on the family or (counter convention
        // in this workspace) on the literal sample name.
        if let Some(kind) = types.get(&family).or_else(|| types.get(&name)) {
            if kind == "histogram"
                && name == family
                && !labels.split(',').any(|l| l.starts_with("le="))
            {
                return Err(format!("line {lineno}: bare sample {name:?} of histogram family"));
            }
        }
        sampled.insert(family.clone());
        sampled.insert(name.clone());
        if !series.insert((name.clone(), labels)) {
            return Err(format!("line {lineno}: duplicate series for {name:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_fixes_dots_and_leading_digits() {
        assert_eq!(sanitize_metric_name("cvb.round"), "cvb_round");
        assert_eq!(sanitize_metric_name("a:b-c d"), "a:b_c_d");
        assert_eq!(sanitize_metric_name("99th.pct"), "_99th_pct");
        assert_eq!(sanitize_metric_name(""), "_");
        assert!(is_valid_metric_name(&sanitize_metric_name("7\"quoted\".name")));
    }

    #[test]
    fn escapes_cover_the_reserved_characters() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(escape_help("back\\slash\nnl"), "back\\\\slash\\nnl");
    }

    #[test]
    fn validator_accepts_well_formed_families() {
        let text = "\
# HELP app_requests_total requests served\n\
# TYPE app_requests_total counter\n\
app_requests_total 7\n\
# TYPE app_qerror summary\n\
app_qerror{col=\"orders.a \\\"q\\\"\",quantile=\"0.5\"} 1.25\n\
app_qerror{col=\"orders.a \\\"q\\\"\",quantile=\"0.99\"} 3.5\n\
app_qerror_count{col=\"orders.a \\\"q\\\"\"} 12\n\
# TYPE app_latency_seconds histogram\n\
app_latency_seconds_bucket{le=\"0.1\"} 3\n\
app_latency_seconds_bucket{le=\"+Inf\"} 4\n\
app_latency_seconds_sum 0.5\n\
app_latency_seconds_count 4\n";
        validate_exposition(text).expect("valid exposition");
    }

    #[test]
    fn validator_rejects_the_failure_modes_the_hygiene_fix_targets() {
        assert!(validate_exposition("bad.name 1\n").is_err(), "dotted name");
        assert!(
            validate_exposition("# TYPE x counter\n# TYPE x counter\nx 1\n").is_err(),
            "duplicate TYPE"
        );
        assert!(validate_exposition("x 1\n# TYPE x counter\n").is_err(), "TYPE after sample");
        assert!(validate_exposition("x{l=\"unterminated} 1\n").is_err(), "open quote");
        assert!(validate_exposition("x{l=\"a\"} 1\nx{l=\"a\"} 2\n").is_err(), "duplicate series");
        assert!(validate_exposition("x{2bad=\"a\"} 1\n").is_err(), "bad label name");
        assert!(validate_exposition("x notanumber\n").is_err(), "bad value");
        validate_exposition("x{l=\"a\"} 1\nx{l=\"b\"} 2\n").expect("distinct labels are fine");
    }
}
