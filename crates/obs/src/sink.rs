//! Sinks: where recorded events go.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

use crate::event::Event;
use crate::prom::{escape_help, escape_label_value, sanitize_metric_name};
use crate::quantile::QuantileSketch;
use crate::timing::LogHistogram;

/// A destination for recorded events. Implementations must serialize
/// internally ([`crate::Recorder`] calls `record` from any thread).
pub trait Sink: Send + Sync {
    /// Consume one event.
    fn record(&self, event: &Event);

    /// Flush buffered output, if any.
    fn flush(&self) {}
}

/// Test/introspection sink: keeps every event in memory, in arrival
/// order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

/// Structured-event sink: one JSON object per line (JSONL), in the
/// schema of [`Event::to_jsonl`]. Write errors are deliberately
/// swallowed — observability must never take the pipeline down.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer (a `File`, a `Vec<u8>` in tests, …).
    pub fn new(out: W) -> Self {
        Self { out: Mutex::new(out) }
    }

    /// Run `f` with exclusive access to the underlying writer (tests use
    /// this to read back a `Vec<u8>` buffer).
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        f(&mut self.out.lock().expect("sink lock"))
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let line = event.to_jsonl();
        let mut out = self.out.lock().expect("sink lock");
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("sink lock").flush();
    }
}

#[derive(Debug, Default)]
struct PromState {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    timings: BTreeMap<&'static str, LogHistogram>,
    spans: BTreeMap<&'static str, LogHistogram>,
    /// Per-`(name, label)` value sketches fed by [`Event::Observation`].
    quantiles: BTreeMap<(&'static str, String), QuantileSketch>,
}

/// Aggregating sink rendering Prometheus-style text exposition:
/// counters and gauges keep running values; timings and span durations
/// are folded into [`LogHistogram`]s and rendered as cumulative
/// histogram series. There is no HTTP listener here — callers embed
/// [`PromSink::render`] wherever their scrape endpoint lives.
#[derive(Debug, Default)]
pub struct PromSink {
    state: Mutex<PromState>,
}

/// Prometheus metric names allow `[a-zA-Z_:][a-zA-Z0-9_:]*`; dotted
/// event names become underscored and a leading digit gets prefixed
/// (full rules in [`crate::prom::sanitize_metric_name`]).
fn sanitize(name: &str) -> String {
    sanitize_metric_name(name)
}

impl PromSink {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of counter `name`, if it has ever been bumped.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.state.lock().expect("sink lock").counters.get(name).copied()
    }

    /// Snapshot of all counters, name-sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let state = self.state.lock().expect("sink lock");
        state.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// Snapshot of all gauges, name-sorted.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        let state = self.state.lock().expect("sink lock");
        state.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// Per-span-name duration statistics, name-sorted.
    pub fn span_durations(&self) -> Vec<(String, LogHistogram)> {
        let state = self.state.lock().expect("sink lock");
        state.spans.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    /// Per-timing-name statistics, name-sorted.
    pub fn timings(&self) -> Vec<(String, LogHistogram)> {
        let state = self.state.lock().expect("sink lock");
        state.timings.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    /// Per-`(name, label)` observation sketches, key-sorted.
    pub fn observations(&self) -> Vec<((String, String), QuantileSketch)> {
        let state = self.state.lock().expect("sink lock");
        state.quantiles.iter().map(|((n, l), v)| ((n.to_string(), l.clone()), v.clone())).collect()
    }

    /// Prometheus text exposition of everything aggregated so far.
    ///
    /// Hygiene guarantees (checked by
    /// [`crate::prom::validate_exposition`] in the sink's tests and the
    /// CI metrics smoke): every family gets `# HELP` and `# TYPE`
    /// exactly once, before its samples; metric names are sanitized
    /// ([`crate::prom::sanitize_metric_name`]); label values and help
    /// text are escaped. Raw names that sanitize to the same family are
    /// merged (counters/histograms sum, gauges keep the name-sorted
    /// last), never emitted twice.
    pub fn render(&self) -> String {
        let state = self.state.lock().expect("sink lock");
        let mut out = String::new();

        let mut counters: BTreeMap<String, (u64, &'static str)> = BTreeMap::new();
        for (name, value) in &state.counters {
            let e = counters.entry(sanitize(name)).or_insert((0, name));
            e.0 += value;
        }
        for (name, (value, raw)) in &counters {
            let family = format!("samplehist_{name}_total");
            out.push_str(&format!("# HELP {family} Counter \"{}\".\n", escape_help(raw)));
            out.push_str(&format!("# TYPE {family} counter\n"));
            out.push_str(&format!("{family} {value}\n"));
        }

        let mut gauges: BTreeMap<String, (f64, &'static str)> = BTreeMap::new();
        for (name, value) in &state.gauges {
            gauges.insert(sanitize(name), (*value, name));
        }
        for (name, (value, raw)) in &gauges {
            let family = format!("samplehist_{name}");
            out.push_str(&format!("# HELP {family} Gauge \"{}\".\n", escape_help(raw)));
            out.push_str(&format!("# TYPE {family} gauge\n"));
            out.push_str(&format!("{family} {value}\n"));
        }

        // Timings and span durations share one rendering; colliding
        // sanitized names (including a timing and a span with the same
        // name) merge into a single histogram family.
        let mut hists: BTreeMap<String, (LogHistogram, &'static str)> = BTreeMap::new();
        for (name, hist) in state.timings.iter().chain(state.spans.iter()) {
            match hists.entry(sanitize(name)) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert((hist.clone(), name));
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().0.merge(hist);
                }
            }
        }
        for (name, (hist, raw)) in &hists {
            render_histogram(&mut out, name, raw, hist);
        }

        // Observations: one summary family per metric name, one series
        // per dynamic label.
        let mut summaries: BTreeMap<String, (BTreeMap<&str, QuantileSketch>, &'static str)> =
            BTreeMap::new();
        for ((name, label), sketch) in &state.quantiles {
            let e = summaries.entry(sanitize(name)).or_insert_with(|| (BTreeMap::new(), name));
            match e.0.entry(label.as_str()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(sketch.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge(sketch);
                }
            }
        }
        for (name, (by_label, raw)) in &summaries {
            let family = format!("samplehist_{name}");
            out.push_str(&format!("# HELP {family} Observations \"{}\".\n", escape_help(raw)));
            out.push_str(&format!("# TYPE {family} summary\n"));
            for (label, sketch) in by_label {
                let series = escape_label_value(label);
                for (q, v) in [(0.5, sketch.p50()), (0.95, sketch.p95()), (0.99, sketch.p99())] {
                    if let Some(v) = v {
                        out.push_str(&format!(
                            "{family}{{series=\"{series}\",quantile=\"{q}\"}} {v}\n"
                        ));
                    }
                }
                out.push_str(&format!(
                    "{family}_count{{series=\"{series}\"}} {}\n",
                    sketch.count()
                ));
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, raw: &str, hist: &LogHistogram) {
    let family = format!("samplehist_{name}_seconds");
    out.push_str(&format!("# HELP {family} Duration histogram \"{}\".\n", escape_help(raw)));
    out.push_str(&format!("# TYPE {family} histogram\n"));
    let mut cumulative = 0u64;
    for (upper_ns, count) in hist.buckets() {
        cumulative += count;
        let le = upper_ns as f64 / 1e9;
        out.push_str(&format!("{family}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{family}_bucket{{le=\"+Inf\"}} {}\n", hist.count()));
    out.push_str(&format!("{family}_sum {}\n", hist.sum() as f64 / 1e9));
    out.push_str(&format!("{family}_count {}\n", hist.count()));
}

impl Sink for PromSink {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("sink lock");
        match event {
            Event::Counter { name, delta, .. } => {
                *state.counters.entry(name).or_insert(0) += delta;
            }
            Event::Gauge { name, value, .. } => {
                state.gauges.insert(name, *value);
            }
            Event::Timing { name, nanos, .. } => {
                state.timings.entry(name).or_default().observe(*nanos);
            }
            Event::SpanEnd { name, dur_ns, .. } => {
                state.spans.entry(name).or_default().observe(*dur_ns);
            }
            Event::Observation { name, label, value, .. } => {
                state.quantiles.entry((name, label.clone())).or_default().observe(*value);
            }
            Event::SpanStart { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn memory_sink_keeps_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&Event::Counter { name: "a", delta: 1, t_us: 0 });
        sink.record(&Event::Counter { name: "b", delta: 2, t_us: 1 });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name(), "a");
        assert_eq!(events[1].name(), "b");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::<u8>::new());
        sink.record(&Event::Counter { name: "x", delta: 1, t_us: 0 });
        sink.record(&Event::Gauge { name: "y", value: 0.5, t_us: 1 });
        let text = sink.with_writer(|w| String::from_utf8(w.clone()).expect("utf-8"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("valid json");
        }
    }

    #[test]
    fn prom_sink_aggregates_and_renders() {
        let sink = PromSink::new();
        sink.record(&Event::Counter { name: "storage.pages_read", delta: 3, t_us: 0 });
        sink.record(&Event::Counter { name: "storage.pages_read", delta: 4, t_us: 1 });
        sink.record(&Event::Gauge { name: "parallel.threads", value: 2.0, t_us: 2 });
        sink.record(&Event::Timing { name: "chunk", nanos: 1_000, t_us: 3 });
        sink.record(&Event::SpanEnd {
            id: 1,
            name: "cvb.round",
            t_us: 4,
            dur_ns: 2_000_000,
            fields: Vec::new(),
        });
        sink.record(&Event::Observation {
            name: "service.qerror",
            label: "orders.\"amount\"".into(),
            value: 1.5,
            t_us: 5,
        });
        sink.record(&Event::Observation {
            name: "service.qerror",
            label: "orders.\"amount\"".into(),
            value: 3.0,
            t_us: 6,
        });
        assert_eq!(sink.counter_value("storage.pages_read"), Some(7));
        let text = sink.render();
        assert!(text.contains("samplehist_storage_pages_read_total 7"), "{text}");
        assert!(text.contains("samplehist_parallel_threads 2"), "{text}");
        assert!(text.contains("samplehist_cvb_round_seconds_count 1"), "{text}");
        assert!(text.contains("le=\"+Inf\"}} 1") || text.contains("le=\"+Inf\"} 1"), "{text}");
        assert!(
            text.contains(
                "samplehist_service_qerror{series=\"orders.\\\"amount\\\"\",quantile=\"0.5\"}"
            ),
            "{text}"
        );
        assert!(
            text.contains("samplehist_service_qerror_count{series=\"orders.\\\"amount\\\"\"} 2"),
            "{text}"
        );
        crate::prom::validate_exposition(&text).expect("render must be valid exposition");
        let obs = sink.observations();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].1.count(), 2);
    }

    #[test]
    fn render_emits_help_and_type_exactly_once_per_family() {
        let sink = PromSink::new();
        // A timing and a span end sharing a name must merge, not emit
        // two `# TYPE` lines for the same family.
        sink.record(&Event::Timing { name: "cvb.round", nanos: 10, t_us: 0 });
        sink.record(&Event::SpanEnd {
            id: 1,
            name: "cvb.round",
            t_us: 1,
            dur_ns: 20,
            fields: Vec::new(),
        });
        let text = sink.render();
        let type_lines =
            text.lines().filter(|l| l.starts_with("# TYPE samplehist_cvb_round_seconds ")).count();
        assert_eq!(type_lines, 1, "{text}");
        assert!(text.contains("samplehist_cvb_round_seconds_count 2"), "{text}");
        crate::prom::validate_exposition(&text).expect("valid exposition");
    }

    #[test]
    fn sanitizer_maps_dots_to_underscores() {
        assert_eq!(sanitize("cvb.round"), "cvb_round");
        assert_eq!(sanitize("a:b-c d"), "a:b_c_d");
        assert_eq!(sanitize("9lives"), "_9lives");
    }
}
