//! A bounded ring-buffer "flight recorder" of recent events.
//!
//! Production services rarely want a full trace — they want the last
//! few thousand events *when something goes wrong*. [`FlightRecorder`]
//! is a fixed-capacity ring any [`Recorder`](crate::Recorder) can fan
//! into: writers claim a slot with one atomic `fetch_add` and touch
//! only that slot's lock, so concurrent recording never serializes on a
//! global buffer lock (the crate forbids `unsafe`, so "lock-free" here
//! means lock-free slot *assignment*; the per-slot mutexes are
//! uncontended except when a writer laps a reader).
//!
//! Snapshots ([`FlightRecorder::recent`]) are best-effort under
//! concurrent writes — exactly what a post-incident dump needs — and
//! exact once writers quiesce.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;
use crate::sink::Sink;

/// Bounded ring buffer of the most recent events; see the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<Event>>]>,
    /// Total events ever recorded; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { slots: (0..capacity).map(|_| Mutex::new(None)).collect(), cursor: AtomicU64::new(0) }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        (self.recorded() as usize).min(self.capacity())
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Snapshot of the retained events, oldest first. Best-effort while
    /// writers are active (a slot being overwritten mid-snapshot shows
    /// either its old or its new event); exact when they are not.
    pub fn recent(&self) -> Vec<Event> {
        let total = self.recorded();
        let cap = self.capacity() as u64;
        let start = total.saturating_sub(cap);
        (start..total)
            .filter_map(|seq| {
                self.slots[(seq % cap) as usize].lock().expect("flight slot lock").clone()
            })
            .collect()
    }
}

impl Sink for FlightRecorder {
    fn record(&self, event: &Event) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.capacity() as u64) as usize;
        *self.slots[slot].lock().expect("flight slot lock") = Some(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &'static str, delta: u64) -> Event {
        Event::Counter { name, delta, t_us: 0 }
    }

    #[test]
    fn retains_only_the_most_recent_events() {
        let ring = FlightRecorder::new(3);
        assert!(ring.is_empty());
        for i in 0..5u64 {
            ring.record(&counter("n", i));
        }
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.len(), 3);
        let deltas: Vec<u64> = ring
            .recent()
            .iter()
            .map(|e| match e {
                Event::Counter { delta, .. } => *delta,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(deltas, vec![2, 3, 4], "oldest first, oldest two evicted");
    }

    #[test]
    fn capacity_floors_at_one() {
        let ring = FlightRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(&counter("a", 1));
        ring.record(&counter("a", 2));
        assert_eq!(ring.recent().len(), 1);
    }

    #[test]
    fn concurrent_writers_never_lose_the_count() {
        let ring = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..100 {
                        ring.record(&counter("n", i));
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), 400);
        assert_eq!(ring.recent().len(), 64, "ring stays full once lapped");
    }
}
