//! A fixed-size, mergeable log-scale quantile sketch for ratio metrics.
//!
//! [`LogHistogram`](crate::LogHistogram) answers "how long did it take"
//! for integer nanoseconds; [`QuantileSketch`] answers "how wrong was
//! it" for `f64` ratios ≥ 1 — q-errors, compression ratios, relative
//! blow-ups. The design constraints come from the accuracy-telemetry
//! plane that consumes it:
//!
//! * **Fixed size** — a flat bucket array (no allocation after
//!   construction), so a sketch can live inside a catalog snapshot and
//!   be observed from any thread behind a plain mutex.
//! * **Deterministic, order-independent merge** — buckets are
//!   count-additive and the max is a commutative/associative fold, so
//!   folding per-thread sketches in any order (or observing in any
//!   interleaving) yields byte-identical state. This is what keeps the
//!   service's `dump()` bit-identical at 1 and 4 drain threads.
//! * **No libm** — bucketing reads the IEEE-754 exponent and the top
//!   mantissa bits directly, so the same value lands in the same bucket
//!   on every platform and build.
//!
//! Resolution: each power-of-two octave is split into
//! 2^[`SUB_BITS`] = 16 linear sub-buckets, so a reported quantile
//! overstates the true one by at most ~6.25% — far tighter than the
//! factor-of-two timing histogram, as befits a metric whose interesting
//! values live between 1 and 10.

/// Mantissa bits used for sub-bucketing (16 sub-buckets per octave).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Octaves covered: values in `[1, 2^32)` resolve; larger ones clamp
/// into the overflow bucket.
const OCTAVES: usize = 32;
/// Underflow bucket (≤ 1) + resolved octaves + overflow bucket.
const BUCKETS: usize = 1 + OCTAVES * SUBS + 1;

/// Mergeable log-scale quantile sketch over `f64` values ≥ 1.
///
/// Values below 1 (a q-error can't be) clamp into the underflow bucket
/// with upper bound 1; values at or above 2^32 clamp into the overflow
/// bucket, whose reported quantile is the tracked max. NaN observations
/// are ignored.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    counts: [u64; BUCKETS],
    count: u64,
    /// Largest observation; `f64::max` is commutative and associative
    /// (NaN never enters), so merges stay order-independent.
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self { counts: [0; BUCKETS], count: 0, max: f64::NEG_INFINITY }
    }

    /// Bucket index of `v`: IEEE-754 exponent selects the octave, the
    /// top [`SUB_BITS`] mantissa bits the sub-bucket. Pure bit
    /// arithmetic — bit-stable across platforms.
    fn bucket(v: f64) -> usize {
        if v.is_nan() || v <= 1.0 {
            return 0; // ≤ 1 (and -0.0, negatives: a ratio can't be)
        }
        if !v.is_finite() {
            return BUCKETS - 1;
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if exp >= OCTAVES as i64 {
            return BUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        1 + exp as usize * SUBS + sub
    }

    /// Exclusive upper bound of bucket `i`, reconstructed from the same
    /// bit layout [`Self::bucket`] decomposes.
    fn upper_bound(i: usize) -> f64 {
        if i == 0 {
            return 1.0;
        }
        if i >= BUCKETS - 1 {
            return f64::INFINITY;
        }
        let b = (i - 1) as u64;
        let exp = b / SUBS as u64;
        let sub = b % SUBS as u64;
        // `+` (not `|`) so sub + 1 == SUBS carries into the exponent,
        // yielding exactly the next octave's lower edge.
        f64::from_bits(((exp + 1023) << 52) + ((sub + 1) << (52 - SUB_BITS)))
    }

    /// Record one observation. NaN is ignored (a broken ratio must not
    /// poison the max fold).
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self`. Count-additive and max-commutative, so
    /// any merge order over any partition of the observations produces
    /// identical state.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Upper bound of the bucket holding the `q`-quantile (`q` in
    /// `[0,1]`); `None` when empty. Overstates the true quantile by at
    /// most one sub-bucket (~6.25% relative); an overflow-bucket hit
    /// reports the tracked max instead of infinity.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i == BUCKETS - 1 { self.max } else { Self::upper_bound(i) });
            }
        }
        Some(self.max)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact() {
        assert_eq!(QuantileSketch::bucket(0.0), 0);
        assert_eq!(QuantileSketch::bucket(1.0), 0);
        assert_eq!(QuantileSketch::bucket(f64::NEG_INFINITY), 0);
        assert_eq!(QuantileSketch::bucket(1.0 + 1.0 / 16.0), 2, "second sub-bucket lower edge");
        assert_eq!(QuantileSketch::bucket(2.0), 1 + SUBS);
        assert_eq!(QuantileSketch::bucket(4.0), 1 + 2 * SUBS);
        assert_eq!(QuantileSketch::bucket(f64::INFINITY), BUCKETS - 1);
        assert_eq!(QuantileSketch::bucket(2f64.powi(40)), BUCKETS - 1);
        // Round-trip: every resolved bucket's upper bound lands in the
        // next bucket (the bound is exclusive).
        for i in 1..BUCKETS - 1 {
            let ub = QuantileSketch::upper_bound(i);
            assert_eq!(QuantileSketch::bucket(ub), i + 1, "bucket {i} upper bound {ub}");
        }
    }

    #[test]
    fn quantiles_overstate_by_at_most_a_sub_bucket() {
        let mut s = QuantileSketch::new();
        for i in 0..10_000 {
            s.observe(1.0 + i as f64 / 1000.0); // 1.0 .. 11.0
        }
        let p50 = s.p50().expect("non-empty");
        assert!((6.0..=6.4).contains(&p50), "p50 = {p50}");
        let p99 = s.p99().expect("non-empty");
        assert!((10.89..=11.7).contains(&p99), "p99 = {p99}");
        let max = s.max().expect("non-empty");
        assert!((max - 10.999).abs() < 1e-9, "max = {max}");
        assert_eq!(s.count(), 10_000);
    }

    #[test]
    fn nan_is_ignored_and_overflow_reports_max() {
        let mut s = QuantileSketch::new();
        s.observe(f64::NAN);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        // Both values exceed the resolved range (2^32), so they share the
        // overflow bucket and every quantile there reports the tracked max.
        s.observe(1e12);
        s.observe(1e13);
        assert_eq!(s.quantile(0.5), Some(1e13), "overflow bucket reports the real max");
        assert_eq!(s.quantile(1.0), Some(1e13));
        // A resolved observation below them still anchors low quantiles.
        s.observe(2.0);
        let p01 = s.quantile(0.01).expect("non-empty");
        assert!(p01 <= 2.125, "p01 = {p01}");
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let values = [1.0, 1.5, 2.0, 3.7, 0.2, 100.0, 1e40, 7.77];
        let mut whole = QuantileSketch::new();
        for v in values {
            whole.observe(v);
        }
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        for (i, v) in values.into_iter().enumerate() {
            if i % 2 == 0 {
                left.observe(v)
            } else {
                right.observe(v)
            }
        }
        let mut merged = QuantileSketch::new();
        merged.merge(&right);
        merged.merge(&left);
        assert_eq!(merged, whole, "merge in any order must equal the sequential sketch");
    }
}
