//! The thread-safe recording handle and its RAII span guard.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Event, FieldList, Value};
use crate::sink::Sink;

/// A cheap, cloneable, thread-safe handle every instrumentation point
/// records through.
///
/// The default handle is **disabled**: every operation is a branch on a
/// `None` and returns immediately — no clock reads, no allocation, no
/// locking — so instrumented hot paths cost nothing in production
/// configurations that don't ask for a trace. An enabled handle fans
/// each [`Event`] out to its sinks; sinks serialize internally, so one
/// recorder may be shared freely across threads.
///
/// Recording never touches any RNG stream and never feeds back into the
/// pipeline, so instrumented runs are bit-identical to bare runs (the
/// determinism guard in `crates/core/tests/trace.rs` enforces this).
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    sinks: Vec<Arc<dyn Sink>>,
    next_id: AtomicU64,
    epoch: Instant,
}

impl Inner {
    fn emit(&self, event: Event) {
        for sink in &self.sinks {
            sink.record(&event);
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Recorder(disabled)"),
            Some(inner) => write!(f, "Recorder({} sinks)", inner.sinks.len()),
        }
    }
}

impl Recorder {
    /// The no-op handle (also what [`Default`] yields).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled recorder feeding one sink.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Self::with_sinks(vec![sink])
    }

    /// An enabled recorder fanning events out to several sinks (e.g. a
    /// JSONL file plus an aggregating Prometheus sink).
    pub fn with_sinks(sinks: Vec<Arc<dyn Sink>>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sinks,
                next_id: AtomicU64::new(1),
                epoch: Instant::now(),
            })),
        }
    }

    /// Whether events are being recorded. Call sites may use this to skip
    /// building expensive field values, but plain `counter`/`span` calls
    /// are already free when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the counter `name`.
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.emit(Event::Counter { name, delta, t_us: inner.now_us() });
        }
    }

    /// Set the gauge `name` to `value`.
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.emit(Event::Gauge { name, value, t_us: inner.now_us() });
        }
    }

    /// Record one duration observation under `name` (aggregated by sinks
    /// into log-scale histograms).
    #[inline]
    pub fn timing(&self, name: &'static str, nanos: u64) {
        if let Some(inner) = &self.inner {
            inner.emit(Event::Timing { name, nanos, t_us: inner.now_us() });
        }
    }

    /// Record one `value` observation under `name` for the dynamic
    /// series `label` (aggregated by sinks into per-`(name, label)`
    /// quantile sketches). The label string is only materialized when
    /// recording is enabled, so disabled-path cost stays one branch.
    #[inline]
    pub fn observe(&self, name: &'static str, label: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.emit(Event::Observation {
                name,
                label: label.to_string(),
                value,
                t_us: inner.now_us(),
            });
        }
    }

    /// Time `f` and record it under `name`; when disabled, just runs `f`
    /// without reading the clock.
    #[inline]
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        if self.inner.is_none() {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.timing(name, start.elapsed().as_nanos() as u64);
        out
    }

    /// Open a root span. The returned guard emits
    /// [`Event::SpanStart`] now and [`Event::SpanEnd`] (with a monotonic
    /// duration and any attached fields) when dropped.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with_parent(name, None)
    }

    fn span_with_parent(&self, name: &'static str, parent: Option<u64>) -> Span {
        match &self.inner {
            None => Span {
                recorder: Recorder::disabled(),
                id: 0,
                name,
                start: None,
                fields: Vec::new(),
            },
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                inner.emit(Event::SpanStart { id, parent, name, t_us: inner.now_us() });
                Span {
                    recorder: self.clone(),
                    id,
                    name,
                    start: Some(Instant::now()),
                    fields: Vec::new(),
                }
            }
        }
    }

    /// Ask every sink to flush buffered output (JSONL writers).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush();
            }
        }
    }
}

/// RAII guard for one open span; create children with [`Span::child`]
/// and attach fields with [`Span::field`]. Dropping it emits the
/// matching end event with the span's monotonic duration.
#[derive(Debug)]
pub struct Span {
    recorder: Recorder,
    id: u64,
    name: &'static str,
    start: Option<Instant>,
    fields: FieldList,
}

impl Span {
    /// Whether this span actually records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Attach a field reported on the span's end event.
    #[inline]
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if self.recorder.is_enabled() {
            self.fields.push((key, value.into()));
        }
    }

    /// Open a child span (no-op when the recorder is disabled).
    pub fn child(&self, name: &'static str) -> Span {
        self.recorder.span_with_parent(name, Some(self.id))
    }

    /// Close the span now (equivalent to dropping it; reads better at
    /// call sites that would otherwise need an explicit `drop`).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.recorder.inner {
            let dur_ns = self.start.map_or(0, |s| s.elapsed().as_nanos() as u64);
            inner.emit(Event::SpanEnd {
                id: self.id,
                name: self.name,
                t_us: inner.now_us(),
                dur_ns,
                fields: std::mem::take(&mut self.fields),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter("c", 1);
        rec.gauge("g", 1.0);
        rec.timing("t", 1);
        let mut span = rec.span("s");
        span.field("k", 1u64);
        let child = span.child("c");
        assert!(!child.is_enabled());
        drop(child);
        drop(span);
        assert_eq!(rec.time("t", || 41 + 1), 42);
    }

    #[test]
    fn spans_nest_and_close_with_fields() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        {
            let mut root = rec.span("root");
            root.field("n", 10u64);
            {
                let mut child = root.child("child");
                child.field("verdict", "accept");
            }
        }
        let events = sink.events();
        assert_eq!(events.len(), 4, "{events:?}");
        let (root_id, child_parent) = match (&events[0], &events[1]) {
            (
                Event::SpanStart { id, parent: None, name: "root", .. },
                Event::SpanStart { parent, name: "child", .. },
            ) => (*id, *parent),
            other => panic!("unexpected prefix {other:?}"),
        };
        assert_eq!(child_parent, Some(root_id));
        match &events[2] {
            Event::SpanEnd { name: "child", fields, .. } => {
                assert_eq!(fields[0], ("verdict", Value::Str("accept".into())));
            }
            other => panic!("expected child end, got {other:?}"),
        }
        match &events[3] {
            Event::SpanEnd { id, name: "root", fields, .. } => {
                assert_eq!(*id, root_id);
                assert_eq!(fields[0], ("n", Value::U64(10)));
            }
            other => panic!("expected root end, got {other:?}"),
        }
    }

    #[test]
    fn counters_and_timings_reach_all_sinks() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let rec = Recorder::with_sinks(vec![a.clone(), b.clone()]);
        rec.counter("pages", 3);
        rec.time("work", || std::thread::sleep(std::time::Duration::from_millis(1)));
        assert_eq!(a.events().len(), 2);
        assert_eq!(b.events().len(), 2);
        match &a.events()[1] {
            Event::Timing { name: "work", nanos, .. } => assert!(*nanos >= 1_000_000),
            other => panic!("expected timing, got {other:?}"),
        }
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let sink = Arc::new(MemorySink::new());
        let rec = Recorder::new(sink.clone());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.counter("n", 1);
                    }
                });
            }
        });
        assert_eq!(sink.events().len(), 400);
    }
}
