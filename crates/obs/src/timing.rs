//! Log-scale (power-of-two) histograms for durations and sizes.

/// A histogram with logarithmic buckets: bucket `i` covers
/// `[2^(i-1), 2^i)` (bucket 0 holds exactly the value 0). 64 buckets
/// cover the whole `u64` range, so recording never saturates or
/// allocates — the struct is a fixed 600-odd bytes and `observe` is a
/// shift plus two adds, cheap enough for per-chunk timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index of `value`: its bit length, clamped to the last
    /// bucket (unreachable for realistic nanosecond values).
    fn bucket(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(63)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Upper bound (exclusive) of the bucket containing the `q`-quantile
    /// (`q` in `[0,1]`); `None` when empty. Log-bucketed, so the answer is
    /// correct to within 2×, which is what a latency summary needs.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Exclusive upper bound of bucket `i` (`1` for bucket 0, else `2^i`).
    fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= 63 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Non-empty tail of the bucket table as `(upper_bound, count)` pairs
    /// in increasing bound order — the shape Prometheus exposition needs
    /// (the caller accumulates for cumulative `le` counts).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let last = match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        (0..=last).map(|i| (Self::upper_bound(i), self.counts[i])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket(0), 0);
        assert_eq!(LogHistogram::bucket(1), 1);
        assert_eq!(LogHistogram::bucket(2), 2);
        assert_eq!(LogHistogram::bucket(3), 2);
        assert_eq!(LogHistogram::bucket(4), 3);
        assert_eq!(LogHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn stats_track_observations() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_within_a_factor_of_two() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((256..=1024).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), Some(1024));
        assert!(LogHistogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = LogHistogram::new();
        a.observe(5);
        let mut b = LogHistogram::new();
        b.observe(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(500));
    }

    #[test]
    fn buckets_expose_nonzero_prefix() {
        let mut h = LogHistogram::new();
        h.observe(0);
        h.observe(3);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 3, "{buckets:?}");
        assert_eq!(buckets[0], (1, 1));
        assert_eq!(buckets[2], (4, 1));
        assert!(LogHistogram::new().buckets().is_empty());
    }
}
