//! Schema round-trip: every event the recorder can emit serializes to
//! one JSONL line that the crate's own parser accepts, with the fixed
//! per-type key set `histstat --check` validates in CI.

use std::sync::Arc;

use samplehist_obs::json::{self, Json};
use samplehist_obs::{JsonlSink, Recorder};

fn trace_lines() -> Vec<String> {
    let sink = Arc::new(JsonlSink::new(Vec::<u8>::new()));
    let recorder = Recorder::new(sink.clone());
    {
        let mut root = recorder.span("analyze");
        root.field("rows", 20_000u64);
        root.field("column", "amount \"quoted\" — naïve");
        root.field("rate", 0.05f64);
        root.field("nan", f64::NAN);
        root.field("negative", -3i64);
        root.field("converged", true);
        {
            let mut round = root.child("cvb.round");
            round.field("round", 1usize);
            round.field("verdict", "bootstrap");
        }
        recorder.counter("storage.pages_read", 40);
        recorder.gauge("parallel.threads", 4.0);
        recorder.timing("parallel.chunk_ns", 812);
        recorder.observe("service.qerror", "orders.\"amount\"", 1.5);
    }
    recorder.flush();
    let text = sink.with_writer(|w| String::from_utf8(w.clone()).expect("utf-8"));
    text.lines().map(str::to_string).collect()
}

fn require(obj: &Json, key: &str) -> Json {
    obj.get(key).unwrap_or_else(|| panic!("missing {key:?} in {obj:?}")).clone()
}

#[test]
fn every_line_parses_with_the_required_keys() {
    let lines = trace_lines();
    // 2 starts + 2 ends + counter + gauge + timing + observation.
    assert_eq!(lines.len(), 8, "{lines:#?}");
    for line in &lines {
        let obj = json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        let kind = require(&obj, "type");
        let kind = kind.as_str().expect("type is a string");
        require(&obj, "t_us").as_u64().expect("t_us is an integer");
        match kind {
            "span_start" => {
                require(&obj, "id").as_u64().expect("id");
                require(&obj, "name").as_str().expect("name");
                let parent = require(&obj, "parent");
                assert!(parent.is_null() || parent.as_u64().is_some());
            }
            "span_end" => {
                require(&obj, "id").as_u64().expect("id");
                require(&obj, "name").as_str().expect("name");
                require(&obj, "dur_ns").as_u64().expect("dur_ns");
                assert!(matches!(require(&obj, "fields"), Json::Obj(_)));
            }
            "counter" => {
                require(&obj, "name").as_str().expect("name");
                require(&obj, "delta").as_u64().expect("delta");
            }
            "gauge" => {
                require(&obj, "name").as_str().expect("name");
                require(&obj, "value").as_f64().expect("value");
            }
            "timing" => {
                require(&obj, "name").as_str().expect("name");
                require(&obj, "nanos").as_u64().expect("nanos");
            }
            "observation" => {
                require(&obj, "name").as_str().expect("name");
                assert_eq!(
                    require(&obj, "label").as_str().expect("label"),
                    "orders.\"amount\"",
                    "dynamic label round-trips through escaping"
                );
                require(&obj, "value").as_f64().expect("value");
            }
            other => panic!("unknown event type {other:?}"),
        }
    }
}

#[test]
fn field_values_round_trip_through_the_parser() {
    let lines = trace_lines();
    let root_end = lines
        .iter()
        .map(|l| json::parse(l).expect("valid"))
        .find(|o| {
            o.get("type").and_then(Json::as_str) == Some("span_end")
                && o.get("name").and_then(Json::as_str) == Some("analyze")
        })
        .expect("root span end present");
    let fields = require(&root_end, "fields");
    assert_eq!(fields.get("rows").and_then(Json::as_u64), Some(20_000));
    assert_eq!(fields.get("column").and_then(Json::as_str), Some("amount \"quoted\" — naïve"));
    assert_eq!(fields.get("rate").and_then(Json::as_f64), Some(0.05));
    assert!(fields.get("nan").expect("nan key kept").is_null(), "NaN serializes as null");
    assert_eq!(fields.get("negative").and_then(Json::as_f64), Some(-3.0));
    assert_eq!(fields.get("converged").and_then(Json::as_bool), Some(true));
}

#[test]
fn span_ids_pair_up_across_the_trace() {
    let lines = trace_lines();
    let mut open = std::collections::HashSet::new();
    for line in &lines {
        let obj = json::parse(line).expect("valid");
        match obj.get("type").and_then(Json::as_str) {
            Some("span_start") => {
                assert!(open.insert(obj.get("id").and_then(Json::as_u64).expect("id")));
            }
            Some("span_end") => {
                assert!(open.remove(&obj.get("id").and_then(Json::as_u64).expect("id")));
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans: {open:?}");
}
