//! Property tests for [`QuantileSketch`]: the merge algebra the
//! accuracy-telemetry plane leans on. The service's dump()-bit-identity
//! guarantee reduces to exactly these properties — per-thread
//! observation partitions folded in any order must produce identical
//! sketch state.

use proptest::prelude::*;
use samplehist_obs::QuantileSketch;

fn sketch_of(values: &[f64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.observe(v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging per-partition sketches equals observing the whole stream,
    /// for any 3-way partition — i.e. merge is a homomorphism from
    /// concatenation, which implies order-independence.
    #[test]
    fn merge_is_partition_independent(
        values in proptest::collection::vec(0.5f64..1.0e6, 0..200),
        cut_a in 0usize..200,
        cut_b in 0usize..200,
    ) {
        let cut_a = cut_a.min(values.len());
        let cut_b = cut_b.clamp(cut_a, values.len());
        let whole = sketch_of(&values);

        let (a, b, c) =
            (sketch_of(&values[..cut_a]), sketch_of(&values[cut_a..cut_b]), sketch_of(&values[cut_b..]));

        // Left fold in order…
        let mut fwd = QuantileSketch::new();
        fwd.merge(&a);
        fwd.merge(&b);
        fwd.merge(&c);
        // …and a different association/order.
        let mut rev = c.clone();
        let mut bc = b.clone();
        bc.merge(&a);
        rev.merge(&bc);

        prop_assert_eq!(&fwd, &whole);
        prop_assert_eq!(&rev, &whole);
    }

    /// Quantiles are monotone in `q`, bracket the data, and overstate a
    /// true quantile by at most one sub-bucket (6.25% relative).
    #[test]
    fn quantiles_are_sound(
        values in proptest::collection::vec(1.0f64..1.0e9, 1..300),
    ) {
        let s = sketch_of(&values);
        prop_assert_eq!(s.count(), values.len() as u64);
        let (p50, p95, p99) = (s.p50().unwrap(), s.p95().unwrap(), s.p99().unwrap());
        prop_assert!(p50 <= p95 && p95 <= p99, "p50 {} p95 {} p99 {}", p50, p95, p99);
        let max = s.max().unwrap();
        prop_assert!(p99 <= max * (1.0 + 1.0 / 16.0) + 1e-9, "p99 {} max {}", p99, max);

        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let true_p95 = sorted[((0.95 * sorted.len() as f64).ceil() as usize).max(1) - 1];
        prop_assert!(p95 >= true_p95 - 1e-12, "sketch p95 {} under true {}", p95, true_p95);
        prop_assert!(
            p95 <= true_p95 * (1.0 + 1.0 / 16.0) + 1e-9,
            "sketch p95 {} overstates true {} by more than a sub-bucket",
            p95,
            true_p95
        );
    }
}
