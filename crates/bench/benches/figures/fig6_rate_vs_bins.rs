//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench fig6_rate_vs_bins`.

use samplehist_bench::experiments::{emit_tables, fig6};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", fig6::ID, scale.n, scale.trials);
    emit_tables(fig6::ID, &fig6::run(&scale));
}
