//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench ex4_gmp_comparison`.

use samplehist_bench::experiments::{emit_tables, ex4};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", ex4::ID, scale.n, scale.trials);
    emit_tables(ex4::ID, &ex4::run(&scale));
}
