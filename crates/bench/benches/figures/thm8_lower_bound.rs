//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench thm8_lower_bound`.

use samplehist_bench::experiments::{emit_tables, thm8};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", thm8::ID, scale.n, scale.trials);
    emit_tables(thm8::ID, &thm8::run(&scale));
}
