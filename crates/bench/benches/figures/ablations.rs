//! `harness = false` bench target: run the design-choice ablations via
//! `cargo bench -p samplehist-bench --bench ablations`.

use samplehist_bench::experiments::{ablations, emit_tables};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", ablations::ID, scale.n, scale.trials);
    emit_tables(ablations::ID, &ablations::run(&scale));
}
