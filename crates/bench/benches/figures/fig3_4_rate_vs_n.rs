//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench fig3_4_rate_vs_n`.

use samplehist_bench::experiments::{emit_tables, fig3_4};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", fig3_4::ID, scale.n, scale.trials);
    emit_tables(fig3_4::ID, &fig3_4::run(&scale));
}
