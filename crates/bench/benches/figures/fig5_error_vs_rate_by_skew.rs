//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench fig5_error_vs_rate_by_skew`.

use samplehist_bench::experiments::{emit_tables, fig5};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", fig5::ID, scale.n, scale.trials);
    emit_tables(fig5::ID, &fig5::run(&scale));
}
