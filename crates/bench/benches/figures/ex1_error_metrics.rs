//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench ex1_error_metrics`.

use samplehist_bench::experiments::{emit_tables, ex1};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", ex1::ID, scale.n, scale.trials);
    emit_tables(ex1::ID, &ex1::run(&scale));
}
