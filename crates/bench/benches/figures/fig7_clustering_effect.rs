//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench fig7_clustering_effect`.

use samplehist_bench::experiments::{emit_tables, fig7};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", fig7::ID, scale.n, scale.trials);
    emit_tables(fig7::ID, &fig7::run(&scale));
}
