//! `harness = false` bench target: validate the Theorem 7 stopping rule
//! via `cargo bench -p samplehist-bench --bench thm7_stopping_rule`.

use samplehist_bench::experiments::{emit_tables, thm7};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", thm7::ID, scale.n, scale.trials);
    emit_tables(thm7::ID, &thm7::run(&scale));
}
