//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench ex3_bound_tradeoffs`.

use samplehist_bench::experiments::{emit_tables, ex3};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", ex3::ID, scale.n, scale.trials);
    emit_tables(ex3::ID, &ex3::run(&scale));
}
