//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench fig9_12_distinct_values`.

use samplehist_bench::experiments::{emit_tables, fig9_12};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", fig9_12::ID, scale.n, scale.trials);
    emit_tables(fig9_12::ID, &fig9_12::run(&scale));
}
