//! `harness = false` bench target: regenerate this paper artifact via
//! `cargo bench -p samplehist-bench --bench fig8_record_size`.

use samplehist_bench::experiments::{emit_tables, fig8};
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("==== {} (N = {}, trials = {}) ====\n", fig8::ID, scale.n, scale.trials);
    emit_tables(fig8::ID, &fig8::run(&scale));
}
