//! Criterion micro-benchmarks: record vs block sampling, reservoir
//! maintenance, and an end-to-end CVB run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist_core::sampling::{self, cvb, CvbConfig, Reservoir, Schedule, ValidationMode};
use samplehist_storage::{BlockSampler, HeapFile, Layout};

fn heap_file(n: i64) -> HeapFile {
    let mut rng = StdRng::seed_from_u64(2);
    HeapFile::with_layout((0..n).collect(), 128, Layout::Random, &mut rng)
}

fn bench_samplers(c: &mut Criterion) {
    let n = 1_000_000i64;
    let data: Vec<i64> = (0..n).collect();
    let file = heap_file(n);
    let r = 50_000usize;

    let mut group = c.benchmark_group("sampling");
    group.throughput(Throughput::Elements(r as u64));
    group.bench_function("record_with_replacement_50k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sampling::with_replacement(&data, r, &mut rng))
    });
    group.bench_function("record_without_replacement_50k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| sampling::without_replacement(&data, r, &mut rng))
    });
    group.bench_function("block_sample_50k_tuples", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| BlockSampler::new().sample(&file, r / 128, &mut rng))
    });
    group.bench_function("reservoir_50k_of_1M", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            let mut res = Reservoir::new(r);
            for p in 0..samplehist_core::BlockSource::num_blocks(&file) {
                res.offer_all(samplehist_core::BlockSource::block(&file, p), &mut rng);
            }
            res.into_sample()
        })
    });
    group.finish();
}

fn bench_cvb(c: &mut Criterion) {
    let file = heap_file(1_000_000);
    let config = CvbConfig {
        buckets: 200,
        target_f: 0.2,
        gamma: 0.05,
        schedule: Schedule::Doubling { initial_blocks: 40 },
        validation: ValidationMode::AllTuples,
        max_block_fraction: 1.0,
    };
    c.bench_function("cvb_end_to_end_1M_k200_f02", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| cvb::run(&file, &config, &mut rng))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_samplers, bench_cvb
}
criterion_main!(benches);
