//! Criterion micro-benchmarks: the engine layer — ANALYZE modes,
//! selectivity estimation, and join estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist_data::DataSpec;
use samplehist_engine::{
    analyze, estimate_cardinality, estimate_equijoin, AnalyzeMode, AnalyzeOptions, Predicate, Table,
};
use samplehist_storage::Layout;

fn demo_table(n: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(11);
    let values = DataSpec::Zipf { z: 1.0, domain: (n / 10) as usize }.generate(n, &mut rng);
    Table::builder("t")
        .column_with_blocking("c", values.values, 128, Layout::Random, &mut rng)
        .build()
}

fn bench_analyze(c: &mut Criterion) {
    let table = demo_table(1_000_000);
    let mut group = c.benchmark_group("analyze_1M");
    for (name, opts) in [
        ("full_scan_k200", AnalyzeOptions::full_scan(200)),
        (
            "block_sample_1pct_k200",
            AnalyzeOptions {
                buckets: 200,
                mode: AnalyzeMode::BlockSample { rate: 0.01 },
                compressed: false,
            },
        ),
        (
            "adaptive_f02_k200",
            AnalyzeOptions {
                buckets: 200,
                mode: AnalyzeMode::Adaptive { target_f: 0.2, gamma: 0.05 },
                compressed: false,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(13);
            b.iter(|| analyze(&table, "c", &opts, &mut rng).expect("column exists"))
        });
    }
    group.finish();
}

fn bench_selectivity(c: &mut Criterion) {
    let table = demo_table(1_000_000);
    let mut rng = StdRng::seed_from_u64(17);
    let stats =
        analyze(&table, "c", &AnalyzeOptions::full_scan(200), &mut rng).expect("column exists");
    let preds: Vec<Predicate> =
        (0..100).map(|i| Predicate::Between { low: i * 37, high: i * 37 + 5_000 }).collect();
    c.bench_function("selectivity_100_predicates", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in &preds {
                acc += estimate_cardinality(&stats, p).rows;
            }
            acc
        })
    });
    c.bench_function("equijoin_estimate", |b| b.iter(|| estimate_equijoin(&stats, &stats)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analyze, bench_selectivity
}
criterion_main!(benches);
