//! Criterion micro-benchmarks: frequency-profile construction and the
//! distinct-value estimator suite.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist_core::distinct::{all_estimators, FrequencyProfile};
use samplehist_data::DataSpec;

fn sample_of(spec: DataSpec, n: u64, r: usize) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(8);
    let data = spec.generate(n, &mut rng).values;
    let mut s = samplehist_core::sampling::with_replacement(&data, r, &mut rng);
    s.sort_unstable();
    s
}

fn bench_profile(c: &mut Criterion) {
    let n = 1_000_000u64;
    let r = 100_000usize;
    let zipf = sample_of(DataSpec::Zipf { z: 2.0, domain: 100_000 }, n, r);
    let unif = sample_of(DataSpec::UnifDup { copies: 100 }, n, r);

    let mut group = c.benchmark_group("distinct_profile");
    group.throughput(Throughput::Elements(r as u64));
    group.bench_function("profile_zipf_100k", |b| {
        b.iter(|| FrequencyProfile::from_sorted_sample(&zipf))
    });
    group.bench_function("profile_unifdup_100k", |b| {
        b.iter(|| FrequencyProfile::from_sorted_sample(&unif))
    });
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let n = 1_000_000u64;
    let sample = sample_of(DataSpec::Zipf { z: 2.0, domain: 100_000 }, n, 100_000);
    let profile = FrequencyProfile::from_sorted_sample(&sample);

    let mut group = c.benchmark_group("distinct_estimators");
    for est in all_estimators() {
        group.bench_function(est.name(), |b| b.iter(|| est.estimate(&profile, n)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_profile, bench_estimators
}
criterion_main!(benches);
