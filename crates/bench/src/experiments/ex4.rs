//! Example 4 / Section 3.4: quantitative comparison with the
//! Gibbons–Matias–Poosala bound (Theorem 6), the only prior
//! distribution-independent guarantee.

use samplehist_core::bounds::{corollary1_sample_size, GmpBound};

use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "ex4_gmp_comparison";

/// Run the experiment.
pub fn run(_scale: &Scale) -> Vec<ResultTable> {
    vec![floor_table(), head_to_head()]
}

/// Item 4 of Example 4: GMP's error floor at its cheapest valid operating
/// point (c = 4), per k — it cannot go below ~0.35 for any practical k.
fn floor_table() -> ResultTable {
    let mut t = ResultTable::new(
        "Theorem 6 (GMP) error floors at c = 4 — f below ~0.35 is unreachable",
        &["k", "f floor", "sample r", "min applicable n (≈r³)", "γ at n=1e12"],
    );
    for k in [100usize, 500, 1000, 10_000, 100_000] {
        let b = GmpBound::new(k, 4.0);
        t.row(vec![
            k.to_string(),
            format!("{:.3}", b.f),
            format!("{:.2e}", b.r),
            format!("{:.2e}", b.min_applicable_n()),
            format!("{:.4}", b.gamma(1_000_000_000_000)),
        ]);
    }
    t
}

/// Item 5: like-for-like sample sizes. We give Corollary 1 the *harder*
/// job (smaller f) and GMP's own failure probability, at a relation size
/// where GMP applies at all — and Corollary 1 still needs orders of
/// magnitude less. At the paper's own experimental scale (n = 10–20M)
/// GMP is simply inapplicable.
///
/// (Note: the paper quotes "77Meg" for GMP at k = 500; the literal
/// Theorem 6 formula gives c·k·ln²k ≈ 77K *samples* — we report the
/// literal value and let the applicability threshold carry the argument;
/// see EXPERIMENTS.md.)
fn head_to_head() -> ResultTable {
    let mut t = ResultTable::new(
        "Ours (Corollary 1) vs GMP (Theorem 6), γ matched to GMP's own",
        &[
            "k",
            "GMP f (floor)",
            "GMP r",
            "our f (stricter)",
            "our r at n=1e12",
            "our r at n=20M",
            "GMP at n=20M",
        ],
    );
    for k in [100usize, 500, 1000] {
        let gmp = GmpBound::new(k, 4.0);
        let our_f = (gmp.f / 2.0).min(0.2);
        let gamma = gmp.gamma(1_000_000_000_000);
        let ours_big = corollary1_sample_size(k, our_f, 1_000_000_000_000, gamma);
        let ours_small = corollary1_sample_size(k, our_f, 20_000_000, gamma);
        t.row(vec![
            k.to_string(),
            format!("{:.3}", gmp.f),
            format!("{:.2e}", gmp.r),
            format!("{our_f:.3}"),
            format!("{ours_big:.2e}"),
            format!("{ours_small:.2e}"),
            "inapplicable (n < r³)".into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 5);
        assert_eq!(tables[1].rows.len(), 3);
    }

    #[test]
    fn gmp_floor_never_below_035_in_table() {
        let t = floor_table();
        for row in &t.rows {
            let f: f64 = row[1].parse().expect("numeric");
            assert!(f > 0.34, "k={}: floor {f}", row[0]);
        }
    }

    #[test]
    fn gmp_inapplicable_at_paper_scale() {
        for k in [100usize, 500, 1000] {
            let b = GmpBound::new(k, 4.0);
            assert!(b.min_applicable_n() > 20_000_000.0, "k={k}");
        }
    }
}
