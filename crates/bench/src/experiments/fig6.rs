//! Figure 6: required sampling rate vs the number of histogram bins
//! (max error ≤ 0.2, Z = 2) — the cost of a histogram grows **linearly**
//! in its bucket count, exactly as Corollary 1's `r ∝ k` predicts.

use samplehist_data::DataSpec;
use samplehist_storage::Layout;

use super::common::{build_file, pct, zipf_domain, DEFAULT_BLOCKING};
use crate::harness::{required_sampling, sorted_copy};
use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "fig6_rate_vs_bins";

/// Target max error, as in the figure caption.
const TARGET_F: f64 = 0.2;

/// Run the experiment.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    let n = scale.n;
    let bins_sweep: &[usize] =
        if n >= 1_000_000 { &[50, 100, 200, 300, 400, 500, 600] } else { &[50, 100, 200, 300] };

    let spec = DataSpec::Zipf { z: 2.0, domain: zipf_domain(n) };
    let mut rng = scale.rng(ID, 0);
    let file = build_file(&spec, n, Layout::Random, DEFAULT_BLOCKING, &mut rng);
    let full = sorted_copy(&file);

    let mut t = ResultTable::new(
        format!("Figure 6: required sampling rate vs bins (max error ≤ {TARGET_F}, Z=2, N={n})"),
        &["bins k", "sampling rate", "tuples sampled", "tuples per bin"],
    );
    for &k in bins_sweep {
        let req = required_sampling(&file, &full, k, TARGET_F, scale, &format!("{ID}/k{k}"));
        t.row(vec![
            k.to_string(),
            pct(req.mean_rate),
            format!("{:.0}", req.mean_tuples),
            format!("{:.0}", req.mean_tuples / k as f64),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corollary 1 linearity: tuples-per-bin is roughly flat across k, so
    /// total required sampling grows linearly with the bin count.
    #[test]
    fn linear_growth_in_bins() {
        let scale = Scale { n: 150_000, trials: 4, seed: 17, full: false };
        let tables = run(&scale);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 4);
        let tuples: Vec<f64> = rows.iter().map(|r| r[2].parse::<f64>().expect("numeric")).collect();
        // Weak monotonicity (few trials at small n leave residual noise).
        assert!(
            tuples.windows(2).all(|w| w[1] > 0.8 * w[0]),
            "required sampling must grow with k: {tuples:?}"
        );
        // 50 -> 300 bins (6x) should grow the requirement several-fold.
        let ratio = tuples[3] / tuples[0];
        assert!((2.5..14.0).contains(&ratio), "50->300 bins grew {ratio}x");
    }
}
