//! Figure 5: max error vs sampling rate for three Zipf skews (Z = 0, 2,
//! 4) on a random layout — the error curves converge at essentially the
//! same rate regardless of skew, confirming that Corollary 1's bound is
//! distribution-independent.

use samplehist_data::DataSpec;
use samplehist_storage::Layout;

use super::common::{build_file, pct, zipf_domain, DEFAULT_BLOCKING};
use crate::harness::{error_vs_rate, sorted_copy};
use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "fig5_error_vs_rate_by_skew";

/// The sampling rates on the x-axis.
pub const RATES: [f64; 7] = [0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32];

/// Run the experiment.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    let bins = scale.paper_bins();
    let n = scale.n;
    let mut t = ResultTable::new(
        format!("Figure 5: max error f' vs sampling rate (random layout, k={bins}, N={n})"),
        &["rate", "Z=0", "Z=2", "Z=4"],
    );

    // The three skews are independent experiments with disjoint RNG
    // streams; run them in parallel, results kept in z order.
    let curves = samplehist_parallel::par_map(&[0.0f64, 2.0, 4.0], |&z| {
        let spec = DataSpec::Zipf { z, domain: zipf_domain(n) };
        let mut rng = scale.rng(ID, (z * 10.0) as u32);
        let file = build_file(&spec, n, Layout::Random, DEFAULT_BLOCKING, &mut rng);
        let full = sorted_copy(&file);
        error_vs_rate(&file, &full, bins, &RATES, scale, &format!("{ID}/z{z}"))
    });

    for (i, &rate) in RATES.iter().enumerate() {
        t.row(vec![
            pct(rate),
            format!("{:.3}", curves[0][i].mean_error),
            format!("{:.3}", curves[1][i].mean_error),
            format!("{:.3}", curves[2][i].mean_error),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_decrease_and_converge_together() {
        let scale = Scale { n: 120_000, trials: 2, seed: 13, full: false };
        let tables = run(&scale);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), RATES.len());
        for (col, label) in [(1, "Z=0"), (2, "Z=2"), (3, "Z=4")] {
            let first: f64 = rows[0][col].parse().expect("numeric");
            let last: f64 = rows[rows.len() - 1][col].parse().expect("numeric");
            assert!(last < first, "{label}: {first} -> {last}");
        }
        // Distribution-independence: at the highest rate the three errors
        // are within a small factor of each other.
        let last = &rows[rows.len() - 1];
        let errs: Vec<f64> = (1..=3).map(|c| last[c].parse().expect("numeric")).collect();
        let max = errs.iter().cloned().fold(0.0, f64::max);
        let min = errs.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-6);
        assert!(max / min < 4.0, "converged errors too spread: {errs:?}");
    }
}
