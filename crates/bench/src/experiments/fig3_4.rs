//! Figures 3 and 4: how the sampling **rate** and the number of **disk
//! blocks** needed for max error ≤ 0.1 vary with the number of records.
//!
//! Paper findings (Section 7.2, Z = 2, random layout):
//! * Figure 3 — the required *rate* drops roughly like `log(n)/n` as the
//!   table grows: sampling gets relatively cheaper on bigger tables.
//! * Figure 4 — the required number of *disk blocks* is almost constant
//!   in n (the absolute sample size is essentially n-independent,
//!   Corollary 1).

use samplehist_data::DataSpec;
use samplehist_storage::Layout;

use super::common::{build_file, pct, zipf_domain, DEFAULT_BLOCKING};
use crate::harness::{required_sampling, sorted_copy};
use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "fig3_4_rate_vs_n";

/// Target max error, as in the figure captions.
const TARGET_F: f64 = 0.1;

/// Run the experiment.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    let bins = scale.paper_bins();
    let mut t = ResultTable::new(
        format!(
            "Figures 3+4: required sampling vs number of records \
             (max error ≤ {TARGET_F}, Z=2, k={bins}, random layout)"
        ),
        &["N", "sampling rate (fig 3)", "tuples sampled", "disk blocks sampled (fig 4)"],
    );

    for n in scale.n_sweep() {
        let spec = DataSpec::Zipf { z: 2.0, domain: zipf_domain(n) };
        let mut rng = scale.rng(ID, 1000);
        let file = build_file(&spec, n, Layout::Random, DEFAULT_BLOCKING, &mut rng);
        let full = sorted_copy(&file);
        let req = required_sampling(&file, &full, bins, TARGET_F, scale, &format!("{ID}/{n}"));
        t.row(vec![
            n.to_string(),
            pct(req.mean_rate),
            format!("{:.0}", req.mean_tuples),
            format!("{:.0}", req.mean_blocks),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's two claims at harness-test scale: rate decreases with
    /// N while blocks stay within a modest band.
    #[test]
    fn rate_drops_blocks_flat() {
        let scale = Scale { n: 120_000, trials: 2, seed: 11, full: false };
        let tables = run(&scale);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 4);
        let rates: Vec<f64> = rows
            .iter()
            .map(|r| r[1].trim_end_matches('%').parse::<f64>().expect("numeric"))
            .collect();
        assert!(rates.first() > rates.last(), "rate should drop with N: {rates:?}");
        let blocks: Vec<f64> = rows.iter().map(|r| r[3].parse::<f64>().expect("numeric")).collect();
        let max = blocks.iter().cloned().fold(0.0, f64::max);
        let min = blocks.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.0, "blocks should be ~constant: {blocks:?}");
    }
}
