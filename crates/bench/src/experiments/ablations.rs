//! Ablations: the design choices DESIGN.md calls out, each isolated.
//!
//! 1. **Stepping schedule** (Section 4.2 vs 7.1): doubling vs the
//!    prototype's √n steps vs fixed-size rounds, on a random layout —
//!    how much does the schedule change total I/O and convergence?
//! 2. **Validation mode** (Section 4.2's "twists"): all tuples of the new
//!    blocks vs one tuple per block, on a partially clustered layout —
//!    robustness to correlated validation data vs statistical power.
//! 3. **Histogram structure**: equi-height vs equi-width vs compressed on
//!    skewed data, measured as range-query estimation error at equal
//!    bucket budget — why the paper's subject is equi-height at all.
//! 4. **Sampling mode** (Section 3.1): with vs without replacement at
//!    equal r — the paper's claim that the distinction is negligible.

use rand::Rng;

use samplehist_core::error::{fractional_max_error, max_error_against};
use samplehist_core::estimate::{true_range_count, RangeEstimator};
use samplehist_core::histogram::{CompressedHistogram, EquiHeightHistogram, EquiWidthHistogram};
use samplehist_core::sampling::{self, cvb, BlockSource, CvbConfig, Schedule, ValidationMode};
use samplehist_data::DataSpec;
use samplehist_storage::Layout;

use super::common::{build_file, pct, zipf_domain, DEFAULT_BLOCKING};
use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "ablations";

/// Run all five ablations.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    vec![
        schedule_ablation(scale),
        validation_ablation(scale),
        structure_ablation(scale),
        replacement_ablation(scale),
        strategy_ablation(scale),
    ]
}

/// Ablation 5: CVB's iterated cross-validation vs classical double
/// (two-phase) sampling, per layout. Double sampling spends a pilot to
/// estimate the cluster design effect and then commits; CVB keeps
/// checking. Both are measured on I/O and on the error they actually
/// deliver.
fn strategy_ablation(scale: &Scale) -> ResultTable {
    use samplehist_core::sampling::{double, DoubleSamplingConfig};

    let n = scale.n.min(1_000_000);
    let bins = 100;
    let target_f = 0.25;
    let spec = DataSpec::Zipf { z: 2.0, domain: zipf_domain(n) };

    let mut t = ResultTable::new(
        format!("Ablation 5: CVB vs double sampling (Z=2, k={bins}, f={target_f}, N={n})"),
        &["layout", "strategy", "blocks", "rate", "true error", "deff est"],
    );
    for (lname, layout) in [
        ("random", Layout::Random),
        ("partial 20%", Layout::paper_partial()),
        ("clustered", Layout::Clustered),
    ] {
        let mut acc = [[0.0f64; 3]; 2]; // [strategy][blocks, tuples, err]
        let mut deff_sum = 0.0f64;
        for trial in 0..scale.trials {
            let mut rng = scale.rng(&format!("{ID}/strategy/{lname}"), trial);
            let file = build_file(&spec, n, layout, DEFAULT_BLOCKING, &mut rng);
            let full = file.sorted_values();

            let cvb_cfg = CvbConfig {
                buckets: bins,
                target_f,
                gamma: 0.05,
                schedule: Schedule::Doubling { initial_blocks: (file.num_blocks() / 100).max(2) },
                validation: ValidationMode::AllTuples,
                max_block_fraction: 1.0,
            };
            let r1 = cvb::run(&file, &cvb_cfg, &mut rng);
            acc[0][0] += r1.blocks_sampled as f64;
            acc[0][1] += r1.tuples_sampled as f64;
            acc[0][2] +=
                fractional_max_error(r1.histogram.separators(), &r1.sample_sorted, &full).max;

            let ds_cfg = DoubleSamplingConfig {
                buckets: bins,
                target_f,
                gamma: 0.05,
                pilot_blocks: (file.num_blocks() / 100).max(10),
            };
            let r2 = double::run(&file, &ds_cfg, &mut rng);
            acc[1][0] += r2.blocks_sampled() as f64;
            acc[1][1] += r2.tuples_sampled as f64;
            acc[1][2] +=
                fractional_max_error(r2.histogram.separators(), &r2.sample_sorted, &full).max;
            deff_sum += r2.design_effect;
        }
        let tr = scale.trials as f64;
        for (idx, sname) in [(0usize, "CVB"), (1, "double")] {
            t.row(vec![
                lname.into(),
                sname.into(),
                format!("{:.0}", acc[idx][0] / tr),
                pct(acc[idx][1] / tr / n as f64),
                format!("{:.3}", acc[idx][2] / tr),
                if idx == 1 { format!("{:.1}", deff_sum / tr) } else { "-".into() },
            ]);
        }
    }
    t
}

fn schedule_ablation(scale: &Scale) -> ResultTable {
    let n = scale.n.min(1_000_000);
    let bins = 100;
    let target_f = 0.2;
    let spec = DataSpec::Zipf { z: 2.0, domain: zipf_domain(n) };

    let mut t = ResultTable::new(
        format!(
            "Ablation 1: CVB stepping schedule (random layout, Z=2, k={bins}, f={target_f}, N={n})"
        ),
        &["schedule", "rounds", "blocks", "rate", "converged", "true error"],
    );
    type ScheduleFactory = Box<dyn Fn(usize) -> Schedule>;
    let schedules: Vec<(&str, ScheduleFactory)> = vec![
        (
            "doubling (paper §4.2)",
            Box::new(|blocks| Schedule::Doubling { initial_blocks: (blocks / 100).max(2) }),
        ),
        ("sqrt steps ×5 (prototype §7.1)", Box::new(|_| Schedule::SqrtSteps { multiplier: 5.0 })),
        ("sqrt steps ×25", Box::new(|_| Schedule::SqrtSteps { multiplier: 25.0 })),
        (
            "geometric ×3",
            Box::new(|blocks| Schedule::Geometric {
                initial_blocks: (blocks / 100).max(2),
                ratio: 3.0,
            }),
        ),
        (
            "fixed 2% rounds",
            Box::new(|blocks| Schedule::Fixed { blocks_per_round: (blocks / 50).max(1) }),
        ),
    ];

    for (name, make) in schedules {
        let (mut rounds, mut blocks, mut tuples, mut err) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut converged_all = true;
        for trial in 0..scale.trials {
            let mut rng = scale.rng(&format!("{ID}/sched/{name}"), trial);
            let file = build_file(&spec, n, Layout::Random, DEFAULT_BLOCKING, &mut rng);
            let full = file.sorted_values();
            let config = CvbConfig {
                buckets: bins,
                target_f,
                gamma: 0.05,
                schedule: make(file.num_blocks()),
                validation: ValidationMode::AllTuples,
                max_block_fraction: 1.0,
            };
            let result = cvb::run(&file, &config, &mut rng);
            rounds += result.rounds.len() as f64;
            blocks += result.blocks_sampled as f64;
            tuples += result.tuples_sampled as f64;
            err +=
                fractional_max_error(result.histogram.separators(), &result.sample_sorted, &full)
                    .max;
            converged_all &= result.converged || result.exhausted;
        }
        let tr = scale.trials as f64;
        t.row(vec![
            name.into(),
            format!("{:.1}", rounds / tr),
            format!("{:.0}", blocks / tr),
            pct(tuples / tr / n as f64),
            if converged_all { "yes" } else { "capped" }.into(),
            format!("{:.3}", err / tr),
        ]);
    }
    t
}

fn validation_ablation(scale: &Scale) -> ResultTable {
    let n = scale.n.min(1_000_000);
    let bins = 100;
    let target_f = 0.25;
    let spec = DataSpec::Zipf { z: 2.0, domain: zipf_domain(n) };

    let mut t = ResultTable::new(
        format!(
            "Ablation 2: cross-validation sample (partially clustered layout, k={bins}, f={target_f}, N={n})"
        ),
        &["validation mode", "blocks", "rate", "true error", "note"],
    );
    for (mode, note) in [
        (ValidationMode::AllTuples, "cheap; validation inherits block correlation"),
        (ValidationMode::OneTuplePerBlock, "unbiased validation; k× less power per block"),
    ] {
        let (mut blocks, mut tuples, mut err) = (0.0f64, 0.0f64, 0.0f64);
        for trial in 0..scale.trials {
            let mut rng = scale.rng(&format!("{ID}/val/{mode:?}"), trial);
            let file = build_file(&spec, n, Layout::paper_partial(), DEFAULT_BLOCKING, &mut rng);
            let full = file.sorted_values();
            let config = CvbConfig {
                buckets: bins,
                target_f,
                gamma: 0.05,
                schedule: Schedule::Doubling { initial_blocks: (file.num_blocks() / 100).max(2) },
                validation: mode,
                max_block_fraction: 1.0,
            };
            let result = cvb::run(&file, &config, &mut rng);
            blocks += result.blocks_sampled as f64;
            tuples += result.tuples_sampled as f64;
            err +=
                fractional_max_error(result.histogram.separators(), &result.sample_sorted, &full)
                    .max;
        }
        let tr = scale.trials as f64;
        t.row(vec![
            format!("{mode:?}"),
            format!("{:.0}", blocks / tr),
            pct(tuples / tr / n as f64),
            format!("{:.3}", err / tr),
            note.into(),
        ]);
    }
    t
}

fn structure_ablation(scale: &Scale) -> ResultTable {
    let n = scale.n.min(1_000_000);
    let k = 100usize;
    let spec = DataSpec::Zipf { z: 1.0, domain: zipf_domain(n) };
    let mut rng = scale.rng(&format!("{ID}/structure"), 0);
    let mut sorted = spec.generate(n, &mut rng).values;
    sorted.sort_unstable();

    let eh = EquiHeightHistogram::from_sorted(&sorted, k);
    let ew = EquiWidthHistogram::from_sorted(&sorted, k);
    let ch = CompressedHistogram::from_sorted(&sorted, k);
    let eh_est = RangeEstimator::new(&eh);

    // Random range queries over the value domain.
    let (lo, hi) = (sorted[0], *sorted.last().expect("non-empty"));
    let queries = 2_000usize;
    let (mut sums, mut maxes) = ([0.0f64; 3], [0.0f64; 3]);
    let mut eq_err = [0.0f64; 3];
    for _ in 0..queries {
        let a = rng.gen_range(lo..=hi);
        let b = rng.gen_range(lo..=hi);
        let (x, y) = (a.min(b), a.max(b));
        let truth = true_range_count(&sorted, x, y) as f64;
        let errs = [
            (eh_est.estimate_range(x, y) - truth).abs(),
            (ew.estimate_range(x, y) - truth).abs(),
            (ch.estimate_range(x, y) - truth).abs(),
        ];
        for i in 0..3 {
            sums[i] += errs[i];
            maxes[i] = maxes[i].max(errs[i]);
        }
        // Point queries on a random existing value.
        let v = sorted[rng.gen_range(0..sorted.len())];
        let point_truth = true_range_count(&sorted, v, v) as f64;
        eq_err[0] += (eh_est.estimate_range(v, v) - point_truth).abs();
        eq_err[1] += (ew.estimate_range(v, v) - point_truth).abs();
        eq_err[2] += (ch.estimate_eq(v) - point_truth).abs();
    }

    let mut t = ResultTable::new(
        format!(
            "Ablation 3: histogram structure at equal budget k={k} (Zipf Z=1, N={n}, \
             {queries} random ranges + point queries)"
        ),
        &["structure", "mean abs range err", "max abs range err", "mean abs point err"],
    );
    for (i, name) in ["equi-height", "equi-width", "compressed"].iter().enumerate() {
        t.row(vec![
            (*name).into(),
            format!("{:.0}", sums[i] / queries as f64),
            format!("{:.0}", maxes[i]),
            format!("{:.1}", eq_err[i] / queries as f64),
        ]);
    }
    t
}

fn replacement_ablation(scale: &Scale) -> ResultTable {
    let n = scale.n.min(1_000_000);
    let k = 100usize;
    let data: Vec<i64> = (0..n as i64).collect();
    let rates = [0.01f64, 0.05, 0.2];

    let mut t = ResultTable::new(
        format!("Ablation 4: with vs without replacement (distinct values, k={k}, N={n})"),
        &["sample rate", "f (with repl)", "f (without repl)", "ratio"],
    );
    for &rate in &rates {
        let r = (n as f64 * rate) as usize;
        let (mut fw, mut fo) = (0.0f64, 0.0f64);
        for trial in 0..scale.trials {
            let mut rng = scale.rng(&format!("{ID}/repl/{rate}"), trial);
            let s1 = sampling::with_replacement(&data, r, &mut rng);
            let h1 = EquiHeightHistogram::from_unsorted_sample(s1, k, n);
            fw += max_error_against(&h1, &data).relative_max();
            let s2 = sampling::without_replacement(&data, r, &mut rng);
            let h2 = EquiHeightHistogram::from_unsorted_sample(s2, k, n);
            fo += max_error_against(&h2, &data).relative_max();
        }
        let tr = scale.trials as f64;
        t.row(vec![
            pct(rate),
            format!("{:.4}", fw / tr),
            format!("{:.4}", fo / tr),
            format!("{:.2}", (fw / tr) / (fo / tr).max(1e-12)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_tables_produced() {
        let scale = Scale { n: 80_000, trials: 1, seed: 71, full: false };
        let tables = run(&scale);
        assert_eq!(tables.len(), 5);
        assert_eq!(tables[0].rows.len(), 5, "five schedules");
        assert_eq!(tables[1].rows.len(), 2, "two validation modes");
        assert_eq!(tables[2].rows.len(), 3, "three structures");
        assert_eq!(tables[3].rows.len(), 3, "three rates");
        assert_eq!(tables[4].rows.len(), 6, "three layouts x two strategies");
    }

    #[test]
    fn double_sampling_estimates_larger_deff_on_clustering() {
        let scale = Scale { n: 100_000, trials: 2, seed: 83, full: false };
        let t = strategy_ablation(&scale);
        // deff column of the "double" rows, in layout order.
        let deffs: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[1] == "double")
            .map(|r| r[5].parse().expect("numeric"))
            .collect();
        assert_eq!(deffs.len(), 3);
        assert!(deffs[2] > deffs[0], "clustered {} vs random {}", deffs[2], deffs[0]);
    }

    #[test]
    fn equi_width_loses_on_skew() {
        let scale = Scale { n: 120_000, trials: 1, seed: 73, full: false };
        let t = structure_ablation(&scale);
        let mean_eh: f64 = t.rows[0][1].parse().expect("numeric");
        let mean_ew: f64 = t.rows[1][1].parse().expect("numeric");
        assert!(
            mean_ew > 2.0 * mean_eh.max(1.0),
            "equi-width {mean_ew} should be much worse than equi-height {mean_eh}"
        );
        // Compressed wins point queries outright.
        let point_ch: f64 = t.rows[2][3].parse().expect("numeric");
        let point_eh: f64 = t.rows[0][3].parse().expect("numeric");
        assert!(point_ch <= point_eh + 1e-9, "compressed {point_ch} vs equi-height {point_eh}");
    }

    #[test]
    fn replacement_modes_are_equivalent() {
        let scale = Scale { n: 100_000, trials: 3, seed: 79, full: false };
        let t = replacement_ablation(&scale);
        for row in &t.rows {
            let ratio: f64 = row[3].parse().expect("numeric");
            assert!((0.4..2.5).contains(&ratio), "rate {}: ratio {ratio}", row[0]);
        }
    }
}
