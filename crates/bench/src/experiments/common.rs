//! Helpers shared by the data-driven figure reproductions.

use rand::Rng;

use samplehist_data::DataSpec;
use samplehist_storage::{HeapFile, Layout};

/// The blocking factor used unless a figure sweeps it: 64-byte records on
/// 8 KB pages.
pub const DEFAULT_BLOCKING: usize = 128;

/// The paper's Zipf domain, scaled: enough candidate values that the
/// realized distinct count is data-driven, not domain-capped.
pub fn zipf_domain(n: u64) -> usize {
    ((n / 10).max(10_000)) as usize
}

/// Build the heap file for a figure: generate `spec`, place it with
/// `layout`, pack `blocking` tuples per page.
pub fn build_file(
    spec: &DataSpec,
    n: u64,
    layout: Layout,
    blocking: usize,
    rng: &mut impl Rng,
) -> HeapFile {
    let dataset = spec.generate(n, rng);
    HeapFile::with_layout(dataset.values, blocking, layout, rng)
}

/// Format a fraction as a percentage with sensible precision.
pub fn pct(x: f64) -> String {
    if x >= 0.1 {
        format!("{:.1}%", x * 100.0)
    } else {
        format!("{:.2}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplehist_core::BlockSource;

    #[test]
    fn build_file_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = DataSpec::Zipf { z: 2.0, domain: 1000 };
        let f = build_file(&spec, 10_000, Layout::Random, 100, &mut rng);
        assert_eq!(f.num_tuples(), 10_000);
        assert_eq!(f.num_blocks(), 100);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.012), "1.20%");
    }

    #[test]
    fn zipf_domain_floors() {
        assert_eq!(zipf_domain(2_000_000), 200_000);
        assert_eq!(zipf_domain(50_000), 10_000);
    }
}
