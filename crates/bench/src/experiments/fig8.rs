//! Figure 8: required sampling vs record size (max error ≤ 0.1, Z = 2,
//! fixed row count). Bigger records mean fewer tuples per 8 KB page, so
//! the same *tuple* requirement costs proportionally more *pages* — the
//! paper: "as predicted, the required amount of sampling grows linearly
//! with the record size".

use samplehist_data::DataSpec;
use samplehist_storage::{tuples_per_page, Layout, DEFAULT_PAGE_BYTES};

use super::common::{build_file, zipf_domain};
use crate::harness::{required_sampling, sorted_copy};
use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "fig8_record_size";

/// Target max error, as in the figure caption.
const TARGET_F: f64 = 0.1;

/// The paper's record-size sweep.
const RECORD_BYTES: [usize; 4] = [16, 32, 64, 128];

/// Run the experiment.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    // The paper fixes one million records for this sweep; scale along.
    let n = (scale.n / 2).max(100_000);
    let bins = scale.paper_bins();
    let spec = DataSpec::Zipf { z: 2.0, domain: zipf_domain(n) };

    let mut t = ResultTable::new(
        format!("Figure 8: required sampling vs record size (max error ≤ {TARGET_F}, Z=2, N={n})"),
        &["record bytes", "tuples/page", "pages needed", "bytes read (MB)", "tuples needed"],
    );
    for &record in &RECORD_BYTES {
        let b = tuples_per_page(DEFAULT_PAGE_BYTES, record);
        let mut rng = scale.rng(ID, record as u32);
        let file = build_file(&spec, n, Layout::Random, b, &mut rng);
        let full = sorted_copy(&file);
        let req = required_sampling(&file, &full, bins, TARGET_F, scale, &format!("{ID}/{record}"));
        t.row(vec![
            record.to_string(),
            b.to_string(),
            format!("{:.0}", req.mean_blocks),
            format!("{:.2}", req.mean_blocks * DEFAULT_PAGE_BYTES as f64 / 1.0e6),
            format!("{:.0}", req.mean_tuples),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pages needed grow ~linearly with record size while the tuple
    /// requirement stays ~flat (random layout: tuples are what matter).
    #[test]
    fn linear_in_record_size() {
        let scale = Scale { n: 240_000, trials: 2, seed: 23, full: false };
        let tables = run(&scale);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 4);
        let pages: Vec<f64> = rows.iter().map(|r| r[2].parse::<f64>().expect("numeric")).collect();
        let tuples: Vec<f64> = rows.iter().map(|r| r[4].parse::<f64>().expect("numeric")).collect();
        assert!(pages.windows(2).all(|w| w[1] > w[0]), "pages grow: {pages:?}");
        // 16B -> 128B is 8x the record size: pages should grow ~8x.
        let growth = pages[3] / pages[0];
        assert!((4.0..14.0).contains(&growth), "page growth = {growth}");
        // Tuple requirement flat within a factor 2.
        let tmax = tuples.iter().cloned().fold(0.0, f64::max);
        let tmin = tuples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(tmax / tmin < 2.0, "tuples should be ~flat: {tuples:?}");
    }
}
