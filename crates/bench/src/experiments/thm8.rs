//! Theorem 8: the distinct-value estimation lower bound, verified
//! empirically against every estimator in the crate.
//!
//! Two tables:
//! 1. The analytic floor `√(n·ln(1/γ)/r)` across sampling rates,
//!    including the Haas-et-al consistency point the paper cites
//!    (r = 0.2·n, γ = 0.5 ⇒ error ≥ 1.86).
//! 2. The constructive wall: for the calibrated hard pair (LOW: d = 1;
//!    HIGH: d = 1 + j), we (a) measure how often a real sample of HIGH
//!    actually misses every special tuple (should be ≈ γ), and (b) feed
//!    every estimator the indistinguishable all-zero sample and report
//!    its forced worst-case ratio error on the pair — nobody beats
//!    `√(d_high)`.

use rand::Rng;

use samplehist_core::distinct::adversarial::{theorem8_error_floor, HardPair};
use samplehist_core::distinct::error::ratio_error;
use samplehist_core::distinct::{all_estimators, FrequencyProfile};

use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "thm8_lower_bound";

/// Run the experiment.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    vec![floor_table(scale), wall_table(scale)]
}

fn floor_table(scale: &Scale) -> ResultTable {
    let n = scale.n;
    let mut t = ResultTable::new(
        format!("Theorem 8 analytic floor √(n·ln(1/γ)/r) at N={n}"),
        &["sample r/n", "γ=0.5", "γ=0.1", "γ=0.01", "note"],
    );
    for rate in [0.01f64, 0.05, 0.2, 0.5] {
        let r = (n as f64 * rate) as u64;
        let floor = |gamma: f64| theorem8_error_floor(n, r, gamma);
        let note = if (rate - 0.2).abs() < 1e-9 {
            "paper: Haas et al. saw max error 2.86 here; γ=0.5 forces ≥1.86"
        } else {
            ""
        };
        t.row(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.2}", floor(0.5)),
            format!("{:.2}", floor(0.1)),
            format!("{:.2}", floor(0.01)),
            note.into(),
        ]);
    }
    t
}

fn wall_table(scale: &Scale) -> ResultTable {
    // Keep the empirical part affordable: the wall is scale-free.
    let n = scale.n.min(500_000);
    let r = n / 50; // 2% sample
    let gamma = 0.3;
    let pair = HardPair::new(n, r, gamma);

    // (a) Empirical miss probability: sample HIGH with replacement and
    // count all-zero samples.
    let trials = 400u32;
    let mut rng = scale.rng(ID, 0);
    let mut misses = 0u32;
    for _ in 0..trials {
        // P(miss) = (1 - j/n)^r; simulate by drawing the number of
        // special hits ~ Binomial(r, j/n) via direct trials on the
        // special probability only (avoid materializing n tuples).
        let p_special = pair.j as f64 / n as f64;
        let mut hit = false;
        for _ in 0..r {
            if rng.gen::<f64>() < p_special {
                hit = true;
                break;
            }
        }
        if !hit {
            misses += 1;
        }
    }
    let empirical_miss = misses as f64 / trials as f64;

    let mut t = ResultTable::new(
        format!(
            "Theorem 8 constructive wall: N={n}, r={r}, γ={gamma} -> j={}, d_low=1, d_high={}; \
             empirical miss rate {:.3} (analytic {:.3}); forced error floor √d_high = {:.1}",
            pair.j,
            pair.d_high(),
            empirical_miss,
            pair.miss_probability(),
            pair.forced_error()
        ),
        &["estimator", "answer on all-zero sample", "error vs LOW", "error vs HIGH", "worst"],
    );

    // (b) Every estimator against the indistinguishable sample.
    let profile = FrequencyProfile::from_pairs(vec![(r, 1)]);
    for est in all_estimators() {
        let answer = est.estimate(&profile, n);
        let e_low = ratio_error(answer, pair.d_low());
        let e_high = ratio_error(answer, pair.d_high());
        t.row(vec![
            est.name().into(),
            if answer.is_finite() { format!("{answer:.1}") } else { "unstable".into() },
            format!("{e_low:.1}"),
            format!("{e_high:.1}"),
            format!("{:.1}", e_low.max(e_high)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haas_consistency_row_present() {
        let scale = Scale { n: 1_000_000, trials: 1, seed: 37, full: false };
        let t = floor_table(&scale);
        let row = t.rows.iter().find(|r| !r[4].is_empty()).expect("annotated row");
        let floor: f64 = row[1].parse().expect("numeric");
        assert!((floor - 1.86).abs() < 0.01, "floor = {floor}");
    }

    #[test]
    fn nobody_beats_the_wall() {
        let scale = Scale { n: 300_000, trials: 1, seed: 41, full: false };
        let t = wall_table(&scale);
        // Recover the floor from the title.
        let floor: f64 =
            t.title.split("√d_high = ").nth(1).expect("title formatted").parse().expect("numeric");
        for row in &t.rows {
            let worst: f64 = row[4].parse().expect("numeric");
            assert!(worst + 0.6 >= floor, "{} beat the wall: {worst} < {floor}", row[0]);
        }
    }

    #[test]
    fn empirical_miss_rate_matches_gamma() {
        let scale = Scale { n: 300_000, trials: 1, seed: 43, full: false };
        let t = wall_table(&scale);
        let title = &t.title;
        let emp: f64 = title
            .split("empirical miss rate ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .expect("formatted")
            .parse()
            .expect("numeric");
        assert!((emp - 0.3).abs() < 0.12, "empirical miss = {emp}");
    }
}
