//! Figure 7: the effect of physical clustering — error vs sampling rate
//! for the random and partially-clustered layouts (Z = 2). Clustered
//! duplicates make whole pages redundant, so the same error needs a
//! higher sampling rate; the paper reads this as the adaptive algorithm
//! "correctly detecting correlation and therefore sampling more".
//!
//! A second table runs the actual **CVB algorithm** on all three layouts
//! and compares its stopping point against the oracle (the ground-truth
//! crossing measured by the harness): the Section 7(b) convergence claim
//! plus the ≤2× oversampling argument of Section 4.2.

use samplehist_core::error::fractional_max_error;
use samplehist_core::sampling::{cvb, BlockSource, CvbConfig, Schedule, ValidationMode};
use samplehist_data::DataSpec;
use samplehist_storage::Layout;

use super::common::{build_file, pct, zipf_domain, DEFAULT_BLOCKING};
use crate::harness::{error_vs_rate, required_sampling, sorted_copy};
use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "fig7_clustering_effect";

/// The sampling rates on the x-axis.
const RATES: [f64; 6] = [0.01, 0.02, 0.04, 0.08, 0.16, 0.32];

/// CVB's target error for the convergence table.
const CVB_F: f64 = 0.2;

fn layouts() -> Vec<(&'static str, Layout)> {
    vec![
        ("random", Layout::Random),
        ("partially clustered (20%)", Layout::paper_partial()),
        ("fully clustered", Layout::Clustered),
    ]
}

/// Run the experiment.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    let bins = scale.paper_bins();
    let n = scale.n;
    let spec = DataSpec::Zipf { z: 2.0, domain: zipf_domain(n) };

    // Table 1: error-vs-rate curves per layout.
    let mut curves_table = ResultTable::new(
        format!("Figure 7: max error f' vs sampling rate by layout (Z=2, k={bins}, N={n})"),
        &["rate", "random", "partial (20%)", "clustered"],
    );
    let mut curves = Vec::new();
    for (name, layout) in layouts() {
        let mut rng = scale.rng(ID, name.len() as u32);
        let file = build_file(&spec, n, layout, DEFAULT_BLOCKING, &mut rng);
        let full = sorted_copy(&file);
        curves.push(error_vs_rate(&file, &full, bins, &RATES, scale, &format!("{ID}/{name}")));
    }
    for (i, &rate) in RATES.iter().enumerate() {
        curves_table.row(vec![
            pct(rate),
            format!("{:.3}", curves[0][i].mean_error),
            format!("{:.3}", curves[1][i].mean_error),
            format!("{:.3}", curves[2][i].mean_error),
        ]);
    }

    // Table 2: the CVB algorithm itself vs the oracle stopping point.
    // NB: CVB must pay a *verification tax* the oracle does not — its
    // stopping rule only fires once the cross-validation sample is big
    // enough to certify f (Theorem 7), so CVB/oracle > 1 even on random
    // layouts. The paper's "within 2x" claim is against the blocks needed
    // for certification, not against ground truth nobody can see.
    let mut cvb_table = ResultTable::new(
        format!(
            "CVB convergence by layout (target f={CVB_F}, k={bins}, doubling schedule): \
             adapts to clustering; ratio to oracle includes the verification tax"
        ),
        &[
            "layout",
            "CVB blocks",
            "CVB rate",
            "converged",
            "true error of result",
            "oracle rate (ground truth)",
            "CVB / oracle tuples",
        ],
    );
    for (name, layout) in layouts() {
        let mut blocks_sum = 0.0;
        let mut tuples_sum = 0.0;
        let mut err_sum = 0.0;
        let mut converged_all = true;
        let mut file_for_oracle = None;
        for trial in 0..scale.trials {
            let mut rng = scale.rng(&format!("{ID}/cvb/{name}"), trial);
            let file = build_file(&spec, n, layout, DEFAULT_BLOCKING, &mut rng);
            let full = sorted_copy(&file);
            let config = CvbConfig {
                buckets: bins,
                target_f: CVB_F,
                gamma: 0.05,
                schedule: Schedule::Doubling { initial_blocks: (file.num_blocks() / 100).max(2) },
                validation: ValidationMode::AllTuples,
                max_block_fraction: 1.0,
            };
            let result = cvb::run(&file, &config, &mut rng);
            blocks_sum += result.blocks_sampled as f64;
            tuples_sum += result.tuples_sampled as f64;
            err_sum +=
                fractional_max_error(result.histogram.separators(), &result.sample_sorted, &full)
                    .max;
            converged_all &= result.converged || result.exhausted;
            file_for_oracle = Some((file, full));
        }
        let t = scale.trials as f64;
        let (file, full) = file_for_oracle.expect("at least one trial");
        let oracle =
            required_sampling(&file, &full, bins, CVB_F, scale, &format!("{ID}/oracle/{name}"));
        cvb_table.row(vec![
            name.into(),
            format!("{:.0}", blocks_sum / t),
            pct(tuples_sum / t / n as f64),
            if converged_all { "yes" } else { "capped" }.into(),
            format!("{:.3}", err_sum / t),
            pct(oracle.mean_rate),
            format!("{:.2}x", (tuples_sum / t) / oracle.mean_tuples.max(1.0)),
        ]);
    }

    vec![curves_table, cvb_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_needs_more_sampling() {
        let scale = Scale { n: 100_000, trials: 2, seed: 19, full: false };
        let tables = run(&scale);
        let rows = &tables[0].rows;
        // At a mid rate, the clustered layout's error exceeds random's.
        let mid = &rows[2]; // 4%
        let random: f64 = mid[1].parse().expect("numeric");
        let clustered: f64 = mid[3].parse().expect("numeric");
        assert!(
            clustered > random,
            "clustered ({clustered}) should be worse than random ({random}) at equal rate"
        );

        // CVB reads more of the clustered file than the random one.
        let cvb_rows = &tables[1].rows;
        let parse_pct = |s: &str| s.trim_end_matches('%').parse::<f64>().expect("numeric");
        let cvb_random = parse_pct(&cvb_rows[0][2]);
        let cvb_clustered = parse_pct(&cvb_rows[2][2]);
        assert!(
            cvb_clustered > cvb_random,
            "CVB should adapt: clustered {cvb_clustered}% vs random {cvb_random}%"
        );
    }
}
