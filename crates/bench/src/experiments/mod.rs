//! One module per reproduced paper artifact. Each exposes
//! `ID` (the experiment identifier used for CSV files) and
//! `run(&Scale) -> Vec<ResultTable>`.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`ex1`] | Examples 1–2 + Theorems 1/3 error-metric comparison |
//! | [`ex3`] | Example 3: Corollary 1 trade-off table |
//! | [`ex4`] | Example 4: comparison with Gibbons–Matias–Poosala |
//! | [`fig3_4`] | Figures 3–4: sampling rate / blocks vs N |
//! | [`fig5`] | Figure 5: error vs rate for Z ∈ {0, 2, 4} |
//! | [`fig6`] | Figure 6: required rate vs number of bins |
//! | [`fig7`] | Figure 7: random vs partially clustered layouts (+ CVB) |
//! | [`fig8`] | Figure 8: required sampling vs record size |
//! | [`fig9_12`] | Figures 9–12: distinct-value estimation |
//! | [`thm7`] | Theorem 7: stopping-rule reliability |
//! | [`thm8`] | Theorem 8: the distinct-estimation lower bound |
//! | [`ablations`] | design-choice ablations (schedules, validation, structures, replacement) |

pub mod ablations;
pub mod common;
pub mod ex1;
pub mod ex3;
pub mod ex4;
pub mod fig3_4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9_12;
pub mod thm7;
pub mod thm8;

use crate::output::ResultTable;
use crate::scale::Scale;

pub use crate::output::emit as emit_tables;

/// Run every experiment in paper order, returning `(id, tables)` pairs.
pub fn run_all(scale: &Scale) -> Vec<(&'static str, Vec<ResultTable>)> {
    vec![
        (ex1::ID, ex1::run(scale)),
        (ex3::ID, ex3::run(scale)),
        (ex4::ID, ex4::run(scale)),
        (fig3_4::ID, fig3_4::run(scale)),
        (fig5::ID, fig5::run(scale)),
        (fig6::ID, fig6::run(scale)),
        (fig7::ID, fig7::run(scale)),
        (fig8::ID, fig8::run(scale)),
        (fig9_12::ID, fig9_12::run(scale)),
        (thm7::ID, thm7::run(scale)),
        (thm8::ID, thm8::run(scale)),
        (ablations::ID, ablations::run(scale)),
    ]
}
