//! Figures 9–12: distinct-value estimation vs sampling rate on the
//! paper's two test distributions.
//!
//! * Figures 9/10 plot the estimated distinct count (`numDVEst`, the
//!   GEE estimator), the distinct count in the sample (`numDVSamp`), and
//!   the truth (`numDVReal`) against the sampling rate, for Zipf(Z=2)
//!   and Unif/Dup respectively.
//! * Figures 11/12 plot the corresponding estimation errors; the paper's
//!   proposed **rel-error** `(d − d̂)/n` is the one that stays small.
//!
//! The paper's observation: "prediction is far more accurate for the
//! Zipfian distribution … since Zipf has fewer distinct values that are
//! easily detected by a relatively small sample; however, in both cases
//! … the estimation error for the proposed metric is small."

use samplehist_core::distinct::error::{abs_rel_error, ratio_error};
use samplehist_core::distinct::{DistinctEstimator, FrequencyProfile, Gee, HybridGee};
use samplehist_core::sampling::BlockSource;
use samplehist_data::{distinct_count, DataSpec};
use samplehist_storage::{BlockSampler, Layout};

use super::common::{build_file, pct, zipf_domain, DEFAULT_BLOCKING};
use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "fig9_12_distinct_values";

/// Sampling rates on the x-axis.
const RATES: [f64; 7] = [0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2];

/// Run the experiment.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    let n = scale.n;
    let mut tables = Vec::new();
    for (fig_counts, fig_err, spec) in [
        ("Figure 9", "Figure 11", DataSpec::Zipf { z: 2.0, domain: zipf_domain(n) }),
        ("Figure 10", "Figure 12", DataSpec::UnifDup { copies: 100 }),
    ] {
        let (counts, errors) = one_distribution(scale, &spec, fig_counts, fig_err);
        tables.push(counts);
        tables.push(errors);
    }
    tables
}

fn one_distribution(
    scale: &Scale,
    spec: &DataSpec,
    fig_counts: &str,
    fig_err: &str,
) -> (ResultTable, ResultTable) {
    let n = scale.n;
    let label = spec.label();

    // Ground truth (layout-independent).
    let mut rng = scale.rng(&format!("{ID}/{label}/truth"), 0);
    let file = build_file(spec, n, Layout::Random, DEFAULT_BLOCKING, &mut rng);
    let mut sorted = file.sorted_values();
    let d_real = distinct_count(&sorted);
    sorted.clear();

    let mut counts = ResultTable::new(
        format!(
            "{fig_counts}: distinct values vs sampling rate ({label}, N={n}, numDVReal={d_real})"
        ),
        &["rate", "numDVSamp", "numDVEst (GEE)", "numDVEst (Hybrid)", "numDVReal"],
    );
    let mut errors = ResultTable::new(
        format!("{fig_err}: distinct-value estimation error vs rate ({label})"),
        &["rate", "GEE ratio-err", "GEE |rel-err|", "Hybrid ratio-err", "Hybrid |rel-err|"],
    );

    for &rate in &RATES {
        let mut samp = 0.0f64;
        let mut gee = 0.0f64;
        let mut hybrid = 0.0f64;
        for trial in 0..scale.trials {
            let mut rng = scale.rng(&format!("{ID}/{label}/{rate}"), trial);
            let g = ((file.num_blocks() as f64 * rate).ceil() as usize).clamp(1, file.num_blocks());
            let mut sampler = BlockSampler::new();
            let mut sample = sampler.sample(&file, g, &mut rng);
            sample.sort_unstable();
            let profile = FrequencyProfile::from_sorted_sample(&sample);
            samp += profile.distinct_in_sample() as f64;
            gee += Gee.estimate(&profile, n);
            hybrid += HybridGee::default().estimate(&profile, n);
        }
        let t = scale.trials as f64;
        let (samp, gee, hybrid) = (samp / t, gee / t, hybrid / t);
        counts.row(vec![
            pct(rate),
            format!("{samp:.0}"),
            format!("{gee:.0}"),
            format!("{hybrid:.0}"),
            d_real.to_string(),
        ]);
        errors.row(vec![
            pct(rate),
            format!("{:.2}", ratio_error(gee, d_real)),
            format!("{:.4}", abs_rel_error(gee, d_real, n)),
            format!("{:.2}", ratio_error(hybrid, d_real)),
            format!("{:.4}", abs_rel_error(hybrid, d_real, n)),
        ]);
    }
    (counts, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_tables_with_expected_structure() {
        let scale = Scale { n: 200_000, trials: 2, seed: 29, full: false };
        let tables = run(&scale);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert_eq!(t.rows.len(), RATES.len());
        }
        assert!(tables[0].title.contains("Figure 9"));
        assert!(tables[3].title.contains("Figure 12"));
    }

    /// The paper's qualitative claims: (a) estimates approach the truth
    /// as the rate grows; (b) rel-error is small everywhere, and smaller
    /// for Zipf than the worst of Unif/Dup's ratio errors would suggest.
    #[test]
    fn rel_error_is_small_and_estimates_converge() {
        let scale = Scale { n: 200_000, trials: 2, seed: 31, full: false };
        let tables = run(&scale);

        for pair in [(0usize, 1usize), (2, 3)] {
            let counts = &tables[pair.0];
            let errors = &tables[pair.1];
            let d_real: f64 = counts.rows[0][4].parse().expect("numeric");
            // GEE at the top rate is within 2.5x of the truth.
            let top = &counts.rows[RATES.len() - 1];
            let gee_top: f64 = top[2].parse().expect("numeric");
            let ratio = (gee_top / d_real).max(d_real / gee_top);
            assert!(ratio < 2.5, "{}: GEE {gee_top} vs real {d_real}", counts.title);
            // rel-error ≤ 0.15 at every rate (the paper's headline).
            for row in &errors.rows {
                let rel: f64 = row[2].parse().expect("numeric");
                assert!(rel <= 0.15, "{}: rel-err {rel} at {}", errors.title, row[0]);
            }
        }
    }
}
