//! Example 3: the Corollary 1 trade-off table — the "multi-functional"
//! use of the bound (solve for sample size, for histogram size, or for
//! error).

use samplehist_core::bounds::{
    corollary1_error, corollary1_max_buckets, corollary1_sample_size, SamplingPlan,
};

use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "ex3_bound_tradeoffs";

/// Run the experiment.
pub fn run(_scale: &Scale) -> Vec<ResultTable> {
    vec![paper_bullets(), sample_size_grid(), plan_table()]
}

fn fmt_mega(x: f64) -> String {
    if x >= 1.0e6 {
        format!("{:.2}M", x / 1.0e6)
    } else if x >= 1.0e3 {
        format!("{:.0}K", x / 1.0e3)
    } else {
        format!("{x:.0}")
    }
}

/// The three worked bullets of Example 3, verbatim.
fn paper_bullets() -> ResultTable {
    let gamma = 0.01;
    let mut t = ResultTable::new(
        "Example 3: the three directions of Corollary 1 (γ = 0.01)",
        &["question", "parameters", "answer", "paper says"],
    );
    // "Even for n as large as 1Gig, ln(2n/γ) is roughly 20" — the bullets
    // quote the ln≈20 regime, i.e. n around 10M–100M.
    let r1 = corollary1_sample_size(500, 0.2, 10_000_000, gamma);
    t.row(vec![
        "sample size r".into(),
        "k=500, f=0.2 (n=10M; ~n-independent)".into(),
        fmt_mega(r1),
        "~1M".into(),
    ]);
    let r2 = corollary1_sample_size(100, 0.1, 10_000_000, gamma);
    t.row(vec![
        "sample size r".into(),
        "k=100, f=0.1 (n=10M; ~n-independent)".into(),
        fmt_mega(r2),
        "~800K".into(),
    ]);
    let k = corollary1_max_buckets(1_000_000, 0.25, 20_000_000, gamma);
    t.row(vec![
        "max histogram size k".into(),
        "r=1M, n=20M, f=0.25".into(),
        format!("{k:.0}"),
        "≤ ~800".into(),
    ]);
    let f = corollary1_error(800_000, 200, 25_000_000, gamma);
    t.row(vec![
        "guaranteed error f".into(),
        "r=800K, n=25M, k=200".into(),
        format!("{:.1}%", f * 100.0),
        "~14%".into(),
    ]);
    t
}

/// A (k, f) grid of required sample sizes, demonstrating linearity in k
/// and the 1/f² law — and near-independence from n.
fn sample_size_grid() -> ResultTable {
    let gamma = 0.01;
    let mut t = ResultTable::new(
        "Corollary 1 sample sizes r(k, f) at γ = 0.01 (rows ~independent of n)",
        &["k", "f=0.05", "f=0.10", "f=0.20", "f=0.50", "n=10M vs n=1G growth"],
    );
    for k in [50usize, 100, 200, 500, 1000] {
        let r = |f: f64, n: u64| corollary1_sample_size(k, f, n, gamma);
        let growth = r(0.1, 1 << 30) / r(0.1, 10_000_000);
        t.row(vec![
            k.to_string(),
            fmt_mega(r(0.05, 10_000_000)),
            fmt_mega(r(0.10, 10_000_000)),
            fmt_mega(r(0.20, 10_000_000)),
            fmt_mega(r(0.50, 10_000_000)),
            format!("{:.2}x", growth),
        ]);
    }
    t
}

/// Resolved plans at the scale this repository actually runs.
fn plan_table() -> ResultTable {
    let mut t = ResultTable::new(
        "Resolved sampling plans (γ = 0.01) — when is sampling worth it?",
        &["n", "k", "f", "record sample r", "rate", "verdict"],
    );
    for (n, k, f) in [
        (2_000_000u64, 100usize, 0.10f64),
        (2_000_000, 600, 0.10),
        (10_000_000, 600, 0.10),
        (10_000_000, 600, 0.20),
        (100_000, 600, 0.05),
    ] {
        let plan = SamplingPlan::new(n, k, f, 0.01);
        t.row(vec![
            fmt_mega(n as f64),
            k.to_string(),
            format!("{f}"),
            fmt_mega(plan.record_sample_size as f64),
            format!("{:.1}%", plan.sampling_rate() * 100.0),
            if plan.sampling_is_pointless() { "full scan cheaper" } else { "sample" }.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[1].rows.len(), 5);
        assert!(!tables[2].rows.is_empty());
    }

    #[test]
    fn grid_shows_linearity_in_k() {
        let g = sample_size_grid();
        // k column doubles 100 -> 200: the f=0.10 column must double.
        let parse = |s: &str| -> f64 {
            let (num, mult) = if let Some(m) = s.strip_suffix('M') {
                (m, 1.0e6)
            } else if let Some(kk) = s.strip_suffix('K') {
                (kk, 1.0e3)
            } else {
                (s, 1.0)
            };
            num.parse::<f64>().expect("numeric") * mult
        };
        let r100 = parse(&g.rows[1][2]);
        let r200 = parse(&g.rows[2][2]);
        assert!((r200 / r100 - 2.0).abs() < 0.05, "{r100} -> {r200}");
    }

    #[test]
    fn tiny_relation_with_many_bins_prefers_full_scan() {
        let t = plan_table();
        let last = t.rows.last().expect("rows");
        assert_eq!(last[5], "full scan cheaper");
    }
}
