//! Theorem 7 — the cross-validation stopping rule, validated empirically.
//!
//! The theorem is two-sided: with a validation sample of size `s`,
//! partitioning it by a candidate histogram's separators and testing
//! `δ_S < f·s/k`
//!
//! * part 1: a histogram whose true error **exceeds 2f·n/k** passes the
//!   test with probability ≤ γ when `s ≥ 4k·ln(1/γ)/f²` — the rule never
//!   stops too early;
//! * part 2: a histogram whose true error is **at most f·n/(2k)** fails
//!   with probability ≤ γ when `s ≥ 16k·ln(k/γ)/f²` — the rule never
//!   drags on forever.
//!
//! This experiment manufactures histograms pinned at each of the two
//! error levels (by blending the perfect separators with displaced ones),
//! draws many independent validation samples at the theorem's sizes, and
//! reports the observed false-stop / false-continue rates against γ.

use rand::Rng;

use samplehist_core::bounds::{theorem7_lower_validation_size, theorem7_upper_validation_size};
use samplehist_core::error::max_error_against;
use samplehist_core::histogram::EquiHeightHistogram;
use samplehist_core::sampling;

use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "thm7_stopping_rule";

const K: usize = 25;
const F: f64 = 0.2;
const GAMMA: f64 = 0.05;

/// Run the experiment.
pub fn run(scale: &Scale) -> Vec<ResultTable> {
    let n = scale.n.min(1_000_000);
    let data: Vec<i64> = (0..n as i64).collect();
    let trials = 300u32;

    // A "bad" histogram: true deviation ≥ 2f·n/k, built by displacing a
    // block of separators; and a "good" one: deviation ≤ f·n/(2k), the
    // perfect histogram itself (deviation ~0 on duplicate-free data).
    let good = EquiHeightHistogram::from_sorted(&data, K);
    let bad = displaced_histogram(&data, K, 2.0 * F);
    let good_err = max_error_against(&good, &data).relative_max();
    let bad_err = max_error_against(&bad, &data).relative_max();
    assert!(good_err <= F / 2.0, "good histogram err {good_err}");
    assert!(bad_err >= 2.0 * F - 0.01, "bad histogram err {bad_err}"); // rank rounding

    let s1 = theorem7_upper_validation_size(K, F, GAMMA).ceil() as usize;
    let s2 = theorem7_lower_validation_size(K, F, GAMMA).ceil() as usize;

    let mut rng = scale.rng(ID, 0);
    let mut false_stops = 0u32; // bad histogram passes the test
    let mut false_continues = 0u32; // good histogram fails the test
    for _ in 0..trials {
        if validation_passes(&bad, &data, s1, &mut rng) {
            false_stops += 1;
        }
        if !validation_passes(&good, &data, s2, &mut rng) {
            false_continues += 1;
        }
    }

    let mut t = ResultTable::new(
        format!(
            "Theorem 7: stopping-rule reliability (k={K}, f={F}, γ={GAMMA}, N={n}, \
             {trials} validation draws each; good err={good_err:.3}, bad err={bad_err:.3})"
        ),
        &["direction", "validation size s", "observed failure rate", "theorem's bound γ"],
    );
    t.row(vec![
        "part 1: bad histogram passes (false stop)".into(),
        s1.to_string(),
        format!("{:.4}", false_stops as f64 / trials as f64),
        format!("{GAMMA}"),
    ]);
    t.row(vec![
        "part 2: good histogram fails (false continue)".into(),
        s2.to_string(),
        format!("{:.4}", false_continues as f64 / trials as f64),
        format!("{GAMMA}"),
    ]);
    vec![t]
}

/// The cross-validation test of the paper's step 4b/5: draw `s` tuples,
/// partition them by `h`'s separators, pass iff the max count deviation
/// is below `f·s/k`.
fn validation_passes(h: &EquiHeightHistogram, data: &[i64], s: usize, rng: &mut impl Rng) -> bool {
    let sample = sampling::with_replacement(data, s, rng);
    let mut sorted = sample;
    sorted.sort_unstable();
    let counts = samplehist_core::histogram::bucket_counts(&sorted, h.separators());
    let ideal = s as f64 / K as f64;
    let worst = counts.iter().map(|&c| (c as f64 - ideal).abs()).fold(0.0f64, f64::max);
    worst < F * s as f64 / K as f64
}

/// A histogram whose true max error is pinned at `target_rel` by moving a
/// run of separators so one bucket swallows `target_rel·n/k` extra
/// tuples.
fn displaced_histogram(data: &[i64], k: usize, target_rel: f64) -> EquiHeightHistogram {
    let perfect = EquiHeightHistogram::from_sorted(data, k);
    let n = data.len();
    let per = n / k;
    let shift = (target_rel * per as f64) as usize;
    let mut separators = perfect.separators().to_vec();
    // Move one interior separator down by `shift` ranks: its right bucket
    // gains `shift` tuples, its left loses them.
    let j = k / 2;
    let rank = (j + 1) * per;
    separators[j] = data[rank - shift];
    // Keep monotone (the shift is less than one bucket, so only the
    // immediate neighbor could conflict).
    if j > 0 {
        assert!(separators[j - 1] <= separators[j], "displacement too large");
    }
    EquiHeightHistogram::from_parts(
        separators,
        perfect.counts().to_vec(),
        perfect.min_value(),
        perfect.max_value(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_rates_respect_gamma() {
        let scale = Scale { n: 200_000, trials: 1, seed: 97, full: false };
        let tables = run(&scale);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let rate: f64 = row[2].parse().expect("numeric");
            // The theorem promises ≤ γ; allow binomial noise on 300
            // draws (σ ≈ 0.0126 at p = 0.05).
            assert!(rate <= GAMMA + 0.04, "{}: observed {rate}", row[0]);
        }
    }

    #[test]
    fn displaced_histogram_hits_its_target() {
        let data: Vec<i64> = (0..100_000).collect();
        let h = displaced_histogram(&data, K, 0.4);
        let err = max_error_against(&h, &data).relative_max();
        assert!((err - 0.4).abs() < 0.02, "err = {err}");
    }
}
