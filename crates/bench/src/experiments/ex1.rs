//! Examples 1–2 and Theorems 1/3: why Δavg / Δvar are misleading and the
//! max error metric is not.
//!
//! Three tables:
//! 1. Example 2's literal numbers (Δavg = 16.8, Δvar ≈ 27.3, Δmax = 80 on
//!    the 10-bucket histogram).
//! 2. Example 1's analytic worst-case factors (13.5× / ~2.8× / 1.05× at
//!    k = 1000, f = 0.05, t = 10).
//! 3. An **empirical** adversarial demonstration: for each metric we build
//!    a dataset + stored histogram whose *reported* error is the same
//!    `f·n/k` under that metric, then search all bucket-aligned range
//!    queries for the worst estimation error. Δavg-bounded histograms
//!    hide ~`f·n/2` of misplaced tuples, Δvar-bounded `~f·n·√(t/2k)`,
//!    Δmax-bounded only `f·n/k` — the paper's whole argument, measured.

use samplehist_core::bounds::range::{
    avg_bounded_envelope, max_bounded_envelope, perfect_envelope, var_bounded_envelope,
    WorstCaseFactors,
};
use samplehist_core::error::summarize_counts;
use samplehist_core::estimate::evaluate_range_query;
use samplehist_core::histogram::EquiHeightHistogram;

use crate::output::ResultTable;
use crate::scale::Scale;

/// Experiment identifier.
pub const ID: &str = "ex1_error_metrics";

/// Run the experiment.
pub fn run(_scale: &Scale) -> Vec<ResultTable> {
    vec![example_2_table(), example_1_table(), adversarial_table()]
}

fn example_2_table() -> ResultTable {
    let counts = [88u64, 101, 87, 88, 89, 180, 90, 88, 103, 86];
    let s = summarize_counts(&counts, 1000);
    let mut t = ResultTable::new(
        "Example 2: error metrics on the paper's 10-bucket histogram (n=1000)",
        &["metric", "measured", "paper reports"],
    );
    t.row(vec!["Δavg".into(), format!("{:.2}", s.delta_avg), "16.8".into()]);
    t.row(vec!["Δvar".into(), format!("{:.2}", s.delta_var), "27.5".into()]);
    t.row(vec!["Δmax".into(), format!("{:.2}", s.delta_max), "80.0".into()]);
    t
}

fn example_1_table() -> ResultTable {
    let (n, k, f, tq) = (1_000_000u64, 1000usize, 0.05f64, 10.0f64);
    let factors = WorstCaseFactors::new(f, k, tq);
    let perfect = perfect_envelope(n, k, tq);
    let avg = avg_bounded_envelope(n, k, tq, f);
    let var = var_bounded_envelope(n, k, tq, f);
    let max = max_bounded_envelope(n, k, tq, f);

    let mut t = ResultTable::new(
        format!(
            "Example 1 / Theorems 1+3: worst-case range-query error envelopes \
             (k={k}, f={f}, t={tq}, n={n})"
        ),
        &["histogram guarantee", "abs error bound", "rel error bound", "factor vs perfect"],
    );
    let mut row = |name: &str, e: samplehist_core::bounds::RangeErrorEnvelope, factor: f64| {
        t.row(vec![
            name.into(),
            format!("{:.0}", e.absolute),
            format!("{:.3}", e.relative),
            format!("{:.2}x", factor),
        ]);
    };
    row("perfect", perfect, 1.0);
    row("Δavg ≤ f·n/k (Thm 1.2, lower bd)", avg, factors.avg);
    row("Δvar ≤ f·n/k (Thm 1.3, lower bd)", var, factors.var);
    row("Δmax ≤ f·n/k (Thm 3, guarantee)", max, factors.max);
    t
}

/// A dataset + a stored histogram claiming n/k everywhere, with the true
/// bucket contents dictated by `counts`.
struct Adversary {
    data: Vec<i64>,
    hist: EquiHeightHistogram,
    bucket_width: i64,
}

impl Adversary {
    /// `counts[j]` values placed in the domain interval `(j·w, (j+1)·w]`;
    /// the stored histogram claims `n/k` per bucket with separators at
    /// `j·w`.
    fn new(counts: &[u64], bucket_width: i64) -> Self {
        let k = counts.len();
        let n: u64 = counts.iter().sum();
        let w = bucket_width;
        let mut data = Vec::with_capacity(n as usize);
        for (j, &c) in counts.iter().enumerate() {
            let lower = j as i64 * w;
            for i in 0..c {
                // Evenly spread inside (lower, lower + w].
                let offset = 1 + (i as i64 * (w - 1)) / c.max(1) as i64;
                data.push(lower + offset.min(w));
            }
        }
        data.sort_unstable();
        let separators: Vec<i64> = (1..k as i64).map(|j| j * w).collect();
        let per_bucket = n / k as u64;
        let hist =
            EquiHeightHistogram::from_parts(separators, vec![per_bucket; k], 1, k as i64 * w);
        Self { data, hist, bucket_width }
    }

    /// Worst absolute estimation error over all bucket-aligned range
    /// queries (the dominant adversarial family; partial buckets add at
    /// most the interpolation slop of Theorem 1.1 on top).
    fn worst_aligned_error(&self) -> f64 {
        let k = self.hist.num_buckets();
        let w = self.bucket_width;
        let mut worst = 0.0f64;
        for i in 0..k {
            for j in (i + 1)..=k {
                let x = i as i64 * w + 1;
                let y = j as i64 * w;
                let err = evaluate_range_query(&self.hist, &self.data, x, y);
                worst = worst.max(err.absolute);
            }
        }
        worst
    }
}

fn adversarial_table() -> ResultTable {
    // Small enough that the O(k²) query sweep is instant, large enough to
    // be convincing.
    let k = 100usize;
    let n = 100_000u64;
    let f = 0.05f64;
    let per = n / k as u64; // 1000
    let delta = (f * per as f64) as u64; // f·n/k = 50
    let w = 1000i64;
    let tq = 10.0f64;

    // Δmax-adversary: one bucket +δ, one −δ -> Δmax = f·n/k exactly.
    let mut counts_max = vec![per; k];
    counts_max[20] = per + delta;
    counts_max[70] = per - delta;

    // Δavg-adversary: all the allowed aggregate deviation (Σ|dev| = f·n)
    // concentrated in a few adjacent buckets: 3 buckets +f·n/6 each,
    // 3 buckets −f·n/6 each.
    let chunk = (f * n as f64 / 6.0) as u64; // 833
    let mut counts_avg = vec![per; k];
    for c in &mut counts_avg[20..23] {
        *c = per + chunk;
    }
    for c in &mut counts_avg[70..73] {
        *c = per - chunk;
    }

    // Δvar-adversary: Σdev² = k·(f·n/k)² spread as ±x over t = 10
    // consecutive buckets each, x = f·n/sqrt(2kt).
    let t_buckets = tq as usize;
    let x = (f * n as f64 / (2.0 * k as f64 * tq).sqrt()) as u64; // ~111
    let mut counts_var = vec![per; k];
    for c in &mut counts_var[20..20 + t_buckets] {
        *c = per + x;
    }
    for c in &mut counts_var[70..70 + t_buckets] {
        *c = per - x;
    }

    let mut table = ResultTable::new(
        format!(
            "Adversarial instances: same reported error f={f}, very different \
             worst range-query errors (k={k}, n={n})"
        ),
        &[
            "bounded metric",
            "reported error (its metric)",
            "worst aligned query abs error",
            "analytic envelope",
        ],
    );

    for (name, counts, envelope) in [
        ("Δavg", counts_avg, avg_bounded_envelope(n, k, tq, f).absolute),
        ("Δvar", counts_var, var_bounded_envelope(n, k, tq, f).absolute),
        ("Δmax", counts_max, max_bounded_envelope(n, k, tq, f).absolute),
    ] {
        let adv = Adversary::new(&counts, w);
        let summary = summarize_counts(&counts, n);
        let reported = match name {
            "Δavg" => summary.delta_avg,
            "Δvar" => summary.delta_var,
            _ => summary.delta_max,
        };
        table.row(vec![
            name.into(),
            format!("{reported:.1} (= {:.3}·n/k)", reported / per as f64),
            format!("{:.0}", adv.worst_aligned_error()),
            format!("{envelope:.0}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shape() {
        let tables = run(&Scale::tiny());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 3);
        assert_eq!(tables[1].rows.len(), 4);
        assert_eq!(tables[2].rows.len(), 3);
    }

    /// The experiment's headline: the avg-bounded adversary's worst error
    /// dwarfs the max-bounded one's at identical reported f, with the
    /// var-bounded one in between — and nobody escapes their envelope.
    #[test]
    fn adversarial_ordering_holds() {
        let t = adversarial_table();
        let worst: Vec<f64> = t.rows.iter().map(|r| r[2].parse().expect("numeric")).collect();
        let envelopes: Vec<f64> = t.rows.iter().map(|r| r[3].parse().expect("numeric")).collect();
        let (avg, var, max) = (worst[0], worst[1], worst[2]);
        assert!(avg > 5.0 * var / 2.0 || avg > 2000.0, "avg = {avg}, var = {var}");
        assert!(var > 5.0 * max, "var = {var}, max = {max}");
        for (w, e) in worst.iter().zip(&envelopes) {
            assert!(w <= e, "worst {w} exceeds envelope {e}");
        }
    }

    /// The reported-error column really is ~f·n/k for each metric.
    #[test]
    fn adversaries_report_the_same_f() {
        let t = adversarial_table();
        for row in &t.rows {
            let normalized: f64 = row[1]
                .split("= ")
                .nth(1)
                .and_then(|s| s.split('·').next())
                .expect("formatted")
                .parse()
                .expect("numeric");
            assert!((normalized - 0.05).abs() < 0.01, "{}: reported {normalized}", row[0]);
        }
    }
}
