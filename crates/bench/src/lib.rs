//! # samplehist-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the paper's evaluation (Section 7) plus the analytical examples of
//! Sections 2–3 and the Theorem 8 lower bound.
//!
//! Each experiment lives in [`experiments`] as a pure
//! `run(&Scale) -> Vec<ResultTable>` function; thin `harness = false`
//! bench targets (under `benches/figures/`) print the tables and write
//! CSVs, so `cargo bench --workspace` reproduces the whole evaluation.
//! The `repro_all` binary runs everything in one go.
//!
//! ## Scale knobs
//!
//! | Env var | Effect | Default |
//! |---|---|---|
//! | `SAMPLEHIST_FULL=1` | paper-scale runs (N up to 20M, more trials) | off |
//! | `SAMPLEHIST_N=<rows>` | override the base relation size | 2,000,000 |
//! | `SAMPLEHIST_TRIALS=<t>` | trials averaged per data point | 3 |
//! | `SAMPLEHIST_SEED=<s>` | base RNG seed | 0x5A17 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod harness;
mod output;
mod scale;

pub use harness::{
    error_vs_rate, required_sampling, sorted_copy, ErrorCurvePoint, RequiredSampling,
};
pub use output::ResultTable;
pub use scale::Scale;
