//! Shared measurement machinery for the figure reproductions.
//!
//! The Section 7 figures are all built from one of two measurements over
//! a heap file:
//!
//! * [`error_vs_rate`] — the realized (ground-truth) fractional max error
//!   of a block-sampled histogram as the sampling rate grows (Figures 5
//!   and 7 plot these curves directly);
//! * [`required_sampling`] — the sampling rate/pages at which the error
//!   first drops below a target (Figures 3, 4, 6 and 8 plot this
//!   quantity against N, bins, and record size).
//!
//! Both grow one without-replacement block sample incrementally (a block
//! permutation consumed prefix-by-prefix), so a whole curve costs one
//! pass of sorting/merging per trial rather than one sample per point.
//! Error is measured with Definition 4's fractional max error of the
//! sample-built separators against the **full sorted column** — the
//! ground truth an experiment can see even though the algorithm cannot.

use samplehist_core::error::fractional_max_error;
use samplehist_core::histogram::EquiHeightHistogram;
use samplehist_core::sampling::{BlockPermutation, BlockSource};
use samplehist_parallel as parallel;
use samplehist_storage::HeapFile;

use crate::scale::Scale;

/// One point of an error-vs-rate curve (averaged over trials).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorCurvePoint {
    /// Target sampling rate (fraction of tuples).
    pub rate: f64,
    /// Mean tuples actually accumulated (whole blocks, so ≥ target).
    pub mean_tuples: f64,
    /// Mean blocks read.
    pub mean_blocks: f64,
    /// Mean fractional max error f′ against the full column.
    pub mean_error: f64,
}

/// A sorted copy of a heap file's column (ground truth for error
/// measurement).
pub fn sorted_copy(file: &HeapFile) -> Vec<i64> {
    file.sorted_values()
}

/// Measure the ground-truth error of block-sampled histograms at each of
/// the (ascending) target `rates`, averaged over `scale.trials` trials.
///
/// # Panics
/// If `rates` is empty, unsorted, or contains values outside (0, 1].
pub fn error_vs_rate(
    file: &HeapFile,
    full_sorted: &[i64],
    buckets: usize,
    rates: &[f64],
    scale: &Scale,
    label: &str,
) -> Vec<ErrorCurvePoint> {
    assert!(!rates.is_empty(), "need at least one rate");
    assert!(rates.windows(2).all(|w| w[0] < w[1]), "rates must be strictly ascending");
    assert!(
        rates.iter().all(|&r| r > 0.0 && r <= 1.0),
        "rates must be sampling fractions in (0,1]"
    );
    let n = file.num_tuples();

    // Trials are independent given their RNG stream (`scale.rng(label,
    // trial)`), so they run in parallel; the per-trial results come back
    // in trial order and are reduced sequentially, making the output
    // bit-identical at any thread count.
    let trials: Vec<u32> = (0..scale.trials).collect();
    let per_trial: Vec<Vec<(f64, f64, f64)>> = parallel::par_map(&trials, |&trial| {
        let mut rng = scale.rng(label, trial);
        let mut permutation = BlockPermutation::new(file, &mut rng);
        let mut sample: Vec<i64> = Vec::new();
        rates
            .iter()
            .map(|&rate| {
                let target = (rate * n as f64).ceil() as usize;
                grow_to(&mut sample, target, &mut permutation, file);
                let hist = EquiHeightHistogram::from_sorted_sample(&sample, buckets, n);
                let err = fractional_max_error(hist.separators(), &sample, full_sorted).max;
                (sample.len() as f64, permutation.drawn() as f64, err)
            })
            .collect()
    });
    let mut acc: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); rates.len()];
    for trial_points in per_trial {
        for (a, p) in acc.iter_mut().zip(trial_points) {
            a.0 += p.0;
            a.1 += p.1;
            a.2 += p.2;
        }
    }

    let t = scale.trials as f64;
    rates
        .iter()
        .zip(acc)
        .map(|(&rate, (tuples, blocks, err))| ErrorCurvePoint {
            rate,
            mean_tuples: tuples / t,
            mean_blocks: blocks / t,
            mean_error: err / t,
        })
        .collect()
}

/// The sampling cost at which a block-sampled histogram first reaches a
/// target error (averaged over trials).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequiredSampling {
    /// Target fractional max error.
    pub target_f: f64,
    /// Mean tuples needed.
    pub mean_tuples: f64,
    /// Mean pages needed.
    pub mean_blocks: f64,
    /// Mean sampling rate (`tuples / n`).
    pub mean_rate: f64,
    /// Trials (out of `scale.trials`) that reached the target before
    /// exhausting the file; the rest count the full scan as their cost.
    pub reached: u32,
}

/// Grow a block sample geometrically (~12% per probe) until the
/// ground-truth error drops to `target_f`, and report the cost of the
/// crossing point.
pub fn required_sampling(
    file: &HeapFile,
    full_sorted: &[i64],
    buckets: usize,
    target_f: f64,
    scale: &Scale,
    label: &str,
) -> RequiredSampling {
    assert!(target_f > 0.0 && target_f <= 1.0, "target f must be in (0,1]");
    let n = file.num_tuples();

    // Same parallel-trials scheme as `error_vs_rate`: independent RNG
    // stream per trial, sequential reduction in trial order.
    let trials: Vec<u32> = (0..scale.trials).collect();
    let per_trial: Vec<(f64, f64, bool)> = parallel::par_map(&trials, |&trial| {
        let mut rng = scale.rng(label, trial);
        let mut permutation = BlockPermutation::new(file, &mut rng);
        let mut sample: Vec<i64> = Vec::new();
        // Start near the cheapest size that could plausibly certify the
        // target (a few tuples per bucket), then grow geometrically.
        let mut target = (buckets as u64 * 4).min(n) as usize;
        let hit = loop {
            grow_to(&mut sample, target, &mut permutation, file);
            let hist = EquiHeightHistogram::from_sorted_sample(&sample, buckets, n);
            let err = fractional_max_error(hist.separators(), &sample, full_sorted).max;
            if err <= target_f {
                break true;
            }
            if permutation.remaining() == 0 {
                break false; // full scan: cost is the whole file
            }
            target = ((target as f64) * 1.12).ceil() as usize;
        };
        (sample.len() as f64, permutation.drawn() as f64, hit)
    });
    let mut tuples_sum = 0.0f64;
    let mut blocks_sum = 0.0f64;
    let mut reached = 0u32;
    for (tuples, blocks, hit) in per_trial {
        tuples_sum += tuples;
        blocks_sum += blocks;
        reached += hit as u32;
    }

    let t = scale.trials as f64;
    RequiredSampling {
        target_f,
        mean_tuples: tuples_sum / t,
        mean_blocks: blocks_sum / t,
        mean_rate: tuples_sum / t / n as f64,
        reached,
    }
}

/// Extend `sample` (kept sorted) with whole blocks until it holds at
/// least `target` tuples or the permutation is exhausted.
fn grow_to(
    sample: &mut Vec<i64>,
    target: usize,
    permutation: &mut BlockPermutation,
    file: &HeapFile,
) {
    if sample.len() >= target {
        return;
    }
    let b = file.avg_tuples_per_block().max(1.0);
    let mut fresh: Vec<i64> = Vec::new();
    while sample.len() + fresh.len() < target {
        let deficit = target - sample.len() - fresh.len();
        let want = ((deficit as f64 / b).ceil() as usize).max(1);
        let ids = permutation.take(want).to_vec();
        if ids.is_empty() {
            break;
        }
        for id in ids {
            fresh.extend_from_slice(file.block(id));
        }
    }
    fresh.sort_unstable();
    let merged = merge_sorted(sample, &fresh);
    *sample = merged;
}

fn merge_sorted(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplehist_storage::Layout;

    fn random_file(n: i64, seed: u64) -> HeapFile {
        let mut rng = StdRng::seed_from_u64(seed);
        HeapFile::with_layout((0..n).collect(), 100, Layout::Random, &mut rng)
    }

    #[test]
    fn error_curve_is_roughly_decreasing() {
        let file = random_file(60_000, 1);
        let full = sorted_copy(&file);
        let scale = Scale::tiny();
        let curve = error_vs_rate(&file, &full, 50, &[0.02, 0.08, 0.32], &scale, "t1");
        assert_eq!(curve.len(), 3);
        assert!(
            curve[0].mean_error > curve[2].mean_error,
            "{:?}",
            curve.iter().map(|p| p.mean_error).collect::<Vec<_>>()
        );
        // Block accounting is consistent: tuples ≈ blocks * 100.
        for p in &curve {
            assert!((p.mean_tuples - p.mean_blocks * 100.0).abs() < 1.0);
            assert!(p.mean_tuples >= p.rate * 60_000.0);
        }
    }

    #[test]
    fn full_rate_reaches_zero_error() {
        let file = random_file(20_000, 2);
        let full = sorted_copy(&file);
        let scale = Scale::tiny();
        let curve = error_vs_rate(&file, &full, 20, &[0.5, 1.0], &scale, "t2");
        assert!(curve[1].mean_error < 1e-9, "full scan error = {}", curve[1].mean_error);
    }

    #[test]
    fn required_sampling_finds_a_crossing() {
        let file = random_file(60_000, 3);
        let full = sorted_copy(&file);
        let scale = Scale::tiny();
        let req = required_sampling(&file, &full, 20, 0.3, &scale, "t3");
        assert_eq!(req.reached, scale.trials);
        assert!(req.mean_rate > 0.0 && req.mean_rate < 1.0, "rate = {}", req.mean_rate);
        // A loose target needs fewer samples than a strict one.
        let strict = required_sampling(&file, &full, 20, 0.1, &scale, "t3");
        assert!(strict.mean_tuples > req.mean_tuples);
    }

    #[test]
    fn impossible_target_costs_a_full_scan() {
        // Clustered pages + a strict target at tiny n: may exhaust.
        let mut rng = StdRng::seed_from_u64(4);
        let file = HeapFile::with_layout((0..5_000).collect(), 100, Layout::Clustered, &mut rng);
        let full = sorted_copy(&file);
        let scale = Scale::tiny();
        let req = required_sampling(&file, &full, 50, 0.01, &scale, "t4");
        // Either it reached the target (only possible near a full scan) or
        // it scanned everything; in both cases cost ≤ the file itself.
        assert!(req.mean_tuples <= 5_000.0 + 1e-9);
        assert!(req.mean_blocks <= 50.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rates_must_ascend() {
        let file = random_file(1_000, 5);
        let full = sorted_copy(&file);
        let _ = error_vs_rate(&file, &full, 10, &[0.5, 0.2], &Scale::tiny(), "t5");
    }
}
