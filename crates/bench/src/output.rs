//! Result presentation: aligned console tables plus CSV files under
//! `target/experiments/`.

use std::io::Write as _;
use std::path::PathBuf;

/// One table of experiment output (≈ one figure series or paper table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultTable {
    /// Heading shown above the table and used to compose CSV names.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of pre-formatted cells (each the same length as `columns`).
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Start an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row.
    ///
    /// # Panics
    /// If the arity does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch in {:?}", self.title);
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write `target/experiments/<id>.csv` (workspace-relative); returns
    /// the path written.
    pub fn write_csv(&self, id: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{id}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(
            f,
            "{}",
            self.columns.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(",")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", row.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(","))?;
        }
        Ok(path)
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Print a batch of tables and persist each as CSV (`<id>_<index>.csv`),
/// ignoring CSV I/O errors (the console output is the primary artifact).
pub fn emit(id: &str, tables: &[ResultTable]) {
    for (i, t) in tables.iter().enumerate() {
        t.print();
        let suffix = if tables.len() == 1 { id.to_string() } else { format!("{id}_{i}") };
        match t.write_csv(&suffix) {
            Ok(path) => println!("[csv] {}\n", path.display()),
            Err(e) => eprintln!("[csv] failed to write {suffix}: {e}\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = ResultTable::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("  a  long_header"));
        assert!(r.lines().last().expect("rows").ends_with("          x"));
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_round_trip_to_disk() {
        let mut t = ResultTable::new("demo", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.write_csv("unit_test_demo").expect("writable target dir");
        let content = std::fs::read_to_string(&path).expect("readable");
        assert_eq!(content, "x,y\n1,2\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = ResultTable::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
