//! Run the full evaluation: every table and figure of the paper, in
//! order, printing each and writing CSVs under `target/experiments/`.
//!
//! ```text
//! cargo run --release -p samplehist-bench --bin repro_all
//! SAMPLEHIST_FULL=1 cargo run --release -p samplehist-bench --bin repro_all
//! ```

use samplehist_bench::experiments;
use samplehist_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!(
        "samplehist evaluation — N = {}, trials = {}, seed = {:#x}{}\n",
        scale.n,
        scale.trials,
        scale.seed,
        if scale.full { " (FULL paper scale)" } else { "" }
    );
    let started = std::time::Instant::now();
    for (id, tables) in experiments::run_all(&scale) {
        println!("==== {id} ====\n");
        experiments::emit_tables(id, &tables);
    }
    println!("total wall time: {:.1}s", started.elapsed().as_secs_f64());
}
