//! `histstat` — run a traced `ANALYZE` over a synthetic Zipfian table,
//! dumping a JSONL event trace plus a human-readable summary; or, with
//! `--check`, validate an existing trace against the event schema (the
//! CI gate — no `jq`/python needed, the validator is the same parser
//! the `samplehist-obs` tests use).
//!
//! ```text
//! cargo run --release -p samplehist-bench --bin histstat -- --rows 200000 --mode adaptive
//! cargo run --release -p samplehist-bench --bin histstat -- --check trace.jsonl
//! ```

use std::io::{BufWriter, Write as _};
use std::process::ExitCode;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use samplehist_data::Zipf;
use samplehist_engine::{analyze_traced, AnalyzeMode, AnalyzeOptions, Table};
use samplehist_obs::json::{self, Json};
use samplehist_obs::{Event, JsonlSink, MemorySink, PromSink, Recorder, Value};
use samplehist_storage::Layout;

const USAGE: &str = "histstat — traced ANALYZE over a synthetic Zipfian table

USAGE:
    histstat [OPTIONS]
    histstat --check PATH

OPTIONS:
    --rows N        table size                       (default 200000)
    --buckets K     histogram buckets               (default 100)
    --z Z           Zipf skew parameter             (default 1.0)
    --mode MODE     full | row=RATE | block=RATE | adaptive[=F]
                                                    (default adaptive=0.1)
    --seed S        RNG seed                        (default 42)
    --out PATH      JSONL trace path                (default trace.jsonl)
    --prom PATH     also write Prometheus text exposition
    --check PATH    validate a JSONL trace and exit (CI mode)
    --help          this text
";

struct Args {
    rows: u64,
    buckets: usize,
    z: f64,
    mode: AnalyzeMode,
    seed: u64,
    out: String,
    prom: Option<String>,
    check: Option<String>,
}

fn parse_mode(s: &str) -> Result<AnalyzeMode, String> {
    let (kind, value) = match s.split_once('=') {
        Some((k, v)) => (k, Some(v)),
        None => (s, None),
    };
    let num = |v: Option<&str>, default: f64| -> Result<f64, String> {
        match v {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad number in --mode: {v:?}")),
        }
    };
    match kind {
        "full" => Ok(AnalyzeMode::FullScan),
        "row" => Ok(AnalyzeMode::RowSample { rate: num(value, 0.01)? }),
        "block" => Ok(AnalyzeMode::BlockSample { rate: num(value, 0.1)? }),
        "adaptive" => Ok(AnalyzeMode::Adaptive { target_f: num(value, 0.1)?, gamma: 0.01 }),
        other => Err(format!("unknown mode {other:?} (full|row=R|block=R|adaptive[=F])")),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rows: 200_000,
        buckets: 100,
        z: 1.0,
        mode: AnalyzeMode::Adaptive { target_f: 0.1, gamma: 0.01 },
        seed: 42,
        out: "trace.jsonl".to_string(),
        prom: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let mut value = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--rows" => args.rows = value()?.parse().map_err(|e| format!("--rows: {e}"))?,
            "--buckets" => {
                args.buckets = value()?.parse().map_err(|e| format!("--buckets: {e}"))?
            }
            "--z" => args.z = value()?.parse().map_err(|e| format!("--z: {e}"))?,
            "--mode" => args.mode = parse_mode(&value()?)?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = value()?,
            "--prom" => args.prom = Some(value()?),
            "--check" => args.check = Some(value()?),
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

// -- `--check`: schema validation of an existing trace ------------------

fn require_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing/non-integer {key:?}"))
}

fn require_str(obj: &Json, key: &str) -> Result<(), String> {
    obj.get(key).and_then(Json::as_str).map(|_| ()).ok_or_else(|| format!("missing {key:?}"))
}

/// Validate one parsed event line; `open` tracks span ids seen starting.
fn check_event(
    obj: &Json,
    open: &mut std::collections::HashSet<u64>,
) -> Result<&'static str, String> {
    let kind = obj.get("type").and_then(Json::as_str).ok_or("missing \"type\"")?;
    require_u64(obj, "t_us")?;
    match kind {
        "span_start" => {
            let id = require_u64(obj, "id")?;
            require_str(obj, "name")?;
            let parent = obj.get("parent").ok_or("missing \"parent\"")?;
            if !parent.is_null() && parent.as_u64().is_none() {
                return Err("\"parent\" must be an id or null".into());
            }
            if !open.insert(id) {
                return Err(format!("span id {id} started twice"));
            }
            Ok("span_start")
        }
        "span_end" => {
            let id = require_u64(obj, "id")?;
            require_str(obj, "name")?;
            require_u64(obj, "dur_ns")?;
            if !matches!(obj.get("fields"), Some(Json::Obj(_))) {
                return Err("\"fields\" must be an object".into());
            }
            if !open.remove(&id) {
                return Err(format!("span id {id} ended without starting"));
            }
            Ok("span_end")
        }
        "counter" => {
            require_str(obj, "name")?;
            require_u64(obj, "delta")?;
            Ok("counter")
        }
        "gauge" => {
            require_str(obj, "name")?;
            let v = obj.get("value").ok_or("missing \"value\"")?;
            if !v.is_null() && v.as_f64().is_none() {
                return Err("\"value\" must be a number or null".into());
            }
            Ok("gauge")
        }
        "timing" => {
            require_str(obj, "name")?;
            require_u64(obj, "nanos")?;
            Ok("timing")
        }
        "observation" => {
            require_str(obj, "name")?;
            require_str(obj, "label")?;
            let v = obj.get("value").ok_or("missing \"value\"")?;
            if !v.is_null() && v.as_f64().is_none() {
                return Err("\"value\" must be a number or null".into());
            }
            Ok("observation")
        }
        other => Err(format!("unknown event type {other:?}")),
    }
}

fn check_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut open = std::collections::HashSet::new();
    let mut counts = std::collections::BTreeMap::<&str, u64>::new();
    let mut total = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = json::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let kind =
            check_event(&obj, &mut open).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        *counts.entry(kind).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return Err(format!("{path}: empty trace"));
    }
    if !open.is_empty() {
        return Err(format!("{path}: {} span(s) never ended", open.len()));
    }
    let breakdown: Vec<String> = counts.iter().map(|(k, v)| format!("{v} {k}")).collect();
    println!("{path}: OK — {total} events ({})", breakdown.join(", "));
    Ok(())
}

// -- traced run ---------------------------------------------------------

fn field<'a>(fields: &'a [(&'static str, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::I64(x) => x.to_string(),
        Value::U64(x) => x.to_string(),
        Value::F64(x) => format!("{x:.4}"),
        Value::Bool(x) => x.to_string(),
        Value::Str(s) => s.clone(),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn run(args: &Args) -> Result<(), String> {
    let mode_label = match args.mode {
        AnalyzeMode::FullScan => "full scan".to_string(),
        AnalyzeMode::RowSample { rate } => format!("row sample (rate={rate})"),
        AnalyzeMode::BlockSample { rate } => format!("block sample (rate={rate})"),
        AnalyzeMode::Adaptive { target_f, .. } => format!("adaptive CVB (f={target_f})"),
    };
    println!(
        "histstat: rows={} buckets={} z={} seed={} mode={mode_label}",
        args.rows, args.buckets, args.z, args.seed
    );

    // Synthesize the column and table. The RNG streams here run before
    // any recording starts, so the trace cannot perturb the data.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let domain = (args.rows as usize / 10).max(1);
    let values = Zipf::new(args.z, domain).materialize_sampled(args.rows, &mut rng);
    let table = Table::builder("zipf")
        .column_with_blocking("v", values, 100, Layout::Random, &mut rng)
        .build();

    let file = std::fs::File::create(&args.out).map_err(|e| format!("{}: {e}", args.out))?;
    let jsonl = Arc::new(JsonlSink::new(BufWriter::new(file)));
    let prom = Arc::new(PromSink::new());
    let memory = Arc::new(MemorySink::new());
    let recorder = Recorder::with_sinks(vec![jsonl.clone(), prom.clone(), memory.clone()]);
    // Deep layers (radix routing, parallel primitives) report through the
    // process-global recorder; the pipeline entry point takes the handle
    // explicitly. Same recorder both ways — one coherent trace.
    samplehist_obs::set_global(recorder.clone());

    let options = AnalyzeOptions { buckets: args.buckets, mode: args.mode, compressed: false };
    let stats =
        analyze_traced(&table, "v", &options, &mut rng, &recorder).map_err(|e| e.to_string())?;
    recorder.flush();

    println!();
    println!("ANALYZE zipf(v): {}", stats.method);
    println!("  rows               {}", stats.num_rows);
    println!("  sample size        {}", stats.sample_size);
    println!("  sampling rate      {:.4}%", stats.sampling_rate() * 100.0);
    println!("  pages read         {}", stats.io.pages_read);
    println!("  tuples read        {}", stats.io.tuples_read);
    println!("  histogram buckets  {}", stats.histogram.num_buckets());
    println!("  distinct estimate  {:.0}", stats.distinct_estimate);
    println!("  density            {:.6}", stats.density);

    // Per-round CVB detail straight from the captured span events.
    let events = memory.events();
    let rounds: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::SpanEnd { name: "cvb.round", fields, dur_ns, .. } => Some((fields, *dur_ns)),
            _ => None,
        })
        .collect();
    if !rounds.is_empty() {
        println!();
        println!("CVB rounds:");
        println!("  round   blocks(total)   r        delta_hat   verdict     time");
        for (fields, dur_ns) in &rounds {
            let get = |k| field(fields, k).map(fmt_value).unwrap_or_else(|| "-".into());
            println!(
                "  {:<7} {:<15} {:<8} {:<11} {:<11} {}",
                get("round"),
                get("total_blocks"),
                get("r"),
                get("delta_hat"),
                get("verdict"),
                fmt_ns(*dur_ns),
            );
        }
    }

    println!();
    println!("span durations (count, mean, max):");
    for (name, hist) in prom.span_durations() {
        println!(
            "  {name:<20} {:>5}  {:>9}  {:>9}",
            hist.count(),
            fmt_ns(hist.mean() as u64),
            fmt_ns(hist.max().unwrap_or(0)),
        );
    }
    let counters = prom.counters();
    if !counters.is_empty() {
        println!();
        println!("counters:");
        for (name, value) in counters {
            println!("  {name:<28} {value}");
        }
    }

    if let Some(path) = &args.prom {
        std::fs::write(path, prom.render()).map_err(|e| format!("{path}: {e}"))?;
        println!();
        println!("wrote {path}");
    }
    println!();
    println!("trace: {} ({} events)", args.out, events.len());
    // Belt and braces: the trace we just wrote must satisfy our own
    // schema check, so `histstat --check` in CI can never drift from it.
    let _ = std::io::stdout().flush();
    check_trace(&args.out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("histstat: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &args.check {
        Some(path) => check_trace(path),
        None => run(&args),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("histstat: {e}");
            ExitCode::FAILURE
        }
    }
}
