//! Open-loop workload against the concurrent statistics service, written
//! to `BENCH_service.json` at the repo root.
//!
//! ```text
//! cargo run --release -p samplehist-bench --bin statserve
//! SAMPLEHIST_N=1000000 cargo run --release -p samplehist-bench --bin statserve
//! SAMPLEHIST_SERVICE_MILLIS=5000 cargo run --release -p samplehist-bench --bin statserve
//! cargo run --release -p samplehist-bench --bin statserve -- --check BENCH_service.json
//! cargo run --release -p samplehist-bench --bin statserve -- --check-accuracy BENCH_accuracy.json
//! ```
//!
//! Reader threads fire cardinality and equi-join estimates while mutator
//! threads churn modification counters, which drives the full staleness
//! pipeline in the background: suspicion → cross-validation probe →
//! (only on probe failure) full CVB re-ANALYZE. One table sits on
//! fault-injecting storage so the resilient path is load-bearing, not
//! decorative. Every reader asserts its answers come from internally
//! consistent snapshots — the "no partially-written entries" criterion
//! runs inside the benchmark itself.
//!
//! An **accuracy phase** then closes the feedback loop: analytic truths
//! for both column shapes are fed back through
//! [`StatsService::record_actual`], the telemetry HTTP responder is
//! started on an ephemeral port, `/metrics` is fetched and validated as
//! Prometheus text, and the `/accuracy` JSON body is archived to
//! `BENCH_accuracy.json` (schema-checked by `--check-accuracy`).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samplehist_engine::{
    analyze, estimate_cardinality, estimate_cardinality_scan, AnalyzeOptions, Predicate, Table,
};
use samplehist_obs::json::{self, Json};
use samplehist_obs::prom::validate_exposition;
use samplehist_service::{MetricsServer, ServiceConfig, StalenessPolicy, StatsService};
use samplehist_storage::{FaultSpec, Layout};

/// Rows per table (service benches default smaller than the pipeline
/// bench — refreshes scan repeatedly). `SAMPLEHIST_N` overrides.
const DEFAULT_N: usize = 200_000;
/// Workload duration; `SAMPLEHIST_SERVICE_MILLIS` overrides.
const DEFAULT_MILLIS: u64 = 2_000;
/// Query threads.
const READERS: usize = 4;
/// Churn threads.
const MUTATORS: usize = 2;
/// Output / `--check` default path.
const OUT_PATH: &str = "BENCH_service.json";
/// Accuracy-ledger archive / `--check-accuracy` default path.
const ACCURACY_PATH: &str = "BENCH_accuracy.json";

fn build_table(name: &str, rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let uniform: Vec<i64> = (0..rows as i64).collect();
    let zipfish: Vec<i64> = (0..rows).map(|i| (i as i64) % 1009).collect();
    Table::builder(name)
        .column_with_blocking("uniform", uniform, 50, Layout::Random, &mut rng)
        .column_with_blocking("zipfish", zipfish, 50, Layout::Random, &mut rng)
        .build()
}

/// Merge-free percentile over an owned sorted sample, in microseconds.
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct WorkloadResult {
    queries: u64,
    latencies_us: Vec<u64>,
    mutations: u64,
}

fn run_workload(
    n: usize,
    millis: u64,
    refresh_threads: usize,
) -> (Arc<StatsService>, WorkloadResult, f64) {
    let svc = StatsService::new(ServiceConfig {
        refresh_threads,
        // Eager staleness so a short run still exercises probes and
        // re-ANALYZE; adaptive CVB is the refresh acquisition mode.
        staleness: StalenessPolicy {
            mod_fraction: 0.05,
            min_mods: 256,
            ..StalenessPolicy::default()
        },
        analyze: AnalyzeOptions::adaptive(100),
        backoff_base_ticks: 5,
        ..ServiceConfig::default()
    });
    svc.register_table(build_table("orders", n, 0xBEEF), None);
    svc.register_table(
        build_table("lineitem", n, 0xFEED),
        Some(FaultSpec::healthy(0xD1CE).with_transient(0.03, 2).with_unreadable(0.01)),
    );
    // Warm three of four columns so the run starts mid-life: hits, stale
    // hits and at least one cold miss all occur.
    for (t, c) in [("orders", "uniform"), ("orders", "zipfish"), ("lineitem", "uniform")] {
        svc.refresh_now(t, c).expect("warm-up ANALYZE");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let (queries, latencies_us, mutations) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..READERS as u64 {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            readers.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xAB + r);
                let mut count = 0u64;
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let table = if rng.gen_bool(0.5) { "orders" } else { "lineitem" };
                    let column = if rng.gen_bool(0.5) { "uniform" } else { "zipfish" };
                    let t = Instant::now();
                    if rng.gen_bool(0.9) {
                        let est = svc.estimate_cardinality(
                            table,
                            column,
                            &Predicate::Le(rng.gen_range(0..1009)),
                        );
                        if let Some(est) = est {
                            assert!(
                                est.rows.is_finite() && est.rows >= 0.0,
                                "torn snapshot produced {est:?}"
                            );
                        }
                    } else {
                        let _ = svc.estimate_equijoin("orders", column, "lineitem", column);
                    }
                    lat.push(t.elapsed().as_micros() as u64);
                    count += 1;
                }
                (count, lat)
            }));
        }
        let mut mutators = Vec::new();
        for m in 0..MUTATORS as u64 {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            mutators.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xCD + m);
                let mut mutated = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let table = if rng.gen_bool(0.5) { "orders" } else { "lineitem" };
                    let column = if rng.gen_bool(0.5) { "uniform" } else { "zipfish" };
                    let batch = rng.gen_range(1..200);
                    assert!(svc.record_modifications(table, column, batch));
                    mutated += batch;
                    std::thread::sleep(Duration::from_micros(200));
                }
                mutated
            }));
        }
        std::thread::sleep(Duration::from_millis(millis));
        stop.store(true, Ordering::Relaxed);
        let mut queries = 0u64;
        let mut latencies = Vec::new();
        for h in readers {
            let (count, lat) = h.join().expect("reader thread");
            queries += count;
            latencies.extend(lat);
        }
        let mutations = mutators.into_iter().map(|h| h.join().expect("mutator")).sum();
        (queries, latencies, mutations)
    });
    let elapsed = started.elapsed().as_secs_f64();
    svc.wait_idle();
    (svc, WorkloadResult { queries, latencies_us, mutations }, elapsed)
}

// -- lookup-heavy phase -------------------------------------------------

/// Buckets for the lookup phase: wide enough that the scan path's
/// per-call `O(k)` cumulative rebuild is load-bearing.
const LOOKUP_BUCKETS: usize = 600;
/// Estimation calls per timed repetition.
const LOOKUP_PROBES: usize = 16_384;
/// Timed repetitions; the minimum is reported.
const LOOKUP_REPS: usize = 3;

struct LookupResult {
    indexed_ns_per_op: f64,
    scan_ns_per_op: f64,
    qerr: [f64; 4], // p50, p95, p99, max
}

/// q-error with the standard max(·, 1) clamp, so zero-row truths and
/// estimates do not blow the ratio up to infinity.
fn qerror(est: f64, truth: f64) -> f64 {
    let e = est.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

fn percentile_f64(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Serve-time lookup microbenchmark: the same `estimate_cardinality`
/// entry point the service routes through, once over the prebuilt
/// bucket index and once over the legacy bisect/rebuild path, on a
/// duplicate-heavy column analyzed at `LOOKUP_BUCKETS` buckets with a
/// compressed side table. Every probe is asserted bit-identical across
/// the two routes before anything is timed, and q-error percentiles
/// against exact cardinalities are reported alongside the ns/op.
fn run_lookup_phase(n: usize) -> LookupResult {
    let mut rng = StdRng::seed_from_u64(0x10CA);
    // One third heavy duplicates over a small domain (compressed side
    // table), two thirds scattered (residual interpolation).
    let values: Vec<i64> = (0..n as i64)
        .map(|i| if i % 3 == 0 { i % 601 } else { i.wrapping_mul(2_654_435_761) % 500_000 })
        .collect();
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let table = Table::builder("lookup")
        .column_with_blocking("c", values, 50, Layout::Random, &mut rng)
        .build();
    let stats = analyze(
        &table,
        "c",
        &AnalyzeOptions::full_scan(LOOKUP_BUCKETS).with_compressed(),
        &mut rng,
    )
    .expect("lookup ANALYZE");
    // What `StatsCatalog::install` does before publishing: readers never
    // pay index construction.
    stats.index();

    let mut prng = StdRng::seed_from_u64(0x9E37);
    let predicates: Vec<Predicate> = (0..LOOKUP_PROBES)
        .map(|_| {
            let x: i64 = prng.gen_range(-100..500_100);
            match prng.gen_range(0..4) {
                0 => Predicate::Eq(x % 700),
                1 => Predicate::Le(x),
                2 => Predicate::Gt(x),
                _ => Predicate::Between { low: x, high: x + prng.gen_range(0..10_000i64) },
            }
        })
        .collect();

    // Correctness pass: the fast path must be bit-identical to the scan
    // path on every probe, and q-errors are collected against exact
    // cardinalities on the sorted data.
    let mut qs: Vec<f64> = predicates
        .iter()
        .map(|p| {
            let fast = estimate_cardinality(&stats, p);
            let scan = estimate_cardinality_scan(&stats, p);
            assert_eq!(
                fast.rows.to_bits(),
                scan.rows.to_bits(),
                "{p}: indexed {} vs scan {}",
                fast.rows,
                scan.rows
            );
            qerror(fast.rows, p.true_cardinality(&sorted) as f64)
        })
        .collect();
    qs.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));

    let time_route = |f: &dyn Fn(&Predicate) -> f64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..LOOKUP_REPS {
            let started = Instant::now();
            let mut acc = 0.0;
            for p in &predicates {
                acc += f(p);
            }
            let elapsed = started.elapsed().as_secs_f64();
            std::hint::black_box(acc);
            best = best.min(elapsed);
        }
        best * 1e9 / predicates.len() as f64
    };
    let indexed_ns_per_op = time_route(&|p| estimate_cardinality(&stats, p).rows);
    let scan_ns_per_op = time_route(&|p| estimate_cardinality_scan(&stats, p).rows);
    assert!(
        indexed_ns_per_op <= scan_ns_per_op,
        "indexed lookups ({indexed_ns_per_op:.1} ns/op) slower than scan \
         ({scan_ns_per_op:.1} ns/op) at k = {LOOKUP_BUCKETS}"
    );

    LookupResult {
        indexed_ns_per_op,
        scan_ns_per_op,
        qerr: [
            percentile_f64(&qs, 0.50),
            percentile_f64(&qs, 0.95),
            percentile_f64(&qs, 0.99),
            qs.last().copied().unwrap_or(0.0),
        ],
    }
}

// -- accuracy / telemetry-endpoint phase --------------------------------

/// Exact `v <= bound` cardinality for the `zipfish` column (`i % 1009`
/// over `n` rows): each residue `0..1009` appears `n / 1009` times, and
/// the first `n % 1009` residues once more.
fn zipfish_le(bound: i64, n: usize) -> f64 {
    if bound < 0 {
        return 0.0;
    }
    let hit = (bound + 1).min(1009) as u64;
    (hit * (n as u64 / 1009) + hit.min(n as u64 % 1009)) as f64
}

/// Exact `v <= bound` cardinality for the `uniform` column (`0..n`).
fn uniform_le(bound: i64, n: usize) -> f64 {
    (bound + 1).clamp(0, n as i64) as f64
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<(String, String), String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("read: {e}"))?;
    let (head, body) =
        response.split_once("\r\n\r\n").ok_or_else(|| format!("malformed response: {response}"))?;
    Ok((head.to_string(), body.to_string()))
}

/// Close the loop: feed analytic truths back into the accuracy ledgers,
/// then scrape the live HTTP endpoints and return the `/accuracy` body
/// (archived as `BENCH_accuracy.json`).
fn run_accuracy_phase(svc: &Arc<StatsService>, n: usize) -> Result<String, String> {
    let columns = [
        ("orders", "uniform"),
        ("orders", "zipfish"),
        ("lineitem", "uniform"),
        ("lineitem", "zipfish"),
    ];
    let mut fed = 0u64;
    for (table, column) in columns {
        for i in 0..96i64 {
            let bound = i * 10 + 3;
            let Some(est) = svc.estimate_cardinality(table, column, &Predicate::Le(bound)) else {
                continue;
            };
            let truth = match column {
                "uniform" => uniform_le(bound, n),
                _ => zipfish_le(bound, n),
            };
            svc.record_actual(table, column, &format!("{column} <= {bound}"), est.rows, truth);
            fed += 1;
        }
    }
    // Any staleness- or breach-queued refreshes land before the scrape,
    // so the archived ledgers describe a quiesced service.
    svc.wait_idle();

    let server = MetricsServer::start(svc, "127.0.0.1:0")
        .map_err(|e| format!("bind metrics server: {e}"))?;
    let (head, metrics) = http_get(server.addr(), "/metrics")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("/metrics returned {head}"));
    }
    validate_exposition(&metrics).map_err(|e| format!("/metrics exposition invalid: {e}"))?;
    if !metrics.contains("samplehist_service_qerror{") {
        return Err("/metrics lacks per-column q-error quantiles".into());
    }
    let (head, accuracy) = http_get(server.addr(), "/accuracy")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("/accuracy returned {head}"));
    }
    json::parse(&accuracy).map_err(|e| format!("/accuracy JSON invalid: {e}"))?;
    server.stop();
    println!(
        "accuracy phase: fed {fed} observations, /metrics served {} bytes of valid \
         exposition, /accuracy {} bytes of valid JSON",
        metrics.len(),
        accuracy.len()
    );
    Ok(accuracy)
}

fn check_accuracy_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let obj = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if obj.get("breaches").and_then(Json::as_u64).is_none() {
        return Err("missing/non-integer \"breaches\"".into());
    }
    let Some(Json::Arr(columns)) = obj.get("columns") else {
        return Err("\"columns\" must be an array".into());
    };
    if columns.is_empty() {
        return Err("no columns in the accuracy ledger".into());
    }
    let mut observed_any = false;
    for col in columns {
        for key in ["table", "column"] {
            if col.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("column entry missing {key:?}"));
            }
        }
        for key in ["epoch", "observations", "underestimates", "overestimates"] {
            if col.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("column entry missing/non-integer {key:?}"));
            }
        }
        let observations = col.get("observations").and_then(Json::as_u64).unwrap_or(0);
        if observations == 0 {
            continue;
        }
        observed_any = true;
        let mut prev = 1.0;
        for key in ["p50", "p95", "p99"] {
            match col.get(key).and_then(Json::as_f64) {
                Some(v) if v >= prev => prev = v,
                Some(v) => return Err(format!("q-error {key} = {v} below {prev} (not monotone)")),
                None => return Err(format!("observed column missing q-error {key:?}")),
            }
        }
        // Sketch quantiles overstate by at most one sub-bucket (6.25%);
        // `max` is exact, so it may sit slightly below p99.
        match col.get("max").and_then(Json::as_f64) {
            Some(m) if m >= 1.0 && prev <= m * (1.0 + 1.0 / 16.0) + 1e-9 => {}
            Some(m) => return Err(format!("q-error max = {m} inconsistent with p99 = {prev}")),
            None => return Err("observed column missing q-error \"max\"".into()),
        }
        match col.get("worst").and_then(|w| w.get("qerror")).and_then(Json::as_f64) {
            Some(q) if q >= 1.0 => {}
            _ => return Err("observed column lacks a worst-predicate capture".into()),
        }
    }
    if !observed_any {
        return Err("no column recorded any accuracy observations".into());
    }
    println!("{path}: OK — {} columns in the accuracy ledger", columns.len());
    Ok(())
}

// -- `--check` ----------------------------------------------------------

fn require_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing/non-integer {key:?}"))
}

fn require_section<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing {key:?} section"))
}

fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let obj = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    for key in [
        "rows_per_table",
        "tables",
        "columns_per_table",
        "detected_cores",
        "refresh_threads",
        "reader_threads",
    ] {
        if require_u64(&obj, key)? == 0 {
            return Err(format!("{key:?} must be >= 1"));
        }
    }
    match obj.get("duration_seconds").and_then(Json::as_f64) {
        Some(v) if v > 0.0 => {}
        _ => return Err("missing/non-positive \"duration_seconds\"".into()),
    }

    let q = require_section(&obj, "queries")?;
    let total = require_u64(q, "total")?;
    let hits = require_u64(q, "hits")?;
    let misses = require_u64(q, "misses")?;
    let stale = require_u64(q, "stale_hits")?;
    if total == 0 || hits == 0 {
        return Err("workload served no hits — the service never answered".into());
    }
    if hits + misses < total / 2 {
        // Equijoins count one query but two lookups, so exact equality
        // is not expected; an order-of-magnitude mismatch means broken
        // accounting.
        return Err(format!(
            "lookup accounting off: hits {hits} + misses {misses} vs total {total}"
        ));
    }
    if stale > hits {
        return Err(format!("stale_hits {stale} cannot exceed hits {hits}"));
    }
    match q.get("throughput_per_sec").and_then(Json::as_f64) {
        Some(v) if v > 0.0 => {}
        _ => return Err("missing/non-positive \"throughput_per_sec\"".into()),
    }
    let lat = require_section(q, "latency_us")?;
    let p50 = require_u64(lat, "p50")?;
    let p95 = require_u64(lat, "p95")?;
    let p99 = require_u64(lat, "p99")?;
    let max = require_u64(lat, "max")?;
    if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
        return Err(format!("latency percentiles not monotone: {p50}/{p95}/{p99}/{max}"));
    }

    let m = require_section(&obj, "mutations")?;
    if require_u64(m, "total")? == 0 {
        return Err("workload recorded no mutations — staleness was never exercised".into());
    }

    let lk = require_section(&obj, "lookup")?;
    if require_u64(lk, "buckets")? == 0 || require_u64(lk, "probes")? == 0 {
        return Err("lookup phase ran no probes".into());
    }
    let require_pos = |key: &str| -> Result<f64, String> {
        match lk.get(key).and_then(Json::as_f64) {
            Some(v) if v > 0.0 => Ok(v),
            _ => Err(format!("missing/non-positive lookup {key:?}")),
        }
    };
    let indexed = require_pos("indexed_ns_per_op")?;
    let scan = require_pos("scan_ns_per_op")?;
    if indexed > scan {
        return Err(format!(
            "indexed lookups ({indexed:.1} ns/op) slower than scan ({scan:.1} ns/op)"
        ));
    }
    let qe = require_section(lk, "qerror")?;
    let mut prev = 1.0;
    for key in ["p50", "p95", "p99", "max"] {
        match qe.get(key).and_then(Json::as_f64) {
            Some(v) if v >= prev => prev = v,
            Some(v) => {
                return Err(format!("lookup q-error {key} = {v} below {prev} (not monotone)"))
            }
            None => return Err(format!("missing lookup qerror {key:?}")),
        }
    }

    let r = require_section(&obj, "refreshes")?;
    let completed = require_u64(r, "completed")?;
    let probes = require_u64(r, "probes")?;
    let probe_passes = require_u64(r, "probe_passes")?;
    let reanalyzes = require_u64(r, "full_reanalyzes")?;
    require_u64(r, "failed")?;
    require_u64(r, "rejected")?;
    if completed == 0 {
        return Err("no refresh ever completed".into());
    }
    if probe_passes > probes {
        return Err(format!("probe_passes {probe_passes} cannot exceed probes {probes}"));
    }
    if reanalyzes == 0 {
        return Err("no full re-ANALYZE ran (warm-up alone should produce several)".into());
    }
    println!("{path}: OK — {total} queries, {completed} refreshes");
    Ok(())
}

fn main() -> ExitCode {
    let mut check: Option<String> = None;
    let mut check_accuracy: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = Some(it.next().unwrap_or_else(|| OUT_PATH.to_string())),
            "--check-accuracy" => {
                check_accuracy = Some(it.next().unwrap_or_else(|| ACCURACY_PATH.to_string()))
            }
            other => {
                eprintln!("statserve: unknown argument {other:?}");
                eprintln!("usage: statserve [--check [PATH]] [--check-accuracy [PATH]]");
                return ExitCode::FAILURE;
            }
        }
    }
    if check.is_some() || check_accuracy.is_some() {
        if let Some(path) = check {
            if let Err(e) = check_file(&path) {
                eprintln!("statserve --check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = check_accuracy {
            if let Err(e) = check_accuracy_file(&path) {
                eprintln!("statserve --check-accuracy failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let n: usize =
        std::env::var("SAMPLEHIST_N").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_N);
    let millis: u64 = std::env::var("SAMPLEHIST_SERVICE_MILLIS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MILLIS);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let refresh_threads = samplehist_parallel::num_threads();
    println!(
        "statserve: {n} rows/table, {millis} ms, {READERS} readers + {MUTATORS} mutators, \
         {refresh_threads} refresh workers on {cores} cores"
    );

    let (svc, result, elapsed) = run_workload(n, millis, refresh_threads);
    let accuracy_body = match run_accuracy_phase(&svc, n) {
        Ok(body) => body,
        Err(e) => {
            eprintln!("statserve: accuracy phase failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tally = svc.tally();
    let lookup = run_lookup_phase(n);
    println!(
        "lookup phase (k = {LOOKUP_BUCKETS}, {LOOKUP_PROBES} probes): indexed {:.1} ns/op vs \
         scan {:.1} ns/op ({:.1}x); q-error p50 {:.3}, p95 {:.3}, p99 {:.3}, max {:.3}",
        lookup.indexed_ns_per_op,
        lookup.scan_ns_per_op,
        lookup.scan_ns_per_op / lookup.indexed_ns_per_op,
        lookup.qerr[0],
        lookup.qerr[1],
        lookup.qerr[2],
        lookup.qerr[3],
    );
    let mut lat = result.latencies_us;
    lat.sort_unstable();
    let throughput = result.queries as f64 / elapsed;
    println!(
        "served {} queries in {elapsed:.2}s ({throughput:.0}/s): {} hits, {} misses, {} stale; \
         refreshes: {} completed ({} probes, {} passes, {} re-ANALYZEs), {} failed, {} rejected",
        result.queries,
        svc.hits(),
        svc.misses(),
        svc.stale_hits(),
        tally.completed,
        tally.probes,
        tally.probe_passes,
        tally.full_reanalyzes,
        tally.failed,
        tally.rejected,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"rows_per_table\": {n},\n",
            "  \"tables\": 2,\n",
            "  \"columns_per_table\": 2,\n",
            "  \"detected_cores\": {cores},\n",
            "  \"refresh_threads\": {rt},\n",
            "  \"reader_threads\": {readers},\n",
            "  \"mutator_threads\": {mutators},\n",
            "  \"duration_seconds\": {dur:.3},\n",
            "  \"queries\": {{\n",
            "    \"total\": {total},\n",
            "    \"hits\": {hits},\n",
            "    \"misses\": {misses},\n",
            "    \"stale_hits\": {stale},\n",
            "    \"throughput_per_sec\": {tput:.1},\n",
            "    \"latency_us\": {{\n",
            "      \"p50\": {p50},\n",
            "      \"p95\": {p95},\n",
            "      \"p99\": {p99},\n",
            "      \"max\": {pmax}\n",
            "    }}\n",
            "  }},\n",
            "  \"mutations\": {{\n",
            "    \"total\": {muts}\n",
            "  }},\n",
            "  \"lookup\": {{\n",
            "    \"buckets\": {lk_k},\n",
            "    \"probes\": {lk_probes},\n",
            "    \"indexed_ns_per_op\": {lk_idx:.2},\n",
            "    \"scan_ns_per_op\": {lk_scan:.2},\n",
            "    \"speedup\": {lk_speedup:.2},\n",
            "    \"qerror\": {{\n",
            "      \"p50\": {lk_q50:.4},\n",
            "      \"p95\": {lk_q95:.4},\n",
            "      \"p99\": {lk_q99:.4},\n",
            "      \"max\": {lk_qmax:.4}\n",
            "    }}\n",
            "  }},\n",
            "  \"refreshes\": {{\n",
            "    \"completed\": {completed},\n",
            "    \"failed\": {failed},\n",
            "    \"probes\": {probes},\n",
            "    \"probe_passes\": {passes},\n",
            "    \"full_reanalyzes\": {reans},\n",
            "    \"rejected\": {rejected}\n",
            "  }}\n",
            "}}\n",
        ),
        n = n,
        cores = cores,
        rt = refresh_threads,
        readers = READERS,
        mutators = MUTATORS,
        dur = elapsed,
        total = result.queries,
        hits = svc.hits(),
        misses = svc.misses(),
        stale = svc.stale_hits(),
        tput = throughput,
        p50 = percentile_us(&lat, 0.50),
        p95 = percentile_us(&lat, 0.95),
        p99 = percentile_us(&lat, 0.99),
        pmax = lat.last().copied().unwrap_or(0),
        muts = result.mutations,
        lk_k = LOOKUP_BUCKETS,
        lk_probes = LOOKUP_PROBES,
        lk_idx = lookup.indexed_ns_per_op,
        lk_scan = lookup.scan_ns_per_op,
        lk_speedup = lookup.scan_ns_per_op / lookup.indexed_ns_per_op,
        lk_q50 = lookup.qerr[0],
        lk_q95 = lookup.qerr[1],
        lk_q99 = lookup.qerr[2],
        lk_qmax = lookup.qerr[3],
        completed = tally.completed,
        failed = tally.failed,
        probes = tally.probes,
        passes = tally.probe_passes,
        reans = tally.full_reanalyzes,
        rejected = tally.rejected,
    );
    std::fs::write(OUT_PATH, &json).expect("write BENCH_service.json");
    println!("wrote {OUT_PATH}");
    std::fs::write(ACCURACY_PATH, &accuracy_body).expect("write BENCH_accuracy.json");
    println!("wrote {ACCURACY_PATH}");
    // Self-validate so schema drift fails here, not in CI.
    match check_file(OUT_PATH).and_then(|()| check_accuracy_file(ACCURACY_PATH)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("statserve: self-check failed: {e}");
            ExitCode::FAILURE
        }
    }
}
