//! Before/after wall-clock of the histogram construction pipeline across
//! construction routes and data shapes, written to `BENCH_pipeline.json`
//! at the repo root.
//!
//! ```text
//! cargo run --release -p samplehist-bench --bin pipeline_bench
//! SAMPLEHIST_N=1000000 cargo run --release -p samplehist-bench --bin pipeline_bench
//! cargo run --release -p samplehist-bench --bin pipeline_bench -- --route radix --route sort
//! cargo run --release -p samplehist-bench --bin pipeline_bench -- --check BENCH_pipeline.json
//! cargo run --release -p samplehist-bench --bin pipeline_bench -- --compare BENCH_baseline.json
//! ```
//!
//! "Before" is the seed pipeline: clone + full `sort_unstable` +
//! `from_sorted`. "After" is `from_unsorted_with_route` per explicit
//! route (selection at uniform shapes, radix with skew-aware slice
//! refinement on heavy-duplicate Zipf) plus the sort-free
//! `CompressedHistogram::from_unsorted`. Every timed repetition asserts
//! the candidate is byte-identical to the sort-path reference. `--check`
//! validates an existing result file against the JSON schema (the CI
//! gate — same hand-rolled parser the trace validator uses); `--compare`
//! gates a fresh `BENCH_pipeline.json` against a blessed baseline,
//! failing with non-zero exit if any route's `speedup_vs_sort` regressed
//! more than 25%.

use std::process::ExitCode;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use samplehist_core::distinct::FrequencyProfile;
use samplehist_core::estimate::RangeEstimator;
use samplehist_core::histogram::{
    BucketIndex, CompressedHistogram, ConstructionRoute, EquiHeightHistogram,
};
use samplehist_data::DataSpec;
use samplehist_obs::json::{self, Json};
use samplehist_parallel as parallel;

/// Paper-scale default (Section 7 used N = 10,000,000).
const DEFAULT_N: usize = 10_000_000;
/// One 8 KB page of integer separators (Section 7.1).
const BUCKETS: usize = 600;
/// Timed repetitions per measurement; the minimum is reported.
const REPS: usize = 3;
/// Output / `--check` default path.
const OUT_PATH: &str = "BENCH_pipeline.json";

const ALL_ROUTES: [ConstructionRoute; 4] = [
    ConstructionRoute::Auto,
    ConstructionRoute::Sort,
    ConstructionRoute::Selection,
    ConstructionRoute::Radix,
];

/// Duplicate-heavy uniform: ~10 copies per distinct value on average, the
/// regime where both bucket counting and profiling do real work.
fn uniform_dup(n: usize, seed: u64) -> Vec<i64> {
    let domain = (n as i64 / 10).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

/// Shuffled Zipf(z = 1): the skewed shape the radix refinement targets.
/// `materialize_exact` emits values grouped and ascending; shuffle so the
/// unsorted paths don't hand pdqsort a pre-sorted run.
fn zipf_shuffled(n: usize) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(1);
    let mut values =
        DataSpec::Zipf { z: 1.0, domain: (n / 10).max(1000) }.generate(n as u64, &mut rng).values;
    values.shuffle(&mut rng);
    values
}

/// Minimum wall-clock seconds of `f` over [`REPS`] runs.
fn time_min<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("REPS >= 1"))
}

/// Range probes per timed lookup repetition.
const LOOKUP_PROBES: usize = 65_536;

/// One measurement row of the output file.
struct Row {
    distribution: &'static str,
    kind: &'static str,
    route: &'static str,
    seconds: f64,
    speedup_vs_sort: f64,
    /// Per-probe cost, only for `kind == "lookup"` rows.
    ns_per_op: Option<f64>,
}

/// Equi-height rows (one per requested route, sort baseline always timed)
/// plus the compressed sort vs sort-free pair, for one data shape.
fn bench_distribution(
    name: &'static str,
    values: &[i64],
    routes: &[ConstructionRoute],
) -> Vec<Row> {
    let mut rows = Vec::new();
    let (sort_s, reference) = time_min(|| {
        let mut v = values.to_vec();
        v.sort_unstable();
        EquiHeightHistogram::from_sorted(&v, BUCKETS)
    });
    rows.push(Row {
        distribution: name,
        kind: "equi_height",
        route: "sort",
        seconds: sort_s,
        speedup_vs_sort: 1.0,
        ns_per_op: None,
    });
    for &route in routes {
        if matches!(route, ConstructionRoute::Sort) {
            continue; // already measured as the baseline
        }
        // Sort and selection consume/rearrange their input, so a caller
        // keeping the column pays a defensive copy — timed, like the
        // baseline's. Radix only reads it: no copy to pay.
        let mutates = !matches!(route.resolve(values.len(), BUCKETS), ConstructionRoute::Radix);
        let mut keep = if mutates { Vec::new() } else { values.to_vec() };
        let (route_s, candidate) = time_min(|| {
            if mutates {
                let mut v = values.to_vec();
                EquiHeightHistogram::from_unsorted_with_route(&mut v, BUCKETS, route)
            } else {
                EquiHeightHistogram::from_unsorted_with_route(&mut keep, BUCKETS, route)
            }
        });
        assert_eq!(
            candidate, reference,
            "{name}: route {:?} must be byte-identical to the sort path",
            route
        );
        rows.push(Row {
            distribution: name,
            kind: "equi_height",
            route: route.as_str(),
            seconds: route_s,
            speedup_vs_sort: sort_s / route_s,
            ns_per_op: None,
        });
        println!(
            "{name}: equi_height {route} {route_s:.3}s vs sort {sort_s:.3}s  ({speedup:.2}x)",
            route = route.as_str(),
            speedup = sort_s / route_s,
        );
    }

    // Compressed: seed path (clone + sort + from_sorted) vs the sort-free
    // rank-probing path, which never needs a mutable copy at all.
    let (csort_s, creference) = time_min(|| {
        let mut v = values.to_vec();
        v.sort_unstable();
        CompressedHistogram::from_sorted(&v, BUCKETS)
    });
    let (cfree_s, ccandidate) = time_min(|| CompressedHistogram::from_unsorted(values, BUCKETS));
    assert_eq!(ccandidate, creference, "{name}: sort-free compressed must match the sort path");
    rows.push(Row {
        distribution: name,
        kind: "compressed",
        route: "sort",
        seconds: csort_s,
        speedup_vs_sort: 1.0,
        ns_per_op: None,
    });
    rows.push(Row {
        distribution: name,
        kind: "compressed",
        route: "sortfree",
        seconds: cfree_s,
        speedup_vs_sort: csort_s / cfree_s,
        ns_per_op: None,
    });
    println!(
        "{name}: compressed sortfree {cfree_s:.3}s vs sort {csort_s:.3}s  ({:.2}x)",
        csort_s / cfree_s
    );

    // -- Serve-time lookups over the histogram just built: the legacy
    //    bisect path (per-call `RangeEstimator::new`, the engine's old
    //    behavior) vs the branchless Eytzinger index with the batched
    //    entry point. Both answer the same probe set; the index must be
    //    bit-identical and no slower.
    let mut prng = StdRng::seed_from_u64(0x100C);
    let lo = reference.min_value().saturating_sub(1000);
    let hi = reference.max_value().saturating_add(1000);
    let probes: Vec<(i64, i64)> = (0..LOOKUP_PROBES)
        .map(|_| {
            let x = prng.gen_range(lo..hi);
            (x, x.saturating_add(prng.gen_range(0..(hi - lo).max(2) / 8)))
        })
        .collect();
    let (scan_s, scan_out) = time_min(|| {
        let mut out = Vec::with_capacity(probes.len());
        for &(x, y) in &probes {
            out.push(RangeEstimator::new(&reference).estimate_range(x, y));
        }
        out
    });
    let index = BucketIndex::new(&reference);
    let (idx_s, idx_out) = time_min(|| {
        let mut out = vec![0.0; probes.len()];
        index.estimate_range_batch(&probes, &mut out);
        out
    });
    for (i, (a, b)) in scan_out.iter().zip(&idx_out).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}: indexed lookup diverged from scan on probe {i} ({:?})",
            probes[i]
        );
    }
    assert!(
        idx_s <= scan_s,
        "{name}: indexed lookups ({idx_s:.4}s) slower than scan ({scan_s:.4}s) at k = {BUCKETS}"
    );
    let per_op = 1e9 / probes.len() as f64;
    rows.push(Row {
        distribution: name,
        kind: "lookup",
        route: "scan",
        seconds: scan_s,
        speedup_vs_sort: 1.0,
        ns_per_op: Some(scan_s * per_op),
    });
    rows.push(Row {
        distribution: name,
        kind: "lookup",
        route: "indexed",
        seconds: idx_s,
        speedup_vs_sort: scan_s / idx_s,
        ns_per_op: Some(idx_s * per_op),
    });
    println!(
        "{name}: lookup indexed {:.1} ns/op vs scan {:.1} ns/op  ({:.2}x)",
        idx_s * per_op,
        scan_s * per_op,
        scan_s / idx_s
    );
    rows
}

// -- `--check`: schema validation of a result file ----------------------

fn require_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing/non-integer {key:?}"))
}

fn require_positive_f64(obj: &Json, key: &str) -> Result<f64, String> {
    match obj.get(key).and_then(Json::as_f64) {
        Some(v) if v > 0.0 => Ok(v),
        Some(v) => Err(format!("{key:?} must be > 0, got {v}")),
        None => Err(format!("missing/non-numeric {key:?}")),
    }
}

fn require_str_in(obj: &Json, key: &str, allowed: &[&str]) -> Result<(), String> {
    match obj.get(key).and_then(Json::as_str) {
        Some(s) if allowed.contains(&s) => Ok(()),
        Some(s) => Err(format!("{key:?} = {s:?} not in {allowed:?}")),
        None => Err(format!("missing {key:?}")),
    }
}

fn check_row(row: &Json) -> Result<(), String> {
    require_str_in(row, "distribution", &["uniform_dup", "zipf_shuffled"])?;
    require_str_in(row, "kind", &["equi_height", "compressed", "lookup"])?;
    require_str_in(
        row,
        "route",
        &["auto", "sort", "selection", "radix", "sortfree", "scan", "indexed"],
    )?;
    require_positive_f64(row, "seconds")?;
    require_positive_f64(row, "speedup_vs_sort")?;
    if row.get("kind").and_then(Json::as_str) == Some("lookup") {
        require_positive_f64(row, "ns_per_op")?;
    }
    Ok(())
}

fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let obj = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    for key in ["n", "buckets", "detected_cores", "threads", "reps"] {
        if require_u64(&obj, key)? == 0 {
            return Err(format!("{key:?} must be >= 1"));
        }
    }
    require_str_in(&obj, "auto_route", &["sort", "selection", "radix"])?;
    match obj.get("clone_seconds").and_then(Json::as_f64) {
        Some(v) if v >= 0.0 => {}
        _ => return Err("missing/negative \"clone_seconds\"".into()),
    }
    let rows = match obj.get("rows") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        Some(Json::Arr(_)) => return Err("\"rows\" is empty".into()),
        _ => return Err("missing \"rows\" array".into()),
    };
    for (i, row) in rows.iter().enumerate() {
        check_row(row).map_err(|e| format!("rows[{i}]: {e}"))?;
    }
    let sort = obj.get("sort").ok_or("missing \"sort\" section")?;
    require_positive_f64(sort, "serial_seconds")?;
    require_positive_f64(sort, "parallel_seconds")?;
    let prof = obj.get("frequency_profile").ok_or("missing \"frequency_profile\" section")?;
    require_positive_f64(prof, "serial_seconds")?;
    require_positive_f64(prof, "parallel_seconds")?;
    require_positive_f64(prof, "unsorted_hashed_seconds")?;
    println!("{path}: OK — {} rows", rows.len());
    Ok(())
}

// -- `--compare`: the CI regression gate --------------------------------

/// A route regresses when its `speedup_vs_sort` drops below the
/// baseline's divided by this factor (>25% slower than it was when the
/// baseline was blessed). Speedups, not raw seconds, so the gate is
/// portable across runner hardware: both numbers are ratios against the
/// same machine's own sort path.
const REGRESSION_FACTOR: f64 = 1.25;

/// Measurement identity within a bench file: (distribution, kind, route).
type RouteKey = (String, String, String);

/// Per-measurement speedups keyed by (distribution, kind, route).
fn speedup_index(obj: &Json) -> Result<Vec<(RouteKey, f64)>, String> {
    let rows = match obj.get("rows") {
        Some(Json::Arr(rows)) => rows,
        _ => return Err("missing \"rows\" array".into()),
    };
    rows.iter()
        .map(|row| {
            let field = |key: &str| {
                row.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("missing {key:?}"))
            };
            let key = (field("distribution")?, field("kind")?, field("route")?);
            let speedup = require_positive_f64(row, "speedup_vs_sort")?;
            Ok((key, speedup))
        })
        .collect()
}

fn compare_files(baseline_path: &str, current_path: &str) -> Result<(), String> {
    check_file(baseline_path).map_err(|e| format!("baseline: {e}"))?;
    check_file(current_path).map_err(|e| format!("current: {e}"))?;
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = speedup_index(&load(baseline_path)?)?;
    let current = speedup_index(&load(current_path)?)?;

    let mut regressions = 0usize;
    for ((dist, kind, route), base) in &baseline {
        let key = format!("{dist}/{kind}/{route}");
        let Some((_, cur)) =
            current.iter().find(|((d, k, r), _)| (d, k, r) == (&dist.to_string(), kind, route))
        else {
            // A vanished measurement is a silent hole in coverage, not a
            // pass.
            eprintln!("REGRESSION {key}: present in baseline, missing from current run");
            regressions += 1;
            continue;
        };
        let floor = base / REGRESSION_FACTOR;
        if *cur < floor {
            eprintln!(
                "REGRESSION {key}: speedup_vs_sort {cur:.3} < {floor:.3} \
                 (baseline {base:.3} / {REGRESSION_FACTOR})"
            );
            regressions += 1;
        } else {
            println!("ok {key}: speedup_vs_sort {cur:.3} (baseline {base:.3})");
        }
    }
    if regressions > 0 {
        return Err(format!("{regressions} measurement(s) regressed >25% vs {baseline_path}"));
    }
    println!("compare: {} measurements within 25% of {baseline_path}", baseline.len());
    Ok(())
}

// -- argument parsing ---------------------------------------------------

struct Args {
    routes: Vec<ConstructionRoute>,
    check: Option<String>,
    compare: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { routes: Vec::new(), check: None, compare: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--route" => {
                let v = it.next().ok_or("--route needs a value")?;
                let route = match v.as_str() {
                    "auto" => ConstructionRoute::Auto,
                    "sort" => ConstructionRoute::Sort,
                    "selection" => ConstructionRoute::Selection,
                    "radix" => ConstructionRoute::Radix,
                    other => return Err(format!("unknown route {other:?}")),
                };
                args.routes.push(route);
            }
            "--check" => {
                args.check = Some(it.next().unwrap_or_else(|| OUT_PATH.to_string()));
            }
            "--compare" => {
                args.compare = Some(it.next().ok_or("--compare needs a baseline path")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.routes.is_empty() {
        args.routes.extend(ALL_ROUTES);
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pipeline_bench: {e}");
            eprintln!(
                "usage: pipeline_bench [--route auto|sort|selection|radix]... [--check [PATH]] \
                 [--compare BASELINE]"
            );
            return ExitCode::FAILURE;
        }
    };
    if let Some(baseline) = args.compare {
        // Gate the current result file (fresh from a bench run) against a
        // blessed baseline; non-zero exit on any >25% regression.
        return match compare_files(&baseline, OUT_PATH) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("pipeline_bench --compare failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(path) = args.check {
        return match check_file(&path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("pipeline_bench --check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let n: usize =
        std::env::var("SAMPLEHIST_N").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_N);
    let threads = parallel::num_threads();
    // Run metadata: numbers from this harness are only comparable across
    // machines with the hardware context attached (a 1-core container
    // legitimately reports parallel == serial).
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let auto_route = ConstructionRoute::Auto.resolve(n, BUCKETS).as_str();
    println!(
        "pipeline bench: n = {n}, k = {BUCKETS}, threads = {threads}/{cores} cores, \
         auto route = {auto_route}, reps = {REPS}"
    );

    let uniform = uniform_dup(n, 0x5A17);
    let zipf = zipf_shuffled(n);

    let mut rows = bench_distribution("uniform_dup", &uniform, &args.routes);
    rows.extend(bench_distribution("zipf_shuffled", &zipf, &args.routes));

    // The clone is shared overhead of every equi-height measurement
    // (each timed run copies the input first); report it so the
    // construction-only speedup can be separated out.
    let (clone_s, _) = time_min(|| uniform.clone());

    // -- Sorting: serial vs parallel (equal by construction; identical on
    //    a single-core box).
    let (serial_sort_s, a) = time_min(|| {
        let mut v = uniform.clone();
        parallel::par_sort_unstable_threads(1, &mut v);
        v
    });
    let (par_sort_s, b) = time_min(|| {
        let mut v = uniform.clone();
        parallel::par_sort_unstable(&mut v);
        v
    });
    assert_eq!(a, b, "parallel sort must agree with serial sort");
    println!("sort: serial {serial_sort_s:.3}s vs {threads}-thread {par_sort_s:.3}s");

    // -- Frequency profile: serial vs parallel over the sorted column,
    //    plus the hashed profile that skips the sort entirely.
    let sorted = b;
    let (serial_prof_s, p1) = time_min(|| FrequencyProfile::from_sorted_sample_threads(1, &sorted));
    let (par_prof_s, p2) = time_min(|| FrequencyProfile::from_sorted_sample(&sorted));
    let (unsorted_prof_s, p3) = time_min(|| FrequencyProfile::from_unsorted_sample(&uniform));
    assert_eq!(p1, p2, "parallel profile must be bit-identical to serial");
    assert_eq!(p1, p3, "hashed unsorted profile must be bit-identical to sorted");
    println!(
        "frequency profile: serial {serial_prof_s:.3}s vs {threads}-thread {par_prof_s:.3}s \
         vs unsorted hashed {unsorted_prof_s:.3}s"
    );

    let mut row_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let ns = match r.ns_per_op {
            Some(v) => format!(",\n      \"ns_per_op\": {v:.2}"),
            None => String::new(),
        };
        row_json.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"distribution\": \"{dist}\",\n",
                "      \"kind\": \"{kind}\",\n",
                "      \"route\": \"{route}\",\n",
                "      \"seconds\": {secs:.6},\n",
                "      \"speedup_vs_sort\": {speedup:.3}{ns}\n",
                "    }}{comma}\n",
            ),
            dist = r.distribution,
            kind = r.kind,
            route = r.route,
            secs = r.seconds,
            speedup = r.speedup_vs_sort,
            ns = ns,
            comma = if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"n\": {n},\n",
            "  \"buckets\": {k},\n",
            "  \"detected_cores\": {cores},\n",
            "  \"threads\": {threads},\n",
            "  \"reps\": {reps},\n",
            "  \"auto_route\": \"{auto_route}\",\n",
            "  \"clone_seconds\": {clone:.6},\n",
            "  \"rows\": [\n",
            "{rows}",
            "  ],\n",
            "  \"sort\": {{\n",
            "    \"serial_seconds\": {ss:.6},\n",
            "    \"parallel_seconds\": {ps:.6}\n",
            "  }},\n",
            "  \"frequency_profile\": {{\n",
            "    \"serial_seconds\": {sp:.6},\n",
            "    \"parallel_seconds\": {pp:.6},\n",
            "    \"unsorted_hashed_seconds\": {up:.6}\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        k = BUCKETS,
        cores = cores,
        threads = threads,
        reps = REPS,
        auto_route = auto_route,
        clone = clone_s,
        rows = row_json,
        ss = serial_sort_s,
        ps = par_sort_s,
        sp = serial_prof_s,
        pp = par_prof_s,
        up = unsorted_prof_s,
    );
    std::fs::write(OUT_PATH, &json).expect("write BENCH_pipeline.json");
    println!("wrote {OUT_PATH}");
    // Self-validate so a schema drift fails right here, not in CI.
    match check_file(OUT_PATH) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pipeline_bench: self-check failed: {e}");
            ExitCode::FAILURE
        }
    }
}
