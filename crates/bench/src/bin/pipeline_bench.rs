//! Before/after wall-clock of the histogram construction pipeline:
//! sort-based vs selection-based construction and serial vs parallel
//! primitives, written to `BENCH_pipeline.json` at the repo root.
//!
//! ```text
//! cargo run --release -p samplehist-bench --bin pipeline_bench
//! SAMPLEHIST_N=1000000 cargo run --release -p samplehist-bench --bin pipeline_bench
//! ```
//!
//! "Before" is the seed pipeline: clone + full `sort_unstable` +
//! `EquiHeightHistogram::from_sorted`. "After" is
//! `EquiHeightHistogram::from_unsorted`, which routes large inputs
//! through O(n log k) multi-rank selection. Every timed repetition also
//! asserts the two paths produce byte-identical histograms.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samplehist_core::distinct::FrequencyProfile;
use samplehist_core::histogram::EquiHeightHistogram;
use samplehist_parallel as parallel;

/// Paper-scale default (Section 7 used N = 10,000,000).
const DEFAULT_N: usize = 10_000_000;
/// One 8 KB page of integer separators (Section 7.1).
const BUCKETS: usize = 600;
/// Timed repetitions per measurement; the minimum is reported.
const REPS: usize = 3;

fn gen_values(n: usize, seed: u64) -> Vec<i64> {
    // Duplicate-heavy: ~10 copies per distinct value on average, the
    // regime where both bucket counting and profiling do real work.
    let domain = (n as i64 / 10).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..domain)).collect()
}

/// Minimum wall-clock seconds of `f` over [`REPS`] runs.
fn time_min<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("REPS >= 1"))
}

fn main() {
    let n: usize =
        std::env::var("SAMPLEHIST_N").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_N);
    let threads = parallel::num_threads();
    // Run metadata: numbers from this harness are only comparable across
    // machines with the hardware context attached (a 1-core container
    // legitimately reports parallel == serial).
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let route = if samplehist_core::histogram::selection_profitable(n, BUCKETS) {
        "selection"
    } else {
        "sort"
    };
    println!(
        "pipeline bench: n = {n}, k = {BUCKETS}, threads = {threads}/{cores} cores, \
         route = {route}, reps = {REPS}"
    );

    let values = gen_values(n, 0x5A17);

    // -- Equi-height construction: sort path (before) vs from_unsorted
    //    (after, selection-routed at this size).
    let (sort_s, reference) = time_min(|| {
        let mut v = values.clone();
        v.sort_unstable();
        EquiHeightHistogram::from_sorted(&v, BUCKETS)
    });
    let (selection_s, candidate) =
        time_min(|| EquiHeightHistogram::from_unsorted(values.clone(), BUCKETS));
    assert_eq!(candidate, reference, "selection path must be byte-identical to the sort path");
    // The clone is shared overhead of both measurements; report it so the
    // construction-only speedup can be separated out.
    let (clone_s, _) = time_min(|| values.clone());
    let speedup = sort_s / selection_s;
    let speedup_ex_clone = (sort_s - clone_s) / (selection_s - clone_s).max(1e-9);
    println!("construction: sort {sort_s:.3}s vs selection {selection_s:.3}s  ({speedup:.2}x, {speedup_ex_clone:.2}x excluding the shared clone)");

    // -- Sorting: serial vs parallel (equal by construction; identical on
    //    a single-core box).
    let (serial_sort_s, a) = time_min(|| {
        let mut v = values.clone();
        parallel::par_sort_unstable_threads(1, &mut v);
        v
    });
    let (par_sort_s, b) = time_min(|| {
        let mut v = values.clone();
        parallel::par_sort_unstable(&mut v);
        v
    });
    assert_eq!(a, b, "parallel sort must agree with serial sort");
    println!("sort: serial {serial_sort_s:.3}s vs {threads}-thread {par_sort_s:.3}s");

    // -- Frequency profile over the sorted column: serial vs parallel.
    let sorted = b;
    let (serial_prof_s, p1) = time_min(|| FrequencyProfile::from_sorted_sample_threads(1, &sorted));
    let (par_prof_s, p2) = time_min(|| FrequencyProfile::from_sorted_sample(&sorted));
    assert_eq!(p1, p2, "parallel profile must be bit-identical to serial");
    println!("frequency profile: serial {serial_prof_s:.3}s vs {threads}-thread {par_prof_s:.3}s");

    let json = format!(
        concat!(
            "{{\n",
            "  \"n\": {n},\n",
            "  \"buckets\": {k},\n",
            "  \"detected_cores\": {cores},\n",
            "  \"threads\": {threads},\n",
            "  \"construction_route\": \"{route}\",\n",
            "  \"reps\": {reps},\n",
            "  \"construction\": {{\n",
            "    \"before_sort_seconds\": {sort:.6},\n",
            "    \"after_selection_seconds\": {sel:.6},\n",
            "    \"shared_clone_seconds\": {clone:.6},\n",
            "    \"speedup\": {speedup:.3},\n",
            "    \"speedup_excluding_clone\": {speedup_ex:.3}\n",
            "  }},\n",
            "  \"sort\": {{\n",
            "    \"serial_seconds\": {ss:.6},\n",
            "    \"parallel_seconds\": {ps:.6}\n",
            "  }},\n",
            "  \"frequency_profile\": {{\n",
            "    \"serial_seconds\": {sp:.6},\n",
            "    \"parallel_seconds\": {pp:.6}\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        k = BUCKETS,
        cores = cores,
        threads = threads,
        route = route,
        reps = REPS,
        sort = sort_s,
        sel = selection_s,
        clone = clone_s,
        speedup = speedup,
        speedup_ex = speedup_ex_clone,
        ss = serial_sort_s,
        ps = par_sort_s,
        sp = serial_prof_s,
        pp = par_prof_s,
    );
    let path = "BENCH_pipeline.json";
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}");
}
