//! Experiment sizing: one struct, read once from the environment, shared
//! by every figure so CI-speed and paper-scale runs use the same code.

/// Resolved experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Base relation size (the paper's default was 10,000,000).
    pub n: u64,
    /// Trials averaged per data point.
    pub trials: u32,
    /// Base RNG seed; each (experiment, trial) derives its own stream.
    pub seed: u64,
    /// Whether paper-scale mode is on.
    pub full: bool,
}

impl Scale {
    /// Read `SAMPLEHIST_FULL` / `SAMPLEHIST_N` / `SAMPLEHIST_TRIALS` /
    /// `SAMPLEHIST_SEED` from the environment.
    pub fn from_env() -> Self {
        let full = std::env::var("SAMPLEHIST_FULL").map(|v| v == "1").unwrap_or(false);
        let n = parse_env("SAMPLEHIST_N").unwrap_or(if full { 10_000_000 } else { 2_000_000 });
        let trials = parse_env("SAMPLEHIST_TRIALS").unwrap_or(if full { 5 } else { 3 }) as u32;
        let seed = parse_env("SAMPLEHIST_SEED").unwrap_or(0x5A17);
        Self { n, trials, seed, full }
    }

    /// A small fixed scale for tests of the harness itself.
    pub fn tiny() -> Self {
        Self { n: 60_000, trials: 2, seed: 7, full: false }
    }

    /// The Figure 3/4 sweep over the number of records: the paper used
    /// 5, 10, 15, 20 million; scaled down proportionally otherwise.
    pub fn n_sweep(&self) -> Vec<u64> {
        [1u64, 2, 3, 4].iter().map(|&m| m * self.n / 2).collect()
    }

    /// Histogram size used throughout Section 7 (600 bins ≈ one 8 KB page
    /// of integer separators). Scaled down for tiny harness tests.
    pub fn paper_bins(&self) -> usize {
        if self.n >= 1_000_000 {
            600
        } else {
            100
        }
    }

    /// Derive a deterministic per-(experiment, trial) RNG.
    pub fn rng(&self, experiment: &str, trial: u32) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        // Cheap stable string hash (FNV-1a) for the experiment name.
        let mut h = 0xcbf29ce484222325u64;
        for b in experiment.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        rand::rngs::StdRng::seed_from_u64(
            self.seed ^ h ^ ((trial as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        )
    }
}

fn parse_env(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_proportional() {
        let s = Scale { n: 2_000_000, trials: 3, seed: 1, full: false };
        assert_eq!(s.n_sweep(), vec![1_000_000, 2_000_000, 3_000_000, 4_000_000]);
    }

    #[test]
    fn rng_streams_are_distinct_and_stable() {
        use rand::RngCore;
        let s = Scale::tiny();
        let a1 = s.rng("fig3", 0).next_u64();
        let a2 = s.rng("fig3", 0).next_u64();
        let b = s.rng("fig3", 1).next_u64();
        let c = s.rng("fig5", 0).next_u64();
        assert_eq!(a1, a2, "same stream is reproducible");
        assert_ne!(a1, b, "trials differ");
        assert_ne!(a1, c, "experiments differ");
    }

    #[test]
    fn paper_bins_by_scale() {
        assert_eq!(Scale::tiny().paper_bins(), 100);
        let s = Scale { n: 2_000_000, trials: 3, seed: 1, full: false };
        assert_eq!(s.paper_bins(), 600);
    }
}
