//! A unifying `DataSpec` enum so experiments can sweep distributions by
//! value.

use rand::Rng;

use crate::normal::Normal;
use crate::self_similar::SelfSimilar;
use crate::unif_dup::UnifDup;
use crate::uniform::{UniformDistinct, UniformRandom};
use crate::zipf::Zipf;

/// One generated dataset: values plus a human-readable label for
/// experiment output.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The attribute values (ordering is generator-dependent; apply a
    /// `Layout` before packing into pages).
    pub values: Vec<i64>,
    /// e.g. `"Zipf(Z=2)"`, `"Unif/Dup(100)"`.
    pub label: String,
}

/// Every distribution the experiment harness knows how to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataSpec {
    /// Zipf with exact (deterministic) multiplicities.
    Zipf {
        /// Skew parameter.
        z: f64,
        /// Domain size (max distinct values).
        domain: usize,
    },
    /// Zipf materialized by i.i.d. draws.
    ZipfSampled {
        /// Skew parameter.
        z: f64,
        /// Domain size.
        domain: usize,
    },
    /// Every value exactly `copies` times.
    UnifDup {
        /// Multiplicity per value (paper: 100).
        copies: u64,
    },
    /// All values distinct (`0..n`).
    UniformDistinct,
    /// Uniform i.i.d. draws over a domain.
    UniformRandom {
        /// Domain size.
        domain: u64,
    },
    /// Rounded Gaussian.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Self-similar (h, 1−h) skew.
    SelfSimilar {
        /// Domain size.
        domain: u64,
        /// Skew parameter in (0,1).
        h: f64,
    },
}

impl DataSpec {
    /// Generate `n` tuples. Deterministic specs ignore the RNG for values
    /// (but take it anyway so call sites are uniform).
    pub fn generate(&self, n: u64, rng: &mut impl Rng) -> Dataset {
        let values = match *self {
            DataSpec::Zipf { z, domain } => Zipf::new(z, domain).materialize_exact(n),
            DataSpec::ZipfSampled { z, domain } => Zipf::new(z, domain).materialize_sampled(n, rng),
            DataSpec::UnifDup { copies } => UnifDup::new(copies).materialize(n),
            DataSpec::UniformDistinct => UniformDistinct.materialize(n),
            DataSpec::UniformRandom { domain } => UniformRandom::new(domain).materialize(n, rng),
            DataSpec::Normal { mean, std_dev } => Normal::new(mean, std_dev).materialize(n, rng),
            DataSpec::SelfSimilar { domain, h } => SelfSimilar::new(domain, h).materialize(n, rng),
        };
        Dataset { values, label: self.label() }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            DataSpec::Zipf { z, .. } => format!("Zipf(Z={z})"),
            DataSpec::ZipfSampled { z, .. } => format!("Zipf~(Z={z})"),
            DataSpec::UnifDup { copies } => format!("Unif/Dup({copies})"),
            DataSpec::UniformDistinct => "UniformDistinct".to_string(),
            DataSpec::UniformRandom { domain } => format!("Uniform(0..{domain})"),
            DataSpec::Normal { mean, std_dev } => format!("Normal({mean},{std_dev})"),
            DataSpec::SelfSimilar { h, .. } => format!("SelfSimilar(h={h})"),
        }
    }

    /// The paper's three reported skews (Section 7.2, Figure 5) over a
    /// domain scaled to the relation size.
    pub fn paper_zipf_sweep(n: u64) -> Vec<DataSpec> {
        let domain = (n / 10).max(1000) as usize;
        [0.0, 2.0, 4.0].into_iter().map(|z| DataSpec::Zipf { z, domain }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_spec_generates_n_tuples() {
        let mut rng = StdRng::seed_from_u64(1);
        let specs = [
            DataSpec::Zipf { z: 2.0, domain: 1000 },
            DataSpec::ZipfSampled { z: 1.0, domain: 1000 },
            DataSpec::UnifDup { copies: 100 },
            DataSpec::UniformDistinct,
            DataSpec::UniformRandom { domain: 500 },
            DataSpec::Normal { mean: 0.0, std_dev: 10.0 },
            DataSpec::SelfSimilar { domain: 1000, h: 0.2 },
        ];
        for spec in specs {
            let ds = spec.generate(5_000, &mut rng);
            assert_eq!(ds.values.len(), 5_000, "{}", ds.label);
            assert!(!ds.label.is_empty());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<String> = vec![
            DataSpec::Zipf { z: 2.0, domain: 10 }.label(),
            DataSpec::ZipfSampled { z: 2.0, domain: 10 }.label(),
            DataSpec::UnifDup { copies: 100 }.label(),
            DataSpec::UniformDistinct.label(),
            DataSpec::UniformRandom { domain: 10 }.label(),
            DataSpec::Normal { mean: 0.0, std_dev: 1.0 }.label(),
            DataSpec::SelfSimilar { domain: 10, h: 0.2 }.label(),
        ];
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }

    #[test]
    fn paper_sweep_has_three_skews() {
        let sweep = DataSpec::paper_zipf_sweep(1_000_000);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].label(), "Zipf(Z=0)");
        assert_eq!(sweep[2].label(), "Zipf(Z=4)");
    }

    #[test]
    fn deterministic_specs_are_reproducible() {
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(999); // different seed!
        let a = DataSpec::Zipf { z: 2.0, domain: 500 }.generate(10_000, &mut rng1);
        let b = DataSpec::Zipf { z: 2.0, domain: 500 }.generate(10_000, &mut rng2);
        assert_eq!(a.values, b.values, "exact Zipf ignores the RNG");
    }
}
