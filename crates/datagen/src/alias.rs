//! Walker's alias method — O(1) sampling from an arbitrary discrete
//! distribution, the substrate under the "sampled" generator flavors.

use rand::Rng;

/// A prepared alias table over `weights.len()` outcomes.
///
/// Construction is O(k); each draw is O(1): pick a column uniformly, then
/// flip a biased coin between the column's own outcome and its alias.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each column's primary outcome.
    prob: Vec<f64>,
    /// The alternative outcome stored in each column.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build from non-negative weights (not necessarily normalized).
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative or non-finite value, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one outcome");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        let k = weights.len();
        // Scale so the average column holds probability 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * k as f64 / total).collect();
        let mut prob = vec![0.0f64; k];
        let mut alias = vec![0usize; k];

        // Partition columns into under- and over-full.
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let Some(s) = small.pop() {
            // NB: pop `large` only after `small` succeeded — popping both
            // in one tuple pattern would eagerly consume (and lose) an
            // element from whichever stack outlives the other.
            match large.pop() {
                Some(l) => {
                    prob[s] = scaled[s];
                    alias[s] = l;
                    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
                    if scaled[l] < 1.0 {
                        small.push(l);
                    } else {
                        large.push(l);
                    }
                }
                None => {
                    // Numerical leftover: a column that is full up to
                    // floating-point rounding.
                    prob[s] = 1.0;
                    alias[s] = s;
                }
            }
        }
        for i in large {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (it never is; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let col = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[col] {
            col
        } else {
            self.alias[col]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_outcome_always_wins() {
        let t = AliasTable::new(&[3.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = draws as f64 * w / total;
            let sigma = (expected * (1.0 - w / total)).sqrt();
            assert!(
                (counts[i] as f64 - expected).abs() < 5.0 * sigma,
                "outcome {i}: {} vs expected {expected}",
                counts[i]
            );
        }
    }

    #[test]
    fn len_reports_outcomes() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_weights_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
