//! Uniform value generators: the duplicate-free permutation and uniform
//! draws over a bounded domain.

use rand::Rng;

/// All `n` values distinct: the integers `0..n` (sorted; apply a layout
/// to scatter them physically). The cleanest setting for Section 3's
/// record-level theory, which assumes duplicate-free value sets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformDistinct;

impl UniformDistinct {
    /// Materialize `0..n`.
    pub fn materialize(&self, n: u64) -> Vec<i64> {
        assert!(n > 0, "need at least one tuple");
        (0..n as i64).collect()
    }
}

/// `n` independent uniform draws from `0..domain` — duplicates occur with
/// birthday-paradox frequency, distinct count is random.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformRandom {
    /// Domain size.
    pub domain: u64,
}

impl UniformRandom {
    /// Create over `0..domain`.
    ///
    /// # Panics
    /// If `domain == 0`.
    pub fn new(domain: u64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        Self { domain }
    }

    /// Materialize `n` draws.
    pub fn materialize(&self, n: u64, rng: &mut impl Rng) -> Vec<i64> {
        assert!(n > 0, "need at least one tuple");
        (0..n).map(|_| rng.gen_range(0..self.domain) as i64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distinct_is_a_range() {
        let data = UniformDistinct.materialize(100);
        assert_eq!(data, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_draws_stay_in_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = UniformRandom::new(50).materialize(10_000, &mut rng);
        assert_eq!(data.len(), 10_000);
        assert!(data.iter().all(|&v| (0..50).contains(&v)));
        // With n >> domain every value appears.
        let mut seen = data.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn random_draws_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = UniformRandom::new(10).materialize(100_000, &mut rng);
        for v in 0..10i64 {
            let c = data.iter().filter(|&&x| x == v).count() as f64;
            assert!((c - 10_000.0).abs() < 500.0, "value {v}: {c}");
        }
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn zero_domain_rejected() {
        let _ = UniformRandom::new(0);
    }
}
