//! The Unif/Dup distribution of paper Figures 10 and 12: "uniform with
//! the additional constraint that each distinct value occurred 100
//! times".

/// Every distinct value occurs exactly `copies` times (the last value may
/// be short when `copies` does not divide `n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnifDup {
    /// Multiplicity of every value; the paper uses 100.
    pub copies: u64,
}

impl UnifDup {
    /// The paper's configuration: 100 copies per value.
    pub fn paper() -> Self {
        Self { copies: 100 }
    }

    /// Create with a custom multiplicity.
    ///
    /// # Panics
    /// If `copies == 0`.
    pub fn new(copies: u64) -> Self {
        assert!(copies > 0, "multiplicity must be positive");
        Self { copies }
    }

    /// The distinct count this produces for `n` tuples: `⌈n/copies⌉`.
    pub fn distinct_count(&self, n: u64) -> u64 {
        n.div_ceil(self.copies)
    }

    /// Materialize `n` tuples, sorted by value (`0, 0, …, 1, 1, …`).
    /// Apply a layout for physical placement.
    pub fn materialize(&self, n: u64) -> Vec<i64> {
        assert!(n > 0, "need at least one tuple");
        let mut out = Vec::with_capacity(n as usize);
        let mut v = 0i64;
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(self.copies);
            out.extend(std::iter::repeat(v).take(take as usize));
            remaining -= take;
            v += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let u = UnifDup::paper();
        assert_eq!(u.copies, 100);
        // The paper: n = 10M -> d = 100,000.
        assert_eq!(u.distinct_count(10_000_000), 100_000);
    }

    #[test]
    fn exact_multiplicities() {
        let data = UnifDup::new(4).materialize(20);
        assert_eq!(data.len(), 20);
        for v in 0..5i64 {
            assert_eq!(data.iter().filter(|&&x| x == v).count(), 4);
        }
    }

    #[test]
    fn short_last_value() {
        let data = UnifDup::new(7).materialize(16);
        assert_eq!(data.len(), 16);
        assert_eq!(data.iter().filter(|&&x| x == 2).count(), 2, "last value short");
        assert_eq!(UnifDup::new(7).distinct_count(16), 3);
    }

    #[test]
    fn output_is_sorted() {
        let data = UnifDup::new(10).materialize(1000);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "multiplicity must be positive")]
    fn zero_copies_rejected() {
        let _ = UnifDup::new(0);
    }
}
