//! Zipf-distributed value generation (paper Section 7.1; reference [29]).
//!
//! A Zipf distribution over a domain of `D` ranked values gives rank `i`
//! (1-based) probability proportional to `1/i^Z`. `Z = 0` is uniform;
//! the paper sweeps `Z ∈ [0, 4]` and reports `Z ∈ {0, 2, 4}`.

use rand::Rng;

use crate::alias::AliasTable;

/// A Zipf(Z) distribution over `domain` candidate values.
///
/// Values are the integers `0 .. domain`, with rank 1 (the most frequent)
/// at value 0. Ranks whose exact share of `n` tuples rounds to zero simply
/// do not occur, so the realized distinct count `d` emerges from `(n,
/// domain, Z)` just as it did in the paper's tables (their Z = 2, n = 10M
/// run reports d = 6101).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    /// Skew parameter Z ≥ 0.
    pub z: f64,
    /// Domain size (maximum possible number of distinct values).
    pub domain: usize,
}

impl Zipf {
    /// Create a Zipf(Z) spec over `domain` values.
    ///
    /// # Panics
    /// If `domain == 0` or `z` is negative/non-finite.
    pub fn new(z: f64, domain: usize) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        assert!(z.is_finite() && z >= 0.0, "Z must be a non-negative real, got {z}");
        Self { z, domain }
    }

    /// Unnormalized rank weights `1/i^Z`, `i = 1 ..= domain`.
    pub fn weights(&self) -> Vec<f64> {
        (1..=self.domain).map(|i| (i as f64).powf(-self.z)).collect()
    }

    /// Deterministic multiplicities: apportion exactly `n` tuples to the
    /// ranks by largest-remainder rounding of `n·w_i/Σw`, dropping ranks
    /// that receive zero. Returns `(value, count)` pairs, ascending by
    /// value, counts summing to `n`.
    pub fn exact_counts(&self, n: u64) -> Vec<(i64, u64)> {
        assert!(n > 0, "need at least one tuple");
        let weights = self.weights();
        let total: f64 = weights.iter().sum();
        let raw: Vec<f64> = weights.iter().map(|&w| n as f64 * w / total).collect();
        let mut counts: Vec<u64> = raw.iter().map(|&x| x.floor() as u64).collect();
        let assigned: u64 = counts.iter().sum();
        let mut leftover = (n - assigned) as usize;

        let mut order: Vec<usize> = (0..raw.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = raw[a] - raw[a].floor();
            let fb = raw[b] - raw[b].floor();
            fb.partial_cmp(&fa).expect("finite").then(a.cmp(&b))
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }

        counts.into_iter().enumerate().filter(|&(_, c)| c > 0).map(|(i, c)| (i as i64, c)).collect()
    }

    /// Materialize `n` tuples with the **exact** multiplicities of
    /// [`Self::exact_counts`] (sorted by value; apply a layout to place
    /// them physically).
    pub fn materialize_exact(&self, n: u64) -> Vec<i64> {
        let mut out = Vec::with_capacity(n as usize);
        for (v, c) in self.exact_counts(n) {
            out.extend(std::iter::repeat(v).take(c as usize));
        }
        out
    }

    /// Materialize `n` i.i.d. draws from the distribution (realized
    /// multiplicities fluctuate; realized d is random).
    pub fn materialize_sampled(&self, n: u64, rng: &mut impl Rng) -> Vec<i64> {
        let table = AliasTable::new(&self.weights());
        (0..n).map(|_| table.sample(rng) as i64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn z_zero_is_uniform() {
        let z = Zipf::new(0.0, 100);
        let counts = z.exact_counts(1000);
        assert_eq!(counts.len(), 100);
        assert!(counts.iter().all(|&(_, c)| c == 10));
    }

    #[test]
    fn exact_counts_sum_to_n() {
        for z in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let spec = Zipf::new(z, 1000);
            let counts = spec.exact_counts(12_345);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, 12_345, "Z = {z}");
        }
    }

    #[test]
    fn counts_are_non_increasing_in_rank() {
        let counts = Zipf::new(2.0, 500).exact_counts(100_000);
        // Value == rank-1 here, so counts must be non-increasing.
        assert!(counts.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn high_skew_concentrates_mass() {
        // Z = 4: the top value holds 1/ζ(4) ≈ 92.4% of all tuples.
        let counts = Zipf::new(4.0, 10_000).exact_counts(1_000_000);
        let top = counts[0].1 as f64 / 1.0e6;
        assert!((top - 0.924).abs() < 0.005, "top share = {top}");
    }

    #[test]
    fn realized_distinct_count_shrinks_with_skew() {
        let n = 100_000u64;
        let d = |z: f64| Zipf::new(z, 50_000).exact_counts(n).len();
        let (d0, d2, d4) = (d(0.0), d(2.0), d(4.0));
        assert_eq!(d0, 50_000, "uniform keeps the whole domain");
        assert!(d2 < d0 && d4 < d2, "d0={d0} d2={d2} d4={d4}");
        // Z = 2 analytic: ranks up to ~sqrt(n/ζ(2)) get a whole tuple; the
        // largest-remainder pass hands the leftovers to the next stretch
        // of near-1 fractional ranks, roughly doubling that.
        let predicted = (n as f64 / 1.6449).sqrt();
        assert!(
            (d2 as f64) > predicted * 0.8 && (d2 as f64) < predicted * 2.2,
            "d2 = {d2}, predicted ∈ ~[0.8, 2.2]·{predicted:.0}"
        );
    }

    #[test]
    fn materialize_exact_is_sorted_and_complete() {
        let z = Zipf::new(2.0, 1000);
        let data = z.materialize_exact(10_000);
        assert_eq!(data.len(), 10_000);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sampled_flavor_approximates_exact_shares() {
        let z = Zipf::new(1.0, 50);
        let mut rng = StdRng::seed_from_u64(42);
        let data = z.materialize_sampled(100_000, &mut rng);
        assert_eq!(data.len(), 100_000);
        // Top rank share ≈ 1/H_50 ≈ 0.2227.
        let top = data.iter().filter(|&&v| v == 0).count() as f64 / 1.0e5;
        let h50: f64 = (1..=50).map(|i| 1.0 / i as f64).sum();
        assert!((top - 1.0 / h50).abs() < 0.01, "top share = {top}");
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn zero_domain_rejected() {
        let _ = Zipf::new(1.0, 0);
    }
}
