//! Ground-truth summaries of generated datasets — the "Real" columns of
//! the paper's figures.

/// Exact number of distinct values in a **sorted** multiset.
pub fn distinct_count(sorted: &[i64]) -> u64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[0] != w[1]).count() as u64
}

/// Ground-truth summary of one dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataSummary {
    /// Tuple count.
    pub n: u64,
    /// Exact distinct count.
    pub distinct: u64,
    /// Smallest value.
    pub min: i64,
    /// Largest value.
    pub max: i64,
    /// Largest multiplicity of any value.
    pub max_multiplicity: u64,
    /// Duplication density in \[0,1\] (0 = all distinct, 1 = all equal).
    pub density: f64,
}

impl DataSummary {
    /// Summarize a **sorted** multiset.
    ///
    /// # Panics
    /// If the input is empty.
    pub fn of_sorted(sorted: &[i64]) -> Self {
        assert!(!sorted.is_empty(), "cannot summarize an empty dataset");
        let n = sorted.len() as u64;
        let mut distinct = 0u64;
        let mut max_multiplicity = 0u64;
        let mut sum_sq = 0u128;
        let mut i = 0usize;
        while i < sorted.len() {
            let v = sorted[i];
            let start = i;
            while i < sorted.len() && sorted[i] == v {
                i += 1;
            }
            let c = (i - start) as u64;
            distinct += 1;
            max_multiplicity = max_multiplicity.max(c);
            sum_sq += (c as u128) * (c as u128);
        }
        let density = if n == 1 {
            0.0
        } else {
            ((sum_sq - n as u128) as f64) / ((n as u128 * n as u128 - n as u128) as f64)
        };
        Self {
            n,
            distinct,
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            max_multiplicity,
            density,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_count_basics() {
        assert_eq!(distinct_count(&[]), 0);
        assert_eq!(distinct_count(&[5]), 1);
        assert_eq!(distinct_count(&[1, 1, 1]), 1);
        assert_eq!(distinct_count(&[1, 2, 2, 3]), 3);
    }

    #[test]
    fn summary_of_mixed_data() {
        let data = [1i64, 1, 1, 4, 7, 7];
        let s = DataSummary::of_sorted(&data);
        assert_eq!(s.n, 6);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 7);
        assert_eq!(s.max_multiplicity, 3);
        // sum c² = 9 + 1 + 4 = 14; density = (14-6)/(36-6) = 8/30.
        assert!((s.density - 8.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn density_extremes() {
        assert_eq!(DataSummary::of_sorted(&[1, 2, 3]).density, 0.0);
        assert_eq!(DataSummary::of_sorted(&[9, 9, 9]).density, 1.0);
        assert_eq!(DataSummary::of_sorted(&[42]).density, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_summary_rejected() {
        let _ = DataSummary::of_sorted(&[]);
    }
}
