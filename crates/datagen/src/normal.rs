//! Rounded-Gaussian value generation (extra coverage beyond the paper's
//! Zipf family: a smooth unimodal distribution with soft duplication).

use rand::Rng;

/// Values drawn from `N(mean, std_dev²)` and rounded to the nearest
/// integer. Implemented with the Box–Muller transform so the crate needs
/// no distribution dependency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Center of the distribution.
    pub mean: f64,
    /// Spread; larger values mean fewer duplicates after rounding.
    pub std_dev: f64,
}

impl Normal {
    /// Create an `N(mean, std_dev²)` generator.
    ///
    /// # Panics
    /// If `std_dev` is not a positive finite number.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(
            std_dev.is_finite() && std_dev > 0.0,
            "standard deviation must be positive, got {std_dev}"
        );
        Self { mean, std_dev }
    }

    /// Materialize `n` rounded draws.
    pub fn materialize(&self, n: u64, rng: &mut impl Rng) -> Vec<i64> {
        assert!(n > 0, "need at least one tuple");
        let mut out = Vec::with_capacity(n as usize);
        while out.len() < n as usize {
            // Box–Muller: two uniforms -> two independent normals.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen::<f64>();
            let radius = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            for g in [radius * theta.cos(), radius * theta.sin()] {
                if out.len() < n as usize {
                    out.push((self.mean + self.std_dev * g).round() as i64);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_moments_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Normal::new(1000.0, 50.0);
        let data = g.materialize(100_000, &mut rng);
        let mean: f64 = data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((mean - 1000.0).abs() < 1.0, "mean = {mean}");
        assert!((var.sqrt() - 50.0).abs() < 1.0, "sd = {}", var.sqrt());
    }

    #[test]
    fn odd_n_handled() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = Normal::new(0.0, 1.0).materialize(7, &mut rng);
        assert_eq!(data.len(), 7);
    }

    #[test]
    fn tight_sd_produces_heavy_duplication() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = Normal::new(0.0, 0.4).materialize(10_000, &mut rng);
        let mut distinct = data.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() < 20, "{} distinct values", distinct.len());
    }

    #[test]
    #[should_panic(expected = "standard deviation must be positive")]
    fn bad_sd_rejected() {
        let _ = Normal::new(0.0, 0.0);
    }
}
