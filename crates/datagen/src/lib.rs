//! # samplehist-data
//!
//! Workload generators for the histogram-sampling experiments, mirroring
//! the data generation of the paper's Section 7.1:
//!
//! * [`Zipf`] — the paper's main family: "We generated data using the
//!   Zipf distributions. The skewness parameter Z was varied [0..4]".
//!   Z = 0 is uniform over the domain; Z = 4 concentrates ~92% of all
//!   tuples on a single value.
//! * [`UnifDup`] — the "Unif/Dup" distribution of Figures 10/12:
//!   "uniform with the additional constraint that each distinct value
//!   occurred 100 times".
//! * [`UniformDistinct`] / [`UniformRandom`] — duplicate-free
//!   permutations and uniform draws with collisions.
//! * [`Normal`] and [`SelfSimilar`] — extra shapes (rounded Gaussian and
//!   the 80-20 self-similar rule) for wider test coverage.
//!
//! Every generator produces a plain `Vec<i64>` of attribute values; pair
//! it with `samplehist_storage::Layout` to control physical placement.
//! Generators come in two flavors where it matters: **exact** frequencies
//! (deterministic multiplicities, so the true distinct count is fixed
//! across runs — what the paper's tables assume) and **sampled**
//! (i.i.d. per-tuple draws through a Walker [`AliasTable`]).

//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use samplehist_data::{DataSpec, DataSummary};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dataset = DataSpec::Zipf { z: 2.0, domain: 10_000 }.generate(100_000, &mut rng);
//! let mut sorted = dataset.values;
//! sorted.sort_unstable();
//! let summary = DataSummary::of_sorted(&sorted);
//! assert_eq!(summary.n, 100_000);
//! // Z = 2 concentrates ~61% of the mass on the top value.
//! assert!(summary.max_multiplicity > 55_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod alias;
mod normal;
mod self_similar;
mod spec;
mod stats;
mod unif_dup;
mod uniform;
mod zipf;

pub use alias::AliasTable;
pub use normal::Normal;
pub use self_similar::SelfSimilar;
pub use spec::{DataSpec, Dataset};
pub use stats::{distinct_count, DataSummary};
pub use unif_dup::UnifDup;
pub use uniform::{UniformDistinct, UniformRandom};
pub use zipf::Zipf;
