//! The 80-20 self-similar distribution (Gray et al., "Quickly Generating
//! Billion-Record Synthetic Databases") — a classic skew shape used
//! throughout the synthetic-database literature contemporaneous with the
//! paper.

use rand::Rng;

/// Self-similar (h, 1−h) rule over `0..domain`: the first `h·domain`
/// values receive `(1−h)` of the probability mass, recursively. `h = 0.2`
/// is the canonical "80-20 rule".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfSimilar {
    /// Domain size.
    pub domain: u64,
    /// Skew parameter in (0, 1); smaller h = more skew.
    pub h: f64,
}

impl SelfSimilar {
    /// The canonical 80-20 configuration.
    pub fn eighty_twenty(domain: u64) -> Self {
        Self::new(domain, 0.2)
    }

    /// Create a self-similar distribution.
    ///
    /// # Panics
    /// If `domain == 0` or `h ∉ (0, 1)`.
    pub fn new(domain: u64, h: f64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        assert!(h > 0.0 && h < 1.0, "h must be in (0,1), got {h}");
        Self { domain, h }
    }

    /// One draw (Gray et al.'s closed form:
    /// `⌊domain · u^(log h / log(1−h))⌋`).
    pub fn draw(&self, rng: &mut impl Rng) -> i64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let exponent = self.h.ln() / (1.0 - self.h).ln();
        let v = (self.domain as f64 * u.powf(exponent)).floor() as i64;
        v.min(self.domain as i64 - 1)
    }

    /// Materialize `n` draws.
    pub fn materialize(&self, n: u64, rng: &mut impl Rng) -> Vec<i64> {
        assert!(n > 0, "need at least one tuple");
        (0..n).map(|_| self.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eighty_twenty_property() {
        // The first 20% of the domain should hold ~80% of the mass.
        let s = SelfSimilar::eighty_twenty(1000);
        let mut rng = StdRng::seed_from_u64(1);
        let data = s.materialize(100_000, &mut rng);
        let head = data.iter().filter(|&&v| v < 200).count() as f64 / 1.0e5;
        assert!((head - 0.8).abs() < 0.02, "head share = {head}");
    }

    #[test]
    fn recursion_within_the_head() {
        // Self-similarity: the first 4% holds ~64%.
        let s = SelfSimilar::eighty_twenty(10_000);
        let mut rng = StdRng::seed_from_u64(2);
        let data = s.materialize(200_000, &mut rng);
        let head = data.iter().filter(|&&v| v < 400).count() as f64 / 2.0e5;
        assert!((head - 0.64).abs() < 0.02, "head² share = {head}");
    }

    #[test]
    fn draws_stay_in_domain() {
        let s = SelfSimilar::new(100, 0.4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = s.draw(&mut rng);
            assert!((0..100).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "h must be in (0,1)")]
    fn bad_h_rejected() {
        let _ = SelfSimilar::new(100, 1.0);
    }
}
