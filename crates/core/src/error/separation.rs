//! δ-separation — Definition 2's bucket-boundary error metric.
//!
//! Two k-histograms `H` and `H*` over the same value set `V` are
//! **δ-separated** if for every `j` the symmetric difference of the
//! tuple sets `B_j` and `B*_j` has size at most δ. This is strictly
//! stronger than δ-deviation: it bounds not just how *many* tuples each
//! bucket holds but *which* tuples, i.e. how far the separators moved.
//! Theorem 5 bounds the sampling needed to guarantee it.

use crate::histogram::{count_le, EquiHeightHistogram};

/// Result of [`delta_separation`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeparationReport {
    /// Per-bucket symmetric-difference sizes `|B_j Δ B*_j|`.
    pub per_bucket: Vec<u64>,
    /// The metric itself: `max_j |B_j Δ B*_j|`.
    pub max: u64,
}

/// Compute the δ-separation of two k-histograms with respect to the
/// (sorted) value set `V` they both summarize: the maximum, over buckets,
/// of the symmetric difference `|B_j Δ B*_j|` where bucket membership is
/// determined by each histogram's separators over `sorted_data`.
///
/// Both histograms must have the same number of buckets (Definition 2 is
/// only stated for equal k).
///
/// # Panics
/// If the bucket counts differ or either histogram is degenerate.
pub fn delta_separation(
    h: &EquiHeightHistogram,
    h_star: &EquiHeightHistogram,
    sorted_data: &[i64],
) -> SeparationReport {
    assert_eq!(
        h.num_buckets(),
        h_star.num_buckets(),
        "δ-separation is defined for histograms with equal bucket counts"
    );
    let k = h.num_buckets();
    let n = sorted_data.len() as u64;

    // Bucket j of a histogram covers the half-open domain interval
    // (lower_j, upper_j] with lower_0 = -inf and upper_{k-1} = +inf.
    // Over sorted data, |B_j| = le(upper) - le(lower) where le(-inf) = 0
    // and le(+inf) = n.
    let le = |v: i64| -> u64 { count_le(sorted_data, v) as u64 };
    let bounds = |hist: &EquiHeightHistogram, j: usize| -> (u64, u64) {
        let lo = if j == 0 { 0 } else { le(hist.separators()[j - 1]) };
        let hi = if j == k - 1 { n } else { le(hist.separators()[j]) };
        (lo, hi)
    };

    let mut per_bucket = Vec::with_capacity(k);
    let mut max = 0u64;
    for j in 0..k {
        let (a_lo, a_hi) = bounds(h, j);
        let (b_lo, b_hi) = bounds(h_star, j);
        let size_a = a_hi - a_lo;
        let size_b = b_hi - b_lo;
        // Intersection of the two rank intervals [a_lo, a_hi) and
        // [b_lo, b_hi): because buckets are domain intervals, their tuple
        // sets over sorted data are rank ranges, so set operations reduce
        // to interval arithmetic on ranks.
        let i_lo = a_lo.max(b_lo);
        let i_hi = a_hi.min(b_hi);
        let inter = i_hi.saturating_sub(i_lo);
        let sym = size_a + size_b - 2 * inter;
        if sym > max {
            max = sym;
        }
        per_bucket.push(sym);
    }
    SeparationReport { per_bucket, max }
}

/// Is `h` δ-separated from `h_star` over `sorted_data` (Definition 2)?
pub fn is_delta_separated(
    h: &EquiHeightHistogram,
    h_star: &EquiHeightHistogram,
    sorted_data: &[i64],
    delta: u64,
) -> bool {
    delta_separation(h, h_star, sorted_data).max <= delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histograms_have_zero_separation() {
        let data: Vec<i64> = (0..100).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 5);
        let rep = delta_separation(&h, &h, &data);
        assert_eq!(rep.max, 0);
        assert!(rep.per_bucket.iter().all(|&s| s == 0));
        assert!(is_delta_separated(&h, &h, &data, 0));
    }

    #[test]
    fn shifted_separator_counts_both_sides() {
        let data: Vec<i64> = (1..=10).collect();
        // H: buckets (-inf,5], (5,+inf) -> {1..5}, {6..10}
        let h = EquiHeightHistogram::from_parts(vec![5], vec![5, 5], 1, 10);
        // H*: buckets (-inf,7], (7,+inf) -> {1..7}, {8..10}
        let h_star = EquiHeightHistogram::from_parts(vec![7], vec![7, 3], 1, 10);
        let rep = delta_separation(&h, &h_star, &data);
        // B_1 Δ B*_1 = {6,7}, B_2 Δ B*_2 = {6,7}.
        assert_eq!(rep.per_bucket, vec![2, 2]);
        assert_eq!(rep.max, 2);
        assert!(is_delta_separated(&h, &h_star, &data, 2));
        assert!(!is_delta_separated(&h, &h_star, &data, 1));
    }

    #[test]
    fn separation_dominates_deviation() {
        // |B_j| and |B*_j| can match while the buckets hold different
        // tuples: deviation is blind to that, separation is not.
        let data: Vec<i64> = (1..=9).collect();
        // H: (-inf,3], (3,6], (6,inf) -> sizes 3,3,3
        let h = EquiHeightHistogram::from_parts(vec![3, 6], vec![3, 3, 3], 1, 9);
        // H*: same bucket sizes over the same data but via different
        // separators is impossible for distinct data... so use shifted
        // separators with unequal sizes and check the inequality instead.
        let h_star = EquiHeightHistogram::from_parts(vec![4, 6], vec![4, 2, 3], 1, 9);
        let rep = delta_separation(&h, &h_star, &data);
        let dev_h_star = crate::error::max_error_against(&h_star, &data);
        // max_j |B_j Δ B*_j| >= max_j ||B_j| - |B*_j|| which relates the
        // two histograms' counts; here H is (near-)perfect so the
        // deviation of H* is bounded by its separation from H plus H's own
        // deviation (0 on this data).
        assert!(rep.max as f64 + 1e-9 >= dev_h_star.delta_max);
    }

    #[test]
    fn disjoint_interval_intersection_is_empty() {
        let data: Vec<i64> = (1..=10).collect();
        let h = EquiHeightHistogram::from_parts(vec![2], vec![2, 8], 1, 10);
        let h_star = EquiHeightHistogram::from_parts(vec![8], vec![8, 2], 1, 10);
        let rep = delta_separation(&h, &h_star, &data);
        // B_1 = {1,2}, B*_1 = {1..8}: sym diff 6. B_2 = {3..10}, B*_2 =
        // {9,10}: sym diff 6.
        assert_eq!(rep.max, 6);
    }

    #[test]
    #[should_panic(expected = "equal bucket counts")]
    fn mismatched_k_rejected() {
        let data: Vec<i64> = (1..=10).collect();
        let h2 = EquiHeightHistogram::from_sorted(&data, 2);
        let h3 = EquiHeightHistogram::from_sorted(&data, 3);
        let _ = delta_separation(&h2, &h3, &data);
    }
}
