//! The fractional max error f′ for duplicate-valued data (Definition 4).
//!
//! When a value occurs more than `n/k` times, adjacent separators collapse
//! onto it and the per-bucket max error of Definition 1 becomes ill-defined
//! (several buckets describe the *same* value and cannot be told apart).
//! Definition 4 therefore measures error over the **distinct separator
//! values** `d_1 < … < d_m`: for each gap between consecutive distinct
//! separators it compares the fraction of a *reference* distribution that
//! falls in the gap (`f_{j+1} − f_j`, from the sample the histogram was
//! built on) with the fraction of an *observed* distribution (`p_{j+1} −
//! p_j`, from the validation sample or the full data), normalized by the
//! reference fraction:
//!
//! ```text
//! f′ = max_j  |(f_{j+1} − f_j) − (p_{j+1} − p_j)|  /  (f_{j+1} − f_j)
//! ```
//!
//! Boundary convention: we take `d_0 = −∞` and `d_{m+1} = +∞`, so
//! `f_0 = p_0 = 0` and `f_{m+1} = p_{m+1} = 1`, and the maximum runs over
//! all `m + 1` gaps. (The paper's formula indexes `j = 1 … m`, leaving the
//! first gap `(−∞, d_1]` implicit; including it is the conservative
//! reading and is required for f′ to reduce to Definition 1's `f` on
//! duplicate-free data, which the paper states it does.) Gaps with zero
//! reference mass are skipped — the denominator would be 0 and the gap
//! describes a region the reference sample believes is empty.

use crate::histogram::count_le;

/// One gap between consecutive distinct separator values, with both
/// distributions' mass in it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionalGap {
    /// Upper distinct separator bounding the gap (`None` = +∞ gap).
    pub upper: Option<i64>,
    /// Reference-distribution mass of the gap (`f_{j+1} − f_j`).
    pub reference_fraction: f64,
    /// Observed-distribution mass of the gap (`p_{j+1} − p_j`).
    pub observed_fraction: f64,
    /// `|reference − observed| / reference`, or `None` when the gap has
    /// zero reference mass.
    pub relative_error: Option<f64>,
}

/// Full output of [`fractional_max_error`].
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalReport {
    /// Distinct separator values `d_1 < … < d_m`.
    pub distinct_separators: Vec<i64>,
    /// Per-gap details (`m + 1` gaps, including the `+∞` gap).
    pub gaps: Vec<FractionalGap>,
    /// The metric: maximum relative gap error (0 if every gap was skipped).
    pub max: f64,
}

impl FractionalReport {
    /// Index of the gap achieving the maximum, if any gap was measurable.
    pub fn argmax(&self) -> Option<usize> {
        self.gaps
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.relative_error.map(|e| (i, e)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("errors are finite"))
            .map(|(i, _)| i)
    }
}

/// Compute Definition 4's fractional max error f′.
///
/// * `separators` — the current histogram's separators (possibly with
///   repeats), non-decreasing.
/// * `reference_sorted` — the sorted multiset the separators were derived
///   from (the accumulated sample `R` in the adaptive algorithm); supplies
///   the `f_j`.
/// * `observed_sorted` — the sorted multiset being compared (the
///   cross-validation sample `R_i`, or the full data when measuring true
///   error); supplies the `p_j`.
///
/// On duplicate-free data with distinct separators this equals Definition
/// 1's relative max error `Δmax/(n/k)` of the observed data partitioned by
/// the separators — see the `reduces_to_definition_1` test.
///
/// # Panics
/// If either multiset is empty or separators are not non-decreasing.
pub fn fractional_max_error(
    separators: &[i64],
    reference_sorted: &[i64],
    observed_sorted: &[i64],
) -> FractionalReport {
    assert!(!reference_sorted.is_empty(), "reference multiset must be non-empty");
    assert!(!observed_sorted.is_empty(), "observed multiset must be non-empty");
    assert!(separators.windows(2).all(|w| w[0] <= w[1]), "separators must be non-decreasing");

    let mut distinct: Vec<i64> = separators.to_vec();
    distinct.dedup();

    let nr = reference_sorted.len() as f64;
    let no = observed_sorted.len() as f64;

    let mut gaps = Vec::with_capacity(distinct.len() + 1);
    let mut max = 0.0f64;
    let mut prev_f = 0.0f64;
    let mut prev_p = 0.0f64;

    let mut push_gap = |upper: Option<i64>, f_cum: f64, p_cum: f64, prev_f: f64, prev_p: f64| {
        let rf = f_cum - prev_f;
        let of = p_cum - prev_p;
        let rel = if rf > 0.0 { Some((rf - of).abs() / rf) } else { None };
        if let Some(e) = rel {
            if e > max {
                max = e;
            }
        }
        gaps.push(FractionalGap {
            upper,
            reference_fraction: rf,
            observed_fraction: of,
            relative_error: rel,
        });
    };

    for &d in &distinct {
        let f_cum = count_le(reference_sorted, d) as f64 / nr;
        let p_cum = count_le(observed_sorted, d) as f64 / no;
        push_gap(Some(d), f_cum, p_cum, prev_f, prev_p);
        prev_f = f_cum;
        prev_p = p_cum;
    }
    // The +∞ gap: everything above the last distinct separator.
    push_gap(None, 1.0, 1.0, prev_f, prev_p);

    FractionalReport { distinct_separators: distinct, gaps, max }
}

/// Definition 4's fractional max error of a **stored histogram** against a
/// fresh observed sample, using the histogram's own bucket masses as the
/// reference distribution.
///
/// [`fractional_max_error`] needs the sorted multiset the separators were
/// derived from; a statistics catalog does not retain that sample. But the
/// histogram already records each bucket's mass, and bucket `j`'s mass
/// lies entirely in `(s_{j-1}, s_j]` — so the reference cumulative
/// fraction at every distinct separator is exact from the stored counts
/// alone: `f(d) = (Σ counts of buckets with upper separator ≤ d) / n`.
/// This is what a Theorem-7-style *staleness probe* evaluates: draw a
/// small fresh sample, partition it with the stored separators, and
/// compare gap masses. A histogram whose true error stayed within the
/// build-time target passes a `2f` threshold with high probability; one
/// the data has drifted away from fails it (same accept/reject geometry
/// as the cross-validation test inside CVB).
///
/// # Panics
/// If `observed_sorted` is empty.
pub fn histogram_fractional_error(
    histogram: &crate::histogram::EquiHeightHistogram,
    observed_sorted: &[i64],
) -> FractionalReport {
    assert!(!observed_sorted.is_empty(), "observed multiset must be non-empty");
    let separators = histogram.separators();
    let counts = histogram.counts();
    let total = histogram.total() as f64;
    let no = observed_sorted.len() as f64;

    let mut gaps = Vec::with_capacity(separators.len() + 1);
    let mut distinct = Vec::new();
    let mut max = 0.0f64;
    let mut prev_f = 0.0f64;
    let mut prev_p = 0.0f64;

    let mut push_gap = |upper: Option<i64>, f_cum: f64, p_cum: f64, prev_f: f64, prev_p: f64| {
        let rf = f_cum - prev_f;
        let of = p_cum - prev_p;
        let rel = if rf > 0.0 { Some((rf - of).abs() / rf) } else { None };
        if let Some(e) = rel {
            if e > max {
                max = e;
            }
        }
        gaps.push(FractionalGap {
            upper,
            reference_fraction: rf,
            observed_fraction: of,
            relative_error: rel,
        });
    };

    // Walk the separators, collapsing runs of equal values into one
    // distinct separator whose cumulative mass covers every bucket ending
    // at that value (mirrors `fractional_max_error`'s dedup).
    let mut cum: u64 = 0;
    let mut i = 0;
    while i < separators.len() {
        let d = separators[i];
        while i < separators.len() && separators[i] == d {
            cum += counts[i];
            i += 1;
        }
        distinct.push(d);
        let f_cum = cum as f64 / total;
        let p_cum = count_le(observed_sorted, d) as f64 / no;
        push_gap(Some(d), f_cum, p_cum, prev_f, prev_p);
        prev_f = f_cum;
        prev_p = p_cum;
    }
    // The +∞ gap: the last bucket's mass vs everything observed above the
    // last distinct separator.
    push_gap(None, 1.0, 1.0, prev_f, prev_p);

    FractionalReport { distinct_separators: distinct, gaps, max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::EquiHeightHistogram;

    #[test]
    fn identical_distributions_have_zero_error() {
        let data: Vec<i64> = (0..100).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 10);
        let rep = fractional_max_error(h.separators(), &data, &data);
        assert_eq!(rep.max, 0.0);
        assert_eq!(rep.gaps.len(), 10); // 9 distinct separators + inf gap
    }

    /// The paper: "When all values are distinct, f_{j+1} − f_j = 1/k and
    /// p_{j+1} − p_j reduces to b_j/n, and f′ reduces to f as in
    /// Definition 1."
    #[test]
    fn reduces_to_definition_1() {
        // Reference: 20 distinct values, k = 4 -> separators 5,10,15.
        let reference: Vec<i64> = (1..=20).collect();
        let h = EquiHeightHistogram::from_sorted(&reference, 4);
        // Observed population: skewed toward small values.
        let observed: Vec<i64> =
            (1..=20).flat_map(|v| std::iter::repeat(v).take(if v <= 5 { 10 } else { 1 })).collect();
        let rep = fractional_max_error(h.separators(), &reference, &observed);

        // Definition 1's relative f on the observed data:
        let def1 = crate::error::max_error_against(&h, &observed).relative_max();
        assert!((rep.max - def1).abs() < 1e-12, "f' = {} vs f = {}", rep.max, def1);
    }

    #[test]
    fn duplicate_separators_are_collapsed() {
        // A heavy value makes several separators identical.
        let mut reference = vec![5i64; 70];
        reference.extend(6..=35); // 30 tail values
        reference.sort_unstable();
        let h = EquiHeightHistogram::from_sorted(&reference, 10);
        assert!(h.separators().windows(2).any(|w| w[0] == w[1]), "test needs repeats");
        let rep = fractional_max_error(h.separators(), &reference, &reference);
        // Distinct separators strictly increase.
        assert!(rep.distinct_separators.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(rep.max, 0.0, "same multiset on both sides");
    }

    #[test]
    fn detects_mass_shift_in_one_gap() {
        // Reference says each of 4 gaps holds 25%; observed puts 70% in
        // the first gap.
        let reference: Vec<i64> = (1..=100).collect();
        let h = EquiHeightHistogram::from_sorted(&reference, 4); // seps 25,50,75
        let mut observed: Vec<i64> = std::iter::repeat(10i64).take(70).collect();
        observed.extend((76..=105).map(|v| v.min(100)));
        observed.sort_unstable();
        let rep = fractional_max_error(h.separators(), &reference, &observed);
        // First gap: reference 0.25, observed 0.70 -> rel err 1.8.
        assert!((rep.max - 1.8).abs() < 1e-9, "max = {}", rep.max);
        assert_eq!(rep.argmax(), Some(0));
    }

    #[test]
    fn zero_reference_gap_is_skipped() {
        // Separators 10,10 over reference data that has no values in some
        // gap: the degenerate (10,10] gap has zero reference mass.
        let reference = vec![5i64, 10, 10, 20];
        let observed = vec![5i64, 11, 12, 20];
        let rep = fractional_max_error(&[10, 10], &reference, &observed);
        // Gaps: (-inf,10] and (10,+inf) after dedup -> both measurable.
        assert_eq!(rep.distinct_separators, vec![10]);
        assert!(rep.gaps.iter().all(|g| g.relative_error.is_some()));
    }

    #[test]
    fn empty_separator_list_single_gap() {
        let data = vec![1i64, 2, 3];
        let rep = fractional_max_error(&[], &data, &data);
        assert_eq!(rep.gaps.len(), 1);
        assert_eq!(rep.max, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_reference_rejected() {
        let _ = fractional_max_error(&[1], &[], &[1]);
    }

    #[test]
    fn histogram_reference_matches_sample_reference() {
        // For an exact (full-scan) histogram the stored bucket counts are
        // the domain-rule counts of the build data, so using them as the
        // reference must reproduce `fractional_max_error` exactly —
        // including with duplicate separators from a heavy value.
        let mut data = vec![7i64; 60];
        data.extend(8..=47);
        data.sort_unstable();
        let h = EquiHeightHistogram::from_sorted(&data, 8);
        let observed: Vec<i64> = (0..50).map(|i| i % 40 + 5).collect();
        let mut observed = observed;
        observed.sort_unstable();
        let via_sample = fractional_max_error(h.separators(), &data, &observed);
        let via_histogram = histogram_fractional_error(&h, &observed);
        assert_eq!(via_histogram.distinct_separators, via_sample.distinct_separators);
        assert_eq!(via_histogram.gaps.len(), via_sample.gaps.len());
        for (a, b) in via_histogram.gaps.iter().zip(&via_sample.gaps) {
            assert!((a.reference_fraction - b.reference_fraction).abs() < 1e-12);
            assert!((a.observed_fraction - b.observed_fraction).abs() < 1e-12);
        }
        assert!((via_histogram.max - via_sample.max).abs() < 1e-12);
    }

    #[test]
    fn histogram_probe_passes_on_fresh_sample_fails_on_drift() {
        // A histogram of uniform data probes clean against more uniform
        // data and loudly fails once the distribution shifts.
        let data: Vec<i64> = (0..10_000).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 20);
        let same: Vec<i64> = (0..10_000).step_by(7).collect();
        let rep = histogram_fractional_error(&h, &same);
        assert!(rep.max < 0.05, "uniform probe error {}", rep.max);

        let mut drifted: Vec<i64> = (0..10_000).map(|i| i % 500).collect();
        drifted.sort_unstable();
        let rep = histogram_fractional_error(&h, &drifted);
        assert!(rep.max > 1.0, "drifted probe error {}", rep.max);
    }
}
