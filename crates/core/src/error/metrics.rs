//! The three bucket-deviation metrics of paper Section 2.2/2.3.

/// Δavg, Δvar and Δmax of a vector of bucket counts against the ideal
/// equi-height size `n/k`, exactly as defined in Sections 2.2 and 2.3:
///
/// ```text
/// Δavg = Σ |b_j − n/k| / k
/// Δvar = sqrt( Σ |b_j − n/k|² / k )
/// Δmax = max |b_j − n/k|
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Average absolute deviation from `n/k`.
    pub delta_avg: f64,
    /// Root-mean-square deviation from `n/k`.
    pub delta_var: f64,
    /// Maximum absolute deviation from `n/k` (Definition 1).
    pub delta_max: f64,
    /// The ideal bucket size `n/k`.
    pub ideal: f64,
}

impl ErrorSummary {
    /// The paper's relative deviation `f = Δmax / (n/k)`; the headline
    /// "10% error" numbers in the paper are this quantity.
    pub fn relative_max(&self) -> f64 {
        if self.ideal == 0.0 {
            0.0
        } else {
            self.delta_max / self.ideal
        }
    }

    /// Relative form of Δavg.
    pub fn relative_avg(&self) -> f64 {
        if self.ideal == 0.0 {
            0.0
        } else {
            self.delta_avg / self.ideal
        }
    }

    /// Relative form of Δvar.
    pub fn relative_var(&self) -> f64 {
        if self.ideal == 0.0 {
            0.0
        } else {
            self.delta_var / self.ideal
        }
    }
}

/// Compute the [`ErrorSummary`] for bucket counts summing (by convention,
/// not requirement) to `total`; the ideal size is `total / counts.len()`.
///
/// # Panics
/// If `counts` is empty.
pub fn summarize_counts(counts: &[u64], total: u64) -> ErrorSummary {
    assert!(!counts.is_empty(), "cannot summarize zero buckets");
    let k = counts.len() as f64;
    let ideal = total as f64 / k;
    let mut sum_abs = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut max_abs = 0.0f64;
    for &c in counts {
        let dev = (c as f64 - ideal).abs();
        sum_abs += dev;
        sum_sq += dev * dev;
        if dev > max_abs {
            max_abs = dev;
        }
    }
    ErrorSummary {
        delta_avg: sum_abs / k,
        delta_var: (sum_sq / k).sqrt(),
        delta_max: max_abs,
        ideal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Example 2, verbatim: k = 10 buckets sized
    /// 88, 101, 87, 88, 89, 180, 90, 88, 103, 86 over n = 1000 give
    /// Δavg = 16.8, Δvar = 27.5, Δmax = 80.0.
    #[test]
    fn example_2_reference_values() {
        let counts = [88u64, 101, 87, 88, 89, 180, 90, 88, 103, 86];
        let n: u64 = counts.iter().sum();
        assert_eq!(n, 1000);
        let s = summarize_counts(&counts, n);
        assert!((s.delta_avg - 16.8).abs() < 1e-9, "Δavg = {}", s.delta_avg);
        // Exact RMS is sqrt(742.8) ≈ 27.25; the paper reports it rounded
        // up to one decimal as 27.5.
        assert!((s.delta_var - 27.25).abs() < 0.01, "Δvar = {}", s.delta_var);
        assert_eq!(s.delta_max, 80.0);
        assert_eq!(s.ideal, 100.0);
        assert!((s.relative_max() - 0.8).abs() < 1e-12);
    }

    /// Theorem 2 direction: Δmax dominates both aggregates on any counts.
    #[test]
    fn theorem_2_ordering_on_examples() {
        let cases: [&[u64]; 4] =
            [&[10, 10, 10, 10], &[0, 40], &[1, 2, 3, 4, 5, 6, 7, 8], &[100, 0, 0, 0, 0, 0]];
        for counts in cases {
            let n: u64 = counts.iter().sum();
            let s = summarize_counts(counts, n);
            assert!(s.delta_avg <= s.delta_max + 1e-12);
            assert!(s.delta_var <= s.delta_max + 1e-12);
            // And the RMS always dominates the mean (Cauchy-Schwarz).
            assert!(s.delta_avg <= s.delta_var + 1e-12);
        }
    }

    #[test]
    fn uniform_counts_have_zero_error() {
        let s = summarize_counts(&[25, 25, 25, 25], 100);
        assert_eq!(s.delta_avg, 0.0);
        assert_eq!(s.delta_var, 0.0);
        assert_eq!(s.delta_max, 0.0);
        assert_eq!(s.relative_max(), 0.0);
    }

    #[test]
    fn single_bucket_never_deviates_when_total_matches() {
        let s = summarize_counts(&[42], 42);
        assert_eq!(s.delta_max, 0.0);
    }

    #[test]
    fn total_mismatch_is_measured_not_hidden() {
        // Callers may pass a "total" different from the counts' sum (e.g.
        // validating a small sample against n/k of the population); the
        // deviation is then against total/k, as Definition 3 requires.
        let s = summarize_counts(&[5, 5], 20);
        assert_eq!(s.ideal, 10.0);
        assert_eq!(s.delta_max, 5.0);
    }

    #[test]
    #[should_panic(expected = "zero buckets")]
    fn empty_counts_rejected() {
        let _ = summarize_counts(&[], 10);
    }
}
