//! Error metrics for approximate histograms (paper Sections 2 and 5).
//!
//! The paper's central observation is that the classical *aggregate*
//! metrics — average error Δavg and variance error Δvar — permit an
//! approximate histogram to be wildly wrong in one region while still
//! looking good overall, which translates directly into unbounded
//! range-query estimation errors (Theorem 1). Its proposed replacement is
//! the **max error metric** Δmax (Definition 1): the largest absolute
//! deviation of any bucket from the ideal size `n/k`. A histogram with
//! `Δmax ≤ δ` is called *δ-deviant*.
//!
//! This module provides:
//! * [`ErrorSummary`] / [`summarize_counts`] — Δavg, Δvar, Δmax over a set
//!   of bucket counts (Section 2.2/2.3 formulas, verified against the
//!   paper's Example 2 numbers).
//! * [`max_error_against`] and [`compare`] — evaluate a histogram's
//!   separators against a (sorted) dataset, the "partition V with the
//!   sample's separators" operation of Section 3.1.
//! * [`delta_separation`] — Definition 2's bucket-boundary metric: the
//!   largest symmetric difference between corresponding buckets of two
//!   k-histograms over the same value set.
//! * [`fractional_max_error`] — Definition 4's generalization of the max
//!   error to duplicate-valued data with repeated separators; this is the
//!   metric the adaptive CVB algorithm cross-validates with.

mod fractional;
mod metrics;
mod separation;

pub use fractional::{
    fractional_max_error, histogram_fractional_error, FractionalGap, FractionalReport,
};
pub use metrics::{summarize_counts, ErrorSummary};
pub use separation::{delta_separation, is_delta_separated, SeparationReport};

use crate::histogram::EquiHeightHistogram;

/// Partition `sorted_data` with `hist`'s separators and summarize the
/// deviation of the resulting bucket counts from the ideal `n/k`
/// (`n = sorted_data.len()`, `k = hist.num_buckets()`).
///
/// This is the evaluation step of paper Section 3.1: the histogram's
/// quality is judged by how evenly *the population* splits under the
/// *sample-derived* separators.
pub fn max_error_against(hist: &EquiHeightHistogram, sorted_data: &[i64]) -> ErrorSummary {
    compare(hist, sorted_data).summary
}

/// Everything [`max_error_against`] computes, plus the recounted bucket
/// sizes for callers that want to inspect where the error lives.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramComparison {
    /// Δavg / Δvar / Δmax of the recounted buckets.
    pub summary: ErrorSummary,
    /// The population's bucket counts under the histogram's separators.
    pub counts: Vec<u64>,
}

/// See [`max_error_against`]; also returns the recounted bucket sizes.
pub fn compare(hist: &EquiHeightHistogram, sorted_data: &[i64]) -> HistogramComparison {
    let counts = crate::histogram::bucket_counts(sorted_data, hist.separators());
    let summary = summarize_counts(&counts, sorted_data.len() as u64);
    HistogramComparison { summary, counts }
}

/// Is `hist` δ-deviant with respect to `sorted_data` (Definition 1)?
pub fn is_delta_deviant(hist: &EquiHeightHistogram, sorted_data: &[i64], delta: f64) -> bool {
    max_error_against(hist, sorted_data).delta_max <= delta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_histogram_has_tiny_deviation() {
        let data: Vec<i64> = (0..1000).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 10);
        let err = max_error_against(&h, &data);
        // Duplicate-free data, k | n: deviation is exactly zero.
        assert_eq!(err.delta_max, 0.0);
        assert!(is_delta_deviant(&h, &data, 0.0));
    }

    #[test]
    fn perfect_histogram_non_divisible_deviation_below_one() {
        let data: Vec<i64> = (0..1003).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 10);
        let err = max_error_against(&h, &data);
        assert!(err.delta_max < 1.0, "Δmax = {}", err.delta_max);
    }

    #[test]
    fn compare_exposes_recounted_buckets() {
        // Separators from a skewed "sample", evaluated on uniform data.
        let sample = vec![1i64, 2, 3, 4]; // k=2 -> separator [2]
        let h = EquiHeightHistogram::from_sorted_sample(&sample, 2, 100);
        let population: Vec<i64> = (1..=100).collect();
        let cmp = compare(&h, &population);
        assert_eq!(cmp.counts, vec![2, 98]);
        assert_eq!(cmp.summary.delta_max, 48.0); // |2 - 50| = |98 - 50| = 48
        assert!(!is_delta_deviant(&h, &population, 10.0));
        assert!(is_delta_deviant(&h, &population, 48.0));
    }
}
