//! Small numerical utilities shared by the bounds and estimator modules.
//!
//! The distinct-value estimators (notably Goodman's unbiased estimator,
//! Section 6.1 of the paper) need binomial coefficients of the form
//! `C(n, r)` with `n` in the tens of millions. Those only fit in floating
//! point through the log-gamma function, so we carry a dependency-free
//! Lanczos implementation here rather than pulling in a special-functions
//! crate.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, which is
/// accurate to ~1e-13 relative error over the positive reals — far more
/// than the estimators built on top of it need.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Coefficients for g = 7 (Godfrey / Numerical Recipes lineage).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` computed through [`ln_gamma`].
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`, the log binomial coefficient. Returns `f64::NEG_INFINITY`
/// when `k > n` (the coefficient is zero).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Probability that a specific value of multiplicity `m` (out of a
/// population of `n` tuples) appears **exactly** `i` times in a simple
/// random sample of `r` tuples drawn without replacement: the
/// hypergeometric pmf `C(m,i)·C(n−m,r−i)/C(n,r)`.
pub fn hypergeometric_pmf(n: u64, m: u64, r: u64, i: u64) -> f64 {
    assert!(m <= n, "multiplicity {m} exceeds population {n}");
    assert!(r <= n, "sample size {r} exceeds population {n}");
    if i > m || i > r || (r - i) > (n - m) {
        return 0.0;
    }
    (ln_binomial(m, i) + ln_binomial(n - m, r - i) - ln_binomial(n, r)).exp()
}

/// Kahan-compensated sum: the alternating, astronomically large series in
/// Goodman's estimator loses everything to cancellation under naive
/// summation even sooner than necessary.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    pub fn add(&mut self, value: f64) {
        let y = value - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated total.
    pub fn total(&self) -> f64 {
        self.sum
    }
}

/// Ceiling of `a / b` on unsigned integers, with `b > 0`.
pub fn div_ceil_u64(a: u64, b: u64) -> u64 {
    assert!(b > 0, "division by zero");
    a / b + u64::from(a % b != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let mut fact = 1.0_f64;
        for n in 1..20u64 {
            fact *= n as f64;
            assert!(
                close(ln_gamma(n as f64 + 1.0), fact.ln(), 1e-12),
                "ln_gamma({}) mismatch",
                n + 1
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!(close(ln_gamma(0.5), expected, 1e-12));
        // Γ(3/2) = sqrt(pi)/2
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!(close(ln_gamma(1.5), expected, 1e-12));
    }

    #[test]
    fn ln_gamma_large_argument_stirling() {
        // Compare against Stirling's series for a big argument.
        let x: f64 = 1.0e7;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert!(close(ln_gamma(x), stirling, 1e-12));
    }

    #[test]
    fn binomial_small_cases() {
        assert!(close(ln_binomial(5, 2), 10f64.ln(), 1e-12));
        assert!(close(ln_binomial(10, 5), 252f64.ln(), 1e-12));
        assert_eq!(ln_binomial(3, 7), f64::NEG_INFINITY);
        assert_eq!(ln_binomial(7, 0), 0.0);
        assert_eq!(ln_binomial(7, 7), 0.0);
    }

    #[test]
    fn hypergeometric_sums_to_one() {
        let (n, m, r) = (50u64, 13u64, 17u64);
        let total: f64 = (0..=r).map(|i| hypergeometric_pmf(n, m, r, i)).sum();
        assert!(close(total, 1.0, 1e-10), "pmf sums to {total}");
    }

    #[test]
    fn hypergeometric_impossible_outcomes_are_zero() {
        // Cannot see a value more often than its multiplicity...
        assert_eq!(hypergeometric_pmf(10, 2, 5, 3), 0.0);
        // ...nor miss it more often than the non-value tuples allow.
        assert_eq!(hypergeometric_pmf(10, 9, 5, 0), 0.0);
    }

    #[test]
    fn kahan_beats_naive_on_adversarial_sum() {
        // Sum 1.0 followed by many tiny values that a naive f64 sum drops.
        let mut k = KahanSum::new();
        k.add(1.0);
        for _ in 0..10_000_000 {
            k.add(1e-16);
        }
        let expected = 1.0 + 1e-16 * 1e7;
        assert!((k.total() - expected).abs() < 1e-12);
    }

    #[test]
    fn div_ceil_behaviour() {
        assert_eq!(div_ceil_u64(10, 3), 4);
        assert_eq!(div_ceil_u64(9, 3), 3);
        assert_eq!(div_ceil_u64(0, 3), 0);
        assert_eq!(div_ceil_u64(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_ceil_rejects_zero_divisor() {
        let _ = div_ceil_u64(1, 0);
    }
}
