//! Density — the duplicate-ness statistic SQL Server collects alongside
//! each histogram (paper Section 7.1: "Density 0.0 implies that all values
//! in the column are distinct, while density 1.0 implies that all values
//! in the column are identical").
//!
//! Two related quantities are provided:
//!
//! * [`duplication_density`] — the normalized form matching the paper's
//!   0.0/1.0 endpoints exactly: the probability that two *distinct* tuples
//!   drawn at random share a value,
//!   `(Σ c_v² − n) / (n² − n)`.
//! * [`squared_frequency_density`] — the un-normalized second moment
//!   `Σ (c_v/n)²`, the probability that two independent tuples share a
//!   value; `n ×` this is the expected result size of an equality
//!   predicate whose constant is drawn like the data, which is how an
//!   optimizer uses density for `WHERE col = ?`.

/// Per-value multiplicities of a **sorted** multiset.
fn run_lengths(sorted: &[i64]) -> impl Iterator<Item = u64> + '_ {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let mut i = 0usize;
    std::iter::from_fn(move || {
        if i >= sorted.len() {
            return None;
        }
        let v = sorted[i];
        let start = i;
        while i < sorted.len() && sorted[i] == v {
            i += 1;
        }
        Some((i - start) as u64)
    })
}

/// The paper's density: probability that two tuples drawn without
/// replacement share a value. 0.0 iff all values are distinct, 1.0 iff all
/// are identical. Input must be sorted.
///
/// # Panics
/// If `sorted` is empty.
pub fn duplication_density(sorted: &[i64]) -> f64 {
    assert!(!sorted.is_empty(), "density of an empty multiset is undefined");
    let n = sorted.len() as u64;
    if n == 1 {
        // A single tuple has no pair to collide with; call it distinct.
        return 0.0;
    }
    let sum_sq: u128 = run_lengths(sorted).map(|c| (c as u128) * (c as u128)).sum();
    ((sum_sq - n as u128) as f64) / ((n as u128 * n as u128 - n as u128) as f64)
}

/// [`duplication_density`] computed from a [`FrequencyProfile`] instead
/// of sorted data: `Σ_j j²·f_j` over the profile is the same integer as
/// `Σ_v c_v²` over the runs, and the final float expression is
/// identical, so the result is **bit-identical** to
/// `duplication_density(sorted)` — this is how the sort-free `ANALYZE`
/// route gets its density without ever materializing run lengths.
///
/// [`FrequencyProfile`]: crate::distinct::FrequencyProfile
pub fn duplication_density_from_profile(profile: &crate::distinct::FrequencyProfile) -> f64 {
    let n = profile.sample_size();
    if n <= 1 {
        return 0.0;
    }
    let sum_sq: u128 = profile.iter().map(|(j, f)| (j as u128) * (j as u128) * (f as u128)).sum();
    ((sum_sq - n as u128) as f64) / ((n as u128 * n as u128 - n as u128) as f64)
}

/// The second frequency moment `Σ (c_v/n)²` — probability two
/// independently drawn tuples share a value. Ranges over `[1/n, 1]`.
/// Input must be sorted.
pub fn squared_frequency_density(sorted: &[i64]) -> f64 {
    assert!(!sorted.is_empty(), "density of an empty multiset is undefined");
    let n = sorted.len() as f64;
    let sum_sq: u128 = run_lengths(sorted).map(|c| (c as u128) * (c as u128)).sum();
    sum_sq as f64 / (n * n)
}

/// Expected result size of an equality predicate `col = c` when `c` is
/// drawn with the data's own distribution: `Σ c_v² / n = n ×`
/// [`squared_frequency_density`]. This is the estimate an optimizer
/// produces from the density statistic for parameterized equality
/// predicates.
pub fn expected_equality_matches(sorted: &[i64]) -> f64 {
    squared_frequency_density(sorted) * sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distinct_is_zero() {
        let data: Vec<i64> = (0..1000).collect();
        assert_eq!(duplication_density(&data), 0.0);
        assert!((squared_frequency_density(&data) - 1.0 / 1000.0).abs() < 1e-15);
    }

    #[test]
    fn all_identical_is_one() {
        let data = vec![7i64; 500];
        assert_eq!(duplication_density(&data), 1.0);
        assert_eq!(squared_frequency_density(&data), 1.0);
    }

    #[test]
    fn halfway_case() {
        // Two values, each half the data: P(two distinct tuples collide)
        // = 2 * C(n/2, 2) / C(n, 2).
        let mut data = vec![1i64; 50];
        data.extend(std::iter::repeat(2i64).take(50));
        let expected = 2.0 * (50.0 * 49.0 / 2.0) / (100.0 * 99.0 / 2.0);
        assert!((duplication_density(&data) - expected).abs() < 1e-12);
        assert!((squared_frequency_density(&data) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_input() {
        assert_eq!(duplication_density(&[42]), 0.0);
        assert_eq!(squared_frequency_density(&[42]), 1.0);
    }

    #[test]
    fn equality_matches_on_unif_dup() {
        // Every value exactly 100 times: an equality lookup returns 100.
        let mut data: Vec<i64> = Vec::new();
        for v in 0..50 {
            data.extend(std::iter::repeat(v as i64).take(100));
        }
        assert!((expected_equality_matches(&data) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn density_monotone_in_duplication() {
        // More duplication -> higher density.
        let low: Vec<i64> = (0..100).collect();
        let mut mid: Vec<i64> = (0..50).flat_map(|v| [v, v]).collect();
        mid.sort_unstable();
        let mut high: Vec<i64> = (0..10).flat_map(|v| std::iter::repeat(v).take(10)).collect();
        high.sort_unstable();
        let (dl, dm, dh) =
            (duplication_density(&low), duplication_density(&mid), duplication_density(&high));
        assert!(dl < dm && dm < dh, "{dl} {dm} {dh}");
    }

    #[test]
    fn profile_density_is_bit_identical() {
        use crate::distinct::FrequencyProfile;
        let mut x = 0x5151_5151u64 | 1;
        let values: Vec<i64> = (0..30_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 499) as i64
            })
            .collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let from_sorted = duplication_density(&sorted);
        let profile = FrequencyProfile::from_unsorted_sample_threads(1, &values);
        let from_profile = duplication_density_from_profile(&profile);
        assert_eq!(from_sorted.to_bits(), from_profile.to_bits());
        // Endpoint cases too.
        let ones = FrequencyProfile::from_pairs(vec![(1, 100)]);
        assert_eq!(duplication_density_from_profile(&ones), 0.0);
        let all_same = FrequencyProfile::from_pairs(vec![(100, 1)]);
        assert_eq!(duplication_density_from_profile(&all_same), 1.0);
        let single = FrequencyProfile::from_pairs(vec![(1, 1)]);
        assert_eq!(duplication_density_from_profile(&single), 0.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn empty_rejected() {
        let _ = duplication_density(&[]);
    }
}
