//! Range-query result-size estimation from an equi-height histogram.
//!
//! Implements the "typical strategy" of paper Section 2.2: for a query
//! interval `[x, y]`, sum the full buckets strictly inside the range and
//! interpolate the two partial buckets at the ends, assuming values are
//! spread uniformly across each bucket's domain interval. Interpolation is
//! the irreducible source of error — even the perfect histogram carries up
//! to `2n/k` of it (Theorem 1.1) — and histogram *count* error adds on top,
//! which is exactly what Theorems 1 and 3 quantify.

use crate::histogram::{count_le, EquiHeightHistogram};

/// A prepared range estimator over one histogram (precomputes cumulative
/// counts so each query costs `O(log k)`).
#[derive(Debug, Clone)]
pub struct RangeEstimator<'a> {
    hist: &'a EquiHeightHistogram,
    /// `cumulative[j]` = estimated number of values in buckets `0..=j`.
    cumulative: Vec<u64>,
}

impl<'a> RangeEstimator<'a> {
    /// Prepare an estimator for `hist`.
    pub fn new(hist: &'a EquiHeightHistogram) -> Self {
        let mut cumulative = Vec::with_capacity(hist.num_buckets());
        let mut acc = 0u64;
        for &c in hist.counts() {
            acc += c;
            cumulative.push(acc);
        }
        Self { hist, cumulative }
    }

    /// Estimated number of values `≤ t`.
    ///
    /// Uses linear interpolation inside the bucket containing `t`. The
    /// first bucket's open lower edge is anchored at `min_value − 1` and
    /// the last bucket's open upper edge at `max_value`, matching how a
    /// system that stores the column min/max alongside the histogram
    /// interpolates its edge buckets.
    pub fn estimate_le(&self, t: i64) -> f64 {
        let h = self.hist;
        if t < h.min_value() {
            return 0.0;
        }
        if t >= h.max_value() {
            return h.total() as f64;
        }
        let j = h.bucket_of(t);
        let below = if j == 0 { 0 } else { self.cumulative[j - 1] } as f64;
        // Edge arithmetic in i128: the first bucket's `min − 1` anchor
        // underflows i64 when the column minimum is `i64::MIN`, and a
        // full-span bucket's width `upper − lower` can exceed i64 range.
        // Where i64 sufficed the widened ops produce the same integers,
        // hence bit-identical fractions.
        let lower: i128 = if j == 0 {
            h.min_value() as i128 - 1 // exclusive lower edge of the first bucket
        } else {
            h.separators()[j - 1] as i128
        };
        let upper: i128 = if j == h.num_buckets() - 1 {
            h.max_value() as i128
        } else {
            h.separators()[j] as i128
        };
        let fraction = if upper <= lower {
            // Degenerate bucket (single duplicated value): all-or-nothing.
            if t as i128 >= upper {
                1.0
            } else {
                0.0
            }
        } else {
            // Continuous-uniform assumption over the half-open (lower, upper].
            ((t as i128 - lower) as f64 / (upper - lower) as f64).clamp(0.0, 1.0)
        };
        below + fraction * h.counts()[j] as f64
    }

    /// Estimated number of values `< t`.
    pub fn estimate_lt(&self, t: i64) -> f64 {
        if t == i64::MIN {
            0.0
        } else {
            self.estimate_le(t - 1)
        }
    }

    /// Estimated output size of the range query `x ≤ v ≤ y`.
    ///
    /// Returns 0 for empty ranges (`x > y`).
    pub fn estimate_range(&self, x: i64, y: i64) -> f64 {
        if x > y {
            return 0.0;
        }
        (self.estimate_le(y) - self.estimate_lt(x)).max(0.0)
    }

    /// Estimated selectivity (fraction of tuples) of `x ≤ v ≤ y`.
    pub fn estimate_selectivity(&self, x: i64, y: i64) -> f64 {
        self.estimate_range(x, y) / self.hist.total() as f64
    }
}

/// Exact output size of `x ≤ v ≤ y` over sorted data (ground truth).
pub fn true_range_count(sorted: &[i64], x: i64, y: i64) -> u64 {
    if x > y {
        return 0;
    }
    let hi = count_le(sorted, y);
    let lo = if x == i64::MIN { 0 } else { count_le(sorted, x - 1) };
    (hi - lo) as u64
}

/// One evaluated range query: estimate vs truth, with both error forms
/// used by Theorems 1 and 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQueryError {
    /// The histogram's estimate.
    pub estimate: f64,
    /// The true output size.
    pub truth: u64,
    /// `|estimate − truth|`.
    pub absolute: f64,
    /// `|estimate − truth| / truth`, or `None` for empty results (the
    /// paper: relative error needs "the output size ... not too small to
    /// get any meaningful numbers").
    pub relative: Option<f64>,
}

/// Evaluate the query `x ≤ v ≤ y` with `hist` against ground truth
/// `sorted`.
pub fn evaluate_range_query(
    hist: &EquiHeightHistogram,
    sorted: &[i64],
    x: i64,
    y: i64,
) -> RangeQueryError {
    let estimate = RangeEstimator::new(hist).estimate_range(x, y);
    let truth = true_range_count(sorted, x, y);
    let absolute = (estimate - truth as f64).abs();
    let relative = (truth > 0).then(|| absolute / truth as f64);
    RangeQueryError { estimate, truth, absolute, relative }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::range::max_bounded_envelope;
    use crate::error::max_error_against;

    fn uniform(n: i64) -> Vec<i64> {
        (1..=n).collect()
    }

    #[test]
    fn estimate_le_edges() {
        let data = uniform(100);
        let h = EquiHeightHistogram::from_sorted(&data, 10);
        let est = RangeEstimator::new(&h);
        assert_eq!(est.estimate_le(0), 0.0);
        assert_eq!(est.estimate_le(100), 100.0);
        assert_eq!(est.estimate_le(1_000_000), 100.0);
        assert_eq!(est.estimate_lt(i64::MIN), 0.0);
    }

    #[test]
    fn uniform_data_interpolates_exactly() {
        // On perfectly uniform integer data the continuous assumption is
        // exact at every point.
        let data = uniform(1000);
        let h = EquiHeightHistogram::from_sorted(&data, 10);
        let est = RangeEstimator::new(&h);
        for t in [1i64, 37, 100, 499, 500, 777, 999] {
            let truth = count_le(&data, t) as f64;
            assert!(
                (est.estimate_le(t) - truth).abs() < 1e-9,
                "t = {t}: est {} vs {truth}",
                est.estimate_le(t)
            );
        }
    }

    #[test]
    fn range_queries_on_uniform_data() {
        let data = uniform(1000);
        let h = EquiHeightHistogram::from_sorted(&data, 10);
        let est = RangeEstimator::new(&h);
        assert!((est.estimate_range(101, 200) - 100.0).abs() < 1e-9);
        assert!((est.estimate_range(1, 1000) - 1000.0).abs() < 1e-9);
        assert_eq!(est.estimate_range(500, 499), 0.0, "empty range");
        assert!((est.estimate_selectivity(1, 500) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn true_range_count_brute_force_agreement() {
        let mut data = vec![5i64, 5, 5, 9, 12, 12, 40, 41, 42, 100];
        data.sort_unstable();
        for (x, y) in [(0, 4), (5, 5), (5, 12), (13, 39), (40, 100), (i64::MIN, i64::MAX)] {
            let brute = data.iter().filter(|&&v| v >= x && v <= y).count() as u64;
            assert_eq!(true_range_count(&data, x, y), brute, "({x},{y})");
        }
    }

    #[test]
    fn degenerate_bucket_behaviour_plain_vs_compressed() {
        // One value dominating: the heavy mass lands in the bucket whose
        // upper separator is the value itself, and a plain equi-height
        // histogram *smears* it across the bucket's domain width under the
        // continuous-uniform assumption. A point query on the heavy value
        // therefore underestimates badly — this is precisely the Section 5
        // problem that compressed histograms exist to fix.
        let mut data = vec![50i64; 90];
        data.extend([1, 2, 3, 4, 5, 96, 97, 98, 99, 100]);
        data.sort_unstable();
        let h = EquiHeightHistogram::from_sorted(&data, 10);
        let est = RangeEstimator::new(&h);
        // Plain histogram: the 95-tuple bucket (-inf, 50] is spread over
        // (min-1, 50], so [50,50] sees only ~1/50 of it.
        let plain = est.estimate_range(50, 50);
        assert!(plain < 10.0, "plain histogram should smear: {plain}");
        // But a range covering the whole bucket gets the mass right.
        let covering = est.estimate_range(0, 50);
        assert!((covering - 95.0).abs() < 1e-9, "covering query: {covering}");

        // Compressed histogram: exact for the heavy value.
        let c = crate::histogram::CompressedHistogram::from_sorted(&data, 10);
        assert_eq!(c.estimate_eq(50), 90.0);
        // And the light tail is no longer contaminated by the heavy mass.
        let light = c.estimate_range(96, 100);
        assert!((light - 5.0).abs() < 3.0, "light range: {light}");
    }

    /// Theorem 3 end-to-end: a histogram whose separators deviate from the
    /// ideal ranks by at most δ (measured here as the *cumulative* form of
    /// the max error, which is what Theorem 4's proof actually bounds)
    /// keeps every range query's absolute error within `2·(n/k + δ)` —
    /// the `(1 + f)·2n/k` envelope with `f = δ/(n/k)`.
    #[test]
    fn theorem_3_envelope_holds_empirically() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        // Skewed data: value density rises quadratically.
        let mut data: Vec<i64> = (0..30_000)
            .map(|_| {
                let u: f64 = rng.gen();
                (u.sqrt() * 100_000.0) as i64
            })
            .collect();
        data.sort_unstable();
        let n = data.len() as u64;
        let k = 25;
        // An approximate histogram from a modest sample.
        let sample = crate::sampling::with_replacement(&data, 4000, &mut rng);
        let h = EquiHeightHistogram::from_unsorted_sample(sample, k, n);

        // Measured cumulative max deviation: max_j |C(s_j) − j·n/k|.
        let ideal = n as f64 / k as f64;
        let delta_cum = h
            .separators()
            .iter()
            .enumerate()
            .map(|(j, &s)| (count_le(&data, s) as f64 - (j + 1) as f64 * ideal).abs())
            .fold(0.0f64, f64::max);
        let f_cum = delta_cum / ideal;
        // (Sanity: the per-bucket max error is within 2× the cumulative.)
        let f_bucket = max_error_against(&h, &data).relative_max();
        assert!(f_bucket <= 2.0 * f_cum + 1e-9);

        // Theorem 3 envelope at f = f_cum, plus the ±1-per-bucket rounding
        // slack of the stored (scaled) counts.
        let envelope = max_bounded_envelope(n, k, 1.0, f_cum).absolute + 2.0 * k as f64;
        for _ in 0..200 {
            let a = rng.gen_range(0..100_000i64);
            let b = rng.gen_range(0..100_000i64);
            let (x, y) = (a.min(b), a.max(b));
            let err = evaluate_range_query(&h, &data, x, y);
            assert!(
                err.absolute <= envelope + 1e-6,
                "query [{x},{y}]: abs err {} > envelope {envelope}",
                err.absolute
            );
        }
    }

    #[test]
    fn relative_error_is_none_on_empty_result() {
        let data = uniform(100);
        let h = EquiHeightHistogram::from_sorted(&data, 4);
        let err = evaluate_range_query(&h, &data, 2000, 3000);
        assert_eq!(err.truth, 0);
        assert!(err.relative.is_none());
    }
}
