//! Optimizer-facing consumers of histograms: range-query result-size
//! estimation (Section 2.2's motivating application) and the density
//! statistic collected alongside histograms by SQL Server (Section 7.1).

mod density;
mod range;

pub use density::{
    duplication_density, duplication_density_from_profile, expected_equality_matches,
    squared_frequency_density,
};
pub use range::{evaluate_range_query, true_range_count, RangeEstimator, RangeQueryError};
