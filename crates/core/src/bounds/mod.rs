//! Sampling-size bounds and worst-case error envelopes (paper Sections 2–4).
//!
//! This module contains the closed-form trade-offs that let a system answer
//! "how much sampling is enough?" *before* touching the data:
//!
//! * [`chaudhuri`] — the paper's own results: Theorem 4 and Corollary 1
//!   (record-level sampling for δ-deviant histograms), Theorem 5
//!   (δ-separation), Theorem 7 (cross-validation thresholds used by the
//!   adaptive CVB algorithm), each exposed in all the "multi-functional"
//!   directions Example 3 demonstrates (solve for r, for f, or for k).
//! * [`gmp`] — Theorem 6, the Gibbons–Matias–Poosala bound from VLDB 1997,
//!   the closest prior work; implemented so the Example 4 comparison can
//!   be reproduced quantitatively.
//! * [`range`] — Theorems 1 and 3: worst-case absolute/relative error
//!   envelopes for range-query result-size estimation under perfect,
//!   Δavg-bounded, Δvar-bounded and Δmax-bounded histograms, plus the
//!   adversarial instances showing the Theorem 1 bounds are tight.

pub mod chaudhuri;
pub mod gmp;
pub mod range;

pub use chaudhuri::{
    corollary1_error, corollary1_max_buckets, corollary1_sample_size, theorem4_sample_size,
    theorem5_sample_size, theorem7_lower_validation_size, theorem7_upper_validation_size,
    SamplingPlan,
};
pub use gmp::GmpBound;
pub use range::{RangeErrorEnvelope, WorstCaseFactors};
