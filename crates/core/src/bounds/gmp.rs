//! Theorem 6 — the Gibbons–Matias–Poosala (VLDB 1997) sampling bound,
//! reproduced so the paper's Example 4 comparison can be made
//! quantitatively.
//!
//! GMP's guarantee (restated): for `k ≥ 3`, `c ≥ 4` and
//! `f = (c · ln²k)^{-1/6}`, a random sample of size `r ≥ c·k·ln²k` yields,
//! with probability `1 − γ` for `γ = k^{1−√c} + n^{−1/3}`, an approximate
//! histogram with **variance** error `Δvar ≤ f·n/k` — valid only when
//! `n ≥ k³` (and, per the paper's Example 4 reading, effectively `n ≥ r³`).
//!
//! The contrast the paper draws (Example 4):
//! 1. GMP bounds only Δvar; the paper's Theorem 4 bounds the stronger Δmax.
//! 2. GMP needs astronomically large n before it applies at all.
//! 3. GMP offers essentially one operating point per k; no smooth
//!    trade-off.
//! 4. GMP cannot reach f below ≈ 0.35 for any practical k.
//! 5. For comparable targets GMP's sample sizes are orders of magnitude
//!    larger (77 M vs 4 M in the k = 500 comparison).

/// The resolved GMP operating point for a choice of `k` and `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmpBound {
    /// Histogram buckets (must be ≥ 3).
    pub k: usize,
    /// The free constant `c ≥ 4`.
    pub c: f64,
    /// Guaranteed relative variance error `f = (c·ln²k)^{-1/6}`.
    pub f: f64,
    /// Required sample size `r = c·k·ln²k`.
    pub r: f64,
}

impl GmpBound {
    /// Evaluate Theorem 6 at `(k, c)`.
    ///
    /// # Panics
    /// If `k < 3` or `c < 4` (outside the theorem's stated domain).
    pub fn new(k: usize, c: f64) -> Self {
        assert!(k >= 3, "Theorem 6 requires k ≥ 3, got {k}");
        assert!(c >= 4.0, "Theorem 6 requires c ≥ 4, got {c}");
        let ln_k = (k as f64).ln();
        let ln2_k = ln_k * ln_k;
        GmpBound { k, c, f: (c * ln2_k).powf(-1.0 / 6.0), r: c * k as f64 * ln2_k }
    }

    /// The failure probability `γ = k^{1−√c} + n^{−1/3}` for a relation of
    /// size `n`.
    pub fn gamma(&self, n: u64) -> f64 {
        (self.k as f64).powf(1.0 - self.c.sqrt()) + (n as f64).powf(-1.0 / 3.0)
    }

    /// The minimum relation size for the theorem to be applicable under
    /// the paper's Example 4 reading, `n ≥ r³` with `r ≥ 4k·ln²k`.
    pub fn min_applicable_n(&self) -> f64 {
        self.r.powi(3)
    }

    /// The smallest `c` achieving variance error ≤ `f_target` at this `k`:
    /// inverting `f = (c·ln²k)^{-1/6}` gives `c = f⁻⁶ / ln²k`. Returns
    /// `None` when that `c` falls below the theorem's domain (c < 4) —
    /// i.e. when even the cheapest valid operating point is already better
    /// than requested — in which case `c = 4` applies.
    pub fn c_for_error(k: usize, f_target: f64) -> Option<f64> {
        assert!(k >= 3, "Theorem 6 requires k ≥ 3");
        assert!(f_target > 0.0 && f_target < 1.0, "f must be in (0,1)");
        let ln_k = (k as f64).ln();
        let c = f_target.powi(-6) / (ln_k * ln_k);
        (c >= 4.0).then_some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 4, item 4: "For k = 100, it guarantees f = 0.48".
    #[test]
    fn example_4_f_floor_at_k_100() {
        let b = GmpBound::new(100, 4.0);
        assert!((b.f - 0.48).abs() < 0.02, "f = {}", b.f);
    }

    /// Example 4, item 4: f below 0.35 needs k > 100,000.
    #[test]
    fn example_4_f_below_035_needs_huge_k() {
        // At the cheapest c = 4, f decreases only via ln²k.
        let f_at = |k: usize| GmpBound::new(k, 4.0).f;
        assert!(f_at(100_000) > 0.345, "f(1e5) = {}", f_at(100_000));
        assert!(f_at(10_000) > 0.36, "f(1e4) = {}", f_at(10_000));
    }

    /// Example 4, item 4: "for f = 0.1, Theorem 6 requires k > e^500";
    /// equivalently at any practical k the required c is astronomical.
    #[test]
    fn example_4_f_01_needs_absurd_c() {
        let c = GmpBound::c_for_error(1000, 0.1).expect("far above 4");
        // c = 10^6 / ln²(1000) ≈ 2.1e4; the resulting r = c·k·ln²k ≈ 1e9
        // samples for k = 1000 — hopeless, as the paper says.
        assert!(c > 1.0e4, "c = {c}");
        let r = GmpBound::new(1000, c).r;
        assert!(r > 5.0e8, "r = {r}");
    }

    /// Example 4, item 2: for k = 100 the applicability threshold is
    /// already ~6×10^11 tuples ("almost a tera-byte of data").
    #[test]
    fn example_4_applicability_threshold() {
        let b = GmpBound::new(100, 4.0);
        // r = 4·100·ln²100 ≈ 8482; n ≥ r³ ≈ 6.1e11.
        assert!((b.r - 8482.0).abs() < 10.0, "r = {}", b.r);
        let min_n = b.min_applicable_n();
        assert!((5.0e11..8.0e11).contains(&min_n), "min n = {min_n:.3e}");
    }

    /// Example 4, item 5 (qualitative form): at k = 500, GMP's error floor
    /// sits at f ≈ 0.43 and the theorem is inapplicable until n reaches
    /// ~10^14 tuples, while Corollary 1 guarantees the much stricter
    /// f = 0.2 at a few million samples for *any* n — including the 20M-row
    /// relations of the paper's own experiments, where GMP says nothing.
    ///
    /// (The paper's quoted "77Meg" sample size for GMP does not follow from
    /// the literal Theorem 6 restatement — `c·k·ln²k ≈ 77K` at k = 500,
    /// c = 4 — so we assert the qualitative claims, which do; see
    /// EXPERIMENTS.md for the discussion.)
    #[test]
    fn example_4_sample_size_comparison() {
        let k = 500;
        let gmp = GmpBound::new(k, 4.0);
        // Error floor: the cheapest valid operating point is f ≈ 0.43...
        assert!((gmp.f - 0.43).abs() < 0.02, "GMP f floor = {}", gmp.f);
        // ...and pushing below it is hopeless (f = 0.2 needs c ≈ 400).
        let c_02 = GmpBound::c_for_error(k, 0.2).expect("above 4");
        assert!(c_02 > 100.0, "c for f=0.2 is {c_02}");

        // Applicability: GMP needs n ≳ 4×10^14; the paper's experiments run
        // at n = 2×10^7 where the theorem does not apply at all.
        assert!(gmp.min_applicable_n() > 1.0e14, "min n = {:.3e}", gmp.min_applicable_n());

        // Corollary 1 at the stricter f = 0.2 with γ matched to GMP's own
        // failure probability: a few million samples, at any n.
        for n in [20_000_000u64, 1_000_000_000_000] {
            let gamma = gmp.gamma(n);
            let ours = crate::bounds::corollary1_sample_size(k, 0.2, n, gamma);
            assert!(ours < 6.0e6, "ours r = {ours:.3e} at n = {n}");
        }
    }

    #[test]
    fn gamma_shrinks_with_c_and_n() {
        let b4 = GmpBound::new(100, 4.0);
        let b9 = GmpBound::new(100, 9.0);
        assert!(b9.gamma(1_000_000) < b4.gamma(1_000_000));
        assert!(b4.gamma(1_000_000_000) < b4.gamma(1_000_000));
    }

    #[test]
    fn c_for_error_below_domain_is_none() {
        // A very loose f target is achievable at c < 4 -> None.
        assert!(GmpBound::c_for_error(1000, 0.9).is_none());
    }

    #[test]
    #[should_panic(expected = "k ≥ 3")]
    fn small_k_rejected() {
        let _ = GmpBound::new(2, 4.0);
    }

    #[test]
    #[should_panic(expected = "c ≥ 4")]
    fn small_c_rejected() {
        let _ = GmpBound::new(100, 3.0);
    }
}
