//! Theorems 1 and 3 — worst-case range-query estimation-error envelopes.
//!
//! Theorem 1 (lower bounds, all tight): for a range query with output size
//! `s = t·n/k`,
//!
//! * even a **perfect** equi-height histogram cannot guarantee absolute
//!   error below `2n/k` (one partial bucket of slop at each end of the
//!   range) nor relative error below `2/t`;
//! * a histogram bounded only in **average** error `Δavg = f·n/k` cannot
//!   guarantee better than `(1 + f·k/4) · 2n/k` — the aggregate bound lets
//!   an adversary concentrate `f·n/2` of misplaced tuples where the query
//!   looks;
//! * a histogram bounded only in **variance** error `Δvar = f·n/k` cannot
//!   guarantee better than `(1 + f·√(k·t/8)) · 2n/k`, degrading with the
//!   query size `t`.
//!
//! Theorem 3 (upper bound): a histogram with **max** error `Δmax = f·n/k`
//! *guarantees* absolute error `≤ (1 + f) · 2n/k` and relative error
//! `≤ (1 + f) · 2/t` for **all** range queries — within a factor `(1 + f)`
//! of the perfect histogram. This is the payoff of the max error metric.

/// A worst-case error envelope for range-query size estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeErrorEnvelope {
    /// Absolute error bound α (in tuples).
    pub absolute: f64,
    /// Relative error bound β (dimensionless; output size `s = t·n/k`
    /// must be positive for this to be meaningful).
    pub relative: f64,
}

/// The multiplicative factors by which each error-metric regime inflates
/// the perfect histogram's `2n/k` / `2/t` envelope. Computing them
/// separately makes the Example 1 "13.5× / 2.8× / 1.05×" comparison
/// direct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorstCaseFactors {
    /// Δavg-bounded histograms: `1 + f·k/4` (Theorem 1.2).
    pub avg: f64,
    /// Δvar-bounded histograms: `1 + f·√(k·t/8)` (Theorem 1.3).
    pub var: f64,
    /// Δmax-bounded histograms: `1 + f` (Theorem 3).
    pub max: f64,
}

impl WorstCaseFactors {
    /// Evaluate the three factors at histogram error fraction `f`, bucket
    /// count `k`, and query size parameter `t` (output size `s = t·n/k`).
    pub fn new(f: f64, k: usize, t: f64) -> Self {
        assert!(f >= 0.0, "error fraction must be non-negative");
        assert!(k > 0, "need at least one bucket");
        assert!(t > 0.0, "query size parameter t must be positive");
        let k = k as f64;
        Self { avg: 1.0 + f * k / 4.0, var: 1.0 + f * (k * t / 8.0).sqrt(), max: 1.0 + f }
    }
}

/// Theorem 1.1: the envelope of a **perfect** equi-height histogram —
/// `α = 2n/k`, `β = 2/t`. No summary of the data can beat this; it is the
/// irreducible interpolation slop of the two partial buckets at the ends
/// of any range.
pub fn perfect_envelope(n: u64, k: usize, t: f64) -> RangeErrorEnvelope {
    assert!(k > 0 && t > 0.0);
    RangeErrorEnvelope { absolute: 2.0 * n as f64 / k as f64, relative: 2.0 / t }
}

/// Theorem 1.2: worst-case envelope when only `Δavg ≤ f·n/k` is known.
pub fn avg_bounded_envelope(n: u64, k: usize, t: f64, f: f64) -> RangeErrorEnvelope {
    scale(perfect_envelope(n, k, t), WorstCaseFactors::new(f, k, t).avg)
}

/// Theorem 1.3: worst-case envelope when only `Δvar ≤ f·n/k` is known.
pub fn var_bounded_envelope(n: u64, k: usize, t: f64, f: f64) -> RangeErrorEnvelope {
    scale(perfect_envelope(n, k, t), WorstCaseFactors::new(f, k, t).var)
}

/// Theorem 3: guaranteed envelope when `Δmax ≤ f·n/k` — the only regime
/// where the bound *holds for all queries* rather than being a lower bound
/// on the worst case.
pub fn max_bounded_envelope(n: u64, k: usize, t: f64, f: f64) -> RangeErrorEnvelope {
    scale(perfect_envelope(n, k, t), WorstCaseFactors::new(f, k, t).max)
}

fn scale(e: RangeErrorEnvelope, factor: f64) -> RangeErrorEnvelope {
    RangeErrorEnvelope { absolute: e.absolute * factor, relative: e.relative * factor }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Example 1: k = 1000, f = 0.05, t = 10. The perfect histogram
    /// gives α = 0.002·n and β = 0.2; the avg-bounded histogram is worse
    /// by 13.5×, the var-bounded by ≈2.8×, and (continuing in Example 2)
    /// the max-bounded by only 1.05×.
    #[test]
    fn example_1_factors() {
        let factors = WorstCaseFactors::new(0.05, 1000, 10.0);
        assert!((factors.avg - 13.5).abs() < 1e-12, "avg factor = {}", factors.avg);
        assert!((factors.var - 2.767).abs() < 0.01, "var factor = {}", factors.var);
        assert!((factors.max - 1.05).abs() < 1e-12, "max factor = {}", factors.max);
    }

    #[test]
    fn example_1_absolute_and_relative() {
        let n = 1_000_000u64;
        let perfect = perfect_envelope(n, 1000, 10.0);
        assert!((perfect.absolute - 0.002 * n as f64).abs() < 1e-9);
        assert!((perfect.relative - 0.2).abs() < 1e-12);

        let maxb = max_bounded_envelope(n, 1000, 10.0, 0.05);
        assert!((maxb.absolute - 0.0021 * n as f64).abs() < 1e-6);
        assert!((maxb.relative - 0.21).abs() < 1e-12);
    }

    /// The variance-bounded envelope degrades as the query grows (the
    /// paper: "increasing the value of s will further increase the error");
    /// the avg- and max-bounded factors do not depend on t.
    #[test]
    fn var_envelope_grows_with_query_size() {
        let f10 = WorstCaseFactors::new(0.05, 1000, 10.0);
        let f40 = WorstCaseFactors::new(0.05, 1000, 40.0);
        assert!(f40.var > f10.var);
        assert_eq!(f40.avg, f10.avg);
        assert_eq!(f40.max, f10.max);
    }

    /// The avg-bounded worst case explodes linearly with k while the
    /// max-bounded one is flat — Example 2's "as the value of k increases,
    /// the gap between the various notions of error can increase
    /// unboundedly".
    #[test]
    fn gap_grows_unboundedly_with_k() {
        let small = WorstCaseFactors::new(0.05, 100, 10.0);
        let large = WorstCaseFactors::new(0.05, 10_000, 10.0);
        assert!((large.avg / small.avg) > 35.0);
        assert_eq!(small.max, large.max);
    }

    /// Ordering sanity: for any parameters with f > 0, k ≥ 8, t ≤ k, the
    /// max-bounded guarantee is the tightest and avg-bounded the loosest
    /// at t ≤ k/2 (where √(kt/8) ≤ k/4 ⇔ t ≤ k/2).
    #[test]
    fn envelope_ordering() {
        for &(k, t, f) in &[(100usize, 10.0f64, 0.1f64), (1000, 100.0, 0.05), (600, 50.0, 0.2)] {
            let w = WorstCaseFactors::new(f, k, t);
            assert!(w.max < w.var, "max < var at k={k},t={t}");
            assert!(w.var <= w.avg, "var <= avg at k={k},t={t}");
        }
    }

    #[test]
    fn zero_error_collapses_to_perfect() {
        let w = WorstCaseFactors::new(0.0, 1000, 10.0);
        assert_eq!(w.avg, 1.0);
        assert_eq!(w.var, 1.0);
        assert_eq!(w.max, 1.0);
    }

    #[test]
    #[should_panic(expected = "t must be positive")]
    fn zero_t_rejected() {
        let _ = WorstCaseFactors::new(0.1, 10, 0.0);
    }
}
