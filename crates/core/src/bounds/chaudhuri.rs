//! The paper's sampling bounds: Theorems 4, 5, 7 and Corollary 1.
//!
//! All bounds share the shape "r grows linearly in k, inversely with the
//! squared relative error f², and only logarithmically in n and 1/γ" —
//! the counter-intuitive consequence (Section 3.3) being that beyond a
//! modest size, *bigger databases do not need bigger samples*.
//!
//! Every function returns `f64` (the exact formula value); callers round up
//! with `.ceil()` when they need a concrete sample size. Inputs are checked
//! with assertions because a nonsensical bound (γ ≤ 0, f > 1, δ > n/k) is
//! always a caller bug, never a data condition.

/// Theorem 4: sample size sufficient for a δ-deviant k-histogram of a
/// value set of size `n` with probability ≥ 1 − γ:
///
/// ```text
/// r ≥ 4 n² ln(2n/γ) / (k δ²)       (requires δ ≤ n/k)
/// ```
pub fn theorem4_sample_size(n: u64, k: usize, delta: f64, gamma: f64) -> f64 {
    check_common(k, gamma);
    let n = n as f64;
    let k = k as f64;
    assert!(delta > 0.0, "δ must be positive");
    assert!(delta <= n / k + 1e-9, "Theorem 4 requires δ ≤ n/k (δ = {delta}, n/k = {})", n / k);
    4.0 * n * n * (2.0 * n / gamma).ln() / (k * delta * delta)
}

/// Corollary 1 with δ = f·n/k: sample size sufficient for relative max
/// error ≤ f with probability ≥ 1 − γ:
///
/// ```text
/// r ≥ 4 k ln(2n/γ) / f²            (0 < f < 1)
/// ```
pub fn corollary1_sample_size(k: usize, f: f64, n: u64, gamma: f64) -> f64 {
    check_common(k, gamma);
    check_f(f);
    4.0 * k as f64 * (2.0 * n as f64 / gamma).ln() / (f * f)
}

/// Corollary 1 solved for the error: the relative max error `f` guaranteed
/// (w.p. ≥ 1 − γ) by a sample of size `r`:
///
/// ```text
/// f = sqrt( 4 k ln(2n/γ) / r )
/// ```
///
/// Values above 1 mean the sample is too small for any guarantee at this k.
pub fn corollary1_error(r: u64, k: usize, n: u64, gamma: f64) -> f64 {
    check_common(k, gamma);
    assert!(r > 0, "sample size must be positive");
    (4.0 * k as f64 * (2.0 * n as f64 / gamma).ln() / r as f64).sqrt()
}

/// Corollary 1 solved for the histogram size: the largest bucket count `k`
/// supportable by a sample of size `r` at relative error `f`:
///
/// ```text
/// k = r f² / (4 ln(2n/γ))
/// ```
///
/// (Example 3's "Determining Histogram Size": r = 1M, n = 20M, f = 0.25
/// gives k ≤ ~800.)
pub fn corollary1_max_buckets(r: u64, f: f64, n: u64, gamma: f64) -> f64 {
    assert!(gamma > 0.0 && gamma < 1.0, "γ must be in (0,1), got {gamma}");
    assert!(r > 0, "sample size must be positive");
    check_f(f);
    r as f64 * f * f / (4.0 * (2.0 * n as f64 / gamma).ln())
}

/// Theorem 5: sample size sufficient for the sampled histogram to be
/// δ-**separated** (Definition 2) from the perfect k-histogram with
/// probability ≥ 1 − γ:
///
/// ```text
/// r ≥ 12 n² ln(2k/γ) / δ²          (requires δ ≤ n/k)
/// ```
pub fn theorem5_sample_size(n: u64, k: usize, delta: f64, gamma: f64) -> f64 {
    check_common(k, gamma);
    let n = n as f64;
    assert!(delta > 0.0, "δ must be positive");
    assert!(
        delta <= n / k as f64 + 1e-9,
        "Theorem 5 requires δ ≤ n/k (δ = {delta}, n/k = {})",
        n / k as f64
    );
    12.0 * n * n * (2.0 * k as f64 / gamma).ln() / (delta * delta)
}

/// Theorem 7 part 1: validation-sample size at which a histogram whose
/// true deviation **exceeds** `2·f·n/k` is unlikely (probability ≤ γ) to
/// *pass* the cross-validation test `δ_S ≤ f·s/k`:
///
/// ```text
/// s ≥ 4 k ln(1/γ) / f²
/// ```
pub fn theorem7_upper_validation_size(k: usize, f: f64, gamma: f64) -> f64 {
    check_common(k, gamma);
    check_f(f);
    4.0 * k as f64 * (1.0 / gamma).ln() / (f * f)
}

/// Theorem 7 part 2: validation-sample size at which a histogram whose
/// true deviation is **at most** `f·n/(2k)` is unlikely (probability ≤ γ)
/// to *fail* the test `δ_S ≥ f·s/k`:
///
/// ```text
/// s ≥ 16 k ln(k/γ) / f²
/// ```
///
/// Together the two parts make cross-validation a reliable stopping rule:
/// it neither stops too early (part 1) nor samples forever (part 2); a
/// histogram passing the test has deviation ≤ 2f·n/k with high
/// probability.
pub fn theorem7_lower_validation_size(k: usize, f: f64, gamma: f64) -> f64 {
    check_common(k, gamma);
    check_f(f);
    16.0 * k as f64 * (k as f64 / gamma).ln() / (f * f)
}

/// A resolved sampling plan: the concrete numbers a system needs to run a
/// sampling-based `ANALYZE` with guarantees, bundled from the individual
/// theorems. See Example 3 for the paper's own walk-through of these
/// trade-offs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingPlan {
    /// Relation size.
    pub n: u64,
    /// Histogram buckets.
    pub k: usize,
    /// Target relative max error (Definition 1's `f`).
    pub f: f64,
    /// Failure probability γ.
    pub gamma: f64,
    /// Record-level sample size from Corollary 1, rounded up and capped at
    /// `n` (sampling more tuples than exist is a full scan).
    pub record_sample_size: u64,
    /// Validation-sample size making the cross-validation test reliable in
    /// both directions (max of Theorem 7's two parts), rounded up.
    pub validation_sample_size: u64,
}

impl SamplingPlan {
    /// Build a plan for the given parameters.
    pub fn new(n: u64, k: usize, f: f64, gamma: f64) -> Self {
        let r = corollary1_sample_size(k, f, n, gamma).ceil() as u64;
        let s1 = theorem7_upper_validation_size(k, f, gamma).ceil() as u64;
        let s2 = theorem7_lower_validation_size(k, f, gamma).ceil() as u64;
        Self {
            n,
            k,
            f,
            gamma,
            record_sample_size: r.min(n),
            validation_sample_size: s1.max(s2).min(n),
        }
    }

    /// Is full scanning cheaper than the sample the bound asks for? (The
    /// paper, Example 3: "or to decide that it may not be cost effective
    /// to use random sampling for desired histogram size/error".)
    pub fn sampling_is_pointless(&self) -> bool {
        self.record_sample_size >= self.n
    }

    /// The sampling fraction `r/n`.
    pub fn sampling_rate(&self) -> f64 {
        self.record_sample_size as f64 / self.n as f64
    }
}

fn check_common(k: usize, gamma: f64) {
    assert!(k > 0, "need at least one bucket");
    assert!(gamma > 0.0 && gamma < 1.0, "γ must be in (0,1), got {gamma}");
}

fn check_f(f: f64) {
    assert!(f > 0.0 && f <= 1.0, "relative error f must be in (0,1], got {f}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Section 3.3: "Even for n as large as 1Gig, we obtain that
    /// ln(2n/γ) is roughly 20" (γ = 0.01).
    #[test]
    fn log_term_magnitude() {
        let n = 1u64 << 30;
        let log_term = (2.0 * n as f64 / 0.01).ln();
        assert!((log_term - 26.0).abs() < 1.0 || log_term > 20.0);
        // For the n the paper's experiments use (10M-1G) it sits in 20-27.
        let log_10m = (2.0_f64 * 1.0e7 / 0.01).ln();
        assert!(log_10m > 20.0 && log_10m < 22.0, "ln(2e9) = {log_10m}");
    }

    /// Paper Example 3, bullet 1: k = 500, f = 0.2 -> r ≈ 1M; and
    /// k = 100, f = 0.1 -> r ≈ 800K, "for essentially all reasonable n".
    #[test]
    fn example_3_sample_sizes() {
        let gamma = 0.01;
        for n in [10_000_000u64, 100_000_000, 1_000_000_000] {
            let r1 = corollary1_sample_size(500, 0.2, n, gamma);
            assert!((0.9e6..1.4e6).contains(&r1), "k=500,f=0.2,n={n}: r = {r1:.0} not ~1M");
            let r2 = corollary1_sample_size(100, 0.1, n, gamma);
            assert!((0.75e6..1.1e6).contains(&r2), "k=100,f=0.1,n={n}: r = {r2:.0} not ~800K");
        }
    }

    /// Paper Example 3, bullet 2: r = 1M, n = 20M, f = 0.25 -> k ≤ ~800.
    #[test]
    fn example_3_histogram_size() {
        let k = corollary1_max_buckets(1_000_000, 0.25, 20_000_000, 0.01);
        assert!((700.0..900.0).contains(&k), "k = {k}");
    }

    /// Paper Example 3, bullet 3: r = 800K, n = 25M, k = 200 -> f ≤ ~14%.
    #[test]
    fn example_3_histogram_error() {
        let f = corollary1_error(800_000, 200, 25_000_000, 0.01);
        assert!((0.13..0.155).contains(&f), "f = {f}");
    }

    /// Theorem 4 and Corollary 1 agree at δ = f·n/k.
    #[test]
    fn theorem4_corollary1_consistency() {
        let (n, k, f, gamma) = (1_000_000u64, 250usize, 0.15f64, 0.05f64);
        let delta = f * n as f64 / k as f64;
        let r_thm = theorem4_sample_size(n, k, delta, gamma);
        let r_cor = corollary1_sample_size(k, f, n, gamma);
        assert!((r_thm - r_cor).abs() / r_cor < 1e-12);
    }

    /// Corollary 1's two directions are inverses of each other.
    #[test]
    fn corollary1_round_trips() {
        let (n, k, gamma) = (5_000_000u64, 300usize, 0.01f64);
        for f in [0.05, 0.1, 0.25, 0.5, 1.0] {
            let r = corollary1_sample_size(k, f, n, gamma).ceil() as u64;
            let f_back = corollary1_error(r, k, n, gamma);
            assert!(f_back <= f + 1e-9, "f_back = {f_back} > f = {f}");
            let k_back = corollary1_max_buckets(r, f, n, gamma);
            assert!(k_back + 1e-6 >= k as f64, "k_back = {k_back} < {k}");
        }
    }

    /// The sample size is monotone the right way in every parameter.
    #[test]
    fn monotonicity() {
        let base = corollary1_sample_size(100, 0.1, 1_000_000, 0.01);
        assert!(corollary1_sample_size(200, 0.1, 1_000_000, 0.01) > base, "more buckets");
        assert!(corollary1_sample_size(100, 0.05, 1_000_000, 0.01) > base, "less error");
        assert!(corollary1_sample_size(100, 0.1, 4_000_000, 0.01) > base, "more data (log)");
        assert!(corollary1_sample_size(100, 0.1, 1_000_000, 0.001) > base, "more confidence");
    }

    /// Section 3.3: "essentially independent of n" — quadrupling n grows
    /// the bound by only a few percent.
    #[test]
    fn near_independence_of_n() {
        let r1 = corollary1_sample_size(100, 0.1, 10_000_000, 0.01);
        let r2 = corollary1_sample_size(100, 0.1, 40_000_000, 0.01);
        assert!(r2 / r1 < 1.08, "ratio = {}", r2 / r1);
    }

    /// Section 3.3: choosing γ = 2/n changes the log term to ln(n²) and
    /// "at most doubles" the sample size relative to a constant γ ≥ 1/n.
    #[test]
    fn negligible_failure_probability_costs_at_most_double() {
        let n = 10_000_000u64;
        let r_const = corollary1_sample_size(100, 0.1, n, 0.01);
        let r_tiny = corollary1_sample_size(100, 0.1, n, 2.0 / n as f64);
        assert!(r_tiny < 2.0 * r_const, "{} vs {}", r_tiny, r_const);
    }

    #[test]
    fn theorem5_costs_more_than_theorem4() {
        // δ-separation is stronger, so (for equal δ) it must need at least
        // as much sampling whenever k ≥ 3 (the regimes of interest).
        let (n, gamma) = (1_000_000u64, 0.01f64);
        for k in [10usize, 100, 600] {
            let delta = 0.1 * n as f64 / k as f64;
            let r4 = theorem4_sample_size(n, k, delta, gamma);
            let r5 = theorem5_sample_size(n, k, delta, gamma);
            assert!(r5 > r4, "k={k}: r5 = {r5} <= r4 = {r4}");
        }
    }

    #[test]
    fn theorem7_part2_dominates_part1() {
        for k in [10usize, 100, 600] {
            let s1 = theorem7_upper_validation_size(k, 0.1, 0.01);
            let s2 = theorem7_lower_validation_size(k, 0.1, 0.01);
            assert!(s2 > s1, "k={k}");
        }
    }

    #[test]
    fn sampling_plan_resolves_and_caps() {
        let plan = SamplingPlan::new(10_000_000, 100, 0.1, 0.01);
        assert!(!plan.sampling_is_pointless());
        assert!(plan.sampling_rate() < 0.1);
        assert!(plan.record_sample_size > 0);
        assert!(plan.validation_sample_size > 0);

        // Tiny relation: the bound exceeds n and the plan says "full scan".
        let plan = SamplingPlan::new(10_000, 600, 0.05, 0.01);
        assert!(plan.sampling_is_pointless());
        assert_eq!(plan.record_sample_size, 10_000);
    }

    #[test]
    #[should_panic(expected = "γ must be in (0,1)")]
    fn bad_gamma_rejected() {
        let _ = corollary1_sample_size(10, 0.1, 1000, 0.0);
    }

    #[test]
    #[should_panic(expected = "f must be in (0,1]")]
    fn bad_f_rejected() {
        let _ = corollary1_sample_size(10, 1.5, 1000, 0.01);
    }

    #[test]
    #[should_panic(expected = "requires δ ≤ n/k")]
    fn theorem4_delta_range_enforced() {
        let _ = theorem4_sample_size(1000, 10, 200.0, 0.01);
    }
}
