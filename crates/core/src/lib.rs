//! # samplehist-core
//!
//! A faithful, production-quality implementation of
//! *"Random Sampling for Histogram Construction: How much is enough?"*
//! (Surajit Chaudhuri, Rajeev Motwani, Vivek Narasayya — SIGMOD 1998).
//!
//! The paper answers the question in its title for **equi-height
//! (equi-depth) histograms**, the summary structure used by the query
//! optimizers of Microsoft SQL Server and many other commercial systems.
//! This crate contains every analytical and algorithmic component the paper
//! introduces:
//!
//! * [`histogram`] — exact and sample-based equi-height histograms
//!   (Section 2.1), plus compressed histograms for duplicate-heavy data
//!   (Section 5).
//! * [`error`] — the classical Δavg / Δvar metrics, the paper's **max error
//!   metric** Δmax (Definition 1), δ-separation (Definition 2), and the
//!   fractional max error f′ for duplicate values (Definition 4).
//! * [`bounds`] — the sampling-size trade-offs: Theorem 4 / Corollary 1
//!   (record-level sampling), Theorem 5 (δ-separation), Theorem 7
//!   (cross-validation), the worst-case range-query error envelopes of
//!   Theorems 1 and 3, and the Gibbons–Matias–Poosala bound (Theorem 6)
//!   used as the paper's point of comparison.
//! * [`sampling`] — record-level sampling with and without replacement,
//!   reservoir sampling, block-level sampling over an abstract
//!   [`sampling::BlockSource`], and the paper's headline algorithm:
//!   **CVB**, adaptive **C**ross-**V**alidated **B**lock-level sampling
//!   (Section 4).
//! * [`estimate`] — range-query result-size estimation from a histogram
//!   (the optimizer-facing consumer that motivates the max error metric)
//!   and the density statistic collected alongside histograms.
//! * [`distinct`] — the paper's distinct-value estimator (later known as
//!   GEE), its hybrid variant, the classical baselines it is compared
//!   against (Goodman, Chao, Chao–Lee, jackknife, Shlosser, naive
//!   scale-up), the ratio/rel-error metrics of Section 6, and the
//!   Theorem 8 adversarial lower-bound construction.
//!
//! ## Conventions
//!
//! Attribute values are `i64` throughout. The paper assumes a totally
//! ordered domain; any orderable attribute can be dictionary- or
//! bit-pattern-encoded into `i64` without changing a single algorithm here,
//! so the concrete type buys substantial speed (sorting and binary searching
//! tens of millions of values) at no loss of generality.
//!
//! A *k*-histogram is a sequence of separators `s_1 ≤ s_2 ≤ … ≤ s_{k-1}`
//! partitioning the domain into buckets `B_j = { v : s_{j-1} < v ≤ s_j }`
//! with `s_0 = −∞` and `s_k = +∞` — exactly the paper's Section 2.1
//! convention. Duplicate-heavy data naturally yields repeated separators;
//! every metric and algorithm in this crate handles that case.
//!
//! All randomized APIs take `&mut impl rand::Rng` so callers control
//! determinism; nothing in this crate seeds its own generator.
//!
//! ## Quick start
//!
//! ```
//! use rand::SeedableRng;
//! use samplehist_core::histogram::EquiHeightHistogram;
//! use samplehist_core::error::max_error_against;
//! use samplehist_core::bounds::corollary1_sample_size;
//!
//! // The data: 100k distinct values (already sorted here for brevity).
//! let data: Vec<i64> = (0..100_000).collect();
//!
//! // How much sampling is enough for k = 50 buckets with at most
//! // f = 10% relative deviation per bucket, with probability 99%?
//! let r = corollary1_sample_size(50, 0.1, data.len() as u64, 0.01).ceil() as usize;
//!
//! // Draw the sample and build the approximate histogram.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let sample = samplehist_core::sampling::with_replacement(&data, r.min(data.len()), &mut rng);
//! let approx = EquiHeightHistogram::from_unsorted_sample(sample, 50, data.len() as u64);
//!
//! // Verify: the realized max error is within the promised envelope.
//! let err = max_error_against(&approx, &data);
//! assert!(err.relative_max() <= 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod bounds;
pub mod distinct;
pub mod error;
pub mod estimate;
pub mod histogram;
pub mod math;
pub mod sampling;

pub use histogram::EquiHeightHistogram;
pub use sampling::{BlockSource, TryBlockSource};
