//! Step-size schedules for the adaptive CVB algorithm.
//!
//! The paper's analysis (Section 4.2) recommends the **doubling** schedule
//! `g_{i+1} = Σ_{j≤i} g_j` — each round samples as many new blocks as all
//! previous rounds combined, so the algorithm overshoots the unknown
//! optimal sampling amount by at most 2×. The SQL Server 7.0 prototype
//! (Section 7.1) instead stepped the *accumulated* sample through multiples
//! of √n to trade merge cost against oversampling risk; both are provided,
//! plus fixed and geometric generalizations, because the paper explicitly
//! frames the schedule as a tunable ("we experimented with a variety of
//! stepping functions").

/// Everything a schedule may consult when sizing the next batch.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleContext {
    /// 1-based index of the round about to start (round 1 draws the
    /// initial sample).
    pub round: usize,
    /// Blocks drawn in all previous rounds.
    pub blocks_so_far: usize,
    /// Tuples accumulated in all previous rounds.
    pub tuples_so_far: u64,
    /// Total tuples in the relation.
    pub total_tuples: u64,
    /// Average tuples per block (`b`).
    pub tuples_per_block: f64,
}

/// A stepping policy: how many **new** blocks to draw in the next round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// The paper's analyzed schedule: round 1 draws `initial_blocks`,
    /// every later round draws as many blocks as have been drawn so far
    /// (total doubles each round; `g_0 = g, g_1 = g, g_2 = 2g, …`).
    Doubling {
        /// Blocks in the first round (`g_0 = r/b` in the paper's step 1).
        initial_blocks: usize,
    },
    /// The SQL Server 7.0 prototype's schedule: after round `i` the
    /// accumulated sample holds `multiplier · i · √n` tuples.
    SqrtSteps {
        /// The prototype used 5.
        multiplier: f64,
    },
    /// Geometric growth of the accumulated total by `ratio` per round.
    Geometric {
        /// Blocks in the first round.
        initial_blocks: usize,
        /// Growth factor per round (> 1).
        ratio: f64,
    },
    /// The non-adaptive strawman: the same number of blocks every round.
    Fixed {
        /// Blocks per round.
        blocks_per_round: usize,
    },
}

impl Schedule {
    /// Blocks to draw in the round described by `ctx` (always ≥ 1; the
    /// caller clamps to the blocks actually remaining).
    pub fn next_blocks(&self, ctx: &ScheduleContext) -> usize {
        debug_assert!(ctx.round >= 1);
        let inc = match *self {
            Schedule::Doubling { initial_blocks } => {
                if ctx.round == 1 {
                    initial_blocks
                } else {
                    ctx.blocks_so_far
                }
            }
            Schedule::SqrtSteps { multiplier } => {
                let target = multiplier * ctx.round as f64 * (ctx.total_tuples as f64).sqrt();
                let deficit_tuples = (target - ctx.tuples_so_far as f64).max(0.0);
                (deficit_tuples / ctx.tuples_per_block.max(1.0)).ceil() as usize
            }
            Schedule::Geometric { initial_blocks, ratio } => {
                if ctx.round == 1 {
                    initial_blocks
                } else {
                    // Grow the accumulated total to blocks_so_far * ratio.
                    ((ctx.blocks_so_far as f64 * (ratio - 1.0)).ceil() as usize).max(1)
                }
            }
            Schedule::Fixed { blocks_per_round } => blocks_per_round,
        };
        inc.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(round: usize, blocks: usize, tuples: u64) -> ScheduleContext {
        ScheduleContext {
            round,
            blocks_so_far: blocks,
            tuples_so_far: tuples,
            total_tuples: 1_000_000,
            tuples_per_block: 100.0,
        }
    }

    #[test]
    fn doubling_matches_paper_sequence() {
        // g_0 = g, g_1 = g, g_2 = 2g, g_3 = 4g, ... (increments), i.e. the
        // accumulated total after round i is 2^{i-1} * 2g ... concretely:
        let s = Schedule::Doubling { initial_blocks: 10 };
        let mut total = 0usize;
        let mut increments = Vec::new();
        for round in 1..=5 {
            let g = s.next_blocks(&ctx(round, total, 0));
            increments.push(g);
            total += g;
        }
        assert_eq!(increments, vec![10, 10, 20, 40, 80]);
        assert_eq!(total, 160);
    }

    #[test]
    fn sqrt_steps_accumulates_multiples_of_sqrt_n() {
        let s = Schedule::SqrtSteps { multiplier: 5.0 };
        // sqrt(1e6) = 1000; targets are 5000, 10000, 15000 tuples.
        let g1 = s.next_blocks(&ctx(1, 0, 0));
        assert_eq!(g1, 50); // 5000 tuples / 100 per block
        let g2 = s.next_blocks(&ctx(2, 50, 5_000));
        assert_eq!(g2, 50);
        // If a round overshot (blocks have more tuples than expected), the
        // next increment shrinks accordingly.
        let g3 = s.next_blocks(&ctx(3, 100, 14_500));
        assert_eq!(g3, 5);
        // Already past the target: still draws the minimum of 1.
        let g4 = s.next_blocks(&ctx(4, 120, 50_000));
        assert_eq!(g4, 1);
    }

    #[test]
    fn geometric_growth() {
        let s = Schedule::Geometric { initial_blocks: 8, ratio: 3.0 };
        assert_eq!(s.next_blocks(&ctx(1, 0, 0)), 8);
        assert_eq!(s.next_blocks(&ctx(2, 8, 800)), 16); // 8 -> 24 total
        assert_eq!(s.next_blocks(&ctx(3, 24, 2_400)), 48); // 24 -> 72 total
    }

    #[test]
    fn fixed_is_constant() {
        let s = Schedule::Fixed { blocks_per_round: 7 };
        for round in 1..=4 {
            assert_eq!(s.next_blocks(&ctx(round, round * 7, 0)), 7);
        }
    }

    #[test]
    fn never_returns_zero() {
        for s in [
            Schedule::Doubling { initial_blocks: 0 },
            Schedule::SqrtSteps { multiplier: 0.0001 },
            Schedule::Geometric { initial_blocks: 0, ratio: 1.0 },
            Schedule::Fixed { blocks_per_round: 0 },
        ] {
            assert!(s.next_blocks(&ctx(1, 0, 0)) >= 1, "{s:?}");
            assert!(s.next_blocks(&ctx(5, 100, 10_000)) >= 1, "{s:?}");
        }
    }
}
