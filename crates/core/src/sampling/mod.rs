//! Random-sampling machinery (paper Sections 3 and 4).
//!
//! Three layers, mirroring the paper's progression:
//!
//! 1. **Record-level sampling** ([`record`], [`reservoir`]) — uniform
//!    tuple samples with or without replacement. Theoretically clean
//!    (Theorem 4 speaks about this model) but wasteful on disk: fetching
//!    one tuple costs a whole page.
//! 2. **Block-level sampling** ([`block`]) — sample whole pages and use
//!    every tuple on them, over anything implementing [`BlockSource`].
//!    Cheap per tuple, but intra-page correlation can silently bias the
//!    histogram (Section 4.1's scenarios a/b/c).
//! 3. **Adaptive cross-validated block sampling** ([`cvb`], [`schedule`])
//!    — the paper's CVB algorithm: iteratively enlarge the block sample,
//!    using each new batch to cross-validate the histogram built so far
//!    (Theorem 7 makes the test sound), so the total I/O adapts to the
//!    clustering actually present in the data.
//!
//! [`double`] implements the classical two-phase alternative CVB is
//! positioned against (pilot → design effect → one-shot second phase);
//! the `ablations` bench compares the two head-to-head.

pub mod block;
pub mod cvb;
pub mod double;
pub mod fallible;
pub mod record;
pub mod reservoir;
pub mod schedule;

pub use block::{sample_blocks, BlockPermutation, BlockSample, BlockSource, SliceBlocks};
pub use cvb::{
    CvbConfig, CvbError, CvbResult, CvbRound, DegradationPolicy, DegradationReport, ValidationMode,
};
pub use double::{DoubleSamplingConfig, DoubleSamplingResult};
pub use fallible::{BlockError, Reliable, TryBlockSource};
pub use record::{with_replacement, without_replacement};
pub use reservoir::Reservoir;
pub use schedule::{Schedule, ScheduleContext};
