//! Record-level (tuple-level) uniform random sampling — the model of the
//! paper's Section 3.
//!
//! The paper's analysis assumes sampling **with** replacement for
//! simplicity ("our results do carry over to [sampling without
//! replacement] without any noticeable change in the bounds"); both modes
//! are provided so the claim can be tested empirically.

use rand::Rng;

/// Draw `r` values uniformly at random **with replacement** from `data`.
///
/// # Panics
/// If `data` is empty and `r > 0`.
pub fn with_replacement(data: &[i64], r: usize, rng: &mut impl Rng) -> Vec<i64> {
    assert!(r == 0 || !data.is_empty(), "cannot sample from an empty slice");
    (0..r).map(|_| data[rng.gen_range(0..data.len())]).collect()
}

/// Draw `r` values uniformly at random **without replacement** from
/// `data` (a simple random sample). Uses Floyd-style index sampling from
/// the `rand` crate, so it is O(r) in time and space regardless of
/// `data.len()`.
///
/// # Panics
/// If `r > data.len()`.
pub fn without_replacement(data: &[i64], r: usize, rng: &mut impl Rng) -> Vec<i64> {
    assert!(
        r <= data.len(),
        "cannot draw {r} distinct tuples from {} without replacement",
        data.len()
    );
    rand::seq::index::sample(rng, data.len(), r).into_iter().map(|i| data[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn with_replacement_size_and_membership() {
        let data: Vec<i64> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let s = with_replacement(&data, 500, &mut rng);
        assert_eq!(s.len(), 500);
        assert!(s.iter().all(|v| (0..100).contains(v)));
        // With r = 5n, repeats are certain.
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() < 500);
    }

    #[test]
    fn without_replacement_is_a_set_of_positions() {
        // Distinct data: the sample must be duplicate-free.
        let data: Vec<i64> = (0..1000).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = without_replacement(&data, 200, &mut rng);
        s.sort_unstable();
        let before = s.len();
        s.dedup();
        assert_eq!(s.len(), before);
    }

    #[test]
    fn without_replacement_full_draw_is_permutation() {
        let data: Vec<i64> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = without_replacement(&data, 50, &mut rng);
        s.sort_unstable();
        assert_eq!(s, data);
    }

    #[test]
    fn zero_sized_samples_are_fine() {
        let data = [1i64, 2, 3];
        let mut rng = StdRng::seed_from_u64(4);
        assert!(with_replacement(&data, 0, &mut rng).is_empty());
        assert!(without_replacement(&data, 0, &mut rng).is_empty());
        // Even from empty data, a zero-sized sample is legal.
        assert!(with_replacement(&[], 0, &mut rng).is_empty());
    }

    #[test]
    fn with_replacement_is_roughly_uniform() {
        // Chi-square-ish sanity check on a fixed seed: each of 10 values
        // should get about r/10 draws.
        let data: Vec<i64> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let r = 100_000;
        let s = with_replacement(&data, r, &mut rng);
        let mut counts = [0u64; 10];
        for v in s {
            counts[v as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let expected = r as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "value {v} drawn {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn oversized_srs_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = without_replacement(&[1, 2, 3], 4, &mut rng);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn with_replacement_from_empty_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = with_replacement(&[], 1, &mut rng);
    }
}
