//! CVB — adaptive **C**ross-**V**alidated **B**lock-level sampling
//! (paper Section 4.2, evaluated in Section 7 as "the CVB algorithm").
//!
//! The problem: block-level sampling is `b×` cheaper than record-level
//! sampling per tuple (you get the whole page for one I/O), but if tuples
//! within a page are correlated the *effective* sample is much smaller
//! than its tuple count, and the right number of pages to read depends on
//! a clustering structure nobody knows a priori (Section 4.1's scenarios).
//!
//! The paper's answer: sample blocks in increasing batches; before folding
//! each new batch `R_i` into the accumulated sample `R`, use it to
//! **cross-validate** the histogram built from `R`. If partitioning `R_i`
//! by the current separators shows relative error below the target `f`,
//! stop; Theorem 7 guarantees the test neither stops too early (a
//! histogram with true error > 2f·n/k almost never passes) nor drags on (a
//! histogram with true error ≤ f·n/(2k) almost never fails). With the
//! doubling schedule the total I/O is within 2× of the unknowable optimum
//! for the data's actual clustering.
//!
//! Duplicates are handled by validating with the **fractional max error**
//! f′ of Definition 4 rather than raw bucket counts — on duplicate-free
//! data the two coincide exactly.
//!
//! ```
//! use rand::SeedableRng;
//! use samplehist_core::sampling::{cvb, CvbConfig, SliceBlocks};
//!
//! // A column scattered over 100-tuple pages.
//! let mut data: Vec<i64> = (0..50_000).collect();
//! use rand::seq::SliceRandom;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! data.shuffle(&mut rng);
//! let source = SliceBlocks::new(&data, 100);
//!
//! // Ask for 20 buckets within 20% error; CVB sizes the I/O itself.
//! let config = CvbConfig::theoretical(&source, 20, 0.2, 0.05);
//! let result = cvb::run(&source, &config, &mut rng);
//! assert!(result.converged || result.exhausted);
//! assert_eq!(result.histogram.num_buckets(), 20);
//! ```

use rand::Rng;
use samplehist_obs::Recorder;

use super::block::{BlockPermutation, BlockSource};
use super::fallible::{BlockError, TryBlockSource};
use super::schedule::{Schedule, ScheduleContext};
use crate::bounds::chaudhuri::corollary1_sample_size;
use crate::error::fractional_max_error;
use crate::histogram::EquiHeightHistogram;

/// How the cross-validation sample is formed from each round's fresh
/// blocks (Section 4.2's "twists on this basic strategy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// Validate with every tuple of the new blocks (the base algorithm).
    #[default]
    AllTuples,
    /// Validate with one uniformly chosen tuple per new block — immune to
    /// intra-block correlation in the *validation* set itself, at the cost
    /// of a much smaller (hence noisier) test sample.
    OneTuplePerBlock,
}

/// Configuration for a CVB run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvbConfig {
    /// Number of histogram buckets, `k`.
    pub buckets: usize,
    /// Target relative max error `f` (Definition 1 / Definition 4).
    pub target_f: f64,
    /// Failure probability γ used when sizing the initial sample.
    pub gamma: f64,
    /// Stepping policy for successive rounds.
    pub schedule: Schedule,
    /// How to build the cross-validation sample each round.
    pub validation: ValidationMode,
    /// Hard cap on the fraction of blocks ever read (1.0 = allow falling
    /// back to a full scan, which yields the exact histogram).
    pub max_block_fraction: f64,
}

impl CvbConfig {
    /// The paper's step 1: size the initial batch from Theorem 4 /
    /// Corollary 1 — `r` record-level samples, hence `g₀ = r/b` blocks —
    /// and use the doubling schedule thereafter.
    ///
    /// When the theoretical `r` exceeds `n` (small relations or very
    /// strict `f`), `g₀` is clamped so the first round is at most half the
    /// file and cross-validation still gets a chance to run.
    pub fn theoretical(
        source: &impl BlockSource,
        buckets: usize,
        target_f: f64,
        gamma: f64,
    ) -> Self {
        let n = source.num_tuples();
        let b = source.avg_tuples_per_block().max(1.0);
        let r = corollary1_sample_size(buckets, target_f, n, gamma);
        let g0 = ((r / b).ceil() as usize).clamp(1, (source.num_blocks() / 2).max(1));
        Self {
            buckets,
            target_f,
            gamma,
            schedule: Schedule::Doubling { initial_blocks: g0 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        }
    }

    /// The SQL Server 7.0 prototype's configuration (Section 7.1): the
    /// accumulated sample steps through multiples of `5·√n` tuples.
    pub fn prototype(buckets: usize, target_f: f64, gamma: f64) -> Self {
        Self {
            buckets,
            target_f,
            gamma,
            schedule: Schedule::SqrtSteps { multiplier: 5.0 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        }
    }

    fn validate(&self) {
        assert!(self.buckets > 0, "need at least one bucket");
        assert!(
            self.target_f > 0.0 && self.target_f <= 1.0,
            "target f must be in (0,1], got {}",
            self.target_f
        );
        assert!(self.gamma > 0.0 && self.gamma < 1.0, "γ must be in (0,1)");
        assert!(
            self.max_block_fraction > 0.0 && self.max_block_fraction <= 1.0,
            "max_block_fraction must be in (0,1]"
        );
    }
}

/// One iteration of the adaptive loop, for post-mortem inspection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CvbRound {
    /// 1-based round number.
    pub round: usize,
    /// Blocks drawn this round.
    pub new_blocks: usize,
    /// Blocks drawn in total after this round.
    pub total_blocks: usize,
    /// Tuples accumulated after this round.
    pub total_tuples: u64,
    /// Cross-validation error f′ of the *pre-merge* histogram against this
    /// round's fresh sample (`None` for the first round, which has no
    /// histogram to validate yet).
    pub cross_validation_error: Option<f64>,
}

/// The outcome of a CVB run.
#[derive(Debug, Clone)]
pub struct CvbResult {
    /// The final histogram (built from every tuple sampled, scaled to `n`).
    pub histogram: EquiHeightHistogram,
    /// Whether the cross-validation test passed (`false` means the run hit
    /// the block cap or exhausted the file first).
    pub converged: bool,
    /// Whether every block of the source was read (the histogram is then
    /// exact rather than approximate).
    pub exhausted: bool,
    /// Number of cross-validation rounds actually executed
    /// (`== rounds.len()`; surfaced separately so traces and tests can
    /// assert convergence behavior without walking the round log).
    pub rounds_executed: usize,
    /// Whether the run stopped with block budget to spare: the
    /// cross-validation test passed before the block cap (or the file)
    /// was exhausted. `false` means the schedule ran to its maximum.
    pub terminated_early: bool,
    /// Per-round trace.
    pub rounds: Vec<CvbRound>,
    /// Total blocks read — the algorithm's I/O cost.
    pub blocks_sampled: usize,
    /// Total tuples in the accumulated sample.
    pub tuples_sampled: u64,
    /// The accumulated sample itself, sorted — callers reuse it for
    /// density and distinct-value estimation, exactly as the prototype
    /// recorded "the number of distinct values in the sample".
    pub sample_sorted: Vec<i64>,
}

impl CvbResult {
    /// Fraction of the relation's tuples that were read.
    pub fn sampling_rate(&self, source_tuples: u64) -> f64 {
        self.tuples_sampled as f64 / source_tuples as f64
    }

    /// I/O overhead relative to the record-level optimum of Corollary 1:
    /// `(tuples read) / min(r, n)`. Values near 1 mean block sampling cost
    /// no more than the theory's record-level sample; the paper argues the
    /// doubling schedule keeps this within 2× of the effective-rate
    /// optimum for the data's clustering.
    pub fn oversampling_factor(&self, config: &CvbConfig, n: u64) -> f64 {
        let r =
            corollary1_sample_size(config.buckets, config.target_f, n, config.gamma).min(n as f64);
        self.tuples_sampled as f64 / r
    }
}

/// Run the adaptive algorithm of Section 4.2 against `source`.
///
/// ```text
/// 1. g₀ from Theorem 4 (or the configured schedule)
/// 2. R ← g₀ random blocks; H₀ ← equi-height histogram of R
/// 3. repeat:
///      draw g_i fresh blocks R_i
///      δ_i ← error of partitioning R_i with H_{i-1}'s separators
///      merge R_i into R; rebuild H_i
///    until δ_i < f
/// 4. output H_i
/// ```
///
/// Blocks are drawn without replacement via a single up-front permutation,
/// so the union of all rounds is a uniform block sample at every point.
/// If the permutation (or the configured cap) runs out before the test
/// passes, the accumulated sample is used as-is; with the cap at 1.0 that
/// degenerates to a full scan and an exact histogram.
///
/// # Panics
/// If the source is empty or the configuration is invalid.
pub fn run(source: &impl BlockSource, config: &CvbConfig, rng: &mut impl Rng) -> CvbResult {
    run_traced(source, config, rng, &samplehist_obs::global())
}

/// [`run`] with an explicit [`Recorder`]: emits a `cvb.run` span with one
/// `cvb.round` child per doubling round carrying the adaptive loop's
/// decision record — blocks drawn, accumulated sample size `r`, the
/// cross-validation error Δ̂ against the target `f`, and the
/// accept/reject verdict. Recording is passive (no RNG draws, no
/// feedback), so the result is bit-identical to an untraced run.
pub fn run_traced(
    source: &impl BlockSource,
    config: &CvbConfig,
    rng: &mut impl Rng,
    recorder: &Recorder,
) -> CvbResult {
    config.validate();
    assert!(source.num_blocks() > 0, "cannot sample an empty source");
    let n = source.num_tuples();
    assert!(n > 0, "cannot sample a source with no tuples");

    let max_blocks =
        ((source.num_blocks() as f64 * config.max_block_fraction).ceil() as usize).max(1);
    let b = source.avg_tuples_per_block();

    let mut run_span = recorder.span("cvb.run");
    run_span.field("n", n);
    run_span.field("blocks", source.num_blocks());
    run_span.field("buckets", config.buckets);
    run_span.field("target_f", config.target_f);
    run_span.field("max_blocks", max_blocks);

    let mut permutation = BlockPermutation::new(source, rng);
    let mut accumulated: Vec<i64> = Vec::new();
    let mut rounds: Vec<CvbRound> = Vec::new();
    let mut histogram: Option<EquiHeightHistogram> = None;
    let mut converged = false;
    let mut scratch = Scratch::default();

    let mut round = 0usize;
    while permutation.drawn() < max_blocks {
        round += 1;
        let ctx = ScheduleContext {
            round,
            blocks_so_far: permutation.drawn(),
            tuples_so_far: accumulated.len() as u64,
            total_tuples: n,
            tuples_per_block: b,
        };
        let want = config.schedule.next_blocks(&ctx).min(max_blocks - permutation.drawn());
        scratch.fresh_ids.clear();
        scratch.fresh_ids.extend_from_slice(permutation.take(want));
        if scratch.fresh_ids.is_empty() {
            break;
        }
        let mut round_span = run_span.child("cvb.round");

        // Collect and sort this round's tuples (buffer reused per round).
        scratch.fresh.clear();
        scratch.fresh.reserve((b * scratch.fresh_ids.len() as f64) as usize);
        for &id in &scratch.fresh_ids {
            scratch.fresh.extend_from_slice(source.block(id));
        }
        scratch.fresh.sort_unstable();

        // Cross-validate the *current* histogram against the fresh sample
        // (Definition 4's fractional error; reduces to Definition 1 when
        // values are distinct).
        let cv_error = histogram.as_ref().map(|h| {
            let validation: &[i64] = match config.validation {
                ValidationMode::AllTuples => &scratch.fresh,
                ValidationMode::OneTuplePerBlock => {
                    scratch.validation.clear();
                    scratch.validation.extend(scratch.fresh_ids.iter().map(|&id| {
                        let blk = source.block(id);
                        blk[rng.gen_range(0..blk.len())]
                    }));
                    scratch.validation.sort_unstable();
                    &scratch.validation
                }
            };
            fractional_max_error(h.separators(), &accumulated, validation).max
        });

        // Merge (step 4c) into the scratch's other buffer, swap it in
        // (double-buffer: no per-round allocation), and rebuild.
        merge_sorted_into(&accumulated, &scratch.fresh, &mut scratch.merged);
        std::mem::swap(&mut accumulated, &mut scratch.merged);
        histogram = Some(EquiHeightHistogram::from_sorted_sample(&accumulated, config.buckets, n));

        rounds.push(CvbRound {
            round,
            new_blocks: scratch.fresh_ids.len(),
            total_blocks: permutation.drawn(),
            total_tuples: accumulated.len() as u64,
            cross_validation_error: cv_error,
        });

        // Step 5: terminate once validation passes.
        let accepted = cv_error.is_some_and(|err| err < config.target_f);
        round_span.field("round", round);
        round_span.field("new_blocks", scratch.fresh_ids.len());
        round_span.field("total_blocks", permutation.drawn());
        round_span.field("r", accumulated.len());
        round_span.field("target_f", config.target_f);
        match cv_error {
            // Round 1 has no histogram to validate; its verdict is that
            // the loop must continue ("bootstrap").
            None => round_span.field("verdict", "bootstrap"),
            Some(err) => {
                round_span.field("delta_hat", err);
                round_span.field("verdict", if accepted { "accept" } else { "reject" });
            }
        }
        round_span.finish();
        if accepted {
            converged = true;
            break;
        }
    }

    let exhausted = permutation.remaining() == 0;
    let histogram = histogram.expect("at least one round ran");
    let result = CvbResult {
        histogram,
        converged,
        exhausted,
        rounds_executed: rounds.len(),
        terminated_early: converged && permutation.drawn() < max_blocks,
        blocks_sampled: permutation.drawn(),
        tuples_sampled: accumulated.len() as u64,
        rounds,
        sample_sorted: accumulated,
    };
    run_span.field("rounds", result.rounds_executed);
    run_span.field("converged", result.converged);
    run_span.field("exhausted", result.exhausted);
    run_span.field("terminated_early", result.terminated_early);
    run_span.field("blocks_sampled", result.blocks_sampled);
    run_span.field("tuples_sampled", result.tuples_sampled);
    run_span.field("oversampling_factor", result.oversampling_factor(config, n));
    run_span.finish();
    result
}

/// How much loss the degradation-aware [`try_run`] may absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Replacement blocks that may be drawn beyond the schedule, across the
    /// whole run, to cover failed reads. Each failed block spends one unit;
    /// when the budget runs out, rounds simply shrink (and the
    /// cross-validation threshold widens per Theorem 7).
    pub replacement_budget: usize,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self { replacement_budget: 64 }
    }
}

/// What a degradation-aware run lost and what it can still certify.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationReport {
    /// Blocks whose reads failed for good (after the storage layer's own
    /// retries) and therefore contributed no tuples.
    pub blocks_failed: usize,
    /// Extra blocks drawn from the permutation to replace failed ones.
    pub replacements_drawn: usize,
    /// The cross-validation threshold actually enforced. Equal to the
    /// configured `target_f` on a clean run; wider when rounds shrank below
    /// plan — Theorem 7's validation size scales as `1/f²`, so a round that
    /// kept only `s_actual` of its planned `s_planned` validation tuples
    /// can certify only `f · √(s_planned / s_actual)`.
    pub effective_target_f: f64,
    /// Whether any data was lost (`blocks_failed > 0`).
    pub degraded: bool,
    /// The last block error observed, for diagnostics.
    pub last_error: Option<BlockError>,
}

impl DegradationReport {
    fn clean(target_f: f64) -> Self {
        Self {
            blocks_failed: 0,
            replacements_drawn: 0,
            effective_target_f: target_f,
            degraded: false,
            last_error: None,
        }
    }
}

/// Why a degradation-aware CVB run could not produce a histogram at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CvbError {
    /// Every block the permutation offered failed to read: there is not a
    /// single trustworthy tuple to build from.
    SourceUnreadable {
        /// How many blocks were attempted before giving up.
        blocks_tried: usize,
        /// The last error observed.
        last_error: Option<BlockError>,
    },
}

impl std::fmt::Display for CvbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CvbError::SourceUnreadable { blocks_tried, last_error } => {
                write!(f, "no readable blocks after {blocks_tried} attempts")?;
                if let Some(err) = last_error {
                    write!(f, " (last error: {err})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CvbError {}

/// Degradation-aware [`run`]: the same adaptive loop over a source whose
/// reads can fail.
///
/// Failed blocks are skipped and replaced by drawing further down the
/// permutation (up to `policy.replacement_budget` across the run); once
/// replacements run out, rounds shrink and the acceptance threshold widens
/// per Theorem 7 (see [`DegradationReport::effective_target_f`]). On a
/// fault-free source the result is **bit-identical** to [`run`] with the
/// same RNG seed.
///
/// Returns an error only when not a single block could be read.
pub fn try_run(
    source: &impl TryBlockSource,
    config: &CvbConfig,
    policy: &DegradationPolicy,
    rng: &mut impl Rng,
) -> Result<(CvbResult, DegradationReport), CvbError> {
    try_run_traced(source, config, policy, rng, &samplehist_obs::global())
}

/// [`try_run`] with an explicit [`Recorder`]: emits the same `cvb.run` /
/// `cvb.round` spans as [`run_traced`] plus the degradation record — a
/// `cvb.blocks_failed` counter per lost block, per-round `failed` /
/// `replaced` / `effective_f` fields, and run-level `blocks_failed` /
/// `degraded` fields — so traces show exactly what was lost.
pub fn try_run_traced(
    source: &impl TryBlockSource,
    config: &CvbConfig,
    policy: &DegradationPolicy,
    rng: &mut impl Rng,
    recorder: &Recorder,
) -> Result<(CvbResult, DegradationReport), CvbError> {
    config.validate();
    assert!(source.num_blocks() > 0, "cannot sample an empty source");
    let n = source.num_tuples();
    assert!(n > 0, "cannot sample a source with no tuples");

    let max_blocks =
        ((source.num_blocks() as f64 * config.max_block_fraction).ceil() as usize).max(1);
    let b = source.avg_tuples_per_block();

    let mut run_span = recorder.span("cvb.run");
    run_span.field("n", n);
    run_span.field("blocks", source.num_blocks());
    run_span.field("buckets", config.buckets);
    run_span.field("target_f", config.target_f);
    run_span.field("max_blocks", max_blocks);

    let mut permutation = BlockPermutation::with_len(source.num_blocks(), rng);
    let mut accumulated: Vec<i64> = Vec::new();
    let mut rounds: Vec<CvbRound> = Vec::new();
    let mut histogram: Option<EquiHeightHistogram> = None;
    let mut converged = false;
    let mut scratch = Scratch::default();
    // Byte ranges of each successful block within the (unsorted) fresh
    // buffer, in draw order — what one-tuple-per-block validation picks
    // from now that failed blocks make "re-read the page" unreliable.
    let mut fresh_spans: Vec<(usize, usize)> = Vec::new();

    let mut report = DegradationReport::clean(config.target_f);
    let mut widest_f = config.target_f;

    let mut round = 0usize;
    while permutation.drawn() < max_blocks {
        round += 1;
        let ctx = ScheduleContext {
            round,
            blocks_so_far: permutation.drawn(),
            tuples_so_far: accumulated.len() as u64,
            total_tuples: n,
            tuples_per_block: b,
        };
        let want = config.schedule.next_blocks(&ctx).min(max_blocks - permutation.drawn());
        scratch.fresh_ids.clear();
        scratch.fresh_ids.extend_from_slice(permutation.take(want));
        if scratch.fresh_ids.is_empty() {
            break;
        }
        let planned_blocks = scratch.fresh_ids.len();
        let mut round_span = run_span.child("cvb.round");

        // Collect this round's tuples, replacing failed blocks from the
        // tail of the permutation while the budget lasts.
        scratch.fresh.clear();
        scratch.fresh.reserve((b * planned_blocks as f64) as usize);
        fresh_spans.clear();
        let mut failed_this_round = 0usize;
        let mut replaced_this_round = 0usize;
        let mut i = 0;
        while i < scratch.fresh_ids.len() {
            let id = scratch.fresh_ids[i];
            i += 1;
            match source.try_block(id) {
                Ok(tuples) => {
                    let start = scratch.fresh.len();
                    scratch.fresh.extend_from_slice(&tuples);
                    fresh_spans.push((start, tuples.len()));
                }
                Err(err) => {
                    failed_this_round += 1;
                    report.blocks_failed += 1;
                    report.last_error = Some(err);
                    recorder.counter("cvb.blocks_failed", 1);
                    if report.replacements_drawn < policy.replacement_budget
                        && permutation.drawn() < max_blocks
                    {
                        let extra = permutation.take(1);
                        if let Some(&replacement) = extra.first() {
                            report.replacements_drawn += 1;
                            replaced_this_round += 1;
                            scratch.fresh_ids.push(replacement);
                        }
                    }
                }
            }
        }

        // Theorem 7 sizes the validation sample as s ∝ 1/f²: a round that
        // kept fewer blocks than planned can only certify a wider f.
        let kept_blocks = fresh_spans.len();
        let effective_f = if kept_blocks < planned_blocks && kept_blocks > 0 {
            (config.target_f * (planned_blocks as f64 / kept_blocks as f64).sqrt()).min(1.0)
        } else {
            config.target_f
        };
        widest_f = widest_f.max(effective_f);

        if scratch.fresh.is_empty() {
            // Every block of this round was lost; nothing to validate or
            // merge, but the attempt still counts against the block cap.
            rounds.push(CvbRound {
                round,
                new_blocks: 0,
                total_blocks: permutation.drawn(),
                total_tuples: accumulated.len() as u64,
                cross_validation_error: None,
            });
            round_span.field("round", round);
            round_span.field("new_blocks", 0usize);
            round_span.field("failed", failed_this_round);
            round_span.field("verdict", "lost");
            round_span.finish();
            continue;
        }

        // Cross-validate before sorting: one-tuple-per-block picks need the
        // per-block layout of the fresh buffer.
        let cv_error = histogram.as_ref().map(|h| {
            let validation: &[i64] = match config.validation {
                ValidationMode::AllTuples => {
                    scratch.fresh.sort_unstable();
                    &scratch.fresh
                }
                ValidationMode::OneTuplePerBlock => {
                    scratch.validation.clear();
                    scratch.validation.extend(
                        fresh_spans
                            .iter()
                            .map(|&(start, len)| scratch.fresh[start + rng.gen_range(0..len)]),
                    );
                    scratch.validation.sort_unstable();
                    scratch.fresh.sort_unstable();
                    &scratch.validation
                }
            };
            fractional_max_error(h.separators(), &accumulated, validation).max
        });
        if cv_error.is_none() {
            scratch.fresh.sort_unstable();
        }

        merge_sorted_into(&accumulated, &scratch.fresh, &mut scratch.merged);
        std::mem::swap(&mut accumulated, &mut scratch.merged);
        histogram = Some(EquiHeightHistogram::from_sorted_sample(&accumulated, config.buckets, n));

        rounds.push(CvbRound {
            round,
            new_blocks: kept_blocks,
            total_blocks: permutation.drawn(),
            total_tuples: accumulated.len() as u64,
            cross_validation_error: cv_error,
        });

        let accepted = cv_error.is_some_and(|err| err < effective_f);
        round_span.field("round", round);
        round_span.field("new_blocks", kept_blocks);
        round_span.field("total_blocks", permutation.drawn());
        round_span.field("r", accumulated.len());
        round_span.field("target_f", config.target_f);
        if failed_this_round > 0 {
            round_span.field("failed", failed_this_round);
            round_span.field("replaced", replaced_this_round);
            round_span.field("effective_f", effective_f);
        }
        match cv_error {
            None => round_span.field("verdict", "bootstrap"),
            Some(err) => {
                round_span.field("delta_hat", err);
                round_span.field("verdict", if accepted { "accept" } else { "reject" });
            }
        }
        round_span.finish();
        if accepted {
            converged = true;
            report.effective_target_f = effective_f;
            break;
        }
    }

    report.degraded = report.blocks_failed > 0;
    if !converged {
        report.effective_target_f = widest_f;
    }

    if accumulated.is_empty() {
        run_span.field("blocks_failed", report.blocks_failed);
        run_span.field("verdict", "unreadable");
        run_span.finish();
        return Err(CvbError::SourceUnreadable {
            blocks_tried: permutation.drawn(),
            last_error: report.last_error,
        });
    }

    let exhausted = permutation.remaining() == 0;
    let histogram = histogram.expect("accumulated sample is non-empty");
    let result = CvbResult {
        histogram,
        converged,
        exhausted,
        rounds_executed: rounds.len(),
        terminated_early: converged && permutation.drawn() < max_blocks,
        blocks_sampled: permutation.drawn(),
        tuples_sampled: accumulated.len() as u64,
        rounds,
        sample_sorted: accumulated,
    };
    run_span.field("rounds", result.rounds_executed);
    run_span.field("converged", result.converged);
    run_span.field("exhausted", result.exhausted);
    run_span.field("terminated_early", result.terminated_early);
    run_span.field("blocks_sampled", result.blocks_sampled);
    run_span.field("tuples_sampled", result.tuples_sampled);
    run_span.field("oversampling_factor", result.oversampling_factor(config, n));
    run_span.field("blocks_failed", report.blocks_failed);
    run_span.field("replacements_drawn", report.replacements_drawn);
    run_span.field("degraded", report.degraded);
    run_span.field("effective_f", report.effective_target_f);
    run_span.finish();
    Ok((result, report))
}

/// Reusable per-round buffers for the adaptive loop. Without these, every
/// round of [`run`] allocated four vectors (the drawn block ids, the fresh
/// tuple batch, the one-tuple-per-block validation set, and the merged
/// accumulated sample); with the doubling schedule that is `O(r)` churn per
/// round on a sample that only grows. The `merged` buffer double-buffers
/// against the accumulated sample: [`merge_sorted_into`] writes into it and
/// a `swap` makes it the new accumulated vector, so the previous round's
/// allocation is recycled as the next round's merge target.
#[derive(Default)]
struct Scratch {
    fresh_ids: Vec<usize>,
    fresh: Vec<i64>,
    merged: Vec<i64>,
    validation: Vec<i64>,
}

/// Merge two sorted slices (the accumulated sample and a fresh batch) into
/// `out`, clearing it first. The caller owns `out` so its capacity is
/// reused across rounds.
fn merge_sorted_into(a: &[i64], fresh: &[i64], out: &mut Vec<i64>) {
    out.clear();
    out.reserve(a.len() + fresh.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < fresh.len() {
        if a[i] <= fresh[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(fresh[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&fresh[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::max_error_against;
    use crate::sampling::block::SliceBlocks;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn shuffled(n: i64, seed: u64) -> Vec<i64> {
        let mut v: Vec<i64> = (0..n).collect();
        v.shuffle(&mut StdRng::seed_from_u64(seed));
        v
    }

    #[test]
    fn merge_sorted_basics() {
        let mut out = Vec::new();
        merge_sorted_into(&[1, 3, 5], &[2, 4], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        merge_sorted_into(&[], &[1, 2], &mut out);
        assert_eq!(out, vec![1, 2]);
        merge_sorted_into(&[1, 2], &[], &mut out);
        assert_eq!(out, vec![1, 2]);
        merge_sorted_into(&[1, 1], &[1], &mut out);
        assert_eq!(out, vec![1, 1, 1]);
        // Capacity from the largest merge is retained for reuse.
        assert!(out.capacity() >= 5);
    }

    #[test]
    fn converges_on_random_layout() {
        // 100k distinct values scattered randomly across pages: block
        // sampling behaves like record sampling, so CVB should converge
        // well before a full scan.
        let data = shuffled(100_000, 7);
        let src = SliceBlocks::new(&data, 100);
        let config = CvbConfig {
            buckets: 20,
            target_f: 0.2,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 40 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let result = run(&src, &config, &mut rng);
        assert!(result.converged, "rounds: {:?}", result.rounds);
        assert!(!result.exhausted, "converged before a full scan");
        assert_eq!(result.rounds_executed, result.rounds.len());
        assert!(result.terminated_early, "convergence left block budget unused");

        // And the histogram it returns really is good: check true error.
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let true_err = max_error_against(&result.histogram, &sorted).relative_max();
        // Theorem 7 guarantees ≤ 2f whp on passing the f test.
        assert!(true_err <= 2.0 * config.target_f, "true error {true_err}");
    }

    #[test]
    fn sorted_layout_needs_more_blocks_than_random() {
        // Fully clustered (sorted) pages are the paper's scenario (b): the
        // effective sampling rate collapses and CVB must keep going.
        let n = 50_000i64;
        let random = shuffled(n, 11);
        let sorted: Vec<i64> = (0..n).collect();
        let config = CvbConfig {
            buckets: 20,
            target_f: 0.25,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 20 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let run_on = |data: &Vec<i64>, seed: u64| {
            let src = SliceBlocks::new(data, 100);
            run(&src, &config, &mut StdRng::seed_from_u64(seed))
        };
        let blocks_random: usize = (0..5).map(|s| run_on(&random, s).blocks_sampled).sum();
        let blocks_sorted: usize = (0..5).map(|s| run_on(&sorted, s).blocks_sampled).sum();
        assert!(
            blocks_sorted > 2 * blocks_random,
            "sorted {blocks_sorted} vs random {blocks_random}"
        );
    }

    #[test]
    fn full_scan_fallback_yields_exact_histogram() {
        // All tuples on each page identical (scenario b, extreme): with a
        // tight target the algorithm may walk to a full scan; the result
        // is then the exact histogram.
        let mut data: Vec<i64> = Vec::new();
        for page in 0..50 {
            data.extend(std::iter::repeat(page as i64).take(20));
        }
        let src = SliceBlocks::new(&data, 20);
        let config = CvbConfig {
            buckets: 10,
            target_f: 0.01,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 2 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let result = run(&src, &config, &mut rng);
        if result.exhausted {
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let exact = EquiHeightHistogram::from_sorted(&sorted, 10);
            assert_eq!(result.histogram.separators(), exact.separators());
            assert_eq!(result.tuples_sampled, 1000);
        }
    }

    #[test]
    fn block_cap_is_respected() {
        let data = shuffled(10_000, 17);
        let src = SliceBlocks::new(&data, 10); // 1000 blocks
        let config = CvbConfig {
            buckets: 100,
            target_f: 0.01, // unreachably strict -> would scan everything
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 10 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 0.25,
        };
        let mut rng = StdRng::seed_from_u64(19);
        let result = run(&src, &config, &mut rng);
        assert!(!result.converged);
        assert!(result.blocks_sampled <= 250);
        assert!(!result.exhausted);
        assert!(!result.terminated_early, "ran the schedule to its cap");
        assert_eq!(result.rounds_executed, result.rounds.len());
    }

    #[test]
    fn one_tuple_per_block_validation_runs() {
        let data = shuffled(50_000, 23);
        let src = SliceBlocks::new(&data, 50);
        let config = CvbConfig {
            buckets: 20,
            target_f: 0.25,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 50 },
            validation: ValidationMode::OneTuplePerBlock,
            max_block_fraction: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(29);
        let result = run(&src, &config, &mut rng);
        assert!(result.rounds.len() >= 2 || result.converged || result.exhausted);
        // The trace records validation errors from round 2 onward.
        assert!(result.rounds[0].cross_validation_error.is_none());
        for r in &result.rounds[1..] {
            assert!(r.cross_validation_error.is_some());
        }
    }

    #[test]
    fn theoretical_config_sizes_initial_round() {
        let data = shuffled(100_000, 31);
        let src = SliceBlocks::new(&data, 100);
        let cfg = CvbConfig::theoretical(&src, 10, 0.5, 0.1);
        match cfg.schedule {
            Schedule::Doubling { initial_blocks } => {
                // r = 4*10*ln(2e6)/0.25 ≈ 2322 tuples -> ~24 blocks.
                assert!((20..30).contains(&initial_blocks), "g0 = {initial_blocks}");
            }
            ref other => panic!("expected doubling schedule, got {other:?}"),
        }
    }

    #[test]
    fn sampling_rate_and_oversampling_reports() {
        let data = shuffled(100_000, 37);
        let src = SliceBlocks::new(&data, 100);
        let config = CvbConfig::theoretical(&src, 10, 0.5, 0.1);
        let mut rng = StdRng::seed_from_u64(41);
        let result = run(&src, &config, &mut rng);
        let rate = result.sampling_rate(src.num_tuples());
        assert!(rate > 0.0 && rate <= 1.0);
        let over = result.oversampling_factor(&config, src.num_tuples());
        assert!(over > 0.0);
    }

    #[test]
    fn trace_is_monotone() {
        let data = shuffled(50_000, 43);
        let src = SliceBlocks::new(&data, 100);
        let config = CvbConfig {
            buckets: 30,
            target_f: 0.1,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 10 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(47);
        let result = run(&src, &config, &mut rng);
        for w in result.rounds.windows(2) {
            assert!(w[1].total_blocks > w[0].total_blocks);
            assert!(w[1].total_tuples > w[0].total_tuples);
            assert_eq!(w[1].round, w[0].round + 1);
        }
        let last = result.rounds.last().expect("at least one round");
        assert_eq!(last.total_blocks, result.blocks_sampled);
        assert_eq!(last.total_tuples, result.tuples_sampled);
    }

    #[test]
    #[should_panic(expected = "empty source")]
    fn empty_source_rejected() {
        let src = SliceBlocks::new(&[], 10);
        let config = CvbConfig::prototype(10, 0.1, 0.05);
        let mut rng = StdRng::seed_from_u64(53);
        let _ = run(&src, &config, &mut rng);
    }

    // ---- degradation-aware path -------------------------------------

    use super::super::fallible::Reliable;
    use std::borrow::Cow;

    /// A block source that permanently fails every block whose index
    /// satisfies a predicate — the simplest deterministic fault model.
    struct Failing<'a> {
        inner: SliceBlocks<'a>,
        fails: fn(usize) -> bool,
    }

    impl TryBlockSource for Failing<'_> {
        fn num_blocks(&self) -> usize {
            self.inner.num_blocks()
        }
        fn num_tuples(&self) -> u64 {
            self.inner.num_tuples()
        }
        fn try_block(&self, index: usize) -> Result<Cow<'_, [i64]>, BlockError> {
            if (self.fails)(index) {
                Err(BlockError::Unreadable { block: index })
            } else {
                Ok(Cow::Borrowed(self.inner.block(index)))
            }
        }
    }

    #[test]
    fn fault_free_try_run_is_bit_identical_to_run() {
        let data = shuffled(60_000, 61);
        let src = SliceBlocks::new(&data, 100);
        for validation in [ValidationMode::AllTuples, ValidationMode::OneTuplePerBlock] {
            let config = CvbConfig {
                buckets: 20,
                target_f: 0.2,
                gamma: 0.05,
                schedule: Schedule::Doubling { initial_blocks: 30 },
                validation,
                max_block_fraction: 1.0,
            };
            let baseline = run(&src, &config, &mut StdRng::seed_from_u64(67));
            let (resilient, report) = try_run(
                &Reliable(src),
                &config,
                &DegradationPolicy::default(),
                &mut StdRng::seed_from_u64(67),
            )
            .expect("fault-free source is readable");
            assert_eq!(resilient.histogram, baseline.histogram);
            assert_eq!(resilient.sample_sorted, baseline.sample_sorted);
            assert_eq!(resilient.rounds, baseline.rounds);
            assert_eq!(resilient.converged, baseline.converged);
            assert_eq!(resilient.blocks_sampled, baseline.blocks_sampled);
            assert!(!report.degraded);
            assert_eq!(report.blocks_failed, 0);
            assert_eq!(report.effective_target_f, config.target_f);
        }
    }

    #[test]
    fn failed_blocks_are_replaced_and_reported() {
        let data = shuffled(50_000, 71);
        let src = Failing { inner: SliceBlocks::new(&data, 100), fails: |id| id % 5 == 2 };
        let config = CvbConfig {
            buckets: 20,
            target_f: 0.25,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 40 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(73);
        let (result, report) =
            try_run(&src, &config, &DegradationPolicy { replacement_budget: 1000 }, &mut rng)
                .expect("80% of blocks are readable");
        assert!(report.degraded);
        assert!(report.blocks_failed > 0);
        assert!(report.replacements_drawn > 0, "budget was available");
        assert!(matches!(report.last_error, Some(BlockError::Unreadable { .. })));
        assert!(result.converged || result.exhausted);
        assert_eq!(result.histogram.total(), 50_000, "still scaled to the full relation");
        // With every failure replaced, no round shrank: no widening.
        assert_eq!(report.effective_target_f, config.target_f);
    }

    #[test]
    fn exhausted_budget_widens_the_threshold() {
        let data = shuffled(50_000, 79);
        let src = Failing { inner: SliceBlocks::new(&data, 100), fails: |id| id % 2 == 0 };
        let config = CvbConfig {
            buckets: 20,
            target_f: 0.2,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 40 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(83);
        let (result, report) =
            try_run(&src, &config, &DegradationPolicy { replacement_budget: 0 }, &mut rng)
                .expect("half the blocks are readable");
        assert!(report.degraded);
        assert_eq!(report.replacements_drawn, 0);
        assert!(
            report.effective_target_f > config.target_f,
            "shrunk rounds must widen the certified f (got {})",
            report.effective_target_f
        );
        assert!(report.effective_target_f <= 1.0);
        assert!(result.tuples_sampled > 0);
    }

    #[test]
    fn unreadable_source_is_a_structured_error() {
        let data = shuffled(1_000, 89);
        let src = Failing { inner: SliceBlocks::new(&data, 100), fails: |_| true };
        let config = CvbConfig {
            buckets: 10,
            target_f: 0.2,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 4 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(97);
        let err = try_run(&src, &config, &DegradationPolicy::default(), &mut rng)
            .expect_err("nothing is readable");
        let CvbError::SourceUnreadable { blocks_tried, last_error } = err;
        assert!(blocks_tried > 0);
        assert!(last_error.is_some());
        assert!(err.to_string().contains("no readable blocks"));
    }

    #[test]
    fn try_run_emits_failure_counters() {
        use samplehist_obs::{MemorySink, Recorder};
        use std::sync::Arc;
        let data = shuffled(20_000, 101);
        let src = Failing { inner: SliceBlocks::new(&data, 100), fails: |id| id % 4 == 1 };
        let config = CvbConfig {
            buckets: 10,
            target_f: 0.3,
            gamma: 0.05,
            schedule: Schedule::Doubling { initial_blocks: 20 },
            validation: ValidationMode::AllTuples,
            max_block_fraction: 1.0,
        };
        let sink = Arc::new(MemorySink::new());
        let recorder = Recorder::new(sink.clone());
        let mut rng = StdRng::seed_from_u64(103);
        let (_, report) =
            try_run_traced(&src, &config, &DegradationPolicy::default(), &mut rng, &recorder)
                .expect("mostly readable");
        recorder.flush();
        let failed: u64 = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                samplehist_obs::Event::Counter { name: "cvb.blocks_failed", delta, .. } => {
                    Some(*delta)
                }
                _ => None,
            })
            .sum();
        assert_eq!(failed as usize, report.blocks_failed);
        assert!(failed > 0);
    }
}
