//! Fallible block access: the error taxonomy a real storage engine
//! surfaces, and the trait the degradation-aware sampling paths consume.
//!
//! [`super::block::BlockSource`] models the paper's idealized disk: every
//! page read succeeds. Production ANALYZE does not get that luxury — pages
//! go unreadable, reads fail transiently under load, and torn writes leave
//! pages whose checksum no longer matches their contents. [`TryBlockSource`]
//! is the same page-oriented contract with failure in the signature, and
//! [`BlockError`] is the taxonomy the pipeline's degradation policy
//! dispatches on:
//!
//! * **Transient** — worth retrying (the storage layer's retry wrapper
//!   handles these; by the time sampling sees one, retries are exhausted).
//! * **Unreadable** — a persistent media error; the page is lost.
//! * **Corrupted** — the page was served but its checksum mismatched; its
//!   contents cannot be trusted, so it is treated as lost.
//!
//! Fault-free sources are adapted via [`Reliable`], so every existing
//! [`BlockSource`] (heap files, slices) runs through the degradation-aware
//! paths unchanged — and, with no faults to degrade around, produces
//! bit-identical results to the infallible paths.

use std::borrow::Cow;

use super::block::BlockSource;

/// Why reading one block failed for good.
///
/// Every variant names the block so degradation reports and traces can say
/// exactly what was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// A transient failure (I/O timeout, device busy) that persisted
    /// through `attempts` read attempts.
    Transient {
        /// The block that failed.
        block: usize,
        /// How many attempts were made before giving up.
        attempts: u32,
    },
    /// The device reports the page permanently unreadable (media error).
    Unreadable {
        /// The block that failed.
        block: usize,
    },
    /// The page was served but its checksum did not match its contents
    /// (torn write or bit rot); the data cannot be trusted.
    Corrupted {
        /// The block that failed.
        block: usize,
        /// The checksum the page should have had.
        expected: u64,
        /// The checksum its served contents actually hash to.
        actual: u64,
    },
}

impl BlockError {
    /// The block the error concerns.
    pub fn block(&self) -> usize {
        match *self {
            BlockError::Transient { block, .. }
            | BlockError::Unreadable { block }
            | BlockError::Corrupted { block, .. } => block,
        }
    }

    /// Whether another read attempt could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, BlockError::Transient { .. })
    }
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::Transient { block, attempts } => {
                write!(f, "block {block}: transient read error after {attempts} attempts")
            }
            BlockError::Unreadable { block } => {
                write!(f, "block {block}: page unreadable (media error)")
            }
            BlockError::Corrupted { block, expected, actual } => {
                write!(
                    f,
                    "block {block}: checksum mismatch (expected {expected:#018x}, got {actual:#018x})"
                )
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// A page-oriented view of one column whose reads can fail.
///
/// The fallible counterpart of [`BlockSource`]: same geometry contract
/// (stable block count and contents within one run), but [`try_block`]
/// returns a [`BlockError`] instead of panicking when the storage layer
/// cannot produce trustworthy bytes. Successful reads may be borrowed or
/// owned ([`Cow`]) so decoding / repairing storage layers can hand back
/// reconstructed pages without copying on the common path.
///
/// [`try_block`]: TryBlockSource::try_block
pub trait TryBlockSource {
    /// Number of blocks (disk pages).
    fn num_blocks(&self) -> usize;
    /// Total number of tuples across all blocks, counting unreadable ones
    /// (geometry is metadata; it stays known even when pages are lost).
    fn num_tuples(&self) -> u64;
    /// The attribute values of the tuples stored on block `index`, or why
    /// they cannot be produced.
    ///
    /// # Panics
    /// Implementations should panic on out-of-range indices — that is a
    /// caller bug, not a storage fault.
    fn try_block(&self, index: usize) -> Result<Cow<'_, [i64]>, BlockError>;

    /// Average tuples per block (the blocking factor `b` of Section 4.1).
    fn avg_tuples_per_block(&self) -> f64 {
        if self.num_blocks() == 0 {
            0.0
        } else {
            self.num_tuples() as f64 / self.num_blocks() as f64
        }
    }
}

/// Adapter viewing an infallible [`BlockSource`] as a [`TryBlockSource`]
/// whose reads always succeed.
///
/// (An adapter rather than a blanket impl so storage crates can implement
/// `TryBlockSource` directly for their own fault-aware types without
/// colliding with coherence rules.)
#[derive(Debug, Clone, Copy)]
pub struct Reliable<S>(pub S);

impl<S: BlockSource> TryBlockSource for Reliable<S> {
    fn num_blocks(&self) -> usize {
        self.0.num_blocks()
    }

    fn num_tuples(&self) -> u64 {
        self.0.num_tuples()
    }

    fn try_block(&self, index: usize) -> Result<Cow<'_, [i64]>, BlockError> {
        Ok(Cow::Borrowed(self.0.block(index)))
    }

    fn avg_tuples_per_block(&self) -> f64 {
        self.0.avg_tuples_per_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SliceBlocks;

    #[test]
    fn reliable_adapter_delegates() {
        let data: Vec<i64> = (0..10).collect();
        let src = Reliable(SliceBlocks::new(&data, 4));
        assert_eq!(src.num_blocks(), 3);
        assert_eq!(src.num_tuples(), 10);
        assert_eq!(src.try_block(2).expect("never fails").as_ref(), &[8, 9]);
        assert!((src.avg_tuples_per_block() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn error_accessors_and_display() {
        let e = BlockError::Transient { block: 3, attempts: 4 };
        assert_eq!(e.block(), 3);
        assert!(e.is_transient());
        assert!(e.to_string().contains("transient"));

        let e = BlockError::Unreadable { block: 7 };
        assert_eq!(e.block(), 7);
        assert!(!e.is_transient());
        assert!(e.to_string().contains("unreadable"));

        let e = BlockError::Corrupted { block: 1, expected: 0xAB, actual: 0xCD };
        assert_eq!(e.block(), 1);
        assert!(!e.is_transient());
        assert!(e.to_string().contains("checksum"));
    }
}
