//! Block-level sampling over an abstract page-oriented source.
//!
//! [`BlockSource`] is the only interface the sampling algorithms need from
//! a storage engine: how many blocks there are and the tuples on each.
//! `samplehist-storage`'s `HeapFile` implements it; [`SliceBlocks`] adapts
//! any in-memory slice for tests and for record-level comparisons.

use rand::Rng;

/// A page-oriented view of one column of a relation.
///
/// Blocks are numbered `0 .. num_blocks()`. Blocks may have different
/// sizes (the last page of a heap file is usually short); implementations
/// must return the same contents for the same index every time within one
/// sampling run.
pub trait BlockSource {
    /// Number of blocks (disk pages).
    fn num_blocks(&self) -> usize;
    /// Total number of tuples across all blocks.
    fn num_tuples(&self) -> u64;
    /// The attribute values of the tuples stored on block `index`.
    ///
    /// # Panics
    /// Implementations should panic on out-of-range indices.
    fn block(&self, index: usize) -> &[i64];

    /// Average tuples per block (the blocking factor `b` of Section 4.1).
    fn avg_tuples_per_block(&self) -> f64 {
        if self.num_blocks() == 0 {
            0.0
        } else {
            self.num_tuples() as f64 / self.num_blocks() as f64
        }
    }
}

impl<S: BlockSource + ?Sized> BlockSource for &S {
    fn num_blocks(&self) -> usize {
        (**self).num_blocks()
    }

    fn num_tuples(&self) -> u64 {
        (**self).num_tuples()
    }

    fn block(&self, index: usize) -> &[i64] {
        (**self).block(index)
    }

    fn avg_tuples_per_block(&self) -> f64 {
        (**self).avg_tuples_per_block()
    }
}

/// View a contiguous slice as fixed-size blocks (the last may be short).
#[derive(Debug, Clone, Copy)]
pub struct SliceBlocks<'a> {
    data: &'a [i64],
    block_size: usize,
}

impl<'a> SliceBlocks<'a> {
    /// Wrap `data` as blocks of `block_size` tuples.
    ///
    /// # Panics
    /// If `block_size == 0`.
    pub fn new(data: &'a [i64], block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self { data, block_size }
    }
}

impl BlockSource for SliceBlocks<'_> {
    fn num_blocks(&self) -> usize {
        self.data.len().div_ceil(self.block_size)
    }

    fn num_tuples(&self) -> u64 {
        self.data.len() as u64
    }

    fn block(&self, index: usize) -> &[i64] {
        let start = index * self.block_size;
        assert!(start < self.data.len(), "block {index} out of range");
        let end = (start + self.block_size).min(self.data.len());
        &self.data[start..end]
    }
}

/// The result of sampling `g` blocks: which blocks, and every tuple on
/// them.
#[derive(Debug, Clone)]
pub struct BlockSample {
    /// Indices of the sampled blocks, in the order drawn.
    pub block_ids: Vec<usize>,
    /// All tuples from the sampled blocks (unsorted).
    pub values: Vec<i64>,
}

/// Draw `g` distinct blocks uniformly at random and collect their tuples.
///
/// # Panics
/// If `g` exceeds the number of blocks.
pub fn sample_blocks(source: &impl BlockSource, g: usize, rng: &mut impl Rng) -> BlockSample {
    assert!(
        g <= source.num_blocks(),
        "cannot sample {g} of {} blocks without replacement",
        source.num_blocks()
    );
    let block_ids: Vec<usize> = rand::seq::index::sample(rng, source.num_blocks(), g).into_vec();
    let mut values = Vec::with_capacity((source.avg_tuples_per_block() * g as f64).ceil() as usize);
    for &id in &block_ids {
        values.extend_from_slice(source.block(id));
    }
    BlockSample { block_ids, values }
}

/// Incremental without-replacement block sampling: a random permutation of
/// all block indices, consumed prefix by prefix. This is what the adaptive
/// CVB algorithm uses — each round's "fresh" blocks are simply the next
/// chunk of the permutation, which makes the union of all rounds a uniform
/// without-replacement sample at every point.
#[derive(Debug, Clone)]
pub struct BlockPermutation {
    order: Vec<usize>,
    cursor: usize,
}

impl BlockPermutation {
    /// Shuffle all block indices of `source`.
    pub fn new(source: &impl BlockSource, rng: &mut impl Rng) -> Self {
        Self::with_len(source.num_blocks(), rng)
    }

    /// Shuffle the block indices `0..num_blocks` — for sources that only
    /// expose their geometry (e.g. fallible sources whose reads are
    /// deferred until each block is actually needed).
    pub fn with_len(num_blocks: usize, rng: &mut impl Rng) -> Self {
        use rand::seq::SliceRandom;
        let mut order: Vec<usize> = (0..num_blocks).collect();
        order.shuffle(rng);
        Self { order, cursor: 0 }
    }

    /// How many blocks remain undrawn.
    pub fn remaining(&self) -> usize {
        self.order.len() - self.cursor
    }

    /// How many blocks have been drawn so far.
    pub fn drawn(&self) -> usize {
        self.cursor
    }

    /// Draw up to `g` further blocks (fewer if the permutation is nearly
    /// exhausted). Returns the drawn block indices.
    pub fn take(&mut self, g: usize) -> &[usize] {
        let take = g.min(self.remaining());
        let out = &self.order[self.cursor..self.cursor + take];
        self.cursor += take;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn slice_blocks_shape() {
        let data: Vec<i64> = (0..10).collect();
        let src = SliceBlocks::new(&data, 4);
        assert_eq!(src.num_blocks(), 3);
        assert_eq!(src.num_tuples(), 10);
        assert_eq!(src.block(0), &[0, 1, 2, 3]);
        assert_eq!(src.block(2), &[8, 9], "last block is short");
        assert!((src.avg_tuples_per_block() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_blocks_out_of_range() {
        let data: Vec<i64> = (0..10).collect();
        let src = SliceBlocks::new(&data, 4);
        let _ = src.block(3);
    }

    #[test]
    fn sample_blocks_collects_whole_pages() {
        let data: Vec<i64> = (0..100).collect();
        let src = SliceBlocks::new(&data, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let s = sample_blocks(&src, 3, &mut rng);
        assert_eq!(s.block_ids.len(), 3);
        assert_eq!(s.values.len(), 30);
        // Every sampled tuple belongs to one of the sampled pages.
        for &v in &s.values {
            let page = (v / 10) as usize;
            assert!(s.block_ids.contains(&page), "tuple {v} from unsampled page");
        }
        // Without replacement: distinct pages.
        let mut ids = s.block_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn sample_all_blocks_is_full_scan() {
        let data: Vec<i64> = (0..55).collect();
        let src = SliceBlocks::new(&data, 10);
        let mut rng = StdRng::seed_from_u64(2);
        let s = sample_blocks(&src, 6, &mut rng);
        let mut values = s.values;
        values.sort_unstable();
        assert_eq!(values, data);
    }

    #[test]
    fn permutation_covers_everything_once() {
        let data: Vec<i64> = (0..100).collect();
        let src = SliceBlocks::new(&data, 5); // 20 blocks
        let mut rng = StdRng::seed_from_u64(3);
        let mut perm = BlockPermutation::new(&src, &mut rng);
        assert_eq!(perm.remaining(), 20);
        let mut seen: Vec<usize> = Vec::new();
        seen.extend_from_slice(perm.take(7));
        assert_eq!(perm.drawn(), 7);
        seen.extend_from_slice(perm.take(7));
        seen.extend_from_slice(perm.take(100)); // clamped to remaining 6
        assert_eq!(seen.len(), 20);
        assert_eq!(perm.remaining(), 0);
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        assert!(perm.take(5).is_empty(), "exhausted permutation yields nothing");
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn oversampling_blocks_rejected() {
        let data: Vec<i64> = (0..10).collect();
        let src = SliceBlocks::new(&data, 5);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sample_blocks(&src, 3, &mut rng);
    }
}
