//! Double (two-phase) block sampling — the classical alternative to CVB's
//! iterated cross-validation.
//!
//! Section 4.2 situates CVB against earlier adaptive strategies: "double
//! sampling by Hou, Ozsoyoglu, and Dogdu" sizes the real sample from a
//! pilot instead of iterating. Applied to block-level histogram
//! construction, the pilot's job is to estimate the **design effect** of
//! cluster sampling — how much less information a block-sampled tuple
//! carries than an independently sampled one because tuples sharing a
//! page are correlated:
//!
//! ```text
//! deff_j = Var_blocks[count of bucket j per block] / (b·p_j·(1−p_j))
//! ```
//!
//! (the ratio of the observed between-block variance to the multinomial
//! variance an uncorrelated page would have; `deff ≈ 1` on a random
//! layout, `≈ b` when pages are value-clustered). The second phase then
//! draws `deff · r / b` blocks in one shot, where `r` is Corollary 1's
//! record-level sample size.
//!
//! Compared to CVB: one decision point instead of a loop (cheaper
//! control, friendlier to a batch executor), but the pilot must be big
//! enough to estimate `deff`, and there is no safety net if the pilot
//! under-estimates the correlation — the `ablations` bench quantifies the
//! trade.

use rand::Rng;

use super::block::{BlockPermutation, BlockSource};
use crate::bounds::chaudhuri::corollary1_sample_size;
use crate::histogram::{bucket_counts, EquiHeightHistogram};

/// Configuration for two-phase block sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoubleSamplingConfig {
    /// Histogram buckets, `k`.
    pub buckets: usize,
    /// Target relative max error `f`.
    pub target_f: f64,
    /// Failure probability γ for the Corollary 1 base size.
    pub gamma: f64,
    /// Pilot size in blocks (must be ≥ 2 to estimate a variance; more
    /// pilot = better deff estimate = less over/under-shoot).
    pub pilot_blocks: usize,
}

/// Outcome of a [`run`].
#[derive(Debug, Clone)]
pub struct DoubleSamplingResult {
    /// The final histogram (pilot + phase-2 tuples, scaled to `n`).
    pub histogram: EquiHeightHistogram,
    /// Estimated design effect from the pilot (clamped to `[1, b]`).
    pub design_effect: f64,
    /// Blocks read in the pilot phase.
    pub pilot_blocks: usize,
    /// Blocks read in the second phase.
    pub phase2_blocks: usize,
    /// Total tuples used.
    pub tuples_sampled: u64,
    /// The accumulated sorted sample (for distinct/density reuse).
    pub sample_sorted: Vec<i64>,
}

impl DoubleSamplingResult {
    /// Total blocks read.
    pub fn blocks_sampled(&self) -> usize {
        self.pilot_blocks + self.phase2_blocks
    }
}

/// Run two-phase block sampling against `source`.
///
/// # Panics
/// If the configuration is degenerate (zero buckets, `f ∉ (0,1]`,
/// `γ ∉ (0,1)`, pilot < 2 blocks) or the source is empty.
pub fn run(
    source: &impl BlockSource,
    config: &DoubleSamplingConfig,
    rng: &mut impl Rng,
) -> DoubleSamplingResult {
    assert!(config.buckets > 0, "need at least one bucket");
    assert!(config.target_f > 0.0 && config.target_f <= 1.0, "f must be in (0,1]");
    assert!(config.gamma > 0.0 && config.gamma < 1.0, "γ must be in (0,1)");
    assert!(config.pilot_blocks >= 2, "pilot needs at least two blocks");
    assert!(source.num_blocks() > 0, "cannot sample an empty source");

    let n = source.num_tuples();
    let b = source.avg_tuples_per_block().max(1.0);
    let mut span = samplehist_obs::global().span("double.run");
    span.field("n", n);
    span.field("buckets", config.buckets);
    span.field("target_f", config.target_f);
    let mut permutation = BlockPermutation::new(source, rng);

    // Phase 1: the pilot.
    let pilot_ids: Vec<usize> =
        permutation.take(config.pilot_blocks.min(source.num_blocks())).to_vec();
    let mut pilot: Vec<i64> = Vec::with_capacity((b * pilot_ids.len() as f64) as usize);
    for &id in &pilot_ids {
        pilot.extend_from_slice(source.block(id));
    }
    pilot.sort_unstable();
    let pilot_hist = EquiHeightHistogram::from_sorted_sample(&pilot, config.buckets, n);

    let deff = estimate_design_effect(source, &pilot_ids, &pilot_hist, b);

    // Phase 2: one shot at deff-inflated Corollary 1.
    let r = corollary1_sample_size(config.buckets, config.target_f, n, config.gamma);
    let blocks_needed = ((deff * r / b).ceil() as usize).max(config.pilot_blocks);
    let phase2 = blocks_needed.saturating_sub(pilot_ids.len());
    let phase2_ids: Vec<usize> = permutation.take(phase2).to_vec();
    let mut all = pilot;
    for &id in &phase2_ids {
        all.extend_from_slice(source.block(id));
    }
    all.sort_unstable();
    let histogram = EquiHeightHistogram::from_sorted_sample(&all, config.buckets, n);

    span.field("design_effect", deff);
    span.field("pilot_blocks", pilot_ids.len());
    span.field("phase2_blocks", phase2_ids.len());
    span.field("tuples_sampled", all.len());
    span.finish();

    DoubleSamplingResult {
        histogram,
        design_effect: deff,
        pilot_blocks: pilot_ids.len(),
        phase2_blocks: phase2_ids.len(),
        tuples_sampled: all.len() as u64,
        sample_sorted: all,
    }
}

/// The cluster-sampling design effect: mean (bucket-mass-weighted) ratio
/// of observed between-block bucket-count variance to the multinomial
/// variance of an uncorrelated block. Clamped to `[1, b]` — by Cauchy–
/// Schwarz the truth lives there, and the pilot is small enough to wander
/// outside by noise.
fn estimate_design_effect(
    source: &impl BlockSource,
    pilot_ids: &[usize],
    pilot_hist: &EquiHeightHistogram,
    b: f64,
) -> f64 {
    let g = pilot_ids.len();
    if g < 2 {
        return b; // cannot estimate: assume the worst
    }
    let total: f64 = pilot_ids.iter().map(|&id| source.block(id).len() as f64).sum();
    // Bucket shares over the whole pilot.
    let mut pooled = vec![0u64; pilot_hist.num_buckets()];
    let mut per_block: Vec<Vec<u64>> = Vec::with_capacity(g);
    for &id in pilot_ids {
        let mut blk = source.block(id).to_vec();
        blk.sort_unstable();
        let counts = bucket_counts(&blk, pilot_hist.separators());
        for (p, &c) in pooled.iter_mut().zip(&counts) {
            *p += c;
        }
        per_block.push(counts);
    }

    let mut weighted = 0.0f64;
    let mut weight_sum = 0.0f64;
    for j in 0..pooled.len() {
        let p_j = pooled[j] as f64 / total;
        if p_j <= 0.0 || p_j >= 1.0 {
            continue;
        }
        let expected = b * p_j;
        let var_observed: f64 = per_block
            .iter()
            .map(|counts| {
                let dev = counts[j] as f64 - expected;
                dev * dev
            })
            .sum::<f64>()
            / (g - 1) as f64;
        let var_multinomial = b * p_j * (1.0 - p_j);
        weighted += p_j * (var_observed / var_multinomial);
        weight_sum += p_j;
    }
    if weight_sum <= 0.0 {
        return b;
    }
    (weighted / weight_sum).clamp(1.0, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::max_error_against;
    use crate::sampling::block::SliceBlocks;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn config() -> DoubleSamplingConfig {
        DoubleSamplingConfig { buckets: 20, target_f: 0.25, gamma: 0.05, pilot_blocks: 50 }
    }

    #[test]
    fn random_layout_deff_near_one() {
        let mut data: Vec<i64> = (0..100_000).collect();
        data.shuffle(&mut StdRng::seed_from_u64(1));
        let src = SliceBlocks::new(&data, 100);
        let mut rng = StdRng::seed_from_u64(2);
        let result = run(&src, &config(), &mut rng);
        assert!(result.design_effect < 2.0, "random layout deff = {}", result.design_effect);
        // And the final histogram hits the target on the true data.
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let f = max_error_against(&result.histogram, &sorted).relative_max();
        assert!(f <= 0.25, "realized f = {f}");
    }

    #[test]
    fn clustered_layout_deff_near_b() {
        let data: Vec<i64> = (0..100_000).collect(); // fully sorted pages
        let src = SliceBlocks::new(&data, 100);
        let mut rng = StdRng::seed_from_u64(3);
        let result = run(&src, &config(), &mut rng);
        assert!(result.design_effect > 30.0, "clustered deff = {} (b = 100)", result.design_effect);
        // The inflated phase 2 reads far more blocks than the pilot.
        assert!(result.phase2_blocks > 5 * result.pilot_blocks);
    }

    #[test]
    fn deff_orders_the_layouts() {
        let n = 80_000i64;
        let mut rng = StdRng::seed_from_u64(4);
        let mut random: Vec<i64> = (0..n).collect();
        random.shuffle(&mut rng);
        let sorted: Vec<i64> = (0..n).collect();

        let deff_of = |data: &[i64], seed: u64| {
            let src = SliceBlocks::new(data, 80);
            run(&src, &config(), &mut StdRng::seed_from_u64(seed)).design_effect
        };
        let d_random = deff_of(&random, 5);
        let d_sorted = deff_of(&sorted, 6);
        assert!(d_sorted > 10.0 * d_random, "sorted {d_sorted} vs random {d_random}");
    }

    #[test]
    fn result_accounting_is_consistent() {
        let mut data: Vec<i64> = (0..50_000).collect();
        data.shuffle(&mut StdRng::seed_from_u64(7));
        let src = SliceBlocks::new(&data, 50);
        let mut rng = StdRng::seed_from_u64(8);
        let result = run(&src, &config(), &mut rng);
        assert_eq!(result.tuples_sampled as usize, result.sample_sorted.len());
        assert_eq!(result.blocks_sampled() * 50, result.sample_sorted.len(), "whole blocks only");
        assert!(result.sample_sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(result.histogram.total(), 50_000);
    }

    #[test]
    fn phase2_never_shrinks_below_pilot() {
        // Even when the bound says "pilot was already enough", the result
        // keeps everything it read.
        let mut data: Vec<i64> = (0..20_000).collect();
        data.shuffle(&mut StdRng::seed_from_u64(9));
        let src = SliceBlocks::new(&data, 100);
        let cfg = DoubleSamplingConfig { buckets: 5, target_f: 1.0, gamma: 0.5, pilot_blocks: 100 };
        let mut rng = StdRng::seed_from_u64(10);
        let result = run(&src, &cfg, &mut rng);
        assert_eq!(result.pilot_blocks, 100);
        assert_eq!(result.phase2_blocks, 0);
    }

    #[test]
    #[should_panic(expected = "pilot needs at least two blocks")]
    fn tiny_pilot_rejected() {
        let data: Vec<i64> = (0..1000).collect();
        let src = SliceBlocks::new(&data, 10);
        let cfg = DoubleSamplingConfig { buckets: 5, target_f: 0.5, gamma: 0.1, pilot_blocks: 1 };
        let _ = run(&src, &cfg, &mut StdRng::seed_from_u64(11));
    }
}
