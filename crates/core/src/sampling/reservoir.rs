//! Reservoir sampling (Vitter's Algorithm R).
//!
//! A streaming substrate: maintains a uniform without-replacement sample
//! of fixed capacity over a stream of unknown length. The engine uses it
//! for the row-sampling `ANALYZE` mode, where the scan produces tuples one
//! page at a time and we do not want to materialize the column first.

use rand::Rng;

/// A fixed-capacity uniform reservoir sample.
///
/// After observing `t ≥ capacity` items, every item seen so far is present
/// in the reservoir with probability exactly `capacity / t`.
#[derive(Debug, Clone)]
pub struct Reservoir {
    capacity: usize,
    items: Vec<i64>,
    seen: u64,
}

impl Reservoir {
    /// Create an empty reservoir holding at most `capacity` items.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self { capacity, items: Vec::with_capacity(capacity), seen: 0 }
    }

    /// Offer one item from the stream.
    pub fn offer(&mut self, value: i64, rng: &mut impl Rng) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(value);
        } else {
            // Replace a random slot with probability capacity/seen.
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = value;
            }
        }
    }

    /// Offer a whole slice (e.g. one page of tuples).
    pub fn offer_all(&mut self, values: &[i64], rng: &mut impl Rng) {
        for &v in values {
            self.offer(v, rng);
        }
    }

    /// Number of stream items observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current sample contents (unordered).
    pub fn items(&self) -> &[i64] {
        &self.items
    }

    /// Consume the reservoir, returning the sample.
    pub fn into_sample(self) -> Vec<i64> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fills_up_then_stays_at_capacity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut res = Reservoir::new(10);
        for v in 0..5 {
            res.offer(v, &mut rng);
        }
        assert_eq!(res.items().len(), 5);
        for v in 5..100 {
            res.offer(v, &mut rng);
        }
        assert_eq!(res.items().len(), 10);
        assert_eq!(res.seen(), 100);
    }

    #[test]
    fn short_stream_is_kept_verbatim() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut res = Reservoir::new(100);
        res.offer_all(&[3, 1, 4, 1, 5], &mut rng);
        assert_eq!(res.items(), &[3, 1, 4, 1, 5]);
    }

    #[test]
    fn inclusion_probability_is_uniform() {
        // Stream 0..200 into a capacity-20 reservoir many times; each item
        // should appear with probability ~0.1.
        let trials = 2000;
        let mut inclusion = vec![0u32; 200];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..trials {
            let mut res = Reservoir::new(20);
            for v in 0..200 {
                res.offer(v, &mut rng);
            }
            for &v in res.items() {
                inclusion[v as usize] += 1;
            }
        }
        let expected = trials as f64 * 0.1;
        let sigma = (trials as f64 * 0.1 * 0.9).sqrt();
        for (v, &c) in inclusion.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 5.0 * sigma,
                "item {v}: included {c} times, expected ~{expected}"
            );
        }
    }

    #[test]
    fn into_sample_hands_back_items() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut res = Reservoir::new(3);
        res.offer_all(&[10, 20, 30, 40], &mut rng);
        let s = res.into_sample();
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|v| [10, 20, 30, 40].contains(v)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Reservoir::new(0);
    }
}
