//! Equi-height histograms and friends (paper Sections 2.1 and 5).
//!
//! A *k*-histogram over a totally ordered domain is a sequence of
//! separators `s_1 ≤ … ≤ s_{k-1}` inducing buckets
//! `B_j = { v : s_{j-1} < v ≤ s_j }` with the conventions `s_0 = −∞` and
//! `s_k = +∞`. An **equi-height** k-histogram chooses the separators so
//! every bucket holds (as close as possible to) `n/k` of the `n` values.
//!
//! Three construction paths are provided:
//!
//! * [`EquiHeightHistogram::from_sorted`] — the *perfect* histogram from a
//!   full scan + sort, the reference point for every error metric.
//! * [`EquiHeightHistogram::from_sorted_sample`] — the *approximate*
//!   histogram: separators from a random sample, per-bucket counts scaled
//!   up to the population size. This is what a sampling-based `ANALYZE`
//!   stores in the catalog.
//! * [`CompressedHistogram`] — Section 5's "standard approach" for
//!   duplicate-heavy columns: values with multiplicity above `n/k` are
//!   stored exactly, the residue gets an equi-height histogram.
//!
//! Three supporting pieces round the module out: [`EquiWidthHistogram`],
//! the classical baseline equi-height displaced (kept for the ablation
//! benches), [`codec`], the single-page binary persistence format a
//! catalog stores histograms in, and [`index`], the serve-time branchless
//! bucket indexes estimation routes through once statistics are built.

mod builder;
pub mod codec;
mod compressed;
mod equi_height;
mod equi_width;
pub mod index;
mod maintained;
mod radix;
pub mod selection;

pub use builder::HistogramBuilder;
pub use compressed::{CompressedHistogram, CompressedRoute};
pub use equi_height::{BucketRef, ConstructionRoute, EquiHeightHistogram};
pub use equi_width::EquiWidthHistogram;
pub use index::{BucketIndex, CompressedIndex};
pub use maintained::MaintainedHistogram;
pub use selection::{bucket_counts_unsorted, select_separators, selection_profitable};

/// Number of elements of the **sorted** slice that are `≤ v`.
///
/// This is the primitive every bucket-counting routine reduces to: the size
/// of bucket `B_j = (s_{j-1}, s_j]` over sorted data is
/// `count_le(data, s_j) − count_le(data, s_{j-1})`.
pub fn count_le(sorted: &[i64], v: i64) -> usize {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    sorted.partition_point(|&x| x <= v)
}

/// Number of elements of the **sorted** slice that are `< v`.
pub fn count_lt(sorted: &[i64], v: i64) -> usize {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    sorted.partition_point(|&x| x < v)
}

/// Count, over **sorted** data, how many values fall in each bucket of the
/// histogram defined by `separators` (which must be non-decreasing). The
/// result has `separators.len() + 1` entries and sums to `sorted.len()`.
pub fn bucket_counts(sorted: &[i64], separators: &[i64]) -> Vec<u64> {
    debug_assert!(separators.windows(2).all(|w| w[0] <= w[1]), "separators must be non-decreasing");
    let mut counts = Vec::with_capacity(separators.len() + 1);
    let mut prev = 0usize;
    for &s in separators {
        let c = count_le(sorted, s);
        debug_assert!(c >= prev);
        counts.push((c - prev) as u64);
        prev = c;
    }
    counts.push((sorted.len() - prev) as u64);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_le_lt_basics() {
        let data = [1, 2, 2, 2, 5, 9];
        assert_eq!(count_le(&data, 0), 0);
        assert_eq!(count_le(&data, 1), 1);
        assert_eq!(count_le(&data, 2), 4);
        assert_eq!(count_le(&data, 3), 4);
        assert_eq!(count_le(&data, 9), 6);
        assert_eq!(count_le(&data, 100), 6);
        assert_eq!(count_lt(&data, 2), 1);
        assert_eq!(count_lt(&data, 10), 6);
        assert_eq!(count_lt(&data, 1), 0);
    }

    #[test]
    fn bucket_counts_partition_the_data() {
        let data = [1, 2, 3, 4, 5, 6, 7, 8];
        // Buckets: (-inf,2], (2,5], (5,+inf) -> 2, 3, 3
        assert_eq!(bucket_counts(&data, &[2, 5]), vec![2, 3, 3]);
        // No separators: one bucket with everything.
        assert_eq!(bucket_counts(&data, &[]), vec![8]);
        // Repeated separators yield empty middle buckets.
        assert_eq!(bucket_counts(&data, &[4, 4]), vec![4, 0, 4]);
    }

    #[test]
    fn bucket_counts_with_duplicates() {
        let data = [3, 3, 3, 3, 7, 7];
        // A separator equal to the duplicated value pulls all copies left.
        assert_eq!(bucket_counts(&data, &[3]), vec![4, 2]);
        assert_eq!(bucket_counts(&data, &[2]), vec![0, 6]);
    }

    #[test]
    fn bucket_counts_empty_data() {
        let data: [i64; 0] = [];
        assert_eq!(bucket_counts(&data, &[1, 2]), vec![0, 0, 0]);
    }
}
