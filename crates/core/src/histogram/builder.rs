//! High-level histogram construction: the convenience layer an `ANALYZE`
//! implementation calls, wiring together the sampling bounds of Section 3
//! and the histogram structures.

use rand::Rng;

use super::EquiHeightHistogram;
use crate::bounds::chaudhuri::SamplingPlan;
use crate::sampling;

/// Fluent builder for exact or sampling-based equi-height histograms.
///
/// ```
/// use rand::SeedableRng;
/// use samplehist_core::histogram::HistogramBuilder;
///
/// let data: Vec<i64> = (0..50_000).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
///
/// // Exact (full scan + sort):
/// let exact = HistogramBuilder::new(100).exact(&data);
/// assert_eq!(exact.num_buckets(), 100);
///
/// // Sampled, with the sample sized by Corollary 1 for f = 25%, γ = 5%:
/// let approx = HistogramBuilder::new(100)
///     .target_error(0.25)
///     .confidence(0.05)
///     .sampled(&data, &mut rng);
/// assert_eq!(approx.num_buckets(), 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HistogramBuilder {
    buckets: usize,
    target_f: f64,
    gamma: f64,
    with_replacement: bool,
}

impl HistogramBuilder {
    /// Start a builder for a `buckets`-bucket histogram with the default
    /// targets `f = 0.1`, `γ = 0.01`.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        Self { buckets, target_f: 0.1, gamma: 0.01, with_replacement: true }
    }

    /// Set the relative max-error target `f` (Definition 1).
    pub fn target_error(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "f must be in (0,1]");
        self.target_f = f;
        self
    }

    /// Set the failure probability γ.
    pub fn confidence(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "γ must be in (0,1)");
        self.gamma = gamma;
        self
    }

    /// Sample without replacement instead of the default with-replacement
    /// (the bounds are derived for the latter; Section 3.1 notes they
    /// carry over).
    pub fn without_replacement(mut self) -> Self {
        self.with_replacement = false;
        self
    }

    /// The resolved [`SamplingPlan`] for a relation of `n` tuples.
    pub fn plan(&self, n: u64) -> SamplingPlan {
        SamplingPlan::new(n, self.buckets, self.target_f, self.gamma)
    }

    /// Build the **perfect** histogram by copying and sorting `data`.
    pub fn exact(&self, data: &[i64]) -> EquiHeightHistogram {
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        EquiHeightHistogram::from_sorted(&sorted, self.buckets)
    }

    /// Build an **approximate** histogram from a Corollary-1-sized random
    /// sample of `data`. If the plan says sampling is pointless (the bound
    /// exceeds `n`), this silently degrades to a full scan — the same
    /// choice a production `ANALYZE` makes.
    pub fn sampled(&self, data: &[i64], rng: &mut impl Rng) -> EquiHeightHistogram {
        let n = data.len() as u64;
        let plan = self.plan(n);
        let mut span = samplehist_obs::global().span("builder.sampled");
        span.field("n", n);
        span.field("buckets", self.buckets);
        span.field("target_f", self.target_f);
        if plan.sampling_is_pointless() {
            span.field("route", "full_scan");
            return self.exact(data);
        }
        let r = plan.record_sample_size as usize;
        span.field("route", "sample");
        span.field("r", r);
        let sample = if self.with_replacement {
            sampling::with_replacement(data, r, rng)
        } else {
            sampling::without_replacement(data, r, rng)
        };
        EquiHeightHistogram::from_unsorted_sample(sample, self.buckets, n)
    }

    /// Build an approximate histogram from a caller-chosen sample size
    /// (ignoring the bound — e.g. for error-vs-rate sweeps).
    pub fn sampled_with_size(
        &self,
        data: &[i64],
        r: usize,
        rng: &mut impl Rng,
    ) -> EquiHeightHistogram {
        assert!(r > 0, "sample size must be positive");
        let sample = if self.with_replacement {
            sampling::with_replacement(data, r, rng)
        } else {
            sampling::without_replacement(data, r.min(data.len()), rng)
        };
        EquiHeightHistogram::from_unsorted_sample(sample, self.buckets, data.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::max_error_against;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_build_sorts_internally() {
        let data = vec![9i64, 1, 5, 3, 7, 2, 8, 4, 6, 10];
        let h = HistogramBuilder::new(5).exact(&data);
        assert_eq!(h.separators(), &[2, 4, 6, 8]);
    }

    #[test]
    fn sampled_build_meets_its_own_target() {
        let data: Vec<i64> = (0..60_000).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let mut rng = StdRng::seed_from_u64(11);
        let b = HistogramBuilder::new(20).target_error(0.3).confidence(0.05);
        let h = b.sampled(&data, &mut rng);
        let f = max_error_against(&h, &sorted).relative_max();
        assert!(f <= 0.3, "realized f = {f}");
    }

    #[test]
    fn pointless_sampling_degrades_to_full_scan() {
        // Tiny relation + strict target: plan wants more samples than
        // tuples, builder must fall back to exact.
        let data: Vec<i64> = (0..500).collect();
        let mut rng = StdRng::seed_from_u64(13);
        let b = HistogramBuilder::new(50).target_error(0.05);
        assert!(b.plan(500).sampling_is_pointless());
        let h = b.sampled(&data, &mut rng);
        let exact = b.exact(&data);
        assert_eq!(h, exact);
    }

    #[test]
    fn without_replacement_mode_works() {
        let data: Vec<i64> = (0..10_000).collect();
        let mut rng = StdRng::seed_from_u64(17);
        let h = HistogramBuilder::new(10)
            .target_error(0.5)
            .without_replacement()
            .sampled(&data, &mut rng);
        assert_eq!(h.num_buckets(), 10);
        assert_eq!(h.total(), 10_000);
    }

    #[test]
    fn sampled_with_size_ignores_plan() {
        let data: Vec<i64> = (0..10_000).collect();
        let mut rng = StdRng::seed_from_u64(19);
        let h = HistogramBuilder::new(10).sampled_with_size(&data, 100, &mut rng);
        assert_eq!(h.total(), 10_000);
    }

    #[test]
    #[should_panic(expected = "f must be in (0,1]")]
    fn builder_rejects_bad_error() {
        let _ = HistogramBuilder::new(10).target_error(0.0);
    }
}
