//! Incrementally maintained approximate equi-height histograms — the
//! problem setting of Gibbons, Matias & Poosala (VLDB 1997), the closest
//! prior work the paper compares its bounds against (Section 3.4).
//!
//! The paper's own algorithms rebuild statistics from a fresh sample; GMP
//! instead keep a histogram continuously correct as tuples are **added**
//! to the relation, using a *backing sample* plus a split-and-rebuild
//! rule. This module implements that strategy in its insert-only form:
//!
//! * a reservoir maintains a uniform backing sample of the growing
//!   relation;
//! * each insert increments the (estimated) count of the bucket the new
//!   value falls in;
//! * when some bucket exceeds `(1 + tolerance) · n/k`, the histogram is
//!   **re-derived from the backing sample** — an O(r log r) local repair
//!   that needs no scan of the relation.
//!
//! The combination gives a histogram whose max error stays bounded by the
//! tolerance (plus the sampling error of the backing sample, which is
//! governed by Corollary 1 applied to the reservoir's capacity) while
//! processing inserts in O(log k) amortized.

use rand::Rng;

use super::equi_height::EquiHeightHistogram;
use crate::sampling::Reservoir;

/// An equi-height histogram kept approximately correct under inserts.
#[derive(Debug, Clone)]
pub struct MaintainedHistogram {
    buckets: usize,
    /// Relative slack a bucket may accumulate before a rebuild.
    tolerance: f64,
    /// Uniform backing sample of everything ever inserted.
    backing: Reservoir,
    /// Current histogram (separators + live counts).
    histogram: EquiHeightHistogram,
    /// Live per-bucket counts (updated per insert; `histogram.counts()`
    /// is refreshed from these at rebuild time).
    counts: Vec<u64>,
    /// Total tuples inserted.
    total: u64,
    /// Total at the time of the last rebuild (drives the growth trigger).
    last_rebuild_total: u64,
    /// Rebuilds performed so far (observability for tests/benches).
    rebuilds: u64,
}

impl MaintainedHistogram {
    /// Start maintaining a `buckets`-bucket histogram with a backing
    /// sample of `sample_capacity` and the given rebuild `tolerance`
    /// (e.g. 0.5 = rebuild when a bucket reaches 150% of the ideal size).
    ///
    /// `initial` seeds the structure (it may be a single tuple; the
    /// histogram grows with the data).
    ///
    /// # Panics
    /// If `buckets == 0`, `sample_capacity == 0`, `tolerance ≤ 0`, or
    /// `initial` is empty.
    pub fn new(
        buckets: usize,
        sample_capacity: usize,
        tolerance: f64,
        initial: &[i64],
        rng: &mut impl Rng,
    ) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(sample_capacity > 0, "backing sample must have capacity");
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(!initial.is_empty(), "need at least one initial tuple");

        let mut backing = Reservoir::new(sample_capacity);
        backing.offer_all(initial, rng);
        let total = initial.len() as u64;
        let (histogram, counts) = rebuild_from(&backing, buckets, total);
        Self {
            buckets,
            tolerance,
            backing,
            histogram,
            counts,
            total,
            last_rebuild_total: total,
            rebuilds: 0,
        }
    }

    /// Insert one tuple. Amortized O(log k); occasionally O(r log r) when
    /// a bucket trips the tolerance and the histogram is re-derived from
    /// the backing sample.
    pub fn insert(&mut self, value: i64, rng: &mut impl Rng) {
        self.backing.offer(value, rng);
        self.total += 1;
        let j = self.histogram.bucket_of(value);
        self.counts[j] += 1;

        // Two triggers: a bucket drifted past the tolerance, or the
        // relation doubled since the last rebuild (separators derived
        // from a much smaller reservoir snapshot go stale even when no
        // single bucket trips — e.g. uniformly random insert orders).
        let ideal = self.total as f64 / self.buckets as f64;
        let bucket_tripped = self.counts[j] as f64 > (1.0 + self.tolerance) * ideal;
        let growth_tripped = self.total >= 2 * self.last_rebuild_total;
        if bucket_tripped || growth_tripped {
            let (h, c) = rebuild_from(&self.backing, self.buckets, self.total);
            self.histogram = h;
            self.counts = c;
            self.last_rebuild_total = self.total;
            self.rebuilds += 1;
        }
    }

    /// Insert a batch.
    pub fn insert_all(&mut self, values: &[i64], rng: &mut impl Rng) {
        for &v in values {
            self.insert(v, rng);
        }
    }

    /// The current histogram. Counts are the live per-bucket tallies
    /// scaled into a fresh structure, so the result is internally
    /// consistent (`Σ counts = total inserted`).
    pub fn histogram(&self) -> EquiHeightHistogram {
        EquiHeightHistogram::from_parts(
            self.histogram.separators().to_vec(),
            self.counts.clone(),
            self.histogram.min_value(),
            self.histogram.max_value(),
        )
    }

    /// Tuples inserted so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Size of the backing sample currently held.
    pub fn backing_sample_len(&self) -> usize {
        self.backing.items().len()
    }
}

/// Derive (histogram, live counts) from the backing sample.
fn rebuild_from(
    backing: &Reservoir,
    buckets: usize,
    total: u64,
) -> (EquiHeightHistogram, Vec<u64>) {
    let mut sample = backing.items().to_vec();
    sample.sort_unstable();
    let h = EquiHeightHistogram::from_sorted_sample(&sample, buckets, total);
    let counts = h.counts().to_vec();
    (h, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::max_error_against;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grows_with_inserts_and_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = MaintainedHistogram::new(10, 500, 0.5, &[0], &mut rng);
        for v in 1..5_000i64 {
            m.insert(v, &mut rng);
        }
        assert_eq!(m.total(), 5_000);
        let h = m.histogram();
        assert_eq!(h.total(), 5_000);
        assert_eq!(h.num_buckets(), 10);
        assert!(m.backing_sample_len() <= 500);
    }

    /// The maintenance contract: after a long insert stream, the
    /// maintained histogram's max error against the true data stays small
    /// — without ever rescanning the relation.
    #[test]
    fn error_stays_bounded_under_growth() {
        let mut rng = StdRng::seed_from_u64(2);
        // Adversarial-ish stream: values arrive in ascending order, so
        // early histograms are always wrong about the future.
        let stream: Vec<i64> = (0..40_000).collect();
        let mut m = MaintainedHistogram::new(20, 2_000, 0.3, &stream[..100], &mut rng);
        m.insert_all(&stream[100..], &mut rng);

        let mut sorted = stream.clone();
        sorted.sort_unstable();
        // Bound = rebuild tolerance (0.3) + backing-sample error (~0.26
        // for 100 samples/bucket at 2.6σ); both can land on the trailing
        // bucket of an ascending stream.
        let err = max_error_against(&m.histogram(), &sorted).relative_max();
        assert!(err < 0.6, "maintained error f = {err}");
        assert!(m.rebuilds() > 0, "an ascending stream must force rebuilds");
    }

    #[test]
    fn random_stream_needs_few_rebuilds() {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut stream: Vec<i64> = (0..40_000).collect();
        stream.shuffle(&mut rng);
        let mut m = MaintainedHistogram::new(20, 2_000, 0.3, &stream[..100], &mut rng);
        m.insert_all(&stream[100..], &mut rng);

        // In random arrival order the structure barely drifts.
        let mut ascending = StdRng::seed_from_u64(4);
        let asc: Vec<i64> = (0..40_000).collect();
        let mut m2 = MaintainedHistogram::new(20, 2_000, 0.3, &asc[..100], &mut ascending);
        m2.insert_all(&asc[100..], &mut ascending);
        assert!(
            m.rebuilds() <= m2.rebuilds(),
            "random {} vs ascending {} rebuilds",
            m.rebuilds(),
            m2.rebuilds()
        );
    }

    #[test]
    fn skewed_inserts_track_the_heavy_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = MaintainedHistogram::new(10, 1_000, 0.3, &[0], &mut rng);
        // 80% of the stream is the value 42.
        let mut stream = vec![42i64; 16_000];
        stream.extend(1000..5000);
        use rand::seq::SliceRandom;
        stream.shuffle(&mut rng);
        m.insert_all(&stream, &mut rng);

        let h = m.histogram();
        // The heavy value must appear among the separators (equi-height
        // collapses onto it).
        assert!(h.separators().contains(&42), "separators: {:?}", h.separators());
    }

    #[test]
    #[should_panic(expected = "at least one initial tuple")]
    fn empty_seed_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = MaintainedHistogram::new(10, 100, 0.5, &[], &mut rng);
    }
}
