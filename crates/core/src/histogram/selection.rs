//! Selection-based separator extraction: all `k−1` equi-height quantiles
//! of an **unsorted** multiset without a full sort.
//!
//! [`EquiHeightHistogram::from_sorted`](super::EquiHeightHistogram::from_sorted)
//! only ever reads `k−1` order statistics out of the sorted data, so
//! sorting the whole input does Θ(n log n) work to answer an
//! O(n log k) question. This module extracts exactly those order
//! statistics by recursive median-of-medians-style selection:
//! `select_nth_unstable` at the middle target rank partitions the slice,
//! then the ranks to the left and right recurse into their (disjoint)
//! halves. The recursion depth is ⌈log₂ k⌉ and every level touches each
//! element at most once, giving O(n log k) total work — for the paper's
//! k = 600 over n = 10⁷ that is ~10 passes instead of a ~23-pass sort,
//! and the partition passes are branch-cheaper than sort's merges.
//!
//! The two recursive calls operate on non-overlapping `&mut` halves, so
//! they also fork across threads ([`samplehist_parallel::join`]) down to
//! a depth that matches the machine's parallelism.
//!
//! **Equivalence guarantee** (property-tested in
//! `crates/core/tests/properties.rs`): for every input multiset and
//! bucket count, the separators, bucket counts, min/max — the whole
//! histogram — are byte-identical to the sort-based path. Separators are
//! *order statistics*, so they do not depend on how ties are arranged;
//! bucket counts are computed by the order-independent domain rule
//! `B_j = (s_{j-1}, s_j]`.

use samplehist_parallel as parallel;

/// Inputs shorter than this are cheaper to sort outright than to select
/// from (selection's constant-factor overhead dominates below it).
pub const SELECTION_MIN_N: usize = 8 * 1024;

/// Selection stops paying once the histogram wants a constant fraction of
/// the input as separators: require `(k−1) · 8 ≤ n`.
pub const SELECTION_MAX_K_FRACTION: usize = 8;

/// Slices shorter than this never fork a thread during selection.
const PAR_SELECT_MIN: usize = 1 << 16;

/// Value arrays shorter than this are counted serially.
const PAR_COUNT_MIN: usize = 1 << 16;

/// Should [`select_separators`] be used instead of sort-then-index for an
/// input of `n` values and `k` buckets? (The routing rule behind
/// `EquiHeightHistogram::from_unsorted`; see DESIGN.md "Performance
/// architecture".)
pub fn selection_profitable(n: usize, k: usize) -> bool {
    k >= 2 && n >= SELECTION_MIN_N && (k - 1).saturating_mul(SELECTION_MAX_K_FRACTION) <= n
}

/// The 0-based ranks of the equi-height separators: `⌈j·n/k⌉ − 1` for
/// `j = 1 … k−1` (the same ranks `from_sorted` reads; non-decreasing and
/// possibly repeated when `k > n`).
pub fn separator_ranks(n: usize, k: usize) -> Vec<usize> {
    let n = n as u64;
    (1..k as u64).map(|j| (crate::math::div_ceil_u64(j * n, k as u64) - 1) as usize).collect()
}

/// Extract the `k−1` equi-height separators of `values` by multi-rank
/// selection, partially reordering `values` in place.
///
/// Returns exactly what `from_sorted`'s rank rule would return on the
/// sorted input.
///
/// # Panics
/// If `values` is empty or `k == 0`.
pub fn select_separators(values: &mut [i64], k: usize) -> Vec<i64> {
    let mut span = samplehist_obs::global().span("selection.select");
    span.field("n", values.len());
    span.field("buckets", k);
    select_partition(values, k).1
}

/// Like [`select_separators`], but also return the separator ranks. On
/// return `values` is **partitioned** at those ranks: every element at a
/// position in `(ranks[j-1], ranks[j]]` lies in `[s_j, s_{j+1}]` — the
/// property [`bucket_counts_partitioned`] and [`min_max_partitioned`]
/// exploit to finish construction in one cheap linear pass.
pub fn select_partition(values: &mut [i64], k: usize) -> (Vec<usize>, Vec<i64>) {
    assert!(k > 0, "a histogram needs at least one bucket");
    assert!(!values.is_empty(), "cannot select separators of an empty value set");
    let ranks = separator_ranks(values.len(), k);
    let spawn_depth = depth_for(parallel::num_threads(), values.len());
    multi_select(values, &ranks, 0, spawn_depth);
    let separators = ranks.iter().map(|&r| values[r]).collect();
    (ranks, separators)
}

/// Fork depth so that ~`threads` leaves exist, but never for tiny slices.
fn depth_for(threads: usize, len: usize) -> u32 {
    if threads <= 1 || len < PAR_SELECT_MIN {
        0
    } else {
        usize::BITS - (threads - 1).leading_zeros() // ceil(log2(threads))
    }
}

/// Recursive multi-rank selection. `ranks` are global 0-based positions
/// (non-decreasing, each within `offset..offset + data.len()`); on return
/// every `data[r − offset]` holds the r-th smallest element overall.
fn multi_select(data: &mut [i64], ranks: &[usize], offset: usize, spawn_depth: u32) {
    if ranks.is_empty() || data.len() <= 1 {
        return;
    }
    let mid = ranks.len() / 2;
    let target = ranks[mid] - offset;
    debug_assert!(target < data.len());
    let (lo, _pivot, hi) = data.select_nth_unstable(target);

    // Ranks equal to ranks[mid] are already satisfied; strictly smaller
    // ones live in `lo`, strictly larger ones in `hi`.
    let left_end = ranks[..mid].partition_point(|&r| r < ranks[mid]);
    let left = &ranks[..left_end];
    let right_start = mid + 1 + ranks[mid + 1..].partition_point(|&r| r <= ranks[mid]);
    let right = &ranks[right_start..];
    let hi_offset = offset + target + 1;

    if spawn_depth > 0 && lo.len().min(hi.len()) >= PAR_SELECT_MIN {
        parallel::join(
            || multi_select(lo, left, offset, spawn_depth - 1),
            || multi_select(hi, right, hi_offset, spawn_depth - 1),
        );
    } else {
        multi_select(lo, left, offset, spawn_depth.saturating_sub(1));
        multi_select(hi, right, hi_offset, spawn_depth.saturating_sub(1));
    }
}

/// Count how many of `values` (in any order) fall in each bucket of the
/// histogram defined by `separators` — the order-independent counterpart
/// of [`super::bucket_counts`], parallelized over chunks for large
/// inputs. The per-chunk partial counts are reduced in chunk order, so
/// the result is bit-identical at any thread count.
pub fn bucket_counts_unsorted(values: &[i64], separators: &[i64]) -> Vec<u64> {
    debug_assert!(separators.windows(2).all(|w| w[0] <= w[1]), "separators must be non-decreasing");
    let threads = parallel::num_threads();
    if threads <= 1 || values.len() < PAR_COUNT_MIN {
        return count_chunk(values, separators);
    }
    let partials =
        parallel::par_chunks_map(threads, values, threads, |chunk| count_chunk(chunk, separators));
    let mut out = vec![0u64; separators.len() + 1];
    for partial in partials {
        for (acc, c) in out.iter_mut().zip(partial) {
            *acc += c;
        }
    }
    out
}

/// Bucket counts of a slice already **partitioned** by
/// [`select_partition`] — one comparison per element instead of a binary
/// search, because the segment between consecutive ranks pins each
/// element's bucket down to a two-way choice.
///
/// Within segment `j` (positions `(ranks[j-1], ranks[j]]`) every element
/// `v` satisfies `s_j ≤ v ≤ s_{j+1}`; under the domain rule
/// `B = (s_{j-1}, s_j]` it belongs to bucket `j` unless `v` *equals* the
/// segment's lower separator, in which case it belongs to the first
/// bucket whose separator equals that value — a per-segment (not
/// per-element) binary search.
pub fn bucket_counts_partitioned(values: &[i64], ranks: &[usize], separators: &[i64]) -> Vec<u64> {
    debug_assert_eq!(ranks.len(), separators.len());
    let k = separators.len() + 1;
    let mut counts = vec![0u64; k];
    let mut start = 0usize;
    for j in 0..k {
        let end = if j + 1 < k { ranks[j] + 1 } else { values.len() };
        if j == 0 {
            // Everything in the first segment is ≤ s_1 ⇒ bucket 0.
            counts[0] += (end - start) as u64;
        } else {
            let lower = separators[j - 1];
            // Elements equal to `lower` belong with the first separator
            // of that value (possibly several buckets to the left when
            // separators repeat).
            let eq_bucket = separators.partition_point(|&s| s < lower);
            let eq: u64 = values[start..end].iter().map(|&v| u64::from(v == lower)).sum();
            counts[j] += (end - start) as u64 - eq;
            counts[eq_bucket] += eq;
        }
        start = end;
    }
    debug_assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
    counts
}

/// Min and max of a slice partitioned by [`select_partition`]: the
/// minimum lives in the first segment and the maximum in the last, so
/// only ~`2n/k` elements are scanned.
pub fn min_max_partitioned(values: &[i64], ranks: &[usize]) -> (i64, i64) {
    assert!(!values.is_empty(), "min_max of an empty value set");
    let first_end = ranks.first().map_or(values.len(), |&r| r + 1);
    let last_start = ranks.last().map_or(0, |&r| r + 1);
    let (lo, _) = min_max_chunk(&values[..first_end]);
    // The last segment can be empty when k > n pushes every rank to the
    // final element; the max then sits at the last rank itself.
    let hi = if last_start < values.len() {
        min_max_chunk(&values[last_start..]).1
    } else {
        values[*ranks.last().expect("k > 1 when last segment is empty")]
    };
    (lo, hi)
}

fn count_chunk(values: &[i64], separators: &[i64]) -> Vec<u64> {
    let mut counts = vec![0u64; separators.len() + 1];
    for &v in values {
        // First bucket whose separator is ≥ v — the domain rule
        // `B_j = (s_{j-1}, s_j]`, exactly as `bucket_of` resolves it.
        counts[separators.partition_point(|&s| s < v)] += 1;
    }
    counts
}

/// Smallest and largest element of a non-empty, arbitrarily ordered
/// slice (chunk-parallel for large inputs; min/max are associative and
/// commutative, so the result is schedule-independent).
pub fn min_max(values: &[i64]) -> (i64, i64) {
    assert!(!values.is_empty(), "min_max of an empty value set");
    let threads = parallel::num_threads();
    if threads <= 1 || values.len() < PAR_COUNT_MIN {
        return min_max_chunk(values);
    }
    parallel::par_chunks_map(threads, values, threads, min_max_chunk)
        .into_iter()
        .reduce(|(lo_a, hi_a), (lo_b, hi_b)| (lo_a.min(lo_b), hi_a.max(hi_b)))
        .expect("non-empty input yields at least one chunk")
}

fn min_max_chunk(values: &[i64]) -> (i64, i64) {
    // Eight independent accumulator lanes break the fold's loop-carried
    // dependency, letting the compiler vectorize/pipeline the scan —
    // this runs once over the full column on the radix route, so the
    // scalar chain's ~4× penalty is measurable at bench scale.
    let mut lo_lanes = [i64::MAX; 8];
    let mut hi_lanes = [i64::MIN; 8];
    let mut chunks = values.chunks_exact(8);
    for chunk in &mut chunks {
        for i in 0..8 {
            lo_lanes[i] = lo_lanes[i].min(chunk[i]);
            hi_lanes[i] = hi_lanes[i].max(chunk[i]);
        }
    }
    let (mut lo, mut hi) =
        chunks.remainder().iter().fold((i64::MAX, i64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    for i in 0..8 {
        lo = lo.min(lo_lanes[i]);
        hi = hi.max(hi_lanes[i]);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_reference(values: &[i64], k: usize) -> Vec<i64> {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        separator_ranks(sorted.len(), k).iter().map(|&r| sorted[r]).collect()
    }

    /// Deterministic pseudo-random multiset with heavy duplicates.
    fn noisy(n: usize, domain: u64, seed: u64) -> Vec<i64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % domain) as i64 - (domain / 2) as i64
            })
            .collect()
    }

    #[test]
    fn ranks_match_from_sorted_rule() {
        // from_sorted reads rank ⌈j·n/k⌉ (1-based); we use the 0-based twin.
        assert_eq!(separator_ranks(12, 4), vec![2, 5, 8]); // ceil(12/4)=3, 6, 9 → 0-based
        assert_eq!(separator_ranks(10, 3), vec![3, 6]); // ceil(10/3)=4, ceil(20/3)=7 → 0-based 3, 6
        assert_eq!(separator_ranks(2, 5), vec![0, 0, 1, 1]); // k > n repeats ranks
        assert_eq!(separator_ranks(5, 1), Vec::<usize>::new());
    }

    #[test]
    fn selection_equals_sorting_on_varied_inputs() {
        for (n, domain, k) in [
            (1usize, 10u64, 4usize),
            (7, 3, 3),
            (100, 5, 10),    // massive duplication
            (1000, 1000, 7), // mostly distinct
            (5000, 40, 600), // k close to n with duplicates
            (20_000, 997, 50),
        ] {
            let data = noisy(n, domain, 0x5EED + n as u64);
            let mut work = data.clone();
            let got = select_separators(&mut work, k);
            assert_eq!(got, sorted_reference(&data, k), "n={n} domain={domain} k={k}");
            // The partial reorder is still a permutation of the input.
            let mut a = work;
            let mut b = data;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn unsorted_counts_equal_sorted_counts() {
        for (n, domain) in [(1usize, 5u64), (100, 7), (3000, 500), (70_000, 50)] {
            let data = noisy(n, domain, 0xC0FFEE + n as u64);
            let mut sorted = data.clone();
            sorted.sort_unstable();
            for k in [1usize, 2, 13, 128] {
                let seps = sorted_reference(&data, k);
                assert_eq!(
                    bucket_counts_unsorted(&data, &seps),
                    super::super::bucket_counts(&sorted, &seps),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn partitioned_counts_and_min_max_match_sorted_reference() {
        for (n, domain, k) in [
            (1usize, 5u64, 3usize),
            (2, 2, 7),    // k > n: repeated ranks, empty last segment
            (100, 3, 10), // separators repeat heavily
            (3000, 500, 13),
            (20_000, 37, 600), // many elements equal to their separators
        ] {
            let data = noisy(n, domain, 0xBEEF + n as u64 + k as u64);
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let mut work = data.clone();
            let (ranks, seps) = select_partition(&mut work, k);
            assert_eq!(seps, sorted_reference(&data, k), "n={n} k={k}");
            assert_eq!(
                bucket_counts_partitioned(&work, &ranks, &seps),
                super::super::bucket_counts(&sorted, &seps),
                "n={n} domain={domain} k={k}"
            );
            assert_eq!(
                min_max_partitioned(&work, &ranks),
                (sorted[0], sorted[n - 1]),
                "n={n} k={k}"
            );
        }
    }

    #[test]
    fn min_max_matches_sort() {
        for n in [1usize, 2, 999, 100_000] {
            let data = noisy(n, 1_000_000, n as u64);
            let (lo, hi) = min_max(&data);
            assert_eq!(lo, *data.iter().min().unwrap());
            assert_eq!(hi, *data.iter().max().unwrap());
        }
    }

    #[test]
    fn profitability_routing_boundaries() {
        assert!(!selection_profitable(100, 10), "small inputs sort");
        assert!(selection_profitable(SELECTION_MIN_N, 10));
        assert!(!selection_profitable(SELECTION_MIN_N, 1), "single bucket never selects");
        // 600 buckets want n ≥ 8·599.
        assert!(!selection_profitable(4000, 600));
        assert!(selection_profitable(10_000, 600));
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn empty_input_rejected() {
        let _ = select_separators(&mut [], 4);
    }
}
