//! Radix-count rank resolution: the order statistics (and their
//! `count_le`) of an unsorted multiset in O(n) counting passes.
//!
//! Equi-height construction needs exactly two things from the data: the
//! values at the `k−1` separator ranks, and for each such value the
//! global count of elements `≤` it (bucket counts are consecutive
//! differences of those counts). Comparison-based selection answers this
//! in O(n log k), but a counting argument does better: one pass
//! histograms the values into at most `2^RADIX_BITS` equal-width slices
//! of `[min, max]`, prefix sums locate the slice every target rank falls
//! in, and only the slices that actually contain a rank are gathered and
//! resolved further (small slices by sorting, oversized ones by
//! recursing with a narrower value range — the span shrinks by
//! `RADIX_BITS` bits per level, bounding the depth at ⌈64/RADIX_BITS⌉).
//! Everything outside those slices is never touched again, so the total
//! is ~3 linear passes plus work proportional to the gathered residue.
//!
//! When a (sub)range is narrow enough for one counter per value
//! (`shift == 0`, granted up to `2^DIRECT_EXACT_BITS` counters — u32
//! counters when `n` fits, halving the footprint), the counting
//! histogram *is* the exact value histogram and every rank resolves by
//! walking the running sum alone — duplicate-heavy columns, the paper's
//! main concern, finish in exactly two passes with no gather at all.
//!
//! ## Skew-aware slice refinement
//!
//! On skewed (Zipf-like) columns the quantile ranks land in the *heavy*
//! slices by construction, so the gathered residue can approach the
//! whole column and the route degrades toward the sort path. When the
//! rank-bearing slices that are big enough to recurse jointly hold a
//! large share of the level ([`REFINE_RESIDUE_DIV`]), a second,
//! *combined* counting pass refines all of them at once at a shift
//! [`RADIX_BITS`] narrower — and because the per-slice span is already
//! ≤ `2^shift`, that refinement usually reaches the exact
//! (one-counter-per-value) regime, resolving the heavy ranks from
//! prefix sums with **no gather at all**. Only rank-bearing sub-slices
//! of the refined blocks (plus the untouched light slices) are gathered.
//! The refinement fan-out and the residue that survives it are surfaced
//! as `radix.slices_split` / `radix.residue_tuples` counters.
//!
//! ## Scratch reuse
//!
//! Each recursion level needs a counter array, prefix sums, slice→slot
//! maps, and gather buffers. A [`Scratch`] owns one [`LevelScratch`] per
//! possible level and is threaded through the recursion
//! (`split_first_mut` hands the current level its buffers and passes the
//! deeper ones down), so a resolver call — and every call that reuses
//! the same `Scratch` — performs no steady-state allocation: buffers are
//! `clear()`ed (a memset for the counters) rather than reallocated, and
//! gather buffers return to a pool keeping their capacity.
//!
//! The counting pass is chunk-parallel with a sequential reduce and the
//! per-slice resolutions fan out over
//! [`samplehist_parallel::par_map_mut_threads`], so results are
//! bit-identical at any thread count.

use samplehist_parallel as parallel;

use super::selection;

/// Slice-index width per recursion level (2^16 = 65536 counters, 512 KB:
/// L2-resident, and narrow enough that a slice of a 10⁷-element column
/// holds only ~150 elements — the gathered residue rounds to nothing).
const RADIX_BITS: u32 = 16;

/// Spans up to 2^EXACT_BITS get one counter per value (shift == 0), so
/// every rank resolves from prefix sums with no gather pass. Worth 4×
/// the counter memory of the sliced path: on skewed data the quantile
/// ranks sit in heavy-mass slices, so the gather would touch most of
/// the column. This bar also decides when a *refined* block reaches the
/// exact regime (`sub_shift == 0`).
const EXACT_BITS: u32 = RADIX_BITS + 2;

/// A level whose whole span fits 2^DIRECT_EXACT_BITS counters skips
/// slicing entirely and counts one counter per value in a single pass —
/// no second refinement pass, no gather. Same memory ceiling as the
/// refinement budget ([`MAX_REFINE_COUNTERS`]), and the counters are
/// u32 whenever `n` fits, halving the footprint (2^21 × 4 B = 8 MB).
/// Realistic columns (e.g. n=10⁷ over a 10⁶ domain) resolve here in
/// two linear passes total.
const DIRECT_EXACT_BITS: u32 = 21;

/// Gathered slices at least this large recurse instead of sorting; the
/// same bar marks a rank-bearing slice as a refinement candidate.
const RECURSE_MIN: usize = 1 << 13;

/// Value arrays shorter than this are counted serially.
const PAR_COUNT_MIN: usize = 1 << 16;

/// Refinement fires when the candidate slices jointly hold at least
/// 1/REFINE_RESIDUE_DIV of the level's input — below that, the extra
/// counting pass costs more than the gather it avoids.
const REFINE_RESIDUE_DIV: usize = 8;

/// Cap on second-level refinement counters per level (2^21 × 8 B =
/// 16 MB). When the candidates would exceed it, the heaviest slices
/// keep their blocks and the rest fall back to gather/recurse.
const MAX_REFINE_COUNTERS: usize = 1 << 21;

/// Upper bound on recursion depth: the span shrinks by ≥ `RADIX_BITS`
/// bits per level (64 → ≤48 → ≤32 → ≤16, which is exact), so four
/// levels always suffice; one spare absorbs future knob changes.
const MAX_LEVELS: usize = 5;

/// `slot_of` tag bit: the slice was refined (low bits = block index)
/// rather than assigned a gather job.
const REFINED_TAG: u32 = 1 << 31;

/// Reusable per-level buffers for [`resolve_ranks_with`]: counter and
/// prefix arrays, the slice→slot maps, and a pool of gather buffers.
/// One `Scratch` serves arbitrarily many resolver calls; within a call
/// it is threaded through the recursion so no level allocates in steady
/// state.
pub(super) struct Scratch {
    levels: Vec<LevelScratch>,
}

impl Scratch {
    /// An empty scratch; buffers grow on first use and persist.
    pub(super) fn new() -> Self {
        Scratch { levels: Vec::new() }
    }
}

#[derive(Default)]
struct LevelScratch {
    /// First-pass slice counts, then reused as-is for prefix walking.
    counts: Vec<u64>,
    /// Narrow counters for the direct-exact path (`shift == 0`,
    /// `n < u32::MAX`): half the cache footprint of `counts`.
    counts32: Vec<u32>,
    /// Exclusive prefix sums over `counts` (`slices + 1` entries).
    prefix: Vec<u64>,
    /// Per slice: `u32::MAX` untouched, `REFINED_TAG | block` refined,
    /// otherwise a gather-job index.
    slot_of: Vec<u32>,
    /// Refinement counters, `blocks × sub_width`, block-major.
    sub_counts: Vec<u64>,
    /// Per refined sub-slice: gather-job index or `u32::MAX`.
    sub_slot: Vec<u32>,
    /// Pool of gather buffers (capacity preserved across calls).
    buffers: Vec<Vec<i64>>,
}

fn fresh_levels() -> Vec<LevelScratch> {
    (0..MAX_LEVELS).map(|_| LevelScratch::default()).collect()
}

/// Resolution of a batch of rank queries against one multiset.
#[derive(Debug)]
pub(super) struct RankResolution {
    /// Per requested rank, in request order: the value at that rank of
    /// the sorted multiset and the global `count_le` of that value.
    pub entries: Vec<(i64, u64)>,
    /// Smallest element (free by-product of the range pass).
    pub min: i64,
    /// Largest element.
    pub max: i64,
}

/// Resolve the values (and their global `count_le`) at the given
/// ascending 0-based `ranks` of unsorted `values`, with the default
/// thread budget and a throwaway scratch.
///
/// # Panics
/// If `values` is empty (ranks may be empty; they must be ascending and
/// in range, which debug asserts check).
#[cfg_attr(not(test), allow(dead_code))]
pub(super) fn resolve_ranks(values: &[i64], ranks: &[usize]) -> RankResolution {
    resolve_ranks_threads(parallel::num_threads(), values, ranks)
}

/// [`resolve_ranks`] with an explicit thread count.
pub(super) fn resolve_ranks_threads(
    threads: usize,
    values: &[i64],
    ranks: &[usize],
) -> RankResolution {
    let mut scratch = Scratch::new();
    resolve_ranks_with(threads, values, ranks, &mut scratch)
}

/// [`resolve_ranks`] with an explicit thread count and a caller-held
/// [`Scratch`] — repeated calls reuse every internal buffer.
pub(super) fn resolve_ranks_with(
    threads: usize,
    values: &[i64],
    ranks: &[usize],
    scratch: &mut Scratch,
) -> RankResolution {
    assert!(!values.is_empty(), "cannot resolve ranks of an empty value set");
    debug_assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "ranks must be ascending");
    debug_assert!(ranks.iter().all(|&r| r < values.len()), "ranks must be in range");
    let mut span = samplehist_obs::global().span("radix.resolve");
    span.field("n", values.len());
    span.field("ranks", ranks.len());
    let (min, max) = selection::min_max(values);
    if scratch.levels.len() < MAX_LEVELS {
        scratch.levels.resize_with(MAX_LEVELS, LevelScratch::default);
    }
    let entries = resolve_in_range(values, ranks, min, max, threads, &mut scratch.levels);
    span.field("span_bits", u64::BITS - max.abs_diff(min).leading_zeros());
    span.finish();
    RankResolution { entries, min, max }
}

/// A rank-bearing value range whose elements must be gathered: either a
/// whole light slice or one rank-bearing sub-slice of a refined block.
struct GatherJob {
    /// First slot of the output array this job fills (its ranks are
    /// consecutive in request order).
    out_start: usize,
    /// Global count of elements strictly below this job's value range;
    /// rebases the job-local `count_le`.
    base: u64,
    /// Ranks local to the job's value range, ascending.
    locals: Vec<usize>,
    /// Gathered elements (filled by the gather pass; the buffer comes
    /// from and returns to the level's pool).
    elems: Vec<i64>,
}

/// Recursive core: `values` are all within `[min, max]`; `levels` hands
/// this level its scratch buffers and the deeper ones to recursion.
fn resolve_in_range(
    values: &[i64],
    ranks: &[usize],
    min: i64,
    max: i64,
    threads: usize,
    levels: &mut [LevelScratch],
) -> Vec<(i64, u64)> {
    if ranks.is_empty() {
        return Vec::new();
    }
    if min == max {
        return vec![(min, values.len() as u64); ranks.len()];
    }
    let Some((level, deeper)) = levels.split_first_mut() else {
        // Unreachable with MAX_LEVELS sized to the span shrinkage, but
        // a fresh set keeps the resolver correct if knobs ever change.
        return resolve_in_range(values, ranks, min, max, threads, &mut fresh_levels());
    };
    let recorder = samplehist_obs::global();
    recorder.counter("radix.levels", 1);
    let span = max.abs_diff(min);
    let bits = u64::BITS - span.leading_zeros();
    let shift = if bits <= DIRECT_EXACT_BITS { 0 } else { bits - RADIX_BITS };
    let slices = ((span >> shift) + 1) as usize;

    if shift == 0 {
        // One counter per distinct value: a single counting pass and the
        // ranks resolve by walking the running sum — no prefix array, no
        // gather. u32 counters whenever n fits (the common case): half
        // the cache footprint of the u64 path, which matters at up to
        // 2^DIRECT_EXACT_BITS counters.
        recorder.counter("radix.exact_levels", 1);
        return if values.len() < u32::MAX as usize {
            count_exact32_into(values, min, slices, threads, &mut level.counts32);
            resolve_exact(ranks, min, &level.counts32)
        } else {
            count_slices_into(values, min, 0, slices, threads, &mut level.counts);
            resolve_exact(ranks, min, &level.counts)
        };
    }

    // Counting pass (chunk-parallel, reduced in chunk order).
    count_slices_into(values, min, shift, slices, threads, &mut level.counts);
    // Exclusive prefix sums: slice s spans sorted positions
    // prefix[s] .. prefix[s] + counts[s].
    level.prefix.clear();
    level.prefix.reserve(slices + 1);
    let mut acc = 0u64;
    for &c in &level.counts {
        level.prefix.push(acc);
        acc += c;
    }
    level.prefix.push(acc);

    // Group the (ascending) ranks by the slice they fall in.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut s = 0usize;
    for &r in ranks {
        while level.prefix[s + 1] <= r as u64 {
            s += 1;
        }
        let local = r - level.prefix[s] as usize;
        match groups.last_mut() {
            Some((slice, locals)) if *slice == s => locals.push(local),
            _ => groups.push((s, vec![local])),
        }
    }

    // Skew refinement decision: rank-bearing slices big enough to
    // recurse would each cost a gather plus another full pass over
    // their elements. When they jointly hold a large share of the
    // level, one combined second-level counting pass resolves them all
    // at a narrower shift first — which on duplicate-heavy columns is
    // usually the exact regime (sub_shift == 0), eliminating their
    // gather entirely.
    let sub_shift = if shift <= EXACT_BITS { 0 } else { shift - RADIX_BITS };
    let sub_width = 1usize << (shift - sub_shift);
    let heavy_mass: u64 = groups
        .iter()
        .map(|&(slice, _)| level.counts[slice])
        .filter(|&c| c as usize >= RECURSE_MIN)
        .sum();
    let refine = heavy_mass > 0 && heavy_mass as usize * REFINE_RESIDUE_DIV >= values.len();

    // Refined group indices, ascending; block b refines groups[refined[b]].
    // Once the heavy slices justify paying the second counting pass, it
    // covers *every* rank-bearing slice the counter budget allows (there
    // are at most k−1 of them) — at sub_shift == 0 that resolves the
    // light slices inline too, making the whole level gather-free.
    let mut refined: Vec<usize> = Vec::new();
    if refine {
        refined = (0..groups.len()).collect();
        let max_blocks = (MAX_REFINE_COUNTERS / sub_width).max(1);
        if refined.len() > max_blocks {
            // Counter budget: keep the heaviest slices (stable sort →
            // deterministic ties), leave the rest to gather/recurse.
            refined.sort_by_key(|&g| std::cmp::Reverse(level.counts[groups[g].0]));
            refined.truncate(max_blocks);
            refined.sort_unstable();
        }
    }
    let blocks = refined.len();

    level.slot_of.clear();
    level.slot_of.resize(slices, u32::MAX);
    if blocks > 0 {
        recorder.counter("radix.slices_split", blocks as u64);
        for (b, &g) in refined.iter().enumerate() {
            level.slot_of[groups[g].0] = REFINED_TAG | b as u32;
        }
        // Combined second-level counting pass over the whole level:
        // elements of refined slices tally into their block's counters.
        count_refined_into(
            values,
            min,
            shift,
            sub_shift,
            sub_width,
            &level.slot_of,
            threads,
            blocks * sub_width,
            &mut level.sub_counts,
        );
    }
    level.sub_slot.clear();
    level.sub_slot.resize(blocks * sub_width, u32::MAX);

    // Walk the groups in rank order, assembling the output skeleton:
    // refined blocks at sub_shift == 0 resolve inline from their
    // sub-prefix sums; everything else becomes a gather job addressed
    // through slot_of / sub_slot. `cursor` tracks the next output slot
    // since exact and gathered entries interleave.
    let mut out: Vec<(i64, u64)> = vec![(0, 0); ranks.len()];
    let mut jobs: Vec<GatherJob> = Vec::new();
    let mut cursor = 0usize;
    let mut next_refined = 0usize;
    let mut residue = 0u64;
    for (g, (slice, locals)) in groups.into_iter().enumerate() {
        if refined.get(next_refined) != Some(&g) {
            let expected = level.counts[slice] as usize;
            let rank_count = locals.len();
            residue += expected as u64;
            level.slot_of[slice] = jobs.len() as u32;
            jobs.push(GatherJob {
                out_start: cursor,
                base: level.prefix[slice],
                elems: take_buffer(&mut level.buffers, expected),
                locals,
            });
            cursor += rank_count;
            continue;
        }
        let block = next_refined;
        next_refined += 1;
        let base = level.prefix[slice];
        let lo = slice_lo(min, slice, shift);
        let sub_counts = &level.sub_counts[block * sub_width..(block + 1) * sub_width];
        debug_assert_eq!(sub_counts.iter().sum::<u64>(), level.counts[slice]);
        // Walk the block's implicit prefix sums and its ascending local
        // ranks together: `acc`/`end` bracket sub-slice `sub`.
        let mut sub = 0usize;
        let mut acc = 0u64;
        let mut end = sub_counts[0];
        let mut i = 0usize;
        while i < locals.len() {
            let r = locals[i] as u64;
            while end <= r {
                sub += 1;
                acc = end;
                end += sub_counts[sub];
            }
            if sub_shift == 0 {
                // One counter per value: the rank resolves exactly,
                // with no gather (the heavy-slice fast path).
                let value = lo.wrapping_add(sub as i64);
                out[cursor] = (value, base + end);
                cursor += 1;
                i += 1;
            } else {
                // Every local rank of this sub-slice joins one job.
                let mut j = i;
                while j < locals.len() && (locals[j] as u64) < end {
                    j += 1;
                }
                let expected = (end - acc) as usize;
                residue += expected as u64;
                level.sub_slot[block * sub_width + sub] = jobs.len() as u32;
                jobs.push(GatherJob {
                    out_start: cursor,
                    base: base + acc,
                    locals: locals[i..j].iter().map(|&l| l - acc as usize).collect(),
                    elems: take_buffer(&mut level.buffers, expected),
                });
                cursor += j - i;
                i = j;
            }
        }
    }
    debug_assert_eq!(cursor, ranks.len());
    if recorder.is_enabled() {
        // The residue — tuples gathered after refinement — is the
        // skew-sensitive cost of this route; surface it per level.
        recorder.counter("radix.slices_gathered", jobs.len() as u64);
        recorder.counter("radix.residue_tuples", residue);
    }

    // Gather pass: exact capacity was reserved from the counts above.
    if !jobs.is_empty() {
        for &v in values {
            let tag = level.slot_of[slice_of(v, min, shift)];
            if tag == u32::MAX {
                continue;
            }
            let job = if tag & REFINED_TAG == 0 {
                tag as usize
            } else {
                let block = (tag & !REFINED_TAG) as usize;
                let lo = slice_lo(min, slice_of(v, min, shift), shift);
                let sub = (v.abs_diff(lo) >> sub_shift) as usize;
                match level.sub_slot[block * sub_width + sub] {
                    u32::MAX => continue,
                    slot => slot as usize,
                }
            };
            jobs[job].elems.push(v);
        }
    }

    // Resolve each job independently (disjoint value ranges), then
    // rebase its local count_le with the precomputed base. Serially the
    // recursion reuses the deeper scratch levels; in parallel each job
    // runs single-threaded on its own fresh levels.
    let resolved: Vec<Vec<(i64, u64)>> = if threads <= 1 || jobs.len() <= 1 {
        jobs.iter_mut().map(|job| resolve_job(job, threads, deeper)).collect()
    } else {
        parallel::par_map_mut_threads(threads, &mut jobs, |job| {
            resolve_job(job, 1, &mut fresh_levels())
        })
    };
    for (job, local) in jobs.iter().zip(resolved) {
        for (i, (v, le)) in local.into_iter().enumerate() {
            out[job.out_start + i] = (v, job.base + le);
        }
    }
    for job in jobs {
        level.buffers.push(job.elems);
    }
    out
}

/// Resolve one gather job's local ranks against its gathered elements.
fn resolve_job(
    job: &mut GatherJob,
    threads: usize,
    deeper: &mut [LevelScratch],
) -> Vec<(i64, u64)> {
    if job.elems.len() >= RECURSE_MIN {
        // Recurse with the job's *actual* value range (tighter than the
        // slice bounds), shrinking the span per level.
        samplehist_obs::global().counter("radix.slices_recursed", 1);
        let (lo, hi) = selection::min_max(&job.elems);
        resolve_in_range(&job.elems, &job.locals, lo, hi, threads, deeper)
    } else {
        samplehist_obs::global().counter("radix.slices_sorted", 1);
        job.elems.sort_unstable();
        job.locals
            .iter()
            .map(|&r| {
                let v = job.elems[r];
                (v, job.elems.partition_point(|&x| x <= v) as u64)
            })
            .collect()
    }
}

/// Lower bound of slice `s`: `min + s·2^shift`. For any non-empty slice
/// the true bound is ≤ some element ≤ `i64::MAX`, so two's-complement
/// wrapping arithmetic reproduces it exactly even when the intermediate
/// shift leaves the signed range.
#[inline]
fn slice_lo(min: i64, s: usize, shift: u32) -> i64 {
    min.wrapping_add(((s as u64) << shift) as i64)
}

#[inline]
fn slice_of(v: i64, min: i64, shift: u32) -> usize {
    (v.abs_diff(min) >> shift) as usize
}

fn take_buffer(pool: &mut Vec<Vec<i64>>, expected: usize) -> Vec<i64> {
    let mut buf = pool.pop().unwrap_or_default();
    buf.clear();
    buf.reserve(expected);
    buf
}

/// Walk an exact (one counter per value) histogram and the ascending
/// `ranks` together: `le` is the running `count_le` through counter `s`.
fn resolve_exact<C: Copy + Into<u64>>(ranks: &[usize], min: i64, counts: &[C]) -> Vec<(i64, u64)> {
    let mut out = Vec::with_capacity(ranks.len());
    let mut s = 0usize;
    let mut le: u64 = counts[0].into();
    for &r in ranks {
        while le <= r as u64 {
            s += 1;
            le += counts[s].into();
        }
        // s < slices ≤ 2^DIRECT_EXACT_BITS, and min + s ≤ max: no overflow.
        out.push((min + s as i64, le));
    }
    out
}

/// Lanes per unrolled step of the counting kernels, matching
/// [`selection`]'s `min_max` accumulator width.
const COUNT_LANES: usize = 8;

/// Eight-lane unrolled tally with u32 counters: the slice-index math
/// (`abs_diff` — pure data-parallel arithmetic) is lifted into a
/// fixed-width lane loop the compiler can vectorize, leaving only the
/// scatter increments scalar. Same template as `selection::min_max`.
#[inline]
fn count_exact32_chunk(values: &[i64], min: i64, counts: &mut [u32]) {
    let mut lanes = [0usize; COUNT_LANES];
    let mut chunks = values.chunks_exact(COUNT_LANES);
    for chunk in &mut chunks {
        for i in 0..COUNT_LANES {
            lanes[i] = chunk[i].abs_diff(min) as usize;
        }
        for &lane in &lanes {
            counts[lane] += 1;
        }
    }
    for &v in chunks.remainder() {
        counts[v.abs_diff(min) as usize] += 1;
    }
}

/// Eight-lane unrolled tally with u64 counters and a shifted slice index;
/// see [`count_exact32_chunk`] for the kernel shape.
#[inline]
fn count_slices_chunk(values: &[i64], min: i64, shift: u32, counts: &mut [u64]) {
    let mut lanes = [0usize; COUNT_LANES];
    let mut chunks = values.chunks_exact(COUNT_LANES);
    for chunk in &mut chunks {
        for i in 0..COUNT_LANES {
            lanes[i] = slice_of(chunk[i], min, shift);
        }
        for &lane in &lanes {
            counts[lane] += 1;
        }
    }
    for &v in chunks.remainder() {
        counts[slice_of(v, min, shift)] += 1;
    }
}

/// Exact counting pass with u32 counters (`shift == 0`, `n < u32::MAX`).
fn count_exact32_into(values: &[i64], min: i64, slices: usize, threads: usize, out: &mut Vec<u32>) {
    samplehist_obs::global().counter("radix.count.kernel_lanes8", 1);
    out.clear();
    out.resize(slices, 0);
    if threads <= 1 || values.len() < PAR_COUNT_MIN {
        count_exact32_chunk(values, min, out);
        return;
    }
    let partials = parallel::par_chunks_map(threads, values, threads, |chunk: &[i64]| {
        let mut counts = vec![0u32; slices];
        count_exact32_chunk(chunk, min, &mut counts);
        counts
    });
    for partial in partials {
        for (acc, c) in out.iter_mut().zip(partial) {
            *acc += c;
        }
    }
}

fn count_slices_into(
    values: &[i64],
    min: i64,
    shift: u32,
    slices: usize,
    threads: usize,
    out: &mut Vec<u64>,
) {
    samplehist_obs::global().counter("radix.count.kernel_lanes8", 1);
    out.clear();
    out.resize(slices, 0);
    if threads <= 1 || values.len() < PAR_COUNT_MIN {
        count_slices_chunk(values, min, shift, out);
        return;
    }
    let partials = parallel::par_chunks_map(threads, values, threads, |chunk: &[i64]| {
        let mut counts = vec![0u64; slices];
        count_slices_chunk(chunk, min, shift, &mut counts);
        counts
    });
    for partial in partials {
        for (acc, c) in out.iter_mut().zip(partial) {
            *acc += c;
        }
    }
}

/// Second-level counting pass: elements whose slice carries a
/// `REFINED_TAG` tally into `out[block · sub_width + sub]`.
#[allow(clippy::too_many_arguments)]
fn count_refined_into(
    values: &[i64],
    min: i64,
    shift: u32,
    sub_shift: u32,
    sub_width: usize,
    slot_of: &[u32],
    threads: usize,
    counters: usize,
    out: &mut Vec<u64>,
) {
    let tally_one = |counts: &mut [u64], v: i64| {
        let s = slice_of(v, min, shift);
        let tag = slot_of[s];
        if tag != u32::MAX && tag & REFINED_TAG != 0 {
            let block = (tag & !REFINED_TAG) as usize;
            let sub = (v.abs_diff(slice_lo(min, s, shift)) >> sub_shift) as usize;
            counts[block * sub_width + sub] += 1;
        }
    };
    out.clear();
    out.resize(counters, 0);
    if threads <= 1 || values.len() < PAR_COUNT_MIN {
        for &v in values {
            tally_one(out, v);
        }
        return;
    }
    let partials = parallel::par_chunks_map(threads, values, threads, |chunk: &[i64]| {
        let mut counts = vec![0u64; counters];
        for &v in chunk {
            tally_one(&mut counts, v);
        }
        counts
    });
    for partial in partials {
        for (acc, c) in out.iter_mut().zip(partial) {
            *acc += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(values: &[i64], ranks: &[usize]) -> Vec<(i64, u64)> {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        ranks
            .iter()
            .map(|&r| {
                let v = sorted[r];
                (v, sorted.partition_point(|&x| x <= v) as u64)
            })
            .collect()
    }

    fn noisy(n: usize, domain: u64, seed: u64) -> Vec<i64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % domain) as i64 - (domain / 2) as i64
            })
            .collect()
    }

    fn spread_ranks(n: usize, k: usize) -> Vec<usize> {
        super::super::selection::separator_ranks(n, k)
    }

    /// Heavy runs (each ≥ RECURSE_MIN, triggering refinement) spread
    /// over `domain`, padded with a light noisy tail.
    fn skewed(domain: u64, heavy_runs: usize, seed: u64) -> Vec<i64> {
        let mut values = Vec::new();
        let mut x = seed | 1;
        for i in 0..heavy_runs {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % domain) as i64 - (domain / 2) as i64;
            values.resize(values.len() + RECURSE_MIN + 500 * i, v);
        }
        values.extend(noisy(2000, domain, seed ^ 0xFF));
        values
    }

    #[test]
    fn matches_sorted_reference_across_shapes() {
        for (n, domain, k) in [
            (1usize, 3u64, 2usize),
            (10, 4, 5),
            (1000, 7, 10),               // shift == 0 fast path (tiny span)
            (5000, 1 << 20, 64),         // direct-exact (bits ≤ DIRECT_EXACT_BITS)
            (5000, 1 << 28, 64),         // one radix level
            (20_000, u64::MAX / 2, 100), // wide span, recursion possible
            (50_000, 65, 600),           // heavy duplicates, many equal separators
        ] {
            let values = noisy(n, domain, 0xABCD + n as u64);
            let ranks = spread_ranks(n, k);
            let got = resolve_ranks(&values, &ranks);
            assert_eq!(got.entries, reference(&values, &ranks), "n={n} domain={domain} k={k}");
            assert_eq!(got.min, *values.iter().min().expect("non-empty"));
            assert_eq!(got.max, *values.iter().max().expect("non-empty"));
        }
    }

    #[test]
    fn recursion_path_matches_reference() {
        // All mass in one slice forces the recursive branch: a huge run
        // of one value plus a far outlier stretches the top-level range
        // so the run's slice exceeds RECURSE_MIN.
        let mut values = vec![42i64; RECURSE_MIN * 2];
        values.extend(noisy(RECURSE_MIN, 1000, 0x77));
        values.push(i64::MAX / 2);
        let ranks = spread_ranks(values.len(), 50);
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
    }

    #[test]
    fn refinement_exact_path_matches_reference() {
        // Domain ≤ 2^33 ⇒ top shift ≤ EXACT_BITS ⇒ sub_shift == 0: the
        // heavy slices refine straight to one-counter-per-value and all
        // their ranks resolve with no gather.
        for heavy_runs in [1usize, 3, 8] {
            let values = skewed(1 << 32, heavy_runs, 0xBEEF);
            for k in [2usize, 17, 128] {
                let ranks = spread_ranks(values.len(), k);
                let got = resolve_ranks(&values, &ranks);
                assert_eq!(got.entries, reference(&values, &ranks), "runs={heavy_runs} k={k}");
            }
        }
    }

    #[test]
    fn refinement_subgather_path_matches_reference() {
        // Domain ~2^46 ⇒ sub_shift > 0: refined blocks still gather
        // their rank-bearing sub-slices (much smaller than the slice).
        for heavy_runs in [1usize, 4] {
            let values = skewed(1 << 45, heavy_runs, 0xD00D);
            for k in [5usize, 64] {
                let ranks = spread_ranks(values.len(), k);
                let got = resolve_ranks(&values, &ranks);
                assert_eq!(got.entries, reference(&values, &ranks), "runs={heavy_runs} k={k}");
            }
        }
    }

    #[test]
    fn scratch_reuse_and_threads_are_byte_identical() {
        let mut scratch = Scratch::new();
        for seed in [0x1111u64, 0x2222, 0x3333] {
            let values = skewed(1 << 32, 4, seed);
            let ranks = spread_ranks(values.len(), 40);
            let expect = reference(&values, &ranks);
            for threads in [1usize, 4] {
                let got = resolve_ranks_with(threads, &values, &ranks, &mut scratch);
                assert_eq!(got.entries, expect, "seed={seed} threads={threads}");
            }
        }
    }

    #[test]
    fn refinement_reports_split_and_residue_counters() {
        use samplehist_obs::{PromSink, Recorder};
        use std::sync::Arc;
        // Process-global recorder: other tests in this binary may also
        // record, so assertions are lower bounds on our own traffic.
        let prom = Arc::new(PromSink::new());
        samplehist_obs::set_global(Recorder::with_sinks(vec![prom.clone()]));
        let values = skewed(1 << 32, 4, 0xCAFE);
        let ranks = spread_ranks(values.len(), 64);
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
        assert!(prom.counter_value("radix.slices_split").unwrap_or(0) >= 1, "slices_split");
        // At the exact-refine domain every rank-bearing slice resolves
        // inline, so nothing is gathered; the wide domain's sub-gather
        // path is what leaves a residue.
        let wide = skewed(1 << 45, 4, 0xCAFE);
        let wide_ranks = spread_ranks(wide.len(), 64);
        let got_wide = resolve_ranks(&wide, &wide_ranks);
        assert_eq!(got_wide.entries, reference(&wide, &wide_ranks));
        assert!(prom.counter_value("radix.residue_tuples").unwrap_or(0) >= 1, "residue_tuples");
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let values = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX];
        let ranks: Vec<usize> = (0..values.len()).collect();
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
        assert_eq!((got.min, got.max), (i64::MIN, i64::MAX));
    }

    #[test]
    fn extreme_span_with_heavy_runs_refines_without_overflow() {
        // Full i64 span + refinement-triggering heavy runs: exercises
        // slice_lo's wrapping arithmetic at both ends of the domain.
        let mut values = vec![i64::MIN; RECURSE_MIN * 2];
        values.extend(vec![i64::MAX; RECURSE_MIN * 2]);
        values.extend(noisy(4000, 1 << 40, 0x5EED));
        let ranks = spread_ranks(values.len(), 33);
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
    }

    #[test]
    fn repeated_ranks_allowed() {
        let values = noisy(500, 10, 0x11);
        let ranks = vec![0, 0, 250, 250, 499];
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn empty_values_rejected() {
        let _ = resolve_ranks(&[], &[0]);
    }

    /// A noisy multiset whose span is *exactly* `span`: both endpoints
    /// are planted so min/max (and therefore the level's bit width) are
    /// pinned, with the interior filled pseudo-randomly.
    fn pinned_span(n: usize, min: i64, span: u64, seed: u64) -> Vec<i64> {
        let mut values = noisy(n, span + 1, seed)
            .into_iter()
            .map(|v| min + (v + (span / 2) as i64))
            .collect::<Vec<_>>();
        values.push(min);
        values.push(min + span as i64);
        values
    }

    #[test]
    fn spans_at_the_direct_exact_boundary_match_reference() {
        // bits = DIRECT_EXACT_BITS exactly (largest direct-exact span),
        // one below, and one above (the smallest span that takes the
        // sliced radix path, shift = DIRECT_EXACT_BITS + 1 − RADIX_BITS).
        let at = (1u64 << DIRECT_EXACT_BITS) - 1;
        for (span, name) in [(at - 1, "below"), (at, "at"), (at + 1, "above")] {
            let values = pinned_span(20_000, -37, span, 0xB0DA + span);
            for k in [2usize, 33, 600] {
                let ranks = spread_ranks(values.len(), k);
                let got = resolve_ranks(&values, &ranks);
                assert_eq!(got.entries, reference(&values, &ranks), "{name} boundary, k={k}");
            }
        }
    }

    #[test]
    fn all_equal_input_matches_reference() {
        for n in [1usize, 7, RECURSE_MIN * 2] {
            let values = vec![-42i64; n];
            let ranks = spread_ranks(n, 16);
            let got = resolve_ranks(&values, &ranks);
            assert_eq!(got.entries, reference(&values, &ranks), "n={n}");
            assert_eq!((got.min, got.max), (-42, -42));
        }
    }

    #[test]
    fn more_buckets_than_values_matches_reference() {
        // k > n: separator_ranks repeats ranks; every value is a
        // separator (possibly several times over).
        let values = noisy(9, 1 << 30, 0x99);
        for k in [10usize, 64, 1000] {
            let ranks = spread_ranks(values.len(), k);
            assert!(ranks.len() >= values.len(), "k={k} must over-request");
            let got = resolve_ranks(&values, &ranks);
            assert_eq!(got.entries, reference(&values, &ranks), "k={k}");
        }
    }

    #[test]
    fn empty_rank_set_still_reports_min_max() {
        let values = noisy(1000, 1 << 24, 0xE);
        let got = resolve_ranks(&values, &[]);
        assert!(got.entries.is_empty());
        assert_eq!(got.min, *values.iter().min().expect("non-empty"));
        assert_eq!(got.max, *values.iter().max().expect("non-empty"));
    }

    #[test]
    fn i64_extreme_singletons_and_full_span_match_reference() {
        // All-equal at each extreme: the min == max early return must not
        // offset anything.
        for v in [i64::MIN, i64::MAX] {
            let values = vec![v; 100];
            let got = resolve_ranks(&values, &spread_ranks(100, 8));
            assert_eq!(got.entries, reference(&values, &spread_ranks(100, 8)), "v={v}");
        }
        // Both extremes with heavy runs: span (as u64) is u64::MAX, the
        // widest expressible level.
        let mut values = vec![i64::MIN; 5_000];
        values.extend(vec![i64::MAX; 5_000]);
        values.extend(noisy(5_000, u64::MAX / 4, 0xFE));
        let ranks = spread_ranks(values.len(), 77);
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
        assert_eq!((got.min, got.max), (i64::MIN, i64::MAX));
    }

    /// The same edge cases through the histogram-level radix route: each
    /// must be byte-identical to sort + `from_sorted`.
    #[test]
    fn edge_case_histograms_match_sort_route() {
        use super::super::equi_height::{ConstructionRoute, EquiHeightHistogram};
        let boundary_span = (1u64 << DIRECT_EXACT_BITS) - 1;
        let cases: Vec<(&str, Vec<i64>)> = vec![
            ("boundary span", pinned_span(10_000, -5, boundary_span, 0x10)),
            ("just above boundary", pinned_span(10_000, -5, boundary_span + 1, 0x11)),
            ("all equal", vec![13i64; 4_096]),
            ("k > n", noisy(5, 1 << 20, 0x12)),
            ("extremes", vec![i64::MIN, i64::MAX, 0, i64::MIN, i64::MAX]),
        ];
        for (name, data) in cases {
            let mut sorted = data.clone();
            sorted.sort_unstable();
            for k in [1usize, 3, 40] {
                let expect = EquiHeightHistogram::from_sorted(&sorted, k);
                let mut work = data.clone();
                let got = EquiHeightHistogram::from_unsorted_with_route_threads(
                    1,
                    &mut work,
                    k,
                    ConstructionRoute::Radix,
                );
                assert_eq!(got, expect, "{name}, k={k}");
            }
        }
    }
}
