//! Radix-count rank resolution: the order statistics (and their
//! `count_le`) of an unsorted multiset in O(n) counting passes.
//!
//! Equi-height construction needs exactly two things from the data: the
//! values at the `k−1` separator ranks, and for each such value the
//! global count of elements `≤` it (bucket counts are consecutive
//! differences of those counts). Comparison-based selection answers this
//! in O(n log k), but a counting argument does better: one pass
//! histograms the values into at most `2^RADIX_BITS` equal-width slices
//! of `[min, max]`, prefix sums locate the slice every target rank falls
//! in, and only the slices that actually contain a rank are gathered and
//! resolved further (small slices by sorting, oversized ones by
//! recursing with a narrower value range — the span shrinks by
//! `RADIX_BITS` bits per level, bounding the depth at ⌈64/RADIX_BITS⌉).
//! Everything outside those slices is never touched again, so the total
//! is ~3 linear passes plus work proportional to the gathered residue.
//!
//! When a (sub)range is narrow enough for one counter per value
//! (`shift == 0`, granted up to `2^EXACT_BITS` counters), the counting
//! histogram *is* the exact value histogram and every rank resolves by
//! prefix sums alone — duplicate-heavy columns, the paper's main
//! concern, finish in exactly two passes with no gather at all.
//!
//! The counting pass is chunk-parallel with a sequential reduce and the
//! per-slice resolutions fan out over [`samplehist_parallel::par_map`],
//! so results are bit-identical at any thread count.

use samplehist_parallel as parallel;

use super::selection;

/// Slice-index width per recursion level (2^16 = 65536 counters, 512 KB:
/// L2-resident, and narrow enough that a slice of a 10⁷-element column
/// holds only ~150 elements — the gathered residue rounds to nothing).
const RADIX_BITS: u32 = 16;

/// Spans up to 2^EXACT_BITS get one counter per value (shift == 0), so
/// every rank resolves from prefix sums with no gather pass. Worth 4×
/// the counter memory of the sliced path: on skewed data the quantile
/// ranks sit in heavy-mass slices, so the gather would touch most of
/// the column.
const EXACT_BITS: u32 = RADIX_BITS + 2;

/// Gathered slices at least this large recurse instead of sorting.
const RECURSE_MIN: usize = 1 << 13;

/// Value arrays shorter than this are counted serially.
const PAR_COUNT_MIN: usize = 1 << 16;

/// Resolution of a batch of rank queries against one multiset.
#[derive(Debug)]
pub(super) struct RankResolution {
    /// Per requested rank, in request order: the value at that rank of
    /// the sorted multiset and the global `count_le` of that value.
    pub entries: Vec<(i64, u64)>,
    /// Smallest element (free by-product of the range pass).
    pub min: i64,
    /// Largest element.
    pub max: i64,
}

/// Resolve the values (and their global `count_le`) at the given
/// ascending 0-based `ranks` of unsorted `values`.
///
/// # Panics
/// If `values` is empty (ranks may be empty; they must be ascending and
/// in range, which debug asserts check).
pub(super) fn resolve_ranks(values: &[i64], ranks: &[usize]) -> RankResolution {
    assert!(!values.is_empty(), "cannot resolve ranks of an empty value set");
    debug_assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "ranks must be ascending");
    debug_assert!(ranks.iter().all(|&r| r < values.len()), "ranks must be in range");
    let mut span = samplehist_obs::global().span("radix.resolve");
    span.field("n", values.len());
    span.field("ranks", ranks.len());
    let (min, max) = selection::min_max(values);
    let entries = resolve_in_range(values, ranks, min, max);
    span.field("span_bits", u64::BITS - max.abs_diff(min).leading_zeros());
    span.finish();
    RankResolution { entries, min, max }
}

/// Recursive core: `values` are all within `[min, max]`.
fn resolve_in_range(values: &[i64], ranks: &[usize], min: i64, max: i64) -> Vec<(i64, u64)> {
    if ranks.is_empty() {
        return Vec::new();
    }
    if min == max {
        return vec![(min, values.len() as u64); ranks.len()];
    }
    let recorder = samplehist_obs::global();
    recorder.counter("radix.levels", 1);
    let span = max.abs_diff(min);
    let bits = u64::BITS - span.leading_zeros();
    let shift = if bits <= EXACT_BITS { 0 } else { bits - RADIX_BITS };
    let slices = ((span >> shift) + 1) as usize;

    // Counting pass (chunk-parallel, reduced in chunk order).
    let counts = count_slices(values, min, shift, slices);
    // Exclusive prefix sums: slice s spans sorted positions
    // prefix[s] .. prefix[s] + counts[s].
    let mut prefix = Vec::with_capacity(slices + 1);
    let mut acc = 0u64;
    for &c in &counts {
        prefix.push(acc);
        acc += c;
    }
    prefix.push(acc);

    if shift == 0 {
        // One slice per distinct value: ranks resolve by prefix alone.
        recorder.counter("radix.exact_levels", 1);
        let mut out = Vec::with_capacity(ranks.len());
        let mut s = 0usize;
        for &r in ranks {
            while prefix[s + 1] <= r as u64 {
                s += 1;
            }
            let value = min + i64::try_from(s as u64).expect("span below shift-0 fits i64");
            out.push((value, prefix[s + 1]));
        }
        return out;
    }

    // Group the (ascending) ranks by the slice they fall in.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut s = 0usize;
    for &r in ranks {
        while prefix[s + 1] <= r as u64 {
            s += 1;
        }
        let local = r - prefix[s] as usize;
        match groups.last_mut() {
            Some((slice, locals)) if *slice == s => locals.push(local),
            _ => groups.push((s, vec![local])),
        }
    }

    // Gather only the interesting slices, exact capacity from the counts.
    let mut slot_of = vec![u32::MAX; slices];
    for (i, &(slice, _)) in groups.iter().enumerate() {
        slot_of[slice] = i as u32;
    }
    let mut gathered: Vec<Vec<i64>> =
        groups.iter().map(|&(slice, _)| Vec::with_capacity(counts[slice] as usize)).collect();
    for &v in values {
        let slot = slot_of[slice_of(v, min, shift)];
        if slot != u32::MAX {
            gathered[slot as usize].push(v);
        }
    }

    // Resolve each slice independently (they are disjoint value ranges),
    // then rebase local count_le to global with the slice prefix. Groups
    // are in rank order, so concatenation restores request order.
    let work: Vec<(usize, Vec<usize>, Vec<i64>)> = groups
        .into_iter()
        .zip(gathered)
        .map(|((slice, locals), elems)| (slice, locals, elems))
        .collect();
    if recorder.is_enabled() {
        // The gathered residue is the skew-sensitive cost of this route
        // (see ROADMAP on heavy Zipf slices) — surface it per level.
        recorder.counter("radix.slices_gathered", work.len() as u64);
        recorder
            .counter("radix.values_gathered", work.iter().map(|(_, _, e)| e.len() as u64).sum());
    }
    let resolved: Vec<Vec<(i64, u64)>> = parallel::par_map(&work, |(slice, locals, elems)| {
        let local = if elems.len() >= RECURSE_MIN {
            // Recurse with the slice's *actual* value range (tighter
            // than the slice bounds), shrinking the span per level.
            samplehist_obs::global().counter("radix.slices_recursed", 1);
            let (lo, hi) = selection::min_max(elems);
            resolve_in_range(elems, locals, lo, hi)
        } else {
            samplehist_obs::global().counter("radix.slices_sorted", 1);
            let mut sorted = elems.clone();
            sorted.sort_unstable();
            locals
                .iter()
                .map(|&r| {
                    let v = sorted[r];
                    (v, sorted.partition_point(|&x| x <= v) as u64)
                })
                .collect()
        };
        local.into_iter().map(|(v, le)| (v, prefix[*slice] + le)).collect()
    });
    resolved.into_iter().flatten().collect()
}

#[inline]
fn slice_of(v: i64, min: i64, shift: u32) -> usize {
    (v.abs_diff(min) >> shift) as usize
}

fn count_slices(values: &[i64], min: i64, shift: u32, slices: usize) -> Vec<u64> {
    let tally = |chunk: &[i64]| {
        let mut counts = vec![0u64; slices];
        for &v in chunk {
            counts[slice_of(v, min, shift)] += 1;
        }
        counts
    };
    let threads = parallel::num_threads();
    if threads <= 1 || values.len() < PAR_COUNT_MIN {
        return tally(values);
    }
    let partials = parallel::par_chunks_map(threads, values, threads, tally);
    let mut out = vec![0u64; slices];
    for partial in partials {
        for (acc, c) in out.iter_mut().zip(partial) {
            *acc += c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(values: &[i64], ranks: &[usize]) -> Vec<(i64, u64)> {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        ranks
            .iter()
            .map(|&r| {
                let v = sorted[r];
                (v, sorted.partition_point(|&x| x <= v) as u64)
            })
            .collect()
    }

    fn noisy(n: usize, domain: u64, seed: u64) -> Vec<i64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % domain) as i64 - (domain / 2) as i64
            })
            .collect()
    }

    fn spread_ranks(n: usize, k: usize) -> Vec<usize> {
        super::super::selection::separator_ranks(n, k)
    }

    #[test]
    fn matches_sorted_reference_across_shapes() {
        for (n, domain, k) in [
            (1usize, 3u64, 2usize),
            (10, 4, 5),
            (1000, 7, 10),               // shift == 0 fast path (tiny span)
            (5000, 1 << 20, 64),         // one radix level
            (20_000, u64::MAX / 2, 100), // wide span, recursion possible
            (50_000, 65, 600),           // heavy duplicates, many equal separators
        ] {
            let values = noisy(n, domain, 0xABCD + n as u64);
            let ranks = spread_ranks(n, k);
            let got = resolve_ranks(&values, &ranks);
            assert_eq!(got.entries, reference(&values, &ranks), "n={n} domain={domain} k={k}");
            assert_eq!(got.min, *values.iter().min().expect("non-empty"));
            assert_eq!(got.max, *values.iter().max().expect("non-empty"));
        }
    }

    #[test]
    fn recursion_path_matches_reference() {
        // All mass in one slice forces the recursive branch: a huge run
        // of one value plus a far outlier stretches the top-level range
        // so the run's slice exceeds RECURSE_MIN.
        let mut values = vec![42i64; RECURSE_MIN * 2];
        values.extend(noisy(RECURSE_MIN, 1000, 0x77));
        values.push(i64::MAX / 2);
        let ranks = spread_ranks(values.len(), 50);
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let values = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX];
        let ranks: Vec<usize> = (0..values.len()).collect();
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
        assert_eq!((got.min, got.max), (i64::MIN, i64::MAX));
    }

    #[test]
    fn repeated_ranks_allowed() {
        let values = noisy(500, 10, 0x11);
        let ranks = vec![0, 0, 250, 250, 499];
        let got = resolve_ranks(&values, &ranks);
        assert_eq!(got.entries, reference(&values, &ranks));
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn empty_values_rejected() {
        let _ = resolve_ranks(&[], &[0]);
    }
}
