//! Equi-width histograms — the classical baseline equi-height replaced.
//!
//! The paper takes equi-height as given ("commonly used in many
//! commercial optimizers"); this module implements the alternative it
//! displaced so the ablation benches can quantify *why*: equi-width
//! buckets assign equal domain ranges rather than equal tuple counts, so
//! skewed data piles most tuples into a few buckets and range-query
//! interpolation error explodes with the skew, while equi-height error
//! stays bounded by bucket mass (Theorem 1.1's `2n/k`).

/// An equi-width k-histogram: `k` buckets of equal domain width spanning
/// `[min, max]`, with exact per-bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiWidthHistogram {
    min: i64,
    max: i64,
    counts: Vec<u64>,
}

impl EquiWidthHistogram {
    /// Build from **sorted** data.
    ///
    /// Bucket `j` covers `[min + j·w, min + (j+1)·w)` with
    /// `w = (max − min + 1)/k` (the last bucket absorbs the rounding
    /// remainder and is closed at `max`).
    ///
    /// # Panics
    /// If the data is empty, unsorted, or `k == 0`.
    pub fn from_sorted(sorted: &[i64], k: usize) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!sorted.is_empty(), "cannot build a histogram of an empty value set");
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");

        let min = sorted[0];
        let max = *sorted.last().expect("non-empty");
        let mut counts = vec![0u64; k];
        for &v in sorted {
            counts[Self::bucket_index(min, max, k, v)] += 1;
        }
        Self { min, max, counts }
    }

    fn bucket_index(min: i64, max: i64, k: usize, v: i64) -> usize {
        debug_assert!(v >= min && v <= max);
        let span = (max as i128 - min as i128) + 1;
        let offset = v as i128 - min as i128;
        ((offset * k as i128) / span) as usize
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total tuples summarized.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Smallest / largest value covered.
    pub fn domain(&self) -> (i64, i64) {
        (self.min, self.max)
    }

    /// The inclusive domain interval of bucket `j`.
    pub fn bucket_bounds(&self, j: usize) -> (i64, i64) {
        let k = self.counts.len() as i128;
        let span = (self.max as i128 - self.min as i128) + 1;
        let lo = self.min as i128 + (span * j as i128).div_euclid(k);
        let hi = self.min as i128 + (span * (j as i128 + 1)).div_euclid(k) - 1;
        (lo as i64, hi as i64)
    }

    /// Estimated number of values `≤ t`, with uniform interpolation
    /// inside the bucket containing `t`.
    pub fn estimate_le(&self, t: i64) -> f64 {
        if t < self.min {
            return 0.0;
        }
        if t >= self.max {
            return self.total() as f64;
        }
        let j = Self::bucket_index(self.min, self.max, self.counts.len(), t);
        let below: u64 = self.counts[..j].iter().sum();
        let (lo, hi) = self.bucket_bounds(j);
        let fraction = if hi > lo { (t - lo + 1) as f64 / (hi - lo + 1) as f64 } else { 1.0 };
        below as f64 + fraction * self.counts[j] as f64
    }

    /// Estimated output size of the inclusive range `[x, y]`.
    pub fn estimate_range(&self, x: i64, y: i64) -> f64 {
        if x > y {
            return 0.0;
        }
        let lo = if x == i64::MIN { 0.0 } else { self.estimate_le(x - 1) };
        (self.estimate_le(y) - lo).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_even_buckets() {
        let data: Vec<i64> = (0..100).collect();
        let h = EquiWidthHistogram::from_sorted(&data, 10);
        assert_eq!(h.num_buckets(), 10);
        assert!(h.counts().iter().all(|&c| c == 10));
        assert_eq!(h.total(), 100);
        assert_eq!(h.domain(), (0, 99));
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        let data: Vec<i64> = (5..=27).collect();
        let h = EquiWidthHistogram::from_sorted(&data, 4);
        let mut expected_lo = 5i64;
        for j in 0..4 {
            let (lo, hi) = h.bucket_bounds(j);
            assert_eq!(lo, expected_lo, "bucket {j} starts where the last ended");
            assert!(hi >= lo);
            expected_lo = hi + 1;
        }
        assert_eq!(expected_lo, 28, "buckets cover exactly [5, 27]");
    }

    #[test]
    fn skew_piles_into_one_bucket() {
        // 90% of tuples at the bottom of a wide domain.
        let mut data = vec![0i64; 900];
        data.extend((1..=100).map(|i| i * 1000));
        data.sort_unstable();
        let h = EquiWidthHistogram::from_sorted(&data, 10);
        assert!(h.counts()[0] >= 900, "skew lands in bucket 0: {:?}", h.counts());
    }

    #[test]
    fn estimate_exact_on_uniform() {
        let data: Vec<i64> = (0..1000).collect();
        let h = EquiWidthHistogram::from_sorted(&data, 10);
        for t in [0i64, 99, 100, 555, 999] {
            let truth = (t + 1) as f64;
            assert!(
                (h.estimate_le(t) - truth).abs() < 1e-9,
                "t={t}: {} vs {truth}",
                h.estimate_le(t)
            );
        }
        assert!((h.estimate_range(100, 199) - 100.0).abs() < 1e-9);
        assert_eq!(h.estimate_range(10, 5), 0.0);
    }

    /// The ablation's premise: on skewed data the equi-width estimate of
    /// a head-range query is far worse than equi-height's.
    #[test]
    fn worse_than_equi_height_on_skew() {
        use crate::estimate::{evaluate_range_query, RangeEstimator};
        use crate::histogram::EquiHeightHistogram;
        let _ = RangeEstimator::new; // (symmetry with the equi-height path)

        // Zipf-ish: value v appears ~1/(v+1) times, values up to 100k.
        let mut data = Vec::new();
        for v in 0..1000i64 {
            let copies = (2000 / (v + 1)) as usize;
            data.extend(std::iter::repeat(v * 100).take(copies.max(1)));
        }
        data.sort_unstable();
        let k = 20;
        let eh = EquiHeightHistogram::from_sorted(&data, k);
        let ew = EquiWidthHistogram::from_sorted(&data, k);

        // A query inside the dense head.
        let (x, y) = (0i64, 500);
        let truth = crate::estimate::true_range_count(&data, x, y) as f64;
        let eh_err = evaluate_range_query(&eh, &data, x, y).absolute;
        let ew_err = (ew.estimate_range(x, y) - truth).abs();
        assert!(
            ew_err > 3.0 * eh_err.max(1.0),
            "equi-width err {ew_err} vs equi-height err {eh_err} (truth {truth})"
        );
    }

    #[test]
    fn single_value_domain() {
        let data = vec![7i64; 50];
        let h = EquiWidthHistogram::from_sorted(&data, 5);
        assert_eq!(h.total(), 50);
        assert_eq!(h.estimate_range(7, 7), 50.0);
        assert_eq!(h.estimate_range(8, 9), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn empty_rejected() {
        let _ = EquiWidthHistogram::from_sorted(&[], 4);
    }
}
