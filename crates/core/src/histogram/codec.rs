//! Compact binary persistence for histograms.
//!
//! A statistics subsystem stores each histogram in the catalog — SQL
//! Server 7.0 "uses one disk page to store a histogram for a column",
//! which is where the 600-bin figure in Section 7.1 comes from. This
//! codec reproduces that constraint: separators are delta-encoded and
//! counts raw-encoded as LEB128 varints with a zig-zag transform for the
//! signed deltas, so a 600-bucket histogram of a typical integer column
//! fits comfortably in one 8 KB page.
//!
//! Format (version 1):
//! ```text
//! [u8 version=1]
//! [varint k]
//! [varint n]
//! [zigzag varint min] [zigzag varint (max - min)]
//! [zigzag varint (s_1 - min)] [zigzag varint (s_2 - s_1)] … (k-1 deltas)
//! [varint count_1] … [varint count_k]
//! ```

use super::equi_height::EquiHeightHistogram;

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    UnexpectedEnd,
    /// First byte is not a known format version.
    UnknownVersion(u8),
    /// A varint ran past 10 bytes (not a valid encoding).
    MalformedVarint,
    /// Structure decoded but violates histogram invariants (e.g. counts
    /// don't sum to `n`, separators decrease).
    Inconsistent(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "input truncated"),
            CodecError::UnknownVersion(v) => write!(f, "unknown histogram format version {v}"),
            CodecError::MalformedVarint => write!(f, "malformed varint"),
            CodecError::Inconsistent(what) => write!(f, "inconsistent histogram: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

const VERSION: u8 = 1;

/// Serialize a histogram to its compact byte form.
pub fn encode(h: &EquiHeightHistogram) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 3 * h.num_buckets());
    out.push(VERSION);
    write_varint(&mut out, h.num_buckets() as u64);
    write_varint(&mut out, h.total());
    write_signed(&mut out, h.min_value());
    write_signed(&mut out, h.max_value() - h.min_value());
    let mut prev = h.min_value();
    for &s in h.separators() {
        write_signed(&mut out, s - prev);
        prev = s;
    }
    for &c in h.counts() {
        write_varint(&mut out, c);
    }
    out
}

/// Deserialize a histogram previously produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<EquiHeightHistogram, CodecError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let version = cursor.byte()?;
    if version != VERSION {
        return Err(CodecError::UnknownVersion(version));
    }
    let k = cursor.varint()? as usize;
    if k == 0 {
        return Err(CodecError::Inconsistent("zero buckets"));
    }
    let n = cursor.varint()?;
    let min = cursor.signed()?;
    let span = cursor.signed()?;
    if span < 0 {
        return Err(CodecError::Inconsistent("max below min"));
    }
    let max = min + span;

    let mut separators = Vec::with_capacity(k.saturating_sub(1));
    let mut prev = min;
    for _ in 0..k - 1 {
        let delta = cursor.signed()?;
        if delta < 0 {
            return Err(CodecError::Inconsistent("separators decrease"));
        }
        prev += delta;
        separators.push(prev);
    }
    if separators.last().is_some_and(|&s| s > max) {
        return Err(CodecError::Inconsistent("separator beyond max"));
    }

    let mut counts = Vec::with_capacity(k);
    let mut sum = 0u64;
    for _ in 0..k {
        let c = cursor.varint()?;
        sum = sum.checked_add(c).ok_or(CodecError::Inconsistent("count overflow"))?;
        counts.push(c);
    }
    if sum != n {
        return Err(CodecError::Inconsistent("counts do not sum to n"));
    }

    Ok(EquiHeightHistogram::from_parts(separators, counts, min, max))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.pos).ok_or(CodecError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        for shift in (0..=63).step_by(7) {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(CodecError::MalformedVarint);
            }
            value |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError::MalformedVarint)
    }

    fn signed(&mut self) -> Result<i64, CodecError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn write_signed(out: &mut Vec<u8>, v: i64) {
    // Zig-zag: small magnitudes (the common case for deltas) stay small.
    // wrapping_shl because v = i64::MIN must wrap, not trap.
    write_varint(out, (v.wrapping_shl(1) ^ (v >> 63)) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_histogram() -> EquiHeightHistogram {
        let data: Vec<i64> = (0..10_000).map(|i| i * 7 - 35_000).collect();
        EquiHeightHistogram::from_sorted(&data, 64)
    }

    #[test]
    fn round_trip_exact() {
        let h = sample_histogram();
        let bytes = encode(&h);
        let back = decode(&bytes).expect("valid encoding");
        assert_eq!(h, back);
    }

    #[test]
    fn six_hundred_bins_fit_in_a_page() {
        // The Section 7.1 constraint: a 600-bin histogram of an integer
        // column in one 8 KB page.
        let data: Vec<i64> = (0..2_000_000i64).map(|i| i * 3).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 600);
        let bytes = encode(&h);
        assert!(bytes.len() <= 8192, "600 bins took {} bytes", bytes.len());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_histogram());
        for cut in [0usize, 1, 2, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "decoding {} of {} bytes should fail",
                cut,
                bytes.len()
            );
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = encode(&sample_histogram());
        bytes[0] = 99;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownVersion(99)));
    }

    #[test]
    fn corrupted_counts_rejected() {
        let h = EquiHeightHistogram::from_parts(vec![5], vec![10, 10], 0, 9);
        let mut bytes = encode(&h);
        // Flip the final count varint (both counts are single bytes).
        let last = bytes.len() - 1;
        bytes[last] = bytes[last].wrapping_add(1);
        assert!(matches!(decode(&bytes), Err(CodecError::Inconsistent(_))));
    }

    #[test]
    fn error_display_forms() {
        assert_eq!(CodecError::UnexpectedEnd.to_string(), "input truncated");
        assert!(CodecError::UnknownVersion(3).to_string().contains('3'));
        assert!(CodecError::Inconsistent("x").to_string().contains('x'));
        assert_eq!(CodecError::MalformedVarint.to_string(), "malformed varint");
    }

    proptest! {
        /// Round trip for arbitrary valid histograms.
        #[test]
        fn round_trip_arbitrary(
            runs in prop::collection::vec((-1000i64..1000, 1usize..6), 1..50),
            k in 1usize..20,
        ) {
            let mut data: Vec<i64> = runs
                .into_iter()
                .flat_map(|(v, c)| std::iter::repeat(v).take(c))
                .collect();
            data.sort_unstable();
            let h = EquiHeightHistogram::from_sorted(&data, k);
            let back = decode(&encode(&h)).expect("round trip");
            prop_assert_eq!(h, back);
        }

        /// Arbitrary bytes never panic the decoder.
        #[test]
        fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode(&bytes);
        }

        /// Varint round trip.
        #[test]
        fn varint_round_trip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut c = Cursor { bytes: &buf, pos: 0 };
            prop_assert_eq!(c.varint().expect("valid"), v);
        }

        /// Zig-zag round trip.
        #[test]
        fn signed_round_trip(v in any::<i64>()) {
            let mut buf = Vec::new();
            write_signed(&mut buf, v);
            let mut c = Cursor { bytes: &buf, pos: 0 };
            prop_assert_eq!(c.signed().expect("valid"), v);
        }
    }
}
