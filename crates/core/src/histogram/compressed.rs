//! Compressed histograms — the "standard approach" of paper Section 5 for
//! duplicate-heavy columns.
//!
//! A value whose multiplicity exceeds the ideal bucket size `n/k` would
//! swallow one or more whole buckets of an equi-height histogram, turning
//! adjacent separators into copies of itself and making per-bucket error
//! ill-defined. Compressed histograms pull such **high-frequency values**
//! out into an exact value→count side table and build an ordinary
//! equi-height histogram over the residue with the remaining buckets.
//! Range and equality estimation then answer from both parts.

use samplehist_parallel as parallel;

use super::equi_height::EquiHeightHistogram;
use super::radix;
use crate::estimate::RangeEstimator;

/// Value arrays shorter than this verify heavy candidates serially.
const PAR_COUNT_MIN: usize = 1 << 16;

/// Probe size for [`CompressedRoute::Auto`]'s shape detection.
const ROUTE_PROBE: usize = 1024;

/// [`CompressedRoute::Auto`] falls back to the sorted builder when at
/// least this fraction of the probe belongs to heavy values.
const ROUTE_HEAVY_MASS: f64 = 0.5;

/// Which construction strategy the unsorted compressed builders use.
///
/// Both routes are **byte-identical** (property-tested); the choice is
/// purely about speed. The sort-free route (rank probing + sort-free
/// equi-height residual) wins on light-tailed shapes where the residual
/// is most of the column; when heavy values dominate, its probing and
/// filtering passes are overhead spent on tuples that end up in the
/// side table anyway, and the bench numbers favor plain sort +
/// [`CompressedHistogram::from_sorted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressedRoute {
    /// Probe the shape and pick a concrete route (the default).
    Auto,
    /// Rank probing + exact counting + sort-free equi-height residual.
    SortFree,
    /// Sort a copy of the input and run the sorted builder.
    Sorted,
}

impl CompressedRoute {
    /// Resolve `Auto` to a concrete route for this input: sample a
    /// strided probe of ≤ `ROUTE_PROBE` values, sort it, and measure
    /// the fraction of probe mass in values heavier than `m/k` — the
    /// probe-scaled image of the builder's own `n/k` threshold. Heavy
    /// mass ≥ `ROUTE_HEAVY_MASS` routes to [`CompressedRoute::Sorted`].
    ///
    /// Deterministic: the probe is strided, not sampled, so the same
    /// input always takes the same route.
    pub fn resolve(self, values: &[i64], k: usize) -> CompressedRoute {
        match self {
            CompressedRoute::Auto => {
                if heavy_probe_mass(values, k) >= ROUTE_HEAVY_MASS {
                    CompressedRoute::Sorted
                } else {
                    CompressedRoute::SortFree
                }
            }
            concrete => concrete,
        }
    }
}

/// Estimated fraction of the column carried by heavy values, measured on
/// a sorted strided probe (see [`CompressedRoute::resolve`]).
fn heavy_probe_mass(values: &[i64], k: usize) -> f64 {
    let stride = (values.len() / ROUTE_PROBE).max(1);
    let mut probe: Vec<i64> = values.iter().copied().step_by(stride).collect();
    probe.sort_unstable();
    let m = probe.len();
    let threshold = m as f64 / k as f64;
    let mut heavy = 0usize;
    let mut i = 0usize;
    while i < m {
        let start = i;
        while i < m && probe[i] == probe[start] {
            i += 1;
        }
        if (i - start) as f64 > threshold {
            heavy += i - start;
        }
    }
    heavy as f64 / m as f64
}

/// A compressed k-histogram: exact singleton buckets for values with
/// multiplicity > `n/k`, an equi-height histogram over everything else.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedHistogram {
    /// `(value, exact count)` for each high-frequency value, ascending.
    high_freq: Vec<(i64, u64)>,
    /// Equi-height histogram of the residual multiset (`None` when the
    /// high-frequency values cover the whole column).
    residual: Option<EquiHeightHistogram>,
    /// Total tuples summarized.
    total: u64,
}

impl CompressedHistogram {
    /// Build from **sorted** data with a budget of `k` buckets total.
    ///
    /// Values with multiplicity strictly greater than `n/k` become
    /// singleton buckets (at most `k − 1` of them, so the residual always
    /// keeps at least one bucket); the residual gets the remaining
    /// `k − #high` buckets.
    ///
    /// # Panics
    /// If `sorted` is empty, unsorted, or `k == 0`.
    pub fn from_sorted(sorted: &[i64], k: usize) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!sorted.is_empty(), "cannot build a histogram of an empty value set");
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");

        let n = sorted.len() as u64;
        let threshold = n as f64 / k as f64;

        // Collect runs above the threshold. There can be at most k−1 of
        // them: k values each with multiplicity strictly above n/k would
        // together exceed n. So the residual is always left ≥ 1 bucket.
        let mut runs: Vec<(i64, u64)> = Vec::new();
        let mut i = 0usize;
        while i < sorted.len() {
            let v = sorted[i];
            let start = i;
            while i < sorted.len() && sorted[i] == v {
                i += 1;
            }
            let c = (i - start) as u64;
            if c as f64 > threshold {
                runs.push((v, c));
            }
        }
        debug_assert!(runs.len() < k, "pigeonhole: at most k-1 values exceed n/k");

        let residual_k = k - runs.len();
        let residual_values: Vec<i64> = if runs.is_empty() {
            sorted.to_vec()
        } else {
            sorted
                .iter()
                .copied()
                .filter(|v| runs.binary_search_by_key(v, |&(hv, _)| hv).is_err())
                .collect()
        };
        let residual = (!residual_values.is_empty())
            .then(|| EquiHeightHistogram::from_sorted(&residual_values, residual_k));

        Self { high_freq: runs, residual, total: n }
    }

    /// Build an **approximate** compressed histogram from a sorted random
    /// sample of a population with `population_total` tuples: values
    /// whose *sample* multiplicity exceeds `r/k` become heavy (their
    /// counts scaled by `n/r`), the residue gets an equi-height histogram
    /// scaled the same way. This is what a sampling-based `ANALYZE`
    /// stores when asked for a compressed histogram.
    ///
    /// # Panics
    /// If the sample is empty, not sorted, `k == 0`, or the population is
    /// smaller than the sample.
    pub fn from_sorted_sample(sample: &[i64], k: usize, population_total: u64) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!sample.is_empty(), "cannot build a histogram from an empty sample");
        assert!(
            population_total >= sample.len() as u64,
            "population ({population_total}) smaller than sample ({})",
            sample.len()
        );
        debug_assert!(sample.windows(2).all(|w| w[0] <= w[1]), "sample must be sorted");

        let r = sample.len() as u64;
        let scale = population_total as f64 / r as f64;
        let threshold = r as f64 / k as f64;

        let mut runs: Vec<(i64, u64)> = Vec::new();
        let mut i = 0usize;
        while i < sample.len() {
            let v = sample[i];
            let start = i;
            while i < sample.len() && sample[i] == v {
                i += 1;
            }
            let c = (i - start) as u64;
            if c as f64 > threshold {
                runs.push((v, (c as f64 * scale).round() as u64));
            }
        }
        debug_assert!(runs.len() < k, "pigeonhole: at most k-1 values exceed r/k");

        let residual_k = k - runs.len();
        let residual_sample: Vec<i64> = if runs.is_empty() {
            sample.to_vec()
        } else {
            sample
                .iter()
                .copied()
                .filter(|v| runs.binary_search_by_key(v, |&(hv, _)| hv).is_err())
                .collect()
        };
        let heavy_total: u64 = runs.iter().map(|&(_, c)| c).sum();
        let residual_total = population_total.saturating_sub(heavy_total).max(
            residual_sample.len() as u64, // never claim fewer than observed
        );
        let residual = (!residual_sample.is_empty()).then(|| {
            EquiHeightHistogram::from_sorted_sample(&residual_sample, residual_k, residual_total)
        });

        Self { high_freq: runs, residual, total: population_total }
    }

    /// Build from **unsorted** data with a budget of `k` buckets total —
    /// byte-identical to [`Self::from_sorted`] of the sorted data
    /// (property-tested), routed by shape ([`CompressedRoute::Auto`]).
    ///
    /// On light-tailed shapes the heavy values are found by **rank
    /// probing** (see `find_heavy_values`) and verified with one exact
    /// counting pass; the residual multiset is filtered unsorted and
    /// handed to [`EquiHeightHistogram::from_unsorted_threads`], which
    /// resolves its separator ranks through the selection/radix resolver.
    /// Total cost: ~5 linear passes, no `O(n log n)` anywhere. When a
    /// shape probe shows heavy values dominating the column, the builder
    /// falls back to sort + [`Self::from_sorted`] instead (see
    /// [`CompressedRoute`]).
    ///
    /// # Panics
    /// If `values` is empty or `k == 0`.
    pub fn from_unsorted(values: &[i64], k: usize) -> Self {
        Self::from_unsorted_threads(parallel::num_threads(), values, k)
    }

    /// [`Self::from_unsorted`] with an explicit thread count (results are
    /// bit-identical at any thread count).
    pub fn from_unsorted_threads(threads: usize, values: &[i64], k: usize) -> Self {
        Self::from_unsorted_with_route_threads(threads, values, k, CompressedRoute::Auto)
    }

    /// [`Self::from_unsorted`] with an explicit [`CompressedRoute`]. Every
    /// route yields byte-identical output; `Auto` picks by shape probing.
    pub fn from_unsorted_with_route_threads(
        threads: usize,
        values: &[i64],
        k: usize,
        route: CompressedRoute,
    ) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!values.is_empty(), "cannot build a histogram of an empty value set");
        if route.resolve(values, k) == CompressedRoute::Sorted {
            samplehist_obs::global().counter("histogram.compressed.route.sorted", 1);
            let mut sorted = values.to_vec();
            sorted.sort_unstable();
            return Self::from_sorted(&sorted, k);
        }
        samplehist_obs::global().counter("histogram.compressed.sortfree", 1);

        let n = values.len() as u64;
        let threshold = n as f64 / k as f64;
        let runs = find_heavy_values(threads, values, threshold, k);
        debug_assert!(runs.len() < k, "pigeonhole: at most k-1 values exceed n/k");

        let residual_k = k - runs.len();
        let mut residual_values = filter_residual(values, &runs);
        let residual = (!residual_values.is_empty()).then(|| {
            EquiHeightHistogram::from_unsorted_threads(threads, &mut residual_values, residual_k)
        });

        Self { high_freq: runs, residual, total: n }
    }

    /// Sort-free counterpart of [`Self::from_sorted_sample`]:
    /// byte-identical output (heavy counts scaled by `n/r` with the same
    /// float rounding, residual scaled with the same largest-remainder
    /// rule), but the sample is never sorted.
    ///
    /// # Panics
    /// If the sample is empty, `k == 0`, or the population is smaller
    /// than the sample.
    pub fn from_unsorted_sample(sample: &[i64], k: usize, population_total: u64) -> Self {
        Self::from_unsorted_sample_threads(parallel::num_threads(), sample, k, population_total)
    }

    /// [`Self::from_unsorted_sample`] with an explicit thread count.
    pub fn from_unsorted_sample_threads(
        threads: usize,
        sample: &[i64],
        k: usize,
        population_total: u64,
    ) -> Self {
        Self::from_unsorted_sample_with_route_threads(
            threads,
            sample,
            k,
            population_total,
            CompressedRoute::Auto,
        )
    }

    /// [`Self::from_unsorted_sample`] with an explicit [`CompressedRoute`].
    pub fn from_unsorted_sample_with_route_threads(
        threads: usize,
        sample: &[i64],
        k: usize,
        population_total: u64,
        route: CompressedRoute,
    ) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!sample.is_empty(), "cannot build a histogram from an empty sample");
        assert!(
            population_total >= sample.len() as u64,
            "population ({population_total}) smaller than sample ({})",
            sample.len()
        );
        if route.resolve(sample, k) == CompressedRoute::Sorted {
            samplehist_obs::global().counter("histogram.compressed.route.sorted", 1);
            let mut sorted = sample.to_vec();
            sorted.sort_unstable();
            return Self::from_sorted_sample(&sorted, k, population_total);
        }
        samplehist_obs::global().counter("histogram.compressed.sortfree", 1);

        let r = sample.len() as u64;
        let scale = population_total as f64 / r as f64;
        let threshold = r as f64 / k as f64;
        let sample_runs = find_heavy_values(threads, sample, threshold, k);
        debug_assert!(sample_runs.len() < k, "pigeonhole: at most k-1 values exceed r/k");

        let runs: Vec<(i64, u64)> =
            sample_runs.iter().map(|&(v, c)| (v, (c as f64 * scale).round() as u64)).collect();
        let residual_k = k - runs.len();
        let mut residual_sample = filter_residual(sample, &runs);
        let heavy_total: u64 = runs.iter().map(|&(_, c)| c).sum();
        let residual_total = population_total.saturating_sub(heavy_total).max(
            residual_sample.len() as u64, // never claim fewer than observed
        );
        let residual = (!residual_sample.is_empty()).then(|| {
            EquiHeightHistogram::from_unsorted_sample_threads(
                threads,
                &mut residual_sample,
                residual_k,
                residual_total,
            )
        });

        Self { high_freq: runs, residual, total: population_total }
    }

    /// The high-frequency side table.
    pub fn high_frequency_values(&self) -> &[(i64, u64)] {
        &self.high_freq
    }

    /// The residual equi-height histogram, if any values remain.
    pub fn residual(&self) -> Option<&EquiHeightHistogram> {
        self.residual.as_ref()
    }

    /// Total tuples summarized.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Buckets used: one per high-frequency value plus the residual's.
    pub fn buckets_used(&self) -> usize {
        self.high_freq.len() + self.residual.as_ref().map_or(0, |h| h.num_buckets())
    }

    /// Exact count for an equality predicate `col = v` when `v` is a
    /// high-frequency value; estimated from the residual otherwise
    /// (uniform spread across the bucket's domain width).
    pub fn estimate_eq(&self, v: i64) -> f64 {
        if let Ok(idx) = self.high_freq.binary_search_by_key(&v, |&(hv, _)| hv) {
            return self.high_freq[idx].1 as f64;
        }
        match &self.residual {
            None => 0.0,
            Some(h) => {
                // One-point range over the residual.
                RangeEstimator::new(h).estimate_range(v, v)
            }
        }
    }

    /// Estimated output size of the range query `x ≤ col ≤ y`: exact
    /// contributions from high-frequency values in range plus the residual
    /// histogram's interpolated estimate.
    pub fn estimate_range(&self, x: i64, y: i64) -> f64 {
        if x > y {
            return 0.0;
        }
        let heavy: u64 =
            self.high_freq.iter().filter(|&&(v, _)| v >= x && v <= y).map(|&(_, c)| c).sum();
        let light = match &self.residual {
            None => 0.0,
            Some(h) => RangeEstimator::new(h).estimate_range(x, y),
        };
        heavy as f64 + light
    }
}

/// Exact `(value, count)` pairs with count strictly above `threshold`,
/// ascending, found **without sorting**.
///
/// Rank probing: let `t = max(⌊n/k⌋, 1)`. A heavy value (count
/// `> n/k`, hence `≥ t + 1`) occupies at least `t + 1` consecutive
/// positions of the sorted multiset, so that run necessarily covers a
/// rank that is a multiple of `t`. Resolving the ranks `{0, t, 2t, …}`
/// (at most `⌊n/t⌋ + 1 ≈ k + 1` of them) through the radix rank
/// resolver therefore surfaces every heavy value among the probe
/// results; one exact counting pass over the candidates (binary search
/// into the ≤ k+1 sorted probe values) filters the false positives and
/// supplies exact counts. Cost: the resolver's ~3 linear passes plus
/// one verification pass.
fn find_heavy_values(threads: usize, values: &[i64], threshold: f64, k: usize) -> Vec<(i64, u64)> {
    let t = (values.len() / k).max(1);
    let probes: Vec<usize> = (0..values.len()).step_by(t).collect();
    let resolution = radix::resolve_ranks_threads(threads, values, &probes);
    let mut candidates: Vec<i64> = resolution.entries.into_iter().map(|(v, _)| v).collect();
    candidates.dedup(); // probe values arrive ascending
    samplehist_obs::global().counter("histogram.compressed.candidates", candidates.len() as u64);
    let counts = count_candidates(threads, values, &candidates);
    candidates.into_iter().zip(counts).filter(|&(_, c)| c as f64 > threshold).collect()
}

/// One exact counting pass of `values` against the ascending
/// `candidates` (chunk-parallel with a sequential reduce).
fn count_candidates(threads: usize, values: &[i64], candidates: &[i64]) -> Vec<u64> {
    let tally = |chunk: &[i64]| {
        let mut counts = vec![0u64; candidates.len()];
        for &v in chunk {
            if let Ok(i) = candidates.binary_search(&v) {
                counts[i] += 1;
            }
        }
        counts
    };
    if threads <= 1 || values.len() < PAR_COUNT_MIN {
        return tally(values);
    }
    let partials = parallel::par_chunks_map(threads, values, threads, tally);
    let mut out = vec![0u64; candidates.len()];
    for partial in partials {
        for (acc, c) in out.iter_mut().zip(partial) {
            *acc += c;
        }
    }
    out
}

/// The values that are not in the (ascending) heavy side table, in
/// input order.
fn filter_residual(values: &[i64], runs: &[(i64, u64)]) -> Vec<i64> {
    if runs.is_empty() {
        return values.to_vec();
    }
    values
        .iter()
        .copied()
        .filter(|v| runs.binary_search_by_key(v, |&(hv, _)| hv).is_err())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::true_range_count;

    fn skewed_data() -> Vec<i64> {
        // Value 100 appears 500 times, value 200 appears 300 times, plus
        // 200 distinct light values 0..99 and 300..399 (one each).
        let mut data: Vec<i64> = Vec::new();
        data.extend(std::iter::repeat(100i64).take(500));
        data.extend(std::iter::repeat(200i64).take(300));
        data.extend(0..100);
        data.extend(300..400);
        data.sort_unstable();
        data
    }

    #[test]
    fn heavy_values_are_pulled_out() {
        let data = skewed_data(); // n = 1000
        let h = CompressedHistogram::from_sorted(&data, 10); // n/k = 100
        assert_eq!(h.high_frequency_values(), &[(100, 500), (200, 300)]);
        assert_eq!(h.total(), 1000);
        let residual = h.residual().expect("light values remain");
        assert_eq!(residual.total(), 200);
        assert_eq!(residual.num_buckets(), 8);
        assert_eq!(h.buckets_used(), 10);
    }

    #[test]
    fn equality_estimates_are_exact_for_heavy_values() {
        let data = skewed_data();
        let h = CompressedHistogram::from_sorted(&data, 10);
        assert_eq!(h.estimate_eq(100), 500.0);
        assert_eq!(h.estimate_eq(200), 300.0);
        // A light value: residual estimate is ~1 (200 values, 8 buckets).
        let e = h.estimate_eq(50);
        assert!(e < 30.0, "light estimate {e}");
    }

    #[test]
    fn range_estimates_combine_both_parts() {
        let data = skewed_data();
        let h = CompressedHistogram::from_sorted(&data, 10);
        // [100, 200] contains both heavy values and light 101..=199: none
        // (light values are 0..99 and 300..399).
        let est = h.estimate_range(100, 200);
        let truth = true_range_count(&data, 100, 200);
        assert_eq!(truth, 800);
        assert!((est - 800.0).abs() < 40.0, "est = {est}");
        // Whole-domain query is exact-ish.
        let est = h.estimate_range(i64::MIN, i64::MAX);
        assert!((est - 1000.0).abs() < 1e-6);
        assert_eq!(h.estimate_range(10, 5), 0.0);
    }

    #[test]
    fn no_heavy_values_degenerates_to_plain_histogram() {
        let data: Vec<i64> = (0..1000).collect();
        let h = CompressedHistogram::from_sorted(&data, 10);
        assert!(h.high_frequency_values().is_empty());
        assert_eq!(h.residual().expect("all residual").num_buckets(), 10);
        assert_eq!(h.buckets_used(), 10);
    }

    #[test]
    fn all_one_value_has_empty_residual() {
        let data = vec![5i64; 100];
        let h = CompressedHistogram::from_sorted(&data, 4);
        assert_eq!(h.high_frequency_values(), &[(5, 100)]);
        assert!(h.residual().is_none());
        assert_eq!(h.estimate_eq(5), 100.0);
        assert_eq!(h.estimate_eq(6), 0.0);
        assert_eq!(h.estimate_range(0, 10), 100.0);
    }

    #[test]
    fn at_most_k_minus_one_heavy_values() {
        // n = 500, k = 3, threshold ~166.7: only value 1 qualifies.
        let mut data: Vec<i64> = Vec::new();
        for (v, c) in [(1i64, 250usize), (2, 120), (3, 80), (4, 50)] {
            data.extend(std::iter::repeat(v).take(c));
        }
        data.sort_unstable();
        let h = CompressedHistogram::from_sorted(&data, 3);
        assert_eq!(h.high_frequency_values(), &[(1, 250)]);
        assert!(h.buckets_used() <= 3);

        // Pigeonhole at the edge: k = 2, two values of 600/400: threshold
        // 500, only one can exceed it, residual keeps its bucket.
        let mut data: Vec<i64> = Vec::new();
        data.extend(std::iter::repeat(1i64).take(600));
        data.extend(std::iter::repeat(2i64).take(400));
        let h = CompressedHistogram::from_sorted(&data, 2);
        assert_eq!(h.high_frequency_values(), &[(1, 600)]);
        let residual = h.residual().expect("value 2 remains");
        assert_eq!(residual.total(), 400);
    }

    #[test]
    fn sampled_construction_scales_heavy_values() {
        // Population: value 7 is 50% of 10_000 tuples; sample 10% of it.
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut population = vec![7i64; 5_000];
        population.extend(0..5_000i64);
        population.sort_unstable();
        let mut sample: Vec<i64> =
            (0..1_000).map(|_| population[rng.gen_range(0..population.len())]).collect();
        sample.sort_unstable();

        let h = CompressedHistogram::from_sorted_sample(&sample, 10, 10_000);
        assert_eq!(h.total(), 10_000);
        let heavy = h.high_frequency_values();
        let seven = heavy.iter().find(|&&(v, _)| v == 7).expect("7 is heavy");
        assert!((seven.1 as f64 - 5_000.0).abs() < 900.0, "scaled heavy count = {}", seven.1);
        // Range over everything ≈ n.
        assert!((h.estimate_range(i64::MIN, i64::MAX) - 10_000.0).abs() < 600.0);
    }

    #[test]
    fn sampled_construction_without_heavy_values() {
        let sample: Vec<i64> = (0..500).collect();
        let h = CompressedHistogram::from_sorted_sample(&sample, 8, 100_000);
        assert!(h.high_frequency_values().is_empty());
        assert_eq!(h.residual().expect("all residual").total(), 100_000);
        assert_eq!(h.buckets_used(), 8);
    }

    /// Deterministic shuffle: spread the sorted data across the output
    /// with a stride co-prime to the length.
    fn strided(sorted: &[i64]) -> Vec<i64> {
        let n = sorted.len();
        let stride = (n / 2 + 1) | 1; // odd ⇒ co-prime with powers of two; good enough here
        let mut out = Vec::with_capacity(n);
        let mut i = 0usize;
        for _ in 0..n {
            out.push(sorted[i]);
            i = (i + stride) % n;
        }
        assert_eq!(out.len(), n);
        out
    }

    #[test]
    fn sortfree_matches_sorted_path() {
        // Explicit SortFree route: skewed_data's heavy mass (0.8) would
        // otherwise auto-route to the sorted builder and test nothing.
        let data = skewed_data();
        let shuffled = strided(&data);
        for k in [1usize, 2, 3, 10, 40] {
            let reference = CompressedHistogram::from_sorted(&data, k);
            for threads in [1usize, 4] {
                let got = CompressedHistogram::from_unsorted_with_route_threads(
                    threads,
                    &shuffled,
                    k,
                    CompressedRoute::SortFree,
                );
                assert_eq!(got, reference, "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn sortfree_sample_matches_sorted_sample_path() {
        let data = skewed_data();
        let shuffled = strided(&data);
        for (k, pop) in [(10usize, 5_000u64), (4, 1_000), (1, 999_999)] {
            let reference = CompressedHistogram::from_sorted_sample(&data, k, pop);
            for threads in [1usize, 4] {
                let got = CompressedHistogram::from_unsorted_sample_with_route_threads(
                    threads,
                    &shuffled,
                    k,
                    pop,
                    CompressedRoute::SortFree,
                );
                assert_eq!(got, reference, "k={k} pop={pop} threads={threads}");
            }
        }
    }

    #[test]
    fn sortfree_all_one_value_and_no_heavy_edges() {
        // Every tuple heavy: empty residual. (Explicit SortFree — auto
        // would route this fully-dominated input to the sorted builder.)
        let data = vec![5i64; 100];
        let h = CompressedHistogram::from_unsorted_with_route_threads(
            1,
            &data,
            4,
            CompressedRoute::SortFree,
        );
        assert_eq!(h, CompressedHistogram::from_sorted(&data, 4));
        assert!(h.residual().is_none());

        // No value heavy: pure equi-height residual.
        let sorted: Vec<i64> = (0..1000).collect();
        let h = CompressedHistogram::from_unsorted(&strided(&sorted), 10);
        assert_eq!(h, CompressedHistogram::from_sorted(&sorted, 10));
        assert!(h.high_frequency_values().is_empty());

        // More buckets than values: t clamps to 1, all ranks probed.
        let tiny = vec![3i64, 1, 2];
        let mut tiny_sorted = tiny.clone();
        tiny_sorted.sort_unstable();
        let h = CompressedHistogram::from_unsorted(&tiny, 8);
        assert_eq!(h, CompressedHistogram::from_sorted(&tiny_sorted, 8));
    }

    #[test]
    fn auto_route_resolves_by_heavy_mass() {
        // 90% of the column is one value: sorted builder territory.
        let mut dominated = vec![7i64; 9_000];
        dominated.extend(0..1_000);
        assert_eq!(CompressedRoute::Auto.resolve(&dominated, 10), CompressedRoute::Sorted);

        // All-distinct column: no heavy mass at all, stays sort-free.
        let distinct: Vec<i64> = (0..10_000).collect();
        assert_eq!(CompressedRoute::Auto.resolve(&distinct, 10), CompressedRoute::SortFree);

        // Explicit routes are never second-guessed.
        assert_eq!(CompressedRoute::Sorted.resolve(&distinct, 10), CompressedRoute::Sorted);
        assert_eq!(CompressedRoute::SortFree.resolve(&dominated, 10), CompressedRoute::SortFree);

        // And both resolved routes build the same histogram.
        let shuffled = strided(&{
            let mut s = dominated.clone();
            s.sort_unstable();
            s
        });
        let sorted_route = CompressedHistogram::from_unsorted_with_route_threads(
            1,
            &shuffled,
            10,
            CompressedRoute::Sorted,
        );
        let sortfree_route = CompressedHistogram::from_unsorted_with_route_threads(
            1,
            &shuffled,
            10,
            CompressedRoute::SortFree,
        );
        assert_eq!(sorted_route, sortfree_route);
        assert_eq!(sorted_route, CompressedHistogram::from_unsorted(&shuffled, 10));
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn empty_rejected() {
        let _ = CompressedHistogram::from_sorted(&[], 4);
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn sortfree_empty_rejected() {
        let _ = CompressedHistogram::from_unsorted(&[], 4);
    }
}
