//! Serve-time bucket indexes: branchless tree search over histogram
//! separators, built once per ANALYZE and amortized across millions of
//! estimation calls.
//!
//! The estimation hot path used to be `separators.partition_point(..)` —
//! a data-dependent binary search over a sorted slice — plus, on the
//! engine side, an `O(k)` cumulative-count rebuild *per call*
//! ([`RangeEstimator::new`]). This module replaces both with structures
//! in the spirit of "Enhancing Histograms by Tree-Like Bucket Indices":
//!
//! * [`BucketIndex`] — an Eytzinger (BFS-order) layout of the equi-height
//!   separators, padded to a full tree so every probe runs a **fixed
//!   depth, branchless** descent (`e = 2e + (tree[e] < v)`), plus flat
//!   prefix-summed per-bucket arrays so `estimate_le` is one descent and
//!   a fused multiply-add away.
//! * [`CompressedIndex`] — the same tree over a compressed histogram's
//!   high-frequency runs with prefix-summed exact counts (a heavy range
//!   sum becomes two descents and a subtraction), delegating the light
//!   residue to a nested [`BucketIndex`].
//!
//! Every estimate is **byte-identical** to the bisect path it replaces
//! ([`RangeEstimator`] / [`CompressedHistogram`]'s own estimators): the
//! descent computes exactly `partition_point(|&s| s < v)` and the
//! interpolation replays the same float operations in the same order.
//! This is property-tested (`tests/index_identity.rs`), so callers may
//! switch routes freely without perturbing plans.
//!
//! The batched entry points ([`BucketIndex::estimate_range_batch`],
//! [`CompressedIndex::estimate_eq_batch`]) interleave eight descent
//! cursors per tree level — the same eight-lane template as
//! `selection::min_max` — so the level loop is straight-line lane math
//! the compiler can vectorize, with per-probe arithmetic in a scalar
//! epilogue.
//!
//! [`RangeEstimator`]: crate::estimate::RangeEstimator
//! [`RangeEstimator::new`]: crate::estimate::RangeEstimator::new

use super::compressed::CompressedHistogram;
use super::equi_height::EquiHeightHistogram;

/// Descent lanes per batched chunk, mirroring `min_max`'s accumulator
/// count: wide enough to hide the tree-level load latency, narrow enough
/// that the cursor state stays in registers.
const LANES: usize = 8;

/// A full (padded) Eytzinger search tree over a sorted slice, answering
/// `partition_point(|&s| s < v)` with a fixed-depth branchless descent.
///
/// Layout: 1-based BFS order in a flat array of `2^h − 1` slots; slots
/// beyond the real elements hold `i64::MAX` sentinels, which never
/// satisfy `tree[e] < v` and therefore behave exactly like elements
/// sitting past the end of the sorted slice. A companion `rank` array
/// maps the descent's landing slot back to the sorted position, with
/// slot 0 (the "every element is `< v`" exit) mapping to `len`.
#[derive(Debug, Clone, PartialEq)]
struct Eytzinger {
    tree: Box<[i64]>,
    rank: Box<[u32]>,
    height: u32,
    len: usize,
}

impl Eytzinger {
    fn new(sorted: &[i64]) -> Self {
        let m = sorted.len();
        // Smallest full tree with at least m slots (cap = 2^h − 1 ≥ m).
        let cap = (m + 1).next_power_of_two() - 1;
        let height = (cap + 1).trailing_zeros();
        let mut tree = vec![i64::MAX; cap + 1].into_boxed_slice();
        let mut rank = vec![m as u32; cap + 1].into_boxed_slice();
        // In-order walk of the full tree assigns sorted positions
        // 0..cap; positions ≥ m stay at the sentinel value with rank m.
        fn fill(tree: &mut [i64], rank: &mut [u32], sorted: &[i64], e: usize, pos: &mut usize) {
            if e >= tree.len() {
                return;
            }
            fill(tree, rank, sorted, 2 * e, pos);
            if *pos < sorted.len() {
                tree[e] = sorted[*pos];
                rank[e] = *pos as u32;
            }
            *pos += 1;
            fill(tree, rank, sorted, 2 * e + 1, pos);
        }
        let mut pos = 0usize;
        fill(&mut tree, &mut rank, sorted, 1, &mut pos);
        Self { tree, rank, height, len: m }
    }

    /// `sorted.partition_point(|&s| s < v)`, branchlessly.
    #[inline]
    fn partition_point(&self, v: i64) -> usize {
        let mut e = 1usize;
        for _ in 0..self.height {
            e = 2 * e + usize::from(self.tree[e] < v);
        }
        // Undo the trailing right-turns plus the final left-turn: `e` is
        // now the slot of the first element ≥ v (0 when none exists).
        e >>= e.trailing_ones() + 1;
        self.rank[e] as usize
    }

    /// Eight interleaved descents: one tree level for all lanes before
    /// advancing, so the level loop is pure lane-parallel arithmetic.
    #[inline]
    fn partition_point8(&self, v: &[i64]) -> [usize; LANES] {
        debug_assert_eq!(v.len(), LANES);
        let mut e = [1usize; LANES];
        for _ in 0..self.height {
            for lane in 0..LANES {
                e[lane] = 2 * e[lane] + usize::from(self.tree[e[lane]] < v[lane]);
            }
        }
        let mut out = [0usize; LANES];
        for lane in 0..LANES {
            let slot = e[lane] >> (e[lane].trailing_ones() + 1);
            out[lane] = self.rank[slot] as usize;
        }
        out
    }
}

/// Branchless serve-time index over one [`EquiHeightHistogram`].
///
/// Construction cost is `O(k)`; every estimate thereafter is a
/// fixed-depth descent plus three flat-array loads — no per-call
/// cumulative rebuild, no data-dependent branches. All estimates are
/// byte-identical to [`RangeEstimator`](crate::estimate::RangeEstimator)
/// over the same histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketIndex {
    search: Eytzinger,
    /// `below[j]` = Σ counts of buckets `0..j`, pre-converted to f64 (the
    /// exact value `cumulative[j-1] as f64` the bisect path computes).
    below: Box<[f64]>,
    /// `count[j]` = bucket j's count as f64.
    count: Box<[f64]>,
    /// Exclusive lower domain edge of bucket j, widened to i128 so the
    /// first bucket's `min − 1` anchor is defined even at `i64::MIN`.
    lo_edge: Box<[i128]>,
    /// Inclusive upper domain edge of bucket j (i128 for symmetry; the
    /// subtraction `upper − lower` can exceed the i64 range).
    hi_edge: Box<[i128]>,
    min_value: i64,
    max_value: i64,
    total: f64,
}

impl BucketIndex {
    /// Build the index for `hist`.
    pub fn new(hist: &EquiHeightHistogram) -> Self {
        let seps = hist.separators();
        let k = hist.num_buckets();
        let counts = hist.counts();
        let mut below = Vec::with_capacity(k);
        let mut count = Vec::with_capacity(k);
        let mut lo_edge = Vec::with_capacity(k);
        let mut hi_edge = Vec::with_capacity(k);
        let mut acc = 0u64;
        for j in 0..k {
            below.push(acc as f64);
            acc += counts[j];
            count.push(counts[j] as f64);
            lo_edge.push(if j == 0 { hist.min_value() as i128 - 1 } else { seps[j - 1] as i128 });
            hi_edge.push(if j == k - 1 { hist.max_value() as i128 } else { seps[j] as i128 });
        }
        samplehist_obs::global().counter("index.bucket.built", 1);
        Self {
            search: Eytzinger::new(seps),
            below: below.into_boxed_slice(),
            count: count.into_boxed_slice(),
            lo_edge: lo_edge.into_boxed_slice(),
            hi_edge: hi_edge.into_boxed_slice(),
            min_value: hist.min_value(),
            max_value: hist.max_value(),
            total: hist.total() as f64,
        }
    }

    /// Number of buckets indexed.
    pub fn num_buckets(&self) -> usize {
        self.count.len()
    }

    /// Index of the bucket containing `v` — the branchless equivalent of
    /// [`EquiHeightHistogram::bucket_of`].
    #[inline]
    pub fn bucket_of(&self, v: i64) -> usize {
        self.search.partition_point(v)
    }

    /// Interpolation epilogue shared by the scalar and batched paths:
    /// replays `RangeEstimator::estimate_le`'s arithmetic exactly, with
    /// the bucket already resolved to `j`.
    #[inline]
    fn finish_le(&self, t: i64, j: usize) -> f64 {
        if t < self.min_value {
            return 0.0;
        }
        if t >= self.max_value {
            return self.total;
        }
        let lower = self.lo_edge[j];
        let upper = self.hi_edge[j];
        let fraction = if upper <= lower {
            // Degenerate bucket (single duplicated value): all-or-nothing.
            if t as i128 >= upper {
                1.0
            } else {
                0.0
            }
        } else {
            ((t as i128 - lower) as f64 / (upper - lower) as f64).clamp(0.0, 1.0)
        };
        self.below[j] + fraction * self.count[j]
    }

    /// Estimated number of values `≤ t`.
    #[inline]
    pub fn estimate_le(&self, t: i64) -> f64 {
        self.finish_le(t, self.search.partition_point(t))
    }

    /// Estimated number of values `< t`.
    #[inline]
    pub fn estimate_lt(&self, t: i64) -> f64 {
        if t == i64::MIN {
            0.0
        } else {
            self.estimate_le(t - 1)
        }
    }

    /// Estimated output size of `x ≤ v ≤ y` (0 for `x > y`).
    #[inline]
    pub fn estimate_range(&self, x: i64, y: i64) -> f64 {
        if x > y {
            return 0.0;
        }
        (self.estimate_le(y) - self.estimate_lt(x)).max(0.0)
    }

    /// One-point range `v = t` (what the residual side of an equality
    /// estimate reduces to).
    #[inline]
    pub fn estimate_eq(&self, t: i64) -> f64 {
        self.estimate_range(t, t)
    }

    /// Batched range estimation: `out[i]` = estimate of
    /// `probes[i].0 ≤ v ≤ probes[i].1`, byte-identical to calling
    /// [`Self::estimate_range`] per probe. Probes are processed in
    /// chunks of eight with interleaved descents for both endpoints.
    ///
    /// # Panics
    /// If `out.len() != probes.len()`.
    pub fn estimate_range_batch(&self, probes: &[(i64, i64)], out: &mut [f64]) {
        assert_eq!(probes.len(), out.len(), "output slice must match probe count");
        let recorder = samplehist_obs::global();
        if recorder.is_enabled() {
            recorder.counter("index.range_batch.calls", 1);
            recorder.counter("index.range_batch.probes", probes.len() as u64);
        }
        let mut chunks = probes.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (chunk, o) in (&mut chunks).zip(&mut outs) {
            let mut hi = [0i64; LANES];
            let mut lo = [0i64; LANES];
            for lane in 0..LANES {
                hi[lane] = chunk[lane].1;
                // `estimate_lt(x)` probes at `x − 1`; the wrap at
                // i64::MIN is immaterial because that lane's epilogue
                // short-circuits to 0 before touching the descent result.
                lo[lane] = chunk[lane].0.wrapping_sub(1);
            }
            let jhi = self.search.partition_point8(&hi);
            let jlo = self.search.partition_point8(&lo);
            for lane in 0..LANES {
                let (x, y) = chunk[lane];
                o[lane] = if x > y {
                    0.0
                } else {
                    let le = self.finish_le(y, jhi[lane]);
                    let lt = if x == i64::MIN { 0.0 } else { self.finish_le(x - 1, jlo[lane]) };
                    (le - lt).max(0.0)
                };
            }
        }
        for (&(x, y), o) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *o = self.estimate_range(x, y);
        }
    }

    /// Batched equality estimation: `out[i]` = one-point range estimate
    /// of `v = probes[i]`, byte-identical to [`Self::estimate_eq`] per
    /// probe.
    ///
    /// # Panics
    /// If `out.len() != probes.len()`.
    pub fn estimate_eq_batch(&self, probes: &[i64], out: &mut [f64]) {
        assert_eq!(probes.len(), out.len(), "output slice must match probe count");
        let recorder = samplehist_obs::global();
        if recorder.is_enabled() {
            recorder.counter("index.eq_batch.calls", 1);
            recorder.counter("index.eq_batch.probes", probes.len() as u64);
        }
        let mut chunks = probes.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (chunk, o) in (&mut chunks).zip(&mut outs) {
            let mut below = [0i64; LANES];
            for lane in 0..LANES {
                below[lane] = chunk[lane].wrapping_sub(1);
            }
            let jeq = self.search.partition_point8(chunk);
            let jlt = self.search.partition_point8(&below);
            for lane in 0..LANES {
                let t = chunk[lane];
                let le = self.finish_le(t, jeq[lane]);
                let lt = if t == i64::MIN { 0.0 } else { self.finish_le(t - 1, jlt[lane]) };
                o[lane] = (le - lt).max(0.0);
            }
        }
        for (&t, o) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *o = self.estimate_eq(t);
        }
    }
}

/// Branchless serve-time index over one [`CompressedHistogram`]: the
/// high-frequency side table as an Eytzinger tree with prefix-summed
/// exact counts, the residue as a nested [`BucketIndex`].
///
/// A heavy range sum is two descents and one u64 subtraction (the prefix
/// difference equals the side table's in-range sum exactly); an equality
/// probe is one descent that *also* classifies the constant as heavy or
/// light — which is how the engine's old double lookup (membership
/// bisect, then a second bisect inside `estimate_eq`) collapses into a
/// single descent.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedIndex {
    search: Eytzinger,
    /// Heavy values, ascending (hit test for the descent's landing rank).
    values: Box<[i64]>,
    /// Exact heavy counts, aligned with `values`.
    counts: Box<[u64]>,
    /// `prefix[i]` = Σ `counts[..i]`; `len + 1` entries.
    prefix: Box<[u64]>,
    residual: Option<BucketIndex>,
}

impl CompressedIndex {
    /// Build the index for `hist`.
    pub fn new(hist: &CompressedHistogram) -> Self {
        let heavy = hist.high_frequency_values();
        let values: Box<[i64]> = heavy.iter().map(|&(v, _)| v).collect();
        let counts: Box<[u64]> = heavy.iter().map(|&(_, c)| c).collect();
        let mut prefix = Vec::with_capacity(heavy.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &c in counts.iter() {
            acc += c;
            prefix.push(acc);
        }
        samplehist_obs::global().counter("index.compressed.built", 1);
        Self {
            search: Eytzinger::new(&values),
            values,
            counts,
            prefix: prefix.into_boxed_slice(),
            residual: hist.residual().map(BucketIndex::new),
        }
    }

    /// The residue's index, when the compressed histogram has one.
    pub fn residual(&self) -> Option<&BucketIndex> {
        self.residual.as_ref()
    }

    /// Number of heavy values ≤ `v`.
    #[inline]
    fn heavy_le(&self, v: i64) -> usize {
        if v == i64::MAX {
            self.values.len()
        } else {
            self.search.partition_point(v + 1)
        }
    }

    /// Equality estimate plus the heavy/light classification, from a
    /// single descent. Byte-identical to
    /// [`CompressedHistogram::estimate_eq`]; the flag is `true` exactly
    /// when the old membership bisect would have hit.
    #[inline]
    pub fn estimate_eq_classified(&self, v: i64) -> (f64, bool) {
        let j = self.search.partition_point(v);
        if j < self.values.len() && self.values[j] == v {
            return (self.counts[j] as f64, true);
        }
        let light = match &self.residual {
            None => 0.0,
            Some(r) => r.estimate_range(v, v),
        };
        (light, false)
    }

    /// Equality estimate: exact for heavy values, residual one-point
    /// range otherwise.
    #[inline]
    pub fn estimate_eq(&self, v: i64) -> f64 {
        self.estimate_eq_classified(v).0
    }

    /// Estimated output size of `x ≤ v ≤ y`: exact in-range heavy mass
    /// (prefix difference) plus the residual's interpolated estimate.
    /// Byte-identical to [`CompressedHistogram::estimate_range`].
    #[inline]
    pub fn estimate_range(&self, x: i64, y: i64) -> f64 {
        if x > y {
            return 0.0;
        }
        let heavy = self.prefix[self.heavy_le(y)] - self.prefix[self.search.partition_point(x)];
        let light = match &self.residual {
            None => 0.0,
            Some(r) => r.estimate_range(x, y),
        };
        heavy as f64 + light
    }

    /// Batched equality estimation with the eight-lane heavy descent;
    /// byte-identical to [`Self::estimate_eq`] per probe.
    ///
    /// # Panics
    /// If `out.len() != probes.len()`.
    pub fn estimate_eq_batch(&self, probes: &[i64], out: &mut [f64]) {
        assert_eq!(probes.len(), out.len(), "output slice must match probe count");
        let recorder = samplehist_obs::global();
        if recorder.is_enabled() {
            recorder.counter("index.compressed_eq_batch.calls", 1);
            recorder.counter("index.compressed_eq_batch.probes", probes.len() as u64);
        }
        let mut chunks = probes.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (chunk, o) in (&mut chunks).zip(&mut outs) {
            let j = self.search.partition_point8(chunk);
            for lane in 0..LANES {
                let v = chunk[lane];
                o[lane] = if j[lane] < self.values.len() && self.values[j[lane]] == v {
                    self.counts[j[lane]] as f64
                } else {
                    match &self.residual {
                        None => 0.0,
                        Some(r) => r.estimate_range(v, v),
                    }
                };
            }
        }
        for (&v, o) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *o = self.estimate_eq(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::RangeEstimator;

    fn assert_bits(a: f64, b: f64, what: &str) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
    }

    #[test]
    fn eytzinger_matches_partition_point_exhaustively() {
        for m in 0..20usize {
            let sorted: Vec<i64> = (0..m as i64).map(|i| i * 3).collect();
            let tree = Eytzinger::new(&sorted);
            for v in -2..(3 * m as i64 + 2) {
                assert_eq!(
                    tree.partition_point(v),
                    sorted.partition_point(|&s| s < v),
                    "m = {m}, v = {v}"
                );
            }
        }
    }

    #[test]
    fn eytzinger_handles_duplicates_and_extremes() {
        let sorted = vec![i64::MIN, i64::MIN, -5, -5, -5, 0, 7, 7, i64::MAX, i64::MAX];
        let tree = Eytzinger::new(&sorted);
        for v in [i64::MIN, i64::MIN + 1, -5, -4, 0, 1, 7, 8, i64::MAX - 1, i64::MAX] {
            assert_eq!(tree.partition_point(v), sorted.partition_point(|&s| s < v), "v = {v}");
        }
    }

    #[test]
    fn one_bucket_histogram() {
        // No separators: the tree is empty and everything interpolates
        // within the single bucket.
        let h = EquiHeightHistogram::from_parts(vec![], vec![10], 0, 9);
        let idx = BucketIndex::new(&h);
        let est = RangeEstimator::new(&h);
        for t in [-1, 0, 4, 9, 10] {
            assert_bits(idx.estimate_le(t), est.estimate_le(t), "one bucket le");
        }
        assert_eq!(idx.num_buckets(), 1);
    }

    #[test]
    fn all_equal_histogram_is_all_or_nothing() {
        // Degenerate buckets: every separator equals the single value.
        let data = vec![42i64; 100];
        let h = EquiHeightHistogram::from_sorted(&data, 4);
        let idx = BucketIndex::new(&h);
        let est = RangeEstimator::new(&h);
        for t in [41, 42, 43] {
            assert_bits(idx.estimate_le(t), est.estimate_le(t), "all equal le");
            assert_bits(
                idx.estimate_range(t, t),
                est.estimate_range(t, t),
                "all equal point range",
            );
        }
        assert_eq!(idx.estimate_eq(42), 100.0);
        assert_eq!(idx.estimate_eq(41), 0.0);
    }

    #[test]
    fn min_max_edge_separators() {
        // Separators at both i64 extremes: the old bisect path's
        // `min − 1` anchor and `upper − lower` width both leave the i64
        // range; the widened i128 arithmetic must agree with the (also
        // widened) RangeEstimator.
        let h = EquiHeightHistogram::from_parts(
            vec![i64::MIN, 0, i64::MAX],
            vec![3, 5, 7, 11],
            i64::MIN,
            i64::MAX,
        );
        let idx = BucketIndex::new(&h);
        let est = RangeEstimator::new(&h);
        for t in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_bits(idx.estimate_le(t), est.estimate_le(t), "extreme le");
            assert_bits(idx.estimate_lt(t), est.estimate_lt(t), "extreme lt");
        }
        for (x, y) in [(i64::MIN, i64::MAX), (i64::MIN, 0), (0, i64::MAX), (5, 4)] {
            assert_bits(idx.estimate_range(x, y), est.estimate_range(x, y), "extreme range");
        }
    }

    #[test]
    fn batch_matches_scalar_including_remainder() {
        let data: Vec<i64> = (0..999).map(|i| (i * i) % 4001).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let h = EquiHeightHistogram::from_sorted(&sorted, 13);
        let idx = BucketIndex::new(&h);
        // 21 probes: two full lanes plus a 5-probe remainder.
        let probes: Vec<(i64, i64)> = (0..21)
            .map(|i| {
                let x = (i * 397) % 4400 - 200;
                (x, x + (i % 7) * 100)
            })
            .collect();
        let mut out = vec![0.0; probes.len()];
        idx.estimate_range_batch(&probes, &mut out);
        for (i, &(x, y)) in probes.iter().enumerate() {
            assert_bits(out[i], idx.estimate_range(x, y), "range batch lane");
        }
        let eqs: Vec<i64> = (0..21).map(|i| (i * 211) % 4300 - 100).collect();
        let mut out = vec![0.0; eqs.len()];
        idx.estimate_eq_batch(&eqs, &mut out);
        for (i, &t) in eqs.iter().enumerate() {
            assert_bits(out[i], idx.estimate_eq(t), "eq batch lane");
        }
    }

    #[test]
    fn batch_handles_min_endpoint() {
        let h = EquiHeightHistogram::from_parts(vec![0], vec![4, 4], i64::MIN, i64::MAX);
        let idx = BucketIndex::new(&h);
        let probes: Vec<(i64, i64)> = (0..8).map(|i| (i64::MIN, i64::MIN + i * 1000)).collect();
        let mut out = vec![0.0; probes.len()];
        idx.estimate_range_batch(&probes, &mut out);
        for (i, &(x, y)) in probes.iter().enumerate() {
            assert_bits(out[i], idx.estimate_range(x, y), "MIN endpoint");
        }
        let eqs = vec![i64::MIN; 8];
        let mut out = vec![0.0; 8];
        idx.estimate_eq_batch(&eqs, &mut out);
        for &o in &out {
            assert_bits(o, idx.estimate_eq(i64::MIN), "MIN eq");
        }
    }

    #[test]
    fn compressed_index_empty_heavy_table() {
        // All-distinct data: no value exceeds n/k, the side table is
        // empty and everything routes to the residual.
        let data: Vec<i64> = (0..1000).collect();
        let c = CompressedHistogram::from_sorted(&data, 10);
        assert!(c.high_frequency_values().is_empty());
        let idx = CompressedIndex::new(&c);
        for v in [-1, 0, 500, 999, 1000] {
            assert_bits(idx.estimate_eq(v), c.estimate_eq(v), "empty heavy eq");
        }
        assert_bits(idx.estimate_range(100, 200), c.estimate_range(100, 200), "empty heavy rng");
    }

    #[test]
    fn compressed_index_classifies_heavy_vs_light() {
        let mut data = vec![50i64; 90];
        data.extend([1, 2, 3, 4, 5, 96, 97, 98, 99, 100]);
        data.sort_unstable();
        let c = CompressedHistogram::from_sorted(&data, 10);
        let idx = CompressedIndex::new(&c);
        let (heavy_est, heavy) = idx.estimate_eq_classified(50);
        assert!(heavy, "50 holds 90% of the column");
        assert_eq!(heavy_est, 90.0);
        let (_, light) = idx.estimate_eq_classified(3);
        assert!(!light);
        for v in [0, 3, 50, 96, 101] {
            assert_bits(idx.estimate_eq(v), c.estimate_eq(v), "classified eq");
        }
        for (x, y) in [(0, 100), (50, 50), (51, 100), (101, 200), (7, 3)] {
            assert_bits(idx.estimate_range(x, y), c.estimate_range(x, y), "compressed range");
        }
        // Batch agrees with scalar across lanes and remainder.
        let probes: Vec<i64> = (0..19).map(|i| i * 7 % 110).collect();
        let mut out = vec![0.0; probes.len()];
        idx.estimate_eq_batch(&probes, &mut out);
        for (i, &v) in probes.iter().enumerate() {
            assert_bits(out[i], c.estimate_eq(v), "compressed eq batch");
        }
    }
}
