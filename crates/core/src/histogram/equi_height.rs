//! The equi-height histogram structure itself.

use std::ops::Bound;

use samplehist_parallel as parallel;

use super::bucket_counts;
use super::radix;
use super::selection;

/// An equi-height *k*-histogram (paper Section 2.1).
///
/// Stores the `k−1` separators, the per-bucket counts of the multiset it
/// summarizes (exact for a perfect histogram, scaled estimates for a
/// sampled one), the total `n`, and the observed min/max used for
/// intra-bucket interpolation by the range estimator.
///
/// Invariants (checked on construction, relied upon everywhere):
/// * `separators` is non-decreasing and has `k − 1` entries;
/// * `counts` has `k` entries summing to `total`;
/// * `min_value ≤ separators[0]` and `separators[k−2] ≤ max_value`
///   (when `k ≥ 2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiHeightHistogram {
    separators: Vec<i64>,
    counts: Vec<u64>,
    total: u64,
    min_value: i64,
    max_value: i64,
}

/// Construction engine for the `from_unsorted*` constructors.
///
/// Every route produces **byte-identical** histograms (property-tested
/// in `crates/core/tests/properties.rs`); they differ only in cost.
/// `Auto` applies the decision rule documented in DESIGN.md §6; the
/// explicit routes exist for benchmarking ([`ConstructionRoute`] rows in
/// `pipeline_bench`) and for pinning a path in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstructionRoute {
    /// Pick by input shape: radix when
    /// [`selection::selection_profitable`], otherwise sort.
    Auto,
    /// (Parallel-)sort in place, then [`EquiHeightHistogram::from_sorted`].
    Sort,
    /// Comparison-based multi-select — the property-tested O(n log k)
    /// reference, partitions the input in place.
    Selection,
    /// Radix-count rank resolution (`radix`) — ~3 linear passes,
    /// skew-adaptive, never rearranges the input.
    Radix,
}

impl ConstructionRoute {
    /// The concrete route `Auto` resolves to for an input shape; the
    /// explicit routes return themselves.
    pub fn resolve(self, n: usize, k: usize) -> Self {
        match self {
            ConstructionRoute::Auto => {
                if selection::selection_profitable(n, k) {
                    ConstructionRoute::Radix
                } else {
                    ConstructionRoute::Sort
                }
            }
            other => other,
        }
    }

    /// Stable lowercase name (bench JSON rows, trace fields).
    pub fn as_str(self) -> &'static str {
        match self {
            ConstructionRoute::Auto => "auto",
            ConstructionRoute::Sort => "sort",
            ConstructionRoute::Selection => "selection",
            ConstructionRoute::Radix => "radix",
        }
    }
}

/// A read-only view of one bucket, yielded by
/// [`EquiHeightHistogram::buckets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketRef {
    /// Zero-based bucket index `j` (the paper numbers buckets from 1).
    pub index: usize,
    /// Lower domain bound: `Excluded(s_{j-1})`, or `Unbounded` for the
    /// first bucket (`s_0 = −∞`).
    pub lower: Bound<i64>,
    /// Upper domain bound: `Included(s_j)`, or `Unbounded` for the last
    /// bucket (`s_k = +∞`).
    pub upper: Bound<i64>,
    /// Count of values assigned to this bucket.
    pub count: u64,
}

impl EquiHeightHistogram {
    /// Build the **perfect** equi-height k-histogram of `sorted` (a full
    /// scan, as a database would do under `CREATE STATISTICS ... FULLSCAN`).
    ///
    /// Separator `s_j` is the value of rank `⌈j·n/k⌉` (1-based), the
    /// canonical equi-depth quantile choice: for duplicate-free data every
    /// bucket ends up with `⌊n/k⌋` or `⌈n/k⌉` values. With duplicates the
    /// domain-based bucket rule `B_j = (s_{j-1}, s_j]` makes bucket sizes
    /// deviate from `n/k` — that is inherent (an exact equi-height
    /// histogram may not exist; paper Section 5) and the counts stored here
    /// are the true domain-rule counts.
    ///
    /// # Panics
    /// If `sorted` is empty, not sorted, or `k == 0`.
    pub fn from_sorted(sorted: &[i64], k: usize) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!sorted.is_empty(), "cannot build a histogram of an empty value set");
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");

        let separators = quantile_separators(sorted, k);
        let counts = bucket_counts(sorted, &separators);
        let total = sorted.len() as u64;
        Self {
            separators,
            counts,
            total,
            min_value: sorted[0],
            max_value: *sorted.last().expect("non-empty"),
        }
    }

    /// Build an **approximate** equi-height k-histogram from a sorted
    /// random sample of a population with `population_total` tuples.
    ///
    /// The separators are the sample's equi-height separators (paper
    /// Section 3.1: "compute an equi-height k-histogram for R"); the stored
    /// counts are the sample bucket counts scaled by `n/r` and rounded with
    /// the largest-remainder method so they still sum to exactly `n` —
    /// this is what the optimizer will consume, so the invariant
    /// `Σ counts = total` must survive rounding.
    ///
    /// # Panics
    /// If the sample is empty, not sorted, `k == 0`, or
    /// `population_total < sample.len()`.
    pub fn from_sorted_sample(sample: &[i64], k: usize, population_total: u64) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!sample.is_empty(), "cannot build a histogram from an empty sample");
        assert!(
            population_total >= sample.len() as u64,
            "population ({population_total}) smaller than sample ({})",
            sample.len()
        );
        debug_assert!(sample.windows(2).all(|w| w[0] <= w[1]), "sample must be sorted");

        let separators = quantile_separators(sample, k);
        let sample_counts = bucket_counts(sample, &separators);
        let counts =
            scale_counts_largest_remainder(&sample_counts, sample.len() as u64, population_total);
        Self {
            separators,
            counts,
            total: population_total,
            min_value: sample[0],
            max_value: *sample.last().expect("non-empty"),
        }
    }

    /// Build the perfect equi-height k-histogram from **unsorted** data,
    /// choosing the cheapest construction path by input shape:
    ///
    /// * large inputs with few separators (see
    ///   [`selection::selection_profitable`]) resolve the `k−1` separator
    ///   ranks and their `count_le` by radix counting
    ///   (`radix`) — ~3 linear passes, no sort;
    /// * everything else is (parallel-)sorted and handed to
    ///   [`Self::from_sorted`].
    ///
    /// All paths — this one, [`Self::from_sorted`] after a sort, and the
    /// comparison-based [`selection::select_separators`] — produce
    /// **byte-identical** histograms (property-tested in
    /// `crates/core/tests/properties.rs`): separators are order
    /// statistics, counts follow the order-independent domain rule.
    ///
    /// # Panics
    /// If `values` is empty or `k == 0`.
    pub fn from_unsorted(mut values: Vec<i64>, k: usize) -> Self {
        Self::from_unsorted_in_place(&mut values, k)
    }

    /// [`Self::from_unsorted`] without taking ownership: the caller's
    /// buffer may be rearranged (sorted or partitioned) depending on the
    /// route but is never reallocated.
    pub fn from_unsorted_in_place(values: &mut [i64], k: usize) -> Self {
        Self::from_unsorted_with_route_threads(
            parallel::num_threads(),
            values,
            k,
            ConstructionRoute::Auto,
        )
    }

    /// [`Self::from_unsorted_in_place`] with an explicit thread count
    /// (results are bit-identical at any thread count).
    pub fn from_unsorted_threads(threads: usize, values: &mut [i64], k: usize) -> Self {
        Self::from_unsorted_with_route_threads(threads, values, k, ConstructionRoute::Auto)
    }

    /// [`Self::from_unsorted_in_place`] with an explicit
    /// [`ConstructionRoute`] instead of the `Auto` shape rule.
    pub fn from_unsorted_with_route(
        values: &mut [i64],
        k: usize,
        route: ConstructionRoute,
    ) -> Self {
        Self::from_unsorted_with_route_threads(parallel::num_threads(), values, k, route)
    }

    /// The fully explicit construction entry point: route and thread
    /// count chosen by the caller. All routes produce byte-identical
    /// histograms; the `histogram.route.*` counter records the concrete
    /// route taken.
    ///
    /// # Panics
    /// If `values` is empty or `k == 0`.
    pub fn from_unsorted_with_route_threads(
        threads: usize,
        values: &mut [i64],
        k: usize,
        route: ConstructionRoute,
    ) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!values.is_empty(), "cannot build a histogram of an empty value set");
        let total = values.len() as u64;
        match route.resolve(values.len(), k) {
            ConstructionRoute::Sort => {
                samplehist_obs::global().counter("histogram.route.sort", 1);
                parallel::par_sort_unstable_threads(threads, values);
                Self::from_sorted(values, k)
            }
            ConstructionRoute::Selection => {
                samplehist_obs::global().counter("histogram.route.selection", 1);
                let (ranks, separators) = selection::select_partition(values, k);
                let counts = selection::bucket_counts_partitioned(values, &ranks, &separators);
                let (min_value, max_value) = selection::min_max_partitioned(values, &ranks);
                Self { separators, counts, total, min_value, max_value }
            }
            ConstructionRoute::Radix => {
                samplehist_obs::global().counter("histogram.route.radix", 1);
                let (separators, counts, min_value, max_value) =
                    resolve_via_radix(threads, values, k);
                Self { separators, counts, total, min_value, max_value }
            }
            ConstructionRoute::Auto => unreachable!("resolve() returns a concrete route"),
        }
    }

    /// Convenience wrapper over [`Self::from_sorted_sample`] accepting an
    /// unsorted sample. Routes through radix rank resolution instead of a
    /// sort when the sample shape makes that profitable (same rule and
    /// same byte-identical guarantee as [`Self::from_unsorted`]).
    pub fn from_unsorted_sample(mut sample: Vec<i64>, k: usize, population_total: u64) -> Self {
        Self::from_unsorted_sample_in_place(&mut sample, k, population_total)
    }

    /// [`Self::from_unsorted_sample`] without taking ownership.
    pub fn from_unsorted_sample_in_place(
        sample: &mut [i64],
        k: usize,
        population_total: u64,
    ) -> Self {
        Self::from_unsorted_sample_with_route_threads(
            parallel::num_threads(),
            sample,
            k,
            population_total,
            ConstructionRoute::Auto,
        )
    }

    /// [`Self::from_unsorted_sample_in_place`] with an explicit thread
    /// count.
    pub fn from_unsorted_sample_threads(
        threads: usize,
        sample: &mut [i64],
        k: usize,
        population_total: u64,
    ) -> Self {
        Self::from_unsorted_sample_with_route_threads(
            threads,
            sample,
            k,
            population_total,
            ConstructionRoute::Auto,
        )
    }

    /// Fully explicit sampled construction: route and thread count
    /// chosen by the caller; counts are scaled with the same
    /// largest-remainder rule as [`Self::from_sorted_sample`].
    ///
    /// # Panics
    /// If the sample is empty, `k == 0`, or
    /// `population_total < sample.len()`.
    pub fn from_unsorted_sample_with_route_threads(
        threads: usize,
        sample: &mut [i64],
        k: usize,
        population_total: u64,
        route: ConstructionRoute,
    ) -> Self {
        assert!(k > 0, "a histogram needs at least one bucket");
        assert!(!sample.is_empty(), "cannot build a histogram from an empty sample");
        assert!(
            population_total >= sample.len() as u64,
            "population ({population_total}) smaller than sample ({})",
            sample.len()
        );
        let r = sample.len() as u64;
        match route.resolve(sample.len(), k) {
            ConstructionRoute::Sort => {
                samplehist_obs::global().counter("histogram.route.sort", 1);
                parallel::par_sort_unstable_threads(threads, sample);
                Self::from_sorted_sample(sample, k, population_total)
            }
            ConstructionRoute::Selection => {
                samplehist_obs::global().counter("histogram.route.selection", 1);
                let (ranks, separators) = selection::select_partition(sample, k);
                let sample_counts =
                    selection::bucket_counts_partitioned(sample, &ranks, &separators);
                let counts = scale_counts_largest_remainder(&sample_counts, r, population_total);
                let (min_value, max_value) = selection::min_max_partitioned(sample, &ranks);
                Self { separators, counts, total: population_total, min_value, max_value }
            }
            ConstructionRoute::Radix => {
                samplehist_obs::global().counter("histogram.route.radix", 1);
                let (separators, sample_counts, min_value, max_value) =
                    resolve_via_radix(threads, sample, k);
                let counts = scale_counts_largest_remainder(&sample_counts, r, population_total);
                Self { separators, counts, total: population_total, min_value, max_value }
            }
            ConstructionRoute::Auto => unreachable!("resolve() returns a concrete route"),
        }
    }

    /// Assemble a histogram from raw parts. Used by tests and by the
    /// worst-case constructions in [`crate::bounds::range`], where bucket
    /// counts are dictated by an adversary rather than by data.
    ///
    /// # Panics
    /// If any structural invariant is violated.
    pub fn from_parts(
        separators: Vec<i64>,
        counts: Vec<u64>,
        min_value: i64,
        max_value: i64,
    ) -> Self {
        assert!(!counts.is_empty(), "need at least one bucket");
        assert_eq!(separators.len() + 1, counts.len(), "k buckets require k-1 separators");
        assert!(separators.windows(2).all(|w| w[0] <= w[1]), "separators must be non-decreasing");
        assert!(min_value <= max_value, "min must not exceed max");
        if let (Some(&first), Some(&last)) = (separators.first(), separators.last()) {
            assert!(
                min_value <= first && last <= max_value,
                "separators must lie within [min, max]"
            );
        }
        let total = counts.iter().sum();
        Self { separators, counts, total, min_value, max_value }
    }

    /// Number of buckets, `k`.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// The separators `s_1 … s_{k-1}` (non-decreasing, `k − 1` entries).
    pub fn separators(&self) -> &[i64] {
        &self.separators
    }

    /// Per-bucket counts (exact or scaled estimates; see constructors).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of tuples summarized, `n`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest value observed when the histogram was built.
    pub fn min_value(&self) -> i64 {
        self.min_value
    }

    /// Largest value observed when the histogram was built.
    pub fn max_value(&self) -> i64 {
        self.max_value
    }

    /// The ideal bucket size `n/k` every bucket of a perfect equi-height
    /// histogram would have.
    pub fn ideal_bucket_size(&self) -> f64 {
        self.total as f64 / self.num_buckets() as f64
    }

    /// Index of the bucket that value `v` belongs to under the rule
    /// `B_j = (s_{j-1}, s_j]`: the first bucket whose separator is `≥ v`.
    pub fn bucket_of(&self, v: i64) -> usize {
        self.separators.partition_point(|&s| s < v)
    }

    /// Iterate over the buckets with their domain bounds.
    pub fn buckets(&self) -> impl Iterator<Item = BucketRef> + '_ {
        (0..self.num_buckets()).map(move |j| BucketRef {
            index: j,
            lower: if j == 0 { Bound::Unbounded } else { Bound::Excluded(self.separators[j - 1]) },
            upper: if j == self.num_buckets() - 1 {
                Bound::Unbounded
            } else {
                Bound::Included(self.separators[j])
            },
            count: self.counts[j],
        })
    }

    /// Re-derive this histogram against a different (sorted) dataset:
    /// same separators, counts taken from `sorted`. This is the operation
    /// behind every error metric — "partition V with the sample's
    /// separators" (paper Section 3.1) — and behind cross-validation.
    pub fn recount_against(&self, sorted: &[i64]) -> Self {
        assert!(!sorted.is_empty(), "cannot recount against an empty value set");
        let counts = bucket_counts(sorted, &self.separators);
        Self {
            separators: self.separators.clone(),
            counts,
            total: sorted.len() as u64,
            min_value: sorted[0],
            max_value: *sorted.last().expect("non-empty"),
        }
    }
}

/// Sortless construction core: resolve the separator ranks of `values`
/// by radix counting and turn the returned `(value, count_le)` pairs
/// into `(separators, bucket counts, min, max)` — the same
/// consecutive-difference formula [`bucket_counts`] applies to sorted
/// data, so the result is byte-identical to the sort path.
fn resolve_via_radix(threads: usize, values: &[i64], k: usize) -> (Vec<i64>, Vec<u64>, i64, i64) {
    let ranks = selection::separator_ranks(values.len(), k);
    let resolution = radix::resolve_ranks_threads(threads, values, &ranks);
    let mut separators = Vec::with_capacity(k - 1);
    let mut counts = Vec::with_capacity(k);
    let mut prev = 0u64;
    for (v, le) in resolution.entries {
        separators.push(v);
        debug_assert!(le >= prev);
        counts.push(le - prev);
        prev = le;
    }
    counts.push(values.len() as u64 - prev);
    (separators, counts, resolution.min, resolution.max)
}

/// Separators of the equi-height k-histogram of `sorted`: the values at
/// 1-based ranks `⌈j·n/k⌉` for `j = 1 … k−1`.
fn quantile_separators(sorted: &[i64], k: usize) -> Vec<i64> {
    let n = sorted.len() as u64;
    (1..k as u64)
        .map(|j| {
            let rank = crate::math::div_ceil_u64(j * n, k as u64); // 1-based, ≥ 1
            sorted[(rank - 1) as usize]
        })
        .collect()
}

/// Scale `sample_counts` (summing to `r`) to estimates summing to exactly
/// `n`, using largest-remainder rounding.
fn scale_counts_largest_remainder(sample_counts: &[u64], r: u64, n: u64) -> Vec<u64> {
    debug_assert_eq!(sample_counts.iter().sum::<u64>(), r);
    let scale = n as f64 / r as f64;
    let raw: Vec<f64> = sample_counts.iter().map(|&c| c as f64 * scale).collect();
    let mut floors: Vec<u64> = raw.iter().map(|&x| x.floor() as u64).collect();
    let assigned: u64 = floors.iter().sum();
    let mut leftover = (n - assigned.min(n)) as usize;
    // Hand the leftover units to the buckets with the largest fractional
    // parts, ties broken by index for determinism.
    let mut order: Vec<usize> = (0..raw.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a] - raw[a].floor();
        let fb = raw[b] - raw[b].floor();
        fb.partial_cmp(&fa).expect("fractional parts are finite").then(a.cmp(&b))
    });
    for &i in order.iter() {
        if leftover == 0 {
            break;
        }
        floors[i] += 1;
        leftover -= 1;
    }
    debug_assert_eq!(floors.iter().sum::<u64>(), n);
    floors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_histogram_distinct_values() {
        let data: Vec<i64> = (1..=12).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 4);
        assert_eq!(h.num_buckets(), 4);
        assert_eq!(h.separators(), &[3, 6, 9]);
        assert_eq!(h.counts(), &[3, 3, 3, 3]);
        assert_eq!(h.total(), 12);
        assert_eq!(h.min_value(), 1);
        assert_eq!(h.max_value(), 12);
        assert_eq!(h.ideal_bucket_size(), 3.0);
    }

    #[test]
    fn perfect_histogram_non_divisible() {
        let data: Vec<i64> = (1..=10).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 3);
        // Ranks ceil(10/3)=4, ceil(20/3)=7 -> separators 4, 7.
        assert_eq!(h.separators(), &[4, 7]);
        assert_eq!(h.counts(), &[4, 3, 3]);
    }

    #[test]
    fn single_bucket_histogram() {
        let data = vec![5, 1, 9, 3];
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let h = EquiHeightHistogram::from_sorted(&sorted, 1);
        assert!(h.separators().is_empty());
        assert_eq!(h.counts(), &[4]);
    }

    #[test]
    fn more_buckets_than_values() {
        let data = [10, 20];
        let h = EquiHeightHistogram::from_sorted(&data, 5);
        assert_eq!(h.num_buckets(), 5);
        assert_eq!(h.counts().iter().sum::<u64>(), 2);
        // Separators are still non-decreasing and drawn from the data.
        assert!(h.separators().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn duplicates_produce_repeated_separators() {
        // One value holds 80% of the data: separators collapse onto it.
        let mut data = vec![7i64; 80];
        data.extend(81..=100); // 20 distinct tail values
        data.sort_unstable();
        let h = EquiHeightHistogram::from_sorted(&data, 10);
        // Ranks 10,20,...,70 are all the value 7.
        assert!(h.separators()[..7].iter().all(|&s| s == 7));
        // All 80 copies land in the first bucket that 7 belongs to.
        assert_eq!(h.counts()[0], 80);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn bucket_of_respects_half_open_rule() {
        let data: Vec<i64> = (1..=12).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 4); // seps 3, 6, 9
        assert_eq!(h.bucket_of(3), 0); // s_1 = 3 belongs to B_1 (index 0)
        assert_eq!(h.bucket_of(4), 1);
        assert_eq!(h.bucket_of(6), 1);
        assert_eq!(h.bucket_of(7), 2);
        assert_eq!(h.bucket_of(100), 3);
        assert_eq!(h.bucket_of(i64::MIN), 0);
    }

    #[test]
    fn buckets_iterator_bounds() {
        let data: Vec<i64> = (1..=12).collect();
        let h = EquiHeightHistogram::from_sorted(&data, 4);
        let buckets: Vec<BucketRef> = h.buckets().collect();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].lower, Bound::Unbounded);
        assert_eq!(buckets[0].upper, Bound::Included(3));
        assert_eq!(buckets[1].lower, Bound::Excluded(3));
        assert_eq!(buckets[3].upper, Bound::Unbounded);
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), 12);
    }

    #[test]
    fn sampled_histogram_counts_sum_to_population() {
        let sample: Vec<i64> = (0..100).map(|i| i * 3).collect();
        let h = EquiHeightHistogram::from_sorted_sample(&sample, 7, 1_000_003);
        assert_eq!(h.total(), 1_000_003);
        assert_eq!(h.counts().iter().sum::<u64>(), 1_000_003);
        assert_eq!(h.num_buckets(), 7);
    }

    #[test]
    fn sampled_histogram_equals_perfect_when_sample_is_population() {
        let data: Vec<i64> = (1..=1000).collect();
        let perfect = EquiHeightHistogram::from_sorted(&data, 8);
        let sampled = EquiHeightHistogram::from_sorted_sample(&data, 8, 1000);
        assert_eq!(perfect, sampled);
    }

    #[test]
    fn recount_against_other_data() {
        let sample: Vec<i64> = vec![10, 20, 30, 40];
        let h = EquiHeightHistogram::from_sorted_sample(&sample, 2, 4); // sep [20]
        let population: Vec<i64> = (1..=100).collect();
        let recounted = h.recount_against(&population);
        assert_eq!(recounted.separators(), h.separators());
        assert_eq!(recounted.counts(), &[20, 80]);
        assert_eq!(recounted.total(), 100);
    }

    #[test]
    fn largest_remainder_rounding_is_exact() {
        let scaled = scale_counts_largest_remainder(&[1, 1, 1], 3, 10);
        assert_eq!(scaled.iter().sum::<u64>(), 10);
        // 10/3 each: floors 3,3,3 plus one remainder unit to the first.
        assert_eq!(scaled, vec![4, 3, 3]);

        let scaled = scale_counts_largest_remainder(&[2, 0, 1], 3, 7);
        assert_eq!(scaled.iter().sum::<u64>(), 7);
        assert_eq!(scaled[1], 0, "empty buckets stay empty");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = EquiHeightHistogram::from_sorted(&[1, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn empty_data_rejected() {
        let _ = EquiHeightHistogram::from_sorted(&[], 3);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn sample_larger_than_population_rejected() {
        let sample: Vec<i64> = (0..10).collect();
        let _ = EquiHeightHistogram::from_sorted_sample(&sample, 2, 5);
    }

    /// Deterministic duplicate-heavy multiset for path-equivalence tests.
    fn noisy(n: usize, domain: u64) -> Vec<i64> {
        let mut x = 0x9E37_79B9u64 | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % domain) as i64
            })
            .collect()
    }

    #[test]
    fn from_unsorted_matches_sorted_path_on_both_routes() {
        // Small input: routed through sort. Large input: routed through
        // selection. Either way the result must equal from_sorted exactly.
        for (n, k) in [(100usize, 7usize), (20_000, 64), (20_000, 599)] {
            let data = noisy(n, 97);
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let reference = EquiHeightHistogram::from_sorted(&sorted, k);
            assert_eq!(EquiHeightHistogram::from_unsorted(data, k), reference, "n={n} k={k}");
        }
    }

    #[test]
    fn from_unsorted_sample_matches_sorted_sample_on_both_routes() {
        for (n, k) in [(50usize, 5usize), (20_000, 100)] {
            let data = noisy(n, 41);
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let pop = (2 * n + 3) as u64;
            let reference = EquiHeightHistogram::from_sorted_sample(&sorted, k, pop);
            assert_eq!(
                EquiHeightHistogram::from_unsorted_sample(data, k, pop),
                reference,
                "n={n} k={k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "population")]
    fn from_unsorted_sample_rejects_small_population_on_selection_path() {
        // Large enough to take the selection route: the population assert
        // must still fire with the same message as the sorted path.
        let sample: Vec<i64> = (0..20_000).collect();
        let _ = EquiHeightHistogram::from_unsorted_sample(sample, 10, 100);
    }

    #[test]
    fn explicit_routes_agree_byte_for_byte() {
        use ConstructionRoute::{Auto, Radix, Selection, Sort};
        for (n, k) in [(10_000usize, 64usize), (20_000, 599)] {
            let data = noisy(n, 97);
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let reference = EquiHeightHistogram::from_sorted(&sorted, k);
            for route in [Auto, Sort, Selection, Radix] {
                for threads in [1usize, 4] {
                    let mut work = data.clone();
                    let h = EquiHeightHistogram::from_unsorted_with_route_threads(
                        threads, &mut work, k, route,
                    );
                    assert_eq!(h, reference, "route={route:?} threads={threads} n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn explicit_routes_agree_on_samples() {
        use ConstructionRoute::{Auto, Radix, Selection, Sort};
        let data = noisy(15_000, 41);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let pop = 123_457u64;
        let reference = EquiHeightHistogram::from_sorted_sample(&sorted, 100, pop);
        for route in [Auto, Sort, Selection, Radix] {
            for threads in [1usize, 4] {
                let mut work = data.clone();
                let h = EquiHeightHistogram::from_unsorted_sample_with_route_threads(
                    threads, &mut work, 100, pop, route,
                );
                assert_eq!(h, reference, "route={route:?} threads={threads}");
            }
        }
    }

    #[test]
    fn auto_route_resolves_by_shape() {
        use ConstructionRoute::{Auto, Radix, Selection, Sort};
        assert_eq!(Auto.resolve(100, 10), Sort, "small input sorts");
        assert_eq!(Auto.resolve(1 << 20, 600), Radix, "large input takes radix");
        assert_eq!(Sort.resolve(1 << 20, 600), Sort, "explicit route sticks");
        assert_eq!(Selection.resolve(10, 3), Selection);
        assert_eq!(Radix.as_str(), "radix");
        assert_eq!(Auto.as_str(), "auto");
    }

    #[test]
    fn from_parts_validates_invariants() {
        let h = EquiHeightHistogram::from_parts(vec![5], vec![3, 4], 0, 10);
        assert_eq!(h.total(), 7);
    }

    #[test]
    #[should_panic(expected = "k buckets require k-1 separators")]
    fn from_parts_rejects_arity_mismatch() {
        let _ = EquiHeightHistogram::from_parts(vec![5, 6], vec![3, 4], 0, 10);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_parts_rejects_unsorted_separators() {
        let _ = EquiHeightHistogram::from_parts(vec![6, 5], vec![1, 1, 1], 0, 10);
    }
}
