//! Jackknife estimators (Burnham & Overton lineage — paper references
//! [2, 3]; the finite-population form follows Haas, Naughton, Seshadri &
//! Stokes, VLDB 1995).

use super::{clamp_feasible, DistinctEstimator, FrequencyProfile};

/// The classic first-order jackknife for species estimation:
/// `d̂ = d + f₁·(r−1)/r`. Derived for infinite populations; on database
/// columns it barely corrects the raw sample count and underestimates
/// heavily at low sampling fractions — which is exactly why it appears
/// here as a baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jackknife1;

impl DistinctEstimator for Jackknife1 {
    fn name(&self) -> &'static str {
        "Jackknife1"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        let d = profile.distinct_in_sample() as f64;
        let r = profile.sample_size() as f64;
        let e = if r <= 1.0 { d } else { d + profile.f1() as f64 * (r - 1.0) / r };
        clamp_feasible(e, profile, n)
    }
}

/// The finite-population ("unsmoothed") first-order jackknife used in the
/// database literature: `d̂ = d / (1 − (1−q)·f₁/r)` with sampling fraction
/// `q = r/n`. Inflates the sample count by the estimated probability that
/// a value was missed entirely, inferred from the singleton rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FiniteJackknife;

impl DistinctEstimator for FiniteJackknife {
    fn name(&self) -> &'static str {
        "FiniteJackknife"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        let d = profile.distinct_in_sample() as f64;
        let r = profile.sample_size() as f64;
        let q = r / n as f64;
        let denom = 1.0 - (1.0 - q) * profile.f1() as f64 / r;
        let e = if denom <= 0.0 { n as f64 } else { d / denom };
        clamp_feasible(e, profile, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jackknife1_formula() {
        // d = 10, f1 = 4, r = 16 -> 10 + 4·15/16 = 13.75.
        let p = FrequencyProfile::from_pairs(vec![(1, 4), (2, 6)]);
        assert!((Jackknife1.estimate(&p, 100_000) - 13.75).abs() < 1e-12);
    }

    #[test]
    fn jackknife1_single_tuple_sample() {
        let p = FrequencyProfile::from_pairs(vec![(1, 1)]);
        assert_eq!(Jackknife1.estimate(&p, 1000), 1.0);
    }

    #[test]
    fn finite_jackknife_formula() {
        // d = 10, f1 = 4, r = 16, n = 160 -> q = 0.1,
        // denom = 1 - 0.9*4/16 = 0.775, e = 12.903...
        let p = FrequencyProfile::from_pairs(vec![(1, 4), (2, 6)]);
        let e = FiniteJackknife.estimate(&p, 160);
        assert!((e - 10.0 / 0.775).abs() < 1e-9, "e = {e}");
    }

    #[test]
    fn finite_jackknife_all_singletons_near_full_scan() {
        // q -> 1: denom -> 1, estimate -> d (the sample IS the data).
        let p = FrequencyProfile::from_pairs(vec![(1, 100)]);
        let e = FiniteJackknife.estimate(&p, 100);
        assert_eq!(e, 100.0);
    }

    #[test]
    fn finite_jackknife_degenerate_denominator_caps_at_n() {
        // All singletons at a tiny fraction: denom = 1-(1-q) = q, e = d/q
        // = d·n/r = n when d = r; stays capped.
        let p = FrequencyProfile::from_pairs(vec![(1, 10)]);
        let e = FiniteJackknife.estimate(&p, 1_000_000);
        assert_eq!(e, 1_000_000.0);
    }

    #[test]
    fn finite_corrects_more_than_classic_at_low_fraction() {
        let p = FrequencyProfile::from_pairs(vec![(1, 50), (2, 25)]);
        let n = 1_000_000;
        assert!(FiniteJackknife.estimate(&p, n) > Jackknife1.estimate(&p, n));
    }
}
