//! Theorem 8 — the impossibility of reliable distinct-value estimation —
//! made constructive.
//!
//! **Theorem 8.** For any estimator `d̂` from a random sample of `r` of
//! `n` tuples and any `γ > e^{−r}`, there is a relation on which, with
//! probability ≥ γ,
//!
//! ```text
//! error(d̂) ≥ √( n·ln(1/γ) / r ).
//! ```
//!
//! The construction behind it is an indistinguishable pair: take
//! `j ≈ n·ln(1/γ)/r` "special" tuples. Relation **LOW** gives all `n`
//! tuples one common value (`d = 1`... more generally a base multiset);
//! relation **HIGH** replaces the `j` special tuples with `j` fresh
//! distinct values (`d = 1 + j`). A sample of size `r` from HIGH misses
//! every special tuple with probability `(1 − j/n)^r ≥ e^{−2jr/n} ≈ γ²ᐟ…`
//! — in which case it is *identical* to a sample from LOW, so the
//! estimator must answer the same on both, and whatever it answers is off
//! by a factor ≥ `√(d_high/d_low)` on one of them.
//!
//! This module provides the analytic floor, the hard pair itself, and the
//! miss probability, so the `thm8_lower_bound` bench can check every
//! estimator in the crate against the wall empirically.

/// The Theorem 8 error floor `√(n·ln(1/γ)/r)`.
///
/// # Panics
/// If `γ ∉ (e^{−r}, 1)` (outside the theorem's stated domain) or `r > n`.
pub fn theorem8_error_floor(n: u64, r: u64, gamma: f64) -> f64 {
    assert!(r > 0 && r <= n, "need 0 < r ≤ n");
    assert!(gamma < 1.0, "γ must be below 1");
    assert!(gamma > (-(r as f64)).exp(), "Theorem 8 requires γ > e^(−r), got γ = {gamma}");
    (n as f64 * (1.0 / gamma).ln() / r as f64).sqrt()
}

/// The indistinguishable pair of relations realizing the lower bound.
#[derive(Debug, Clone)]
pub struct HardPair {
    /// Relation size.
    pub n: u64,
    /// Number of special (distinct-valued) tuples in the HIGH relation.
    pub j: u64,
    /// Sample size the pair is calibrated against.
    pub r: u64,
    /// Target miss probability γ.
    pub gamma: f64,
}

impl HardPair {
    /// Calibrate the pair: `j = ⌊n·ln(1/γ)/r⌋`, clamped to `[1, n−1]`.
    pub fn new(n: u64, r: u64, gamma: f64) -> Self {
        assert!(n >= 2, "need at least two tuples");
        assert!(r > 0 && r <= n, "need 0 < r ≤ n");
        assert!(gamma > 0.0 && gamma < 1.0, "γ must be in (0,1)");
        let j = ((n as f64 * (1.0 / gamma).ln() / r as f64).floor() as u64).clamp(1, n - 1);
        Self { n, j, r, gamma }
    }

    /// The LOW relation: every tuple carries value 0; `d = 1`.
    pub fn low_relation(&self) -> Vec<i64> {
        vec![0i64; self.n as usize]
    }

    /// The HIGH relation: `n − j` tuples of value 0 plus `j` distinct
    /// values `1..=j`; `d = 1 + j`.
    pub fn high_relation(&self) -> Vec<i64> {
        let mut v = vec![0i64; (self.n - self.j) as usize];
        v.extend(1..=self.j as i64);
        v
    }

    /// Distinct counts of the two relations.
    pub fn d_low(&self) -> u64 {
        1
    }

    /// Distinct counts of the two relations.
    pub fn d_high(&self) -> u64 {
        1 + self.j
    }

    /// Probability that a with-replacement sample of size `r` from HIGH
    /// contains **no** special tuple — i.e. is indistinguishable from a
    /// sample of LOW: `(1 − j/n)^r`.
    pub fn miss_probability(&self) -> f64 {
        (1.0 - self.j as f64 / self.n as f64).powf(self.r as f64)
    }

    /// The guaranteed error when the sample misses: whatever single answer
    /// `a` an estimator gives to the all-zero sample, its folded ratio
    /// error on LOW is `max(a,1)/min(a,1)·…` ≥ `a` and on HIGH is
    /// ≥ `d_high/a`; the max of the two is minimized at `a = √d_high`,
    /// giving the floor `√(d_high)` = `√(1 + j)`.
    pub fn forced_error(&self) -> f64 {
        (self.d_high() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinct::error::ratio_error;
    use crate::distinct::{all_estimators, FrequencyProfile};

    /// The paper's reality check: Haas et al. saw average error 1.33 and
    /// max error 2.86 at r = 0.2·n; at γ = 0.5 the theorem forces ≥ 1.86
    /// somewhere — "in fairly close accordance with real experiments".
    #[test]
    fn haas_et_al_consistency() {
        let n = 1_000_000u64;
        let r = n / 5;
        let floor = theorem8_error_floor(n, r, 0.5);
        assert!((floor - 1.86).abs() < 0.01, "floor = {floor}");
    }

    #[test]
    fn floor_shrinks_with_sample_size() {
        let n = 1_000_000u64;
        let f1 = theorem8_error_floor(n, n / 100, 0.1);
        let f2 = theorem8_error_floor(n, n / 10, 0.1);
        let f3 = theorem8_error_floor(n, n, 0.1);
        assert!(f1 > f2 && f2 > f3);
        // Even a full scan's floor is sqrt(ln 10) ≈ 1.5? No: r = n makes
        // the *bound* small but ≥ 1 is the natural floor of ratio error.
        assert!(f3 >= 1.0);
    }

    #[test]
    fn hard_pair_shapes() {
        let pair = HardPair::new(100_000, 1_000, 0.25);
        // j = floor(1e5 * ln4 / 1e3) = floor(138.6) = 138.
        assert_eq!(pair.j, 138);
        assert_eq!(pair.d_low(), 1);
        assert_eq!(pair.d_high(), 139);
        let low = pair.low_relation();
        let high = pair.high_relation();
        assert_eq!(low.len(), 100_000);
        assert_eq!(high.len(), 100_000);
        let mut h = high.clone();
        h.sort_unstable();
        h.dedup();
        assert_eq!(h.len() as u64, pair.d_high());
    }

    #[test]
    fn miss_probability_matches_gamma_calibration() {
        let pair = HardPair::new(1_000_000, 10_000, 0.3);
        // (1 - j/n)^r ≈ e^{-jr/n} = e^{-ln(1/γ)} = γ (up to rounding of j).
        let p = pair.miss_probability();
        assert!((p - 0.3).abs() < 0.02, "miss probability = {p}");
    }

    /// Empirical Theorem 8: every estimator in the crate, fed the all-zero
    /// sample the HIGH relation produces with probability ≈ γ, errs by at
    /// least √(d_high) on one of the two relations — which is within a
    /// constant of the analytic floor.
    #[test]
    fn every_estimator_hits_the_wall() {
        let pair = HardPair::new(100_000, 2_000, 0.5);
        let r = pair.r;
        // The indistinguishable sample: r copies of value 0.
        let profile = FrequencyProfile::from_pairs(vec![(r, 1)]);
        for est in all_estimators() {
            let answer = est.estimate(&profile, pair.n);
            let err_low = ratio_error(answer, pair.d_low());
            let err_high = ratio_error(answer, pair.d_high());
            let worst = err_low.max(err_high);
            assert!(
                worst + 1e-9 >= pair.forced_error(),
                "{} escaped the wall: answer {answer}, worst error {worst}, floor {}",
                est.name(),
                pair.forced_error()
            );
        }
    }

    #[test]
    fn forced_error_tracks_floor() {
        // forced_error = sqrt(1+j) ≈ sqrt(n ln(1/γ)/r) = analytic floor.
        let pair = HardPair::new(1_000_000, 5_000, 0.2);
        let floor = theorem8_error_floor(pair.n, pair.r, pair.gamma);
        assert!((pair.forced_error() - floor).abs() / floor < 0.05);
    }

    #[test]
    #[should_panic(expected = "γ > e^(−r)")]
    fn gamma_domain_enforced() {
        let _ = theorem8_error_floor(1000, 5, 0.001);
    }
}
