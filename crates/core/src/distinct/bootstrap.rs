//! The bootstrap estimator for the number of classes (Smith & van Belle
//! 1984) — another classical baseline from the species-estimation
//! literature the paper's Section 6 surveys.
//!
//! The bootstrap corrects the raw sample count by each observed value's
//! estimated probability of having been missed by a hypothetical
//! resample:
//!
//! ```text
//! d̂ = d + Σ_j f_j · (1 − j/r)^r
//! ```
//!
//! (a value seen `j` times has plug-in frequency `j/r`; a resample of
//! size `r` misses it with probability `(1 − j/r)^r`). Like the
//! jackknife, it is derived for the resampling view of the sample rather
//! than for the finite population, so it under-corrects hard at database
//! sampling fractions — each missed value can hide up to `n/r` distinct
//! population values, but the bootstrap adds at most `d` in total.

use super::{clamp_feasible, DistinctEstimator, FrequencyProfile};

/// Smith–van Belle bootstrap: `d + Σ f_j·(1 − j/r)^r`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bootstrap;

impl DistinctEstimator for Bootstrap {
    fn name(&self) -> &'static str {
        "Bootstrap"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        let r = profile.sample_size() as f64;
        let mut e = profile.distinct_in_sample() as f64;
        for (j, f_j) in profile.iter() {
            let miss = (1.0 - j as f64 / r).powf(r);
            e += f_j as f64 * miss;
        }
        clamp_feasible(e, profile, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_on_singletons() {
        // All singletons: d̂ = d·(1 + (1 − 1/r)^r) ≈ d·(1 + 1/e).
        let r = 1000u64;
        let p = FrequencyProfile::from_pairs(vec![(1, r)]);
        let e = Bootstrap.estimate(&p, 1_000_000);
        let expected = r as f64 * (1.0 + (1.0 - 1.0 / r as f64).powf(r as f64));
        assert!((e - expected).abs() < 1e-9, "e = {e}, expected {expected}");
        assert!((e / r as f64 - 1.368).abs() < 0.01);
    }

    #[test]
    fn high_multiplicity_values_add_nothing() {
        // A value seen 100 times in a sample of 100: (1-1)^r = 0.
        let p = FrequencyProfile::from_pairs(vec![(100, 1)]);
        assert_eq!(Bootstrap.estimate(&p, 10_000), 1.0);
    }

    #[test]
    fn bounded_by_twice_sample_distinct() {
        // The correction is at most d, so d̂ ≤ 2d always — the structural
        // reason it under-estimates at low sampling fractions.
        let p = FrequencyProfile::from_pairs(vec![(1, 50), (2, 30), (5, 20)]);
        let d = p.distinct_in_sample() as f64;
        let e = Bootstrap.estimate(&p, 100_000_000);
        assert!(e <= 2.0 * d + 1e-9, "e = {e}, d = {d}");
        assert!(e >= d);
    }

    #[test]
    fn between_sample_count_and_jackknife_on_mixed_profiles() {
        use crate::distinct::Jackknife1;
        // Bootstrap's singleton correction f1/e is weaker than the
        // jackknife's f1·(r−1)/r.
        let p = FrequencyProfile::from_pairs(vec![(1, 40), (2, 30)]);
        let boot = Bootstrap.estimate(&p, 1_000_000);
        let jack = Jackknife1.estimate(&p, 1_000_000);
        let d = p.distinct_in_sample() as f64;
        assert!(boot > d);
        assert!(boot < jack, "bootstrap {boot} vs jackknife {jack}");
    }
}
