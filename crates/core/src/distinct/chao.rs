//! Chao's nonparametric estimators — classical baselines from the species
//! estimation literature (paper references [4] and the Chao–Lee coverage
//! variant used in the database evaluations of Haas et al.).

use super::{clamp_feasible, DistinctEstimator, FrequencyProfile};

/// Chao (1984): `d̂ = d + f₁²/(2·f₂)`, a lower-bound-style estimator built
/// on the singleton/doubleton ratio. When `f₂ = 0` the bias-corrected
/// variant `d + f₁(f₁−1)/2` is used (the standard fix; the raw formula
/// divides by zero).
#[derive(Debug, Clone, Copy, Default)]
pub struct Chao84;

impl DistinctEstimator for Chao84 {
    fn name(&self) -> &'static str {
        "Chao84"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        let d = profile.distinct_in_sample() as f64;
        let f1 = profile.f1() as f64;
        let f2 = profile.f2() as f64;
        let add = if f2 > 0.0 { f1 * f1 / (2.0 * f2) } else { f1 * (f1 - 1.0) / 2.0 };
        clamp_feasible(d + add, profile, n)
    }
}

/// Chao & Lee (1992): coverage-based estimation with a skew correction,
/// `d̂ = d/Ĉ + r(1−Ĉ)/Ĉ · γ̂²` where `Ĉ = 1 − f₁/r` is the Good–Turing
/// sample coverage and `γ̂²` the estimated squared coefficient of
/// variation of the population frequencies. Degenerates gracefully:
/// all-singleton samples (Ĉ = 0) fall back to the linear scale-up.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaoLee;

impl DistinctEstimator for ChaoLee {
    fn name(&self) -> &'static str {
        "ChaoLee"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        let d = profile.distinct_in_sample() as f64;
        let r = profile.sample_size() as f64;
        let coverage = 1.0 - profile.f1() as f64 / r;
        if coverage <= 0.0 {
            // No coverage information at all: the least-wrong fallback is
            // the linear scale-up (all-singletons is its one good case).
            return clamp_feasible(d * n as f64 / r, profile, n);
        }
        let gamma2 = profile.squared_cv_estimate();
        let e = d / coverage + r * (1.0 - coverage) / coverage * gamma2;
        clamp_feasible(e, profile, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chao84_formula() {
        // f1 = 8, f2 = 4, d = 15 -> 15 + 64/8 = 23.
        let p = FrequencyProfile::from_pairs(vec![(1, 8), (2, 4), (3, 3)]);
        assert_eq!(Chao84.estimate(&p, 100_000), 23.0);
    }

    #[test]
    fn chao84_f2_zero_bias_corrected() {
        // f1 = 5, f2 = 0 -> d + 5·4/2 = 8 + 10.
        let p = FrequencyProfile::from_pairs(vec![(1, 5), (3, 3)]);
        assert_eq!(Chao84.estimate(&p, 100_000), 18.0);
    }

    #[test]
    fn chao84_no_singletons_returns_sample_count() {
        let p = FrequencyProfile::from_pairs(vec![(2, 10)]);
        assert_eq!(Chao84.estimate(&p, 100_000), 10.0);
    }

    #[test]
    fn chao_lee_uniform_case_is_coverage_scaleup() {
        // Homogeneous multiplicities: γ̂² = 0, so d̂ = d/Ĉ.
        let p = FrequencyProfile::from_pairs(vec![(1, 10), (2, 45)]);
        let r = 100.0;
        let coverage = 1.0 - 10.0 / r;
        let expected = 55.0 / coverage;
        let e = ChaoLee.estimate(&p, 1_000_000);
        // γ̂² may be slightly positive; allow a modest band above d/Ĉ.
        assert!(e >= expected - 1e-9 && e < expected * 1.5, "e = {e}");
    }

    #[test]
    fn chao_lee_all_singletons_falls_back_to_scaleup() {
        let p = FrequencyProfile::from_pairs(vec![(1, 50)]);
        let e = ChaoLee.estimate(&p, 5000);
        assert_eq!(e, 5000.0); // 50 * 5000/50 = 5000 = n (capped anyway)
    }

    #[test]
    fn chao_lee_respects_cap() {
        let p = FrequencyProfile::from_pairs(vec![(1, 99), (2, 1)]);
        let e = ChaoLee.estimate(&p, 200);
        assert!(e <= 200.0);
    }
}
