//! Distinct-value estimation (paper Section 6).
//!
//! Estimating the number of distinct values `d` of a column from a random
//! sample is the one statistic the paper proves **cannot** be done
//! reliably: Theorem 8 shows any estimator suffers ratio error
//! `≥ √(n·ln(1/γ)/r)` on some input, with probability ≥ γ ([`adversarial`]
//! reproduces the construction). The constructive side is the paper's new
//! estimator ([`Gee`]) — `√(n/r)·max(f₁,1) + Σ_{j≥2} fⱼ` — which balances
//! the two extremes that the unavoidable uncertainty spans, and the
//! observation that the *weaker* metric `rel-error = (d − d̂)/n` (relative
//! to the table size, not to `d`) **is** reliably small and still useful
//! to an optimizer ([`error`]).
//!
//! The classical baselines the database literature had tried (Goodman,
//! Chao, Chao–Lee, jackknife, Shlosser, plus the naive scale-ups) are all
//! implemented behind one [`DistinctEstimator`] trait so the Section 7
//! shoot-out (Figures 9–12) can be reproduced like-for-like.

pub mod adversarial;
mod bootstrap;
mod chao;
pub mod error;
mod freq;
mod gee;
mod goodman;
mod hybrid;
mod jackknife;
mod naive;
mod shlosser;

pub use bootstrap::Bootstrap;
pub use chao::{Chao84, ChaoLee};
pub use freq::FrequencyProfile;
pub use gee::Gee;
pub use goodman::{Goodman, GoodmanInstability};
pub use hybrid::HybridGee;
pub use jackknife::{FiniteJackknife, Jackknife1};
pub use naive::{SampleDistinct, ScaleUp};
pub use shlosser::Shlosser;

/// A distinct-value estimator: maps the sample's frequency profile and the
/// relation size `n` to an estimate `d̂` of the number of distinct values.
///
/// Implementations must return a finite positive value for every
/// non-empty profile with `n ≥ r`, except [`Goodman`], whose documented
/// numerical blow-up is reported as `f64::INFINITY` (that instability is
/// the point of including it).
pub trait DistinctEstimator {
    /// Short name used in experiment output ("GEE", "Shlosser", …).
    fn name(&self) -> &'static str;

    /// Estimate `d` from the sample profile, for a relation of `n` tuples.
    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64;
}

/// Every estimator in the crate, for shoot-out experiments.
pub fn all_estimators() -> Vec<Box<dyn DistinctEstimator>> {
    vec![
        Box::new(SampleDistinct),
        Box::new(ScaleUp),
        Box::new(Gee),
        Box::new(HybridGee::default()),
        Box::new(Chao84),
        Box::new(ChaoLee),
        Box::new(Jackknife1),
        Box::new(FiniteJackknife),
        Box::new(Bootstrap),
        Box::new(Shlosser),
        Box::new(Goodman),
    ]
}

/// Clamp an estimate into the feasible interval `[d_sample, n]`: no
/// estimate can be below the distinct count already observed nor above the
/// relation size. Applied by every estimator on its way out.
pub(crate) fn clamp_feasible(estimate: f64, profile: &FrequencyProfile, n: u64) -> f64 {
    let lo = profile.distinct_in_sample() as f64;
    if !estimate.is_finite() {
        return if estimate > 0.0 { n as f64 } else { lo };
    }
    estimate.clamp(lo, n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_of(sample: &mut [i64]) -> FrequencyProfile {
        sample.sort_unstable();
        FrequencyProfile::from_sorted_sample(sample)
    }

    /// Every estimator stays inside the feasible interval [d_sample, n].
    #[test]
    fn all_estimators_feasible_range() {
        let mut samples: Vec<Vec<i64>> = vec![
            (0..100).collect(),                                        // all distinct
            vec![1; 100],                                              // one value
            (0..50).flat_map(|v| [v, v]).collect(),                    // all pairs
            (0..10).flat_map(|v| vec![v; (v + 1) as usize]).collect(), // skewed
        ];
        for sample in &mut samples {
            let p = profile_of(sample);
            let n = 1_000_000u64;
            for est in all_estimators() {
                if est.name() == "Goodman" {
                    continue; // deliberately unclamped (unbiasedness); see its docs
                }
                let d_hat = est.estimate(&p, n);
                assert!(
                    d_hat >= p.distinct_in_sample() as f64 && d_hat <= n as f64,
                    "{} returned {} outside [{}, {}] on {:?}",
                    est.name(),
                    d_hat,
                    p.distinct_in_sample(),
                    n,
                    p
                );
            }
        }
    }

    /// With the full relation as the sample, everything reasonable lands
    /// on the exact answer.
    #[test]
    fn full_scan_recovers_exact_count() {
        let mut data: Vec<i64> = (0..200).flat_map(|v| [v, v, v]).collect();
        let p = profile_of(&mut data);
        let n = 600u64; // sample == population
        for est in all_estimators() {
            let d_hat = est.estimate(&p, n);
            if est.name() == "Goodman" && !d_hat.is_finite() {
                continue;
            }
            assert!(
                (d_hat - 200.0).abs() < 12.0,
                "{}: {} on a full scan of d=200",
                est.name(),
                d_hat
            );
        }
    }

    #[test]
    fn estimator_names_are_unique() {
        let mut names: Vec<&str> = all_estimators().iter().map(|e| e.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
