//! The paper's new distinct-value estimator (Section 6.2) — known in the
//! later literature as **GEE**, the Guaranteed-Error Estimator.
//!
//! ```text
//! e = √(n/r) · max(f₁, 1) + Σ_{j≥2} f_j
//! ```
//!
//! Rationale (Section 6.2): values seen **at least twice** almost surely
//! have population frequency well above `n/r`, so counting them once each
//! is safe — the second summation. Values seen **exactly once** are the
//! ambiguous ones: each singleton could represent anywhere from 1 to
//! ~`n/r` distinct population values. Multiplying `f₁` by the *geometric
//! mean* `√(n/r)` of those extremes equalizes the worst-case ratio error
//! in both directions, which is what makes the estimator optimal against
//! the Theorem 8 lower bound (its worst ratio error is `O(√(n/r))`,
//! matching the `Ω(√(n/r))` impossibility up to the log factor).

use super::{clamp_feasible, DistinctEstimator, FrequencyProfile};

/// The paper's estimator: `√(n/r)·max(f₁,1) + Σ_{j≥2} f_j`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gee;

impl DistinctEstimator for Gee {
    fn name(&self) -> &'static str {
        "GEE"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        let r = profile.sample_size();
        debug_assert!(n >= r, "population smaller than sample");
        let f1_plus = profile.f1().max(1) as f64;
        let e = (n as f64 / r as f64).sqrt() * f1_plus + profile.repeated() as f64;
        clamp_feasible(e, profile, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_on_a_known_profile() {
        // r = 100 (f1 = 40 singletons, 30 doubletons), n = 10000.
        let p = FrequencyProfile::from_pairs(vec![(1, 40), (2, 30)]);
        assert_eq!(p.sample_size(), 100);
        let e = Gee.estimate(&p, 10_000);
        // sqrt(100)*40 + 30 = 430.
        assert!((e - 430.0).abs() < 1e-12, "e = {e}");
    }

    #[test]
    fn f1_zero_uses_the_plus_one_guard() {
        // Every sampled value seen twice: f1+ = 1.
        let p = FrequencyProfile::from_pairs(vec![(2, 50)]);
        let e = Gee.estimate(&p, 10_000);
        // sqrt(10000/100)*1 + 50 = 60.
        assert!((e - 60.0).abs() < 1e-12, "e = {e}");
    }

    #[test]
    fn never_below_sample_distinct() {
        let p = FrequencyProfile::from_pairs(vec![(1, 5), (3, 5)]);
        // n barely above r: sqrt(n/r) ~ 1, e ~ 10 = d_sample.
        let e = Gee.estimate(&p, 21);
        assert!(e >= 10.0);
    }

    #[test]
    fn capped_at_relation_size() {
        // Tiny sample, all singletons, huge n: raw e = sqrt(n/r)·r can be
        // below n, but with r = 1 the clamp matters on small n.
        let p = FrequencyProfile::from_pairs(vec![(1, 4)]);
        let e = Gee.estimate(&p, 8);
        assert!(e <= 8.0);
    }

    /// On all-distinct data GEE's ratio error is ≤ √(n/r) by construction:
    /// truth d = n, estimate ≥ √(n/r)·E[f1] ≈ √(n/r)·r ... verified on the
    /// two extreme profiles.
    #[test]
    fn worst_case_ratio_is_sqrt_n_over_r() {
        let n = 1_000_000u64;
        let r = 10_000u64;
        let bound = (n as f64 / r as f64).sqrt();

        // Extreme A: all n values distinct -> sample all singletons.
        let p = FrequencyProfile::from_pairs(vec![(1, r)]);
        let e = Gee.estimate(&p, n);
        let truth = n as f64;
        let ratio = (truth / e).max(e / truth);
        assert!(ratio <= bound + 1e-9, "ratio {ratio} > {bound}");

        // Extreme B: each singleton is a value with huge multiplicity that
        // just happened to be seen once -> truth ~ d_sample.
        let truth_b = r as f64;
        let e_b = Gee.estimate(&p, n);
        let ratio_b = (truth_b / e_b).max(e_b / truth_b);
        assert!(ratio_b <= bound + 1e-9, "ratio {ratio_b} > {bound}");
    }
}
