//! Error metrics for distinct-value estimators (Definitions in paper
//! Section 6.1/6.2).
//!
//! Two very different yardsticks:
//!
//! * [`ratio_error`] — the classical (and, per Theorem 8, hopeless)
//!   metric: how far off `d̂` is from `d` *multiplicatively*, folded to be
//!   ≥ 1 in both directions.
//! * [`rel_error`] — the paper's proposed alternative: the error **as a
//!   fraction of the table size**, `(d − d̂)/n`. Theorem 8 forbids small
//!   ratio error; nothing forbids small rel-error, and Section 7's
//!   Figures 11–12 show GEE achieving it. An optimizer that consumes
//!   `d/n` (e.g. "will duplicate elimination shrink this relation?") gets
//!   reliable answers even where `d` itself is unknowable.

/// The folded ratio error of Definition 5: `d̂/d` if `d̂ ≥ d`, else
/// `d/d̂`; always ≥ 1 for positive inputs. Degenerate estimates (zero,
/// negative, or non-finite `d̂`) yield `f64::INFINITY`.
///
/// # Panics
/// If `d == 0` (a non-empty relation always has at least one distinct
/// value, so this is a caller bug).
pub fn ratio_error(d_hat: f64, d: u64) -> f64 {
    assert!(d > 0, "a non-empty relation has d ≥ 1");
    if !d_hat.is_finite() || d_hat <= 0.0 {
        return f64::INFINITY;
    }
    let d = d as f64;
    (d_hat / d).max(d / d_hat)
}

/// The paper's rel-error: `(d − d̂)/n`, signed (negative means
/// overestimate). Bounded in `[−1, 1]` whenever `d̂` is clamped to
/// `[0, n]`.
pub fn rel_error(d_hat: f64, d: u64, n: u64) -> f64 {
    assert!(n > 0, "relation must be non-empty");
    (d as f64 - d_hat) / n as f64
}

/// `|rel_error|` — what the Figure 11/12 reproductions plot.
pub fn abs_rel_error(d_hat: f64, d: u64, n: u64) -> f64 {
    rel_error(d_hat, d, n).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_error_folds_both_directions() {
        assert_eq!(ratio_error(200.0, 100), 2.0);
        assert_eq!(ratio_error(50.0, 100), 2.0);
        assert_eq!(ratio_error(100.0, 100), 1.0);
    }

    #[test]
    fn ratio_error_degenerate_estimates() {
        assert_eq!(ratio_error(0.0, 10), f64::INFINITY);
        assert_eq!(ratio_error(-5.0, 10), f64::INFINITY);
        assert_eq!(ratio_error(f64::INFINITY, 10), f64::INFINITY);
        assert_eq!(ratio_error(f64::NAN, 10), f64::INFINITY);
    }

    /// The paper's own numeric example (Section 6.2): n = 100,000,
    /// d = 500, e = 5,000 — ratio error 10 but rel-error only 0.045.
    #[test]
    fn paper_example_rel_vs_ratio() {
        let (n, d, e) = (100_000u64, 500u64, 5_000.0f64);
        assert_eq!(ratio_error(e, d), 10.0);
        assert!((rel_error(e, d, n) - (-0.045)).abs() < 1e-12);
        assert!((abs_rel_error(e, d, n) - 0.045).abs() < 1e-12);
    }

    #[test]
    fn rel_error_sign_convention() {
        // Underestimate -> positive, overestimate -> negative.
        assert!(rel_error(10.0, 100, 1000) > 0.0);
        assert!(rel_error(500.0, 100, 1000) < 0.0);
        assert_eq!(rel_error(100.0, 100, 1000), 0.0);
    }

    #[test]
    #[should_panic(expected = "d ≥ 1")]
    fn zero_d_rejected() {
        let _ = ratio_error(1.0, 0);
    }
}
