//! Shlosser's estimator (1981), the strongest classical baseline on
//! skewed data and the workhorse of the Haas et al. (VLDB 1995) hybrid.

use super::{clamp_feasible, DistinctEstimator, FrequencyProfile};

/// Shlosser's estimator for Bernoulli/fractional sampling with rate
/// `q = r/n`:
///
/// ```text
/// d̂ = d + f₁ · Σ_{i≥1} (1−q)^i f_i  /  Σ_{i≥1} i·q·(1−q)^{i−1} f_i
/// ```
///
/// Derived under the assumption that the *sample's* frequency profile is
/// proportional to the population's — accurate when duplication is
/// roughly uniform across values (e.g. the paper's Unif/Dup workload),
/// biased when a few values dominate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Shlosser;

impl DistinctEstimator for Shlosser {
    fn name(&self) -> &'static str {
        "Shlosser"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        let d = profile.distinct_in_sample() as f64;
        let q = profile.sample_size() as f64 / n as f64;
        let one_minus_q = 1.0 - q;
        let mut numerator = 0.0f64;
        let mut denominator = 0.0f64;
        for (i, f_i) in profile.iter() {
            let f_i = f_i as f64;
            // (1-q)^i and i·q·(1-q)^{i-1}: powi is exact enough and fast;
            // i can reach the sample size, but powi of a value in [0,1)
            // just underflows harmlessly to 0 for huge exponents.
            let pow_i = one_minus_q.powi(i.min(i32::MAX as u64) as i32);
            numerator += pow_i * f_i;
            let pow_im1 =
                if i == 1 { 1.0 } else { one_minus_q.powi((i - 1).min(i32::MAX as u64) as i32) };
            denominator += i as f64 * q * pow_im1 * f_i;
        }
        let e =
            if denominator > 0.0 { d + profile.f1() as f64 * numerator / denominator } else { d };
        clamp_feasible(e, profile, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scan_adds_nothing() {
        // q = 1: numerator = 0, so d̂ = d.
        let p = FrequencyProfile::from_pairs(vec![(2, 10), (3, 5)]);
        assert_eq!(Shlosser.estimate(&p, 35), 15.0);
    }

    #[test]
    fn formula_small_case() {
        // f1 = 6, f2 = 2, r = 10, n = 100 -> q = 0.1.
        // num = 0.9*6 + 0.81*2 = 7.02
        // den = 1*0.1*1*6 + 2*0.1*0.9*2 = 0.6 + 0.36 = 0.96
        // e = 8 + 6*7.02/0.96 = 8 + 43.875 = 51.875
        let p = FrequencyProfile::from_pairs(vec![(1, 6), (2, 2)]);
        let e = Shlosser.estimate(&p, 100);
        assert!((e - 51.875).abs() < 1e-9, "e = {e}");
    }

    /// Documented bias: on *uniform* duplication Shlosser's
    /// proportionality assumption fails and it overestimates — here by a
    /// predictable ~2× (B = 20 copies per value, 10% sample). This is why
    /// the Haas et al. hybrid (and ours) routes low-skew profiles to the
    /// jackknife family instead.
    #[test]
    fn overestimates_on_uniform_duplication() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let d_true = 2_000i64;
        let copies = 20usize;
        let data: Vec<i64> = (0..d_true).flat_map(|v| std::iter::repeat(v).take(copies)).collect();
        let n = data.len() as u64;
        // 10% with-replacement sample.
        let r = (n / 10) as usize;
        let mut sample: Vec<i64> = (0..r).map(|_| data[rng.gen_range(0..data.len())]).collect();
        sample.sort_unstable();
        let p = FrequencyProfile::from_sorted_sample(&sample);
        let e = Shlosser.estimate(&p, n);
        let ratio = e / d_true as f64;
        assert!(
            (1.6..2.6).contains(&ratio),
            "expected the characteristic ~2x overestimate, got {ratio} (e = {e})"
        );
    }

    /// Shlosser's home turf is *skewed* data whose distinct-value mass
    /// sits in a thin tail of true singletons (the Zipf shape): the
    /// values the sample misses really are near-singletons, which is
    /// exactly what the estimator's proportionality assumption posits.
    #[test]
    fn accurate_on_heavy_head_singleton_tail() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(177);
        // 10 heavy values (5000 copies each) + 1000 true singletons.
        let mut data: Vec<i64> = Vec::new();
        for v in 0..10i64 {
            data.extend(std::iter::repeat(v).take(5000));
        }
        data.extend(100..1100i64);
        let d_true = 1010.0f64;
        let n = data.len() as u64;
        let r = (n / 10) as usize;
        let mut sample: Vec<i64> = (0..r).map(|_| data[rng.gen_range(0..data.len())]).collect();
        sample.sort_unstable();
        let p = FrequencyProfile::from_sorted_sample(&sample);
        let e = Shlosser.estimate(&p, n);
        let ratio = (e / d_true).max(d_true / e);
        assert!(ratio < 1.4, "Shlosser off by {ratio} on singleton-tail data (e = {e})");
    }

    #[test]
    fn no_singletons_returns_sample_count() {
        let p = FrequencyProfile::from_pairs(vec![(3, 10)]);
        let e = Shlosser.estimate(&p, 10_000);
        assert_eq!(e, 10.0);
    }
}
