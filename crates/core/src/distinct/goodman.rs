//! Goodman's (1949) unique unbiased estimator — and its spectacular
//! numerical instability, which is the reason the paper (and Haas et al.
//! before it) dismiss unbiasedness as the wrong goal for this problem.
//!
//! For simple random sampling without replacement of `r` tuples from `n`,
//! Goodman showed there is exactly one unbiased estimator of the distinct
//! count of the form `d̂ = Σ_i a_i·f_i` (valid for populations whose
//! maximum multiplicity is ≤ r). Rather than transcribing the closed form,
//! we *derive* the coefficients from the unbiasedness conditions, which
//! are triangular in the population multiplicity `m`:
//!
//! ```text
//! Σ_{i=1}^{m} a_i · P_m(i) = 1      for every m = 1, 2, …, r
//! ```
//!
//! where `P_m(i)` is the hypergeometric probability that a value of
//! multiplicity `m` shows up exactly `i` times in the sample. Solving top
//! down gives `a_1 = n/r`, then each `a_m` in turn. The coefficients
//! alternate in sign and grow like `((n−r)/r)^m`, so for any realistic
//! sampling fraction the estimate explodes after a handful of terms —
//! [`GoodmanInstability`] reports exactly how.

use super::{DistinctEstimator, FrequencyProfile};
use crate::math::{hypergeometric_pmf, KahanSum};

/// Coefficients are abandoned once they exceed this magnitude — beyond it
/// the alternating sum is pure floating-point noise anyway.
const MAGNITUDE_LIMIT: f64 = 1.0e300;

/// Deriving more than this many coefficients is pointless: the blow-up
/// always happens long before (and the O(m²) solve would start to matter).
const MAX_COEFFICIENTS: u64 = 512;

/// Why Goodman's estimator could not be evaluated reliably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoodmanInstability {
    /// A coefficient exceeded the magnitude limit (1e300): the alternating series
    /// has left the representable range.
    CoefficientOverflow {
        /// The multiplicity at which the solve gave up.
        at_multiplicity: u64,
    },
    /// The sample contains a value with multiplicity beyond the
    /// coefficient cap (512).
    MultiplicityTooLarge {
        /// The offending multiplicity.
        multiplicity: u64,
    },
    /// A hypergeometric probability underflowed to zero, so the triangular
    /// solve has no pivot.
    DegeneratePivot {
        /// The multiplicity whose pivot vanished.
        at_multiplicity: u64,
    },
}

/// Goodman's unbiased estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Goodman;

impl Goodman {
    /// Evaluate the estimator, reporting instability instead of returning
    /// garbage. `Ok` values are exactly unbiased over the sampling design
    /// (see the exhaustive-enumeration test) — but may still be wildly
    /// far from `d` on any *individual* sample; that variance is the
    /// paper's point.
    pub fn try_estimate(
        &self,
        profile: &FrequencyProfile,
        n: u64,
    ) -> Result<f64, GoodmanInstability> {
        let r = profile.sample_size();
        assert!(n >= r, "population smaller than sample");
        let m_max = profile.max_multiplicity();
        if m_max > MAX_COEFFICIENTS {
            return Err(GoodmanInstability::MultiplicityTooLarge { multiplicity: m_max });
        }

        // Triangular solve for a_1 ..= a_{m_max}.
        let mut coef: Vec<f64> = Vec::with_capacity(m_max as usize);
        for m in 1..=m_max {
            let pivot = hypergeometric_pmf(n, m, r, m);
            if pivot <= 0.0 {
                return Err(GoodmanInstability::DegeneratePivot { at_multiplicity: m });
            }
            let mut partial = KahanSum::new();
            for i in 1..m {
                partial.add(coef[(i - 1) as usize] * hypergeometric_pmf(n, m, r, i));
            }
            let a_m = (1.0 - partial.total()) / pivot;
            if !a_m.is_finite() || a_m.abs() > MAGNITUDE_LIMIT {
                return Err(GoodmanInstability::CoefficientOverflow { at_multiplicity: m });
            }
            coef.push(a_m);
        }

        let mut sum = KahanSum::new();
        for (j, f_j) in profile.iter() {
            sum.add(coef[(j - 1) as usize] * f_j as f64);
        }
        Ok(sum.total())
    }
}

impl DistinctEstimator for Goodman {
    fn name(&self) -> &'static str {
        "Goodman"
    }

    /// Trait-level evaluation: instability is surfaced as
    /// `f64::INFINITY` — a deliberately unusable sentinel, because an
    /// "estimate" from a blown-up alternating series would be
    /// indistinguishable from a real one. Note also that *stable* Goodman
    /// estimates are intentionally **not** clamped to `[d_sample, n]`:
    /// unbiasedness is the estimator's defining property and clamping
    /// would destroy it (and hide the wild variance the paper highlights).
    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        self.try_estimate(profile, n).unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive unbiasedness check: enumerate every r-subset of a small
    /// population and verify the estimator averages to exactly d.
    fn assert_unbiased(population: &[i64], r: usize) {
        let n = population.len();
        let mut d_true: Vec<i64> = population.to_vec();
        d_true.sort_unstable();
        d_true.dedup();
        let d_true = d_true.len() as f64;

        // Iterate all C(n, r) index subsets.
        let mut idx: Vec<usize> = (0..r).collect();
        let mut total = 0.0f64;
        let mut count = 0u64;
        loop {
            let mut sample: Vec<i64> = idx.iter().map(|&i| population[i]).collect();
            sample.sort_unstable();
            let p = FrequencyProfile::from_sorted_sample(&sample);
            total += Goodman.try_estimate(&p, n as u64).expect("small case must be stable");
            count += 1;

            // Next combination.
            let mut i = r;
            loop {
                if i == 0 {
                    let mean = total / count as f64;
                    assert!(
                        (mean - d_true).abs() < 1e-6,
                        "E[d̂] = {mean}, d = {d_true} over {count} samples"
                    );
                    return;
                }
                i -= 1;
                if idx[i] != i + n - r {
                    idx[i] += 1;
                    for j in i + 1..r {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    #[test]
    fn unbiased_on_all_distinct_population() {
        assert_unbiased(&[1, 2, 3, 4, 5], 2);
    }

    #[test]
    fn unbiased_with_duplicates() {
        // Multiplicities [2,1,1,1,1], d = 5, n = 6, r = 3 ≥ max mult.
        assert_unbiased(&[1, 1, 2, 3, 4, 5], 3);
    }

    #[test]
    fn unbiased_with_heavier_duplication() {
        // Multiplicities [3,2,1], d = 3, n = 6, r = 4.
        assert_unbiased(&[7, 7, 7, 8, 8, 9], 4);
    }

    #[test]
    fn first_coefficient_is_scale_up() {
        // A profile of only singletons uses only a_1 = n/r.
        let p = FrequencyProfile::from_pairs(vec![(1, 10)]);
        let e = Goodman.try_estimate(&p, 1000).expect("stable");
        assert!((e - 10.0 * 100.0).abs() < 1e-6, "e = {e}");
    }

    #[test]
    fn blows_up_at_realistic_scale() {
        // n = 1M, r = 1000 (0.1%): coefficients grow like ((n−r)/r)^m ≈
        // 10^{3m}, so a value seen ~120 times pushes the solve past any
        // representable magnitude (or drives the pivot to underflow) —
        // Goodman is unusable exactly where databases need it.
        let p = FrequencyProfile::from_pairs(vec![(1, 500), (2, 100), (120, 5)]);
        let result = Goodman.try_estimate(&p, 1_000_000);
        assert!(
            matches!(
                result,
                Err(GoodmanInstability::CoefficientOverflow { .. }
                    | GoodmanInstability::DegeneratePivot { .. })
            ),
            "expected blow-up, got {result:?}"
        );
        assert_eq!(Goodman.estimate(&p, 1_000_000), f64::INFINITY);
    }

    #[test]
    fn huge_multiplicity_rejected_cheaply() {
        let p = FrequencyProfile::from_pairs(vec![(1, 10), (100_000, 1)]);
        let result = Goodman.try_estimate(&p, 10_000_000);
        assert!(matches!(
            result,
            Err(GoodmanInstability::MultiplicityTooLarge { multiplicity: 100_000 })
        ));
    }

    #[test]
    fn full_scan_is_exact() {
        // r = n: every coefficient is 1 and the estimate is d_sample = d.
        let p = FrequencyProfile::from_pairs(vec![(1, 3), (2, 2), (5, 1)]);
        let n = p.sample_size();
        let e = Goodman.try_estimate(&p, n).expect("stable");
        assert!((e - 6.0).abs() < 1e-9, "e = {e}");
    }
}
