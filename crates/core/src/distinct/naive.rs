//! The two naive baselines every serious estimator must beat.

use super::{clamp_feasible, DistinctEstimator, FrequencyProfile};

/// "What you see is what there is": `d̂ = d_sample`. Always an
/// underestimate (it ignores every value the sample missed), but its error
/// *relative to n* is exactly the quantity the paper's rel-error metric
/// shows to be benign.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleDistinct;

impl DistinctEstimator for SampleDistinct {
    fn name(&self) -> &'static str {
        "SampleDistinct"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        clamp_feasible(profile.distinct_in_sample() as f64, profile, n)
    }
}

/// Linear extrapolation: `d̂ = d_sample · n/r`. Correct only when every
/// value has multiplicity 1 (then the sample's distinct count scales with
/// its size); wildly wrong on duplicate-heavy data, where it can exceed
/// the true `d` by a factor of `n/r`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScaleUp;

impl DistinctEstimator for ScaleUp {
    fn name(&self) -> &'static str {
        "ScaleUp"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        let scale = n as f64 / profile.sample_size() as f64;
        clamp_feasible(profile.distinct_in_sample() as f64 * scale, profile, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distinct_is_the_floor() {
        let p = FrequencyProfile::from_pairs(vec![(1, 7), (2, 3)]);
        assert_eq!(SampleDistinct.estimate(&p, 1000), 10.0);
    }

    #[test]
    fn scale_up_scales_linearly() {
        // r = 13, d_sample = 10, n = 1300 -> d̂ = 1000.
        let p = FrequencyProfile::from_pairs(vec![(1, 7), (2, 3)]);
        assert_eq!(ScaleUp.estimate(&p, 1300), 1000.0);
    }

    #[test]
    fn scale_up_capped_at_n() {
        let p = FrequencyProfile::from_pairs(vec![(1, 10)]);
        // d_sample·n/r = 10·100/10 = 100 = n: fine; with a bigger scale it
        // would cap.
        assert_eq!(ScaleUp.estimate(&p, 100), 100.0);
    }
}
