//! The paper's "hybrid variant of our estimator which is expected to
//! perform even better in practice" (Section 6.2).
//!
//! The paper does not spell the hybrid out; we follow the construction
//! that the surrounding literature (Haas et al. 1995, and later Charikar
//! et al. 2000 for GEE itself) uses: **test the sample for skew, then
//! dispatch**. When the multiplicity profile looks homogeneous — the
//! estimated squared coefficient of variation γ̂² of the population
//! frequencies is small — the finite-population jackknife's
//! missing-mass correction is nearly unbiased (it nails the paper's
//! Unif/Dup workload, where plain GEE overestimates by ~`√(n/r)`; see
//! Figure 10). When the profile is skewed, that correction collapses and
//! GEE's worst-case-optimal hedge wins.

use super::{DistinctEstimator, FiniteJackknife, FrequencyProfile, Gee};

/// Skew-gated dispatch between [`FiniteJackknife`] (low skew) and [`Gee`]
/// (everything else).
#[derive(Debug, Clone, Copy)]
pub struct HybridGee {
    /// γ̂² at or below which the profile counts as low-skew. The
    /// conventional cutoff of 1 separates "multiplicities within a
    /// constant factor of each other" from genuinely heavy-tailed data.
    pub skew_threshold: f64,
}

impl Default for HybridGee {
    fn default() -> Self {
        Self { skew_threshold: 1.0 }
    }
}

impl HybridGee {
    /// Would this profile be routed to the finite jackknife?
    pub fn is_low_skew(&self, profile: &FrequencyProfile) -> bool {
        profile.squared_cv_estimate() <= self.skew_threshold
    }
}

impl DistinctEstimator for HybridGee {
    fn name(&self) -> &'static str {
        "HybridGEE"
    }

    fn estimate(&self, profile: &FrequencyProfile, n: u64) -> f64 {
        if self.is_low_skew(profile) {
            FiniteJackknife.estimate(profile, n)
        } else {
            Gee.estimate(profile, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_profile_routes_to_jackknife() {
        let p = FrequencyProfile::from_pairs(vec![(1, 30), (2, 35)]);
        let h = HybridGee::default();
        assert!(h.is_low_skew(&p));
        assert_eq!(h.estimate(&p, 100_000), FiniteJackknife.estimate(&p, 100_000));
    }

    #[test]
    fn skewed_profile_routes_to_gee() {
        let p = FrequencyProfile::from_pairs(vec![(1, 50), (200, 2)]);
        let h = HybridGee::default();
        assert!(!h.is_low_skew(&p));
        assert_eq!(h.estimate(&p, 1_000_000), Gee.estimate(&p, 1_000_000));
    }

    #[test]
    fn threshold_is_configurable() {
        let p = FrequencyProfile::from_pairs(vec![(1, 30), (2, 35)]);
        let strict = HybridGee { skew_threshold: -1.0 }; // nothing is low-skew
        assert!(!strict.is_low_skew(&p));
        assert_eq!(strict.estimate(&p, 100_000), Gee.estimate(&p, 100_000));
    }

    /// The whole point: on Unif/Dup-style data the hybrid beats plain GEE.
    #[test]
    fn beats_gee_on_uniform_duplication() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let d_true = 5_000i64;
        let copies = 50usize;
        let data: Vec<i64> = (0..d_true).flat_map(|v| std::iter::repeat(v).take(copies)).collect();
        let n = data.len() as u64;
        let r = (n / 50) as usize; // 2% sample
        let mut sample: Vec<i64> = (0..r).map(|_| data[rng.gen_range(0..data.len())]).collect();
        sample.sort_unstable();
        let p = FrequencyProfile::from_sorted_sample(&sample);

        let hybrid = HybridGee::default().estimate(&p, n);
        let gee = Gee.estimate(&p, n);
        let err = |e: f64| (e / d_true as f64).max(d_true as f64 / e);
        assert!(
            err(hybrid) < err(gee),
            "hybrid {hybrid} (err {}) should beat GEE {gee} (err {})",
            err(hybrid),
            err(gee)
        );
        // And not merely beat it — land close to the truth.
        assert!(err(hybrid) < 1.2, "hybrid err = {}", err(hybrid));
    }
}
