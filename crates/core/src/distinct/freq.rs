//! The frequency-of-frequencies profile `f_j` that every distinct-value
//! estimator consumes.
//!
//! `f_j` is the number of distinct values occurring **exactly** `j` times
//! in the sample (paper Section 6.2); `Σ j·f_j = r` and `Σ f_j = d_sample`.
//! Stored sparsely (multiplicity → count) because skewed data can put one
//! value hundreds of thousands of times into a sample while only a handful
//! of multiplicities actually occur.

/// Sparse frequency-of-frequencies profile of one sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyProfile {
    /// `(j, f_j)` pairs with `f_j > 0`, ascending in `j`.
    freqs: Vec<(u64, u64)>,
    /// Sample size `r = Σ j·f_j`.
    sample_size: u64,
    /// Distinct values in the sample, `d_sample = Σ f_j`.
    distinct: u64,
}

/// Sorted samples shorter than this are profiled serially.
const PAR_PROFILE_MIN: usize = 1 << 16;

impl FrequencyProfile {
    /// Build the profile of a **sorted** sample.
    ///
    /// Large samples are profiled chunk-parallel: the sample is cut at
    /// run-aligned boundaries (a boundary never splits a run of equal
    /// values, so every run is counted whole by exactly one chunk), each
    /// chunk's run lengths are tallied independently, and the per-chunk
    /// multiplicity maps are merged in chunk order. The result is
    /// bit-identical to the serial tally at any thread count.
    ///
    /// # Panics
    /// If the sample is empty or not sorted.
    pub fn from_sorted_sample(sorted: &[i64]) -> Self {
        Self::from_sorted_sample_threads(samplehist_parallel::num_threads(), sorted)
    }

    /// [`Self::from_sorted_sample`] with an explicit thread budget
    /// (`threads <= 1` runs serially) — used by the determinism tests.
    pub fn from_sorted_sample_threads(threads: usize, sorted: &[i64]) -> Self {
        assert!(!sorted.is_empty(), "cannot profile an empty sample");
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "sample must be sorted");

        let by_multiplicity = if threads <= 1 || sorted.len() < PAR_PROFILE_MIN {
            tally_runs(sorted)
        } else {
            let segments = run_aligned_segments(sorted, threads);
            let partials =
                samplehist_parallel::par_map_threads(threads, &segments, |seg| tally_runs(seg));
            let mut merged = std::collections::BTreeMap::new();
            for partial in partials {
                for (j, f) in partial {
                    *merged.entry(j).or_insert(0) += f;
                }
            }
            merged
        };
        let freqs: Vec<(u64, u64)> = by_multiplicity.into_iter().collect();
        let sample_size = freqs.iter().map(|&(j, f)| j * f).sum();
        let distinct = freqs.iter().map(|&(_, f)| f).sum();
        debug_assert_eq!(sample_size, sorted.len() as u64);
        Self { freqs, sample_size, distinct }
    }

    /// Build the profile of an **unsorted** sample without sorting it:
    /// one hashed counting pass (value → multiplicity), then a tally of
    /// the multiplicities into the same sparse ascending representation.
    /// Bit-identical to [`Self::from_sorted_sample`] of the sorted
    /// sample (the tally is a commutative integer sum, so hash-iteration
    /// order cannot show), at O(n) instead of a sort — this is what the
    /// sort-free `ANALYZE` route uses.
    ///
    /// # Panics
    /// If the sample is empty.
    pub fn from_unsorted_sample(values: &[i64]) -> Self {
        Self::from_unsorted_sample_threads(samplehist_parallel::num_threads(), values)
    }

    /// [`Self::from_unsorted_sample`] with an explicit thread budget.
    /// The parallel path tallies chunk-local hash maps and merges them
    /// by commutative addition, so the result is bit-identical at any
    /// thread count.
    pub fn from_unsorted_sample_threads(threads: usize, values: &[i64]) -> Self {
        assert!(!values.is_empty(), "cannot profile an empty sample");
        let tally = |chunk: &[i64]| {
            let mut by_value: std::collections::HashMap<i64, u64> =
                std::collections::HashMap::with_capacity(chunk.len().min(1 << 12));
            for &v in chunk {
                *by_value.entry(v).or_insert(0) += 1;
            }
            by_value
        };
        let by_value = if threads <= 1 || values.len() < PAR_PROFILE_MIN {
            tally(values)
        } else {
            let mut partials = samplehist_parallel::par_chunks_map(threads, values, threads, tally);
            let mut merged = partials.swap_remove(0);
            for partial in partials {
                for (v, c) in partial {
                    *merged.entry(v).or_insert(0) += c;
                }
            }
            merged
        };
        let mut by_multiplicity = std::collections::BTreeMap::new();
        for (_, c) in by_value {
            *by_multiplicity.entry(c).or_insert(0u64) += 1;
        }
        let freqs: Vec<(u64, u64)> = by_multiplicity.into_iter().collect();
        let sample_size = freqs.iter().map(|&(j, f)| j * f).sum();
        let distinct = freqs.iter().map(|&(_, f)| f).sum();
        debug_assert_eq!(sample_size, values.len() as u64);
        Self { freqs, sample_size, distinct }
    }

    /// Build directly from `(multiplicity, count)` pairs — used by tests
    /// and by the adversarial constructions, where the profile is known
    /// analytically.
    ///
    /// # Panics
    /// If pairs are not strictly ascending in multiplicity, contain zeros,
    /// or the profile is empty.
    pub fn from_pairs(pairs: Vec<(u64, u64)>) -> Self {
        assert!(!pairs.is_empty(), "profile must be non-empty");
        assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "multiplicities must be strictly ascending"
        );
        assert!(
            pairs.iter().all(|&(j, f)| j > 0 && f > 0),
            "multiplicities and counts must be positive"
        );
        let sample_size = pairs.iter().map(|&(j, f)| j * f).sum();
        let distinct = pairs.iter().map(|&(_, f)| f).sum();
        Self { freqs: pairs, sample_size, distinct }
    }

    /// `f_j`: distinct values appearing exactly `j` times in the sample.
    pub fn f(&self, j: u64) -> u64 {
        self.freqs.binary_search_by_key(&j, |&(m, _)| m).map(|idx| self.freqs[idx].1).unwrap_or(0)
    }

    /// Singletons, `f_1` — the quantity every estimator pivots on.
    pub fn f1(&self) -> u64 {
        self.f(1)
    }

    /// Doubletons, `f_2`.
    pub fn f2(&self) -> u64 {
        self.f(2)
    }

    /// Distinct values appearing **at least twice**: `Σ_{j≥2} f_j`.
    pub fn repeated(&self) -> u64 {
        self.distinct - self.f1()
    }

    /// Sample size `r`.
    pub fn sample_size(&self) -> u64 {
        self.sample_size
    }

    /// Distinct values observed in the sample, `d_sample`.
    pub fn distinct_in_sample(&self) -> u64 {
        self.distinct
    }

    /// Largest multiplicity any value has in the sample.
    pub fn max_multiplicity(&self) -> u64 {
        self.freqs.last().map(|&(j, _)| j).unwrap_or(0)
    }

    /// Iterate `(j, f_j)` pairs with `f_j > 0`, ascending in `j`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.freqs.iter().copied()
    }

    /// `Σ j·(j−1)·f_j` — the raw ingredient of the Chao–Lee coefficient of
    /// variation.
    pub fn sum_j_jm1_f(&self) -> u64 {
        self.freqs.iter().map(|&(j, f)| j * (j - 1) * f).sum()
    }

    /// The Chao–Lee estimate of the squared coefficient of variation of
    /// the population frequencies,
    /// `γ̂² = max(0, (d/Ĉ) · Σ j(j−1)f_j / (r(r−1)) − 1)`
    /// with `Ĉ = 1 − f₁/r` the sample-coverage estimate. Returns 0 when
    /// the sample is a single tuple or the coverage estimate is 0.
    pub fn squared_cv_estimate(&self) -> f64 {
        let r = self.sample_size as f64;
        if r < 2.0 {
            return 0.0;
        }
        let coverage = 1.0 - self.f1() as f64 / r;
        if coverage <= 0.0 {
            return 0.0;
        }
        let d0 = self.distinct as f64 / coverage;
        let gamma2 = d0 * self.sum_j_jm1_f() as f64 / (r * (r - 1.0)) - 1.0;
        gamma2.max(0.0)
    }
}

/// Run lengths of a sorted slice → multiplicity → count-of-runs map.
fn tally_runs(sorted: &[i64]) -> std::collections::BTreeMap<u64, u64> {
    let mut by_multiplicity = std::collections::BTreeMap::new();
    let mut i = 0usize;
    while i < sorted.len() {
        let v = sorted[i];
        let start = i;
        while i < sorted.len() && sorted[i] == v {
            i += 1;
        }
        *by_multiplicity.entry((i - start) as u64).or_insert(0) += 1;
    }
    by_multiplicity
}

/// Cut `sorted` into at most `pieces` contiguous segments whose boundaries
/// never split a run of equal values. Boundaries depend only on the data
/// and `pieces` — not on scheduling — so parallel profiling stays
/// deterministic.
fn run_aligned_segments(sorted: &[i64], pieces: usize) -> Vec<&[i64]> {
    let mut segments = Vec::with_capacity(pieces);
    let target = sorted.len().div_ceil(pieces.max(1));
    let mut start = 0usize;
    while start < sorted.len() {
        let mut end = (start + target).min(sorted.len());
        if end < sorted.len() {
            // Push the cut to the end of the run containing it.
            let run_value = sorted[end - 1];
            end += sorted[end..].partition_point(|&v| v == run_value);
        }
        segments.push(&sorted[start..end]);
        start = end;
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_profile_is_bit_identical_to_serial() {
        // Skewed sorted data with runs that straddle naive chunk cuts.
        let mut sorted: Vec<i64> = Vec::new();
        let mut x = 0x1234_5678u64 | 1;
        let mut v = 0i64;
        while sorted.len() < 200_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let run = 1 + (x % 19) * (x % 7) * (x % 1009) / 37;
            sorted.extend(std::iter::repeat(v).take(run as usize));
            v += 1;
        }
        let serial = FrequencyProfile::from_sorted_sample_threads(1, &sorted);
        for threads in [2, 3, 4, 7, 8, 64] {
            assert_eq!(
                FrequencyProfile::from_sorted_sample_threads(threads, &sorted),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_aligned_segments_never_split_runs() {
        let sorted = vec![1i64, 1, 1, 2, 2, 3, 3, 3, 3, 3, 4];
        for pieces in 1..=8 {
            let segs = run_aligned_segments(&sorted, pieces);
            assert_eq!(segs.iter().map(|s| s.len()).sum::<usize>(), sorted.len());
            for pair in segs.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                assert!(!a.is_empty() && !b.is_empty());
                assert_ne!(a.last(), b.first(), "pieces={pieces} split a run");
            }
        }
    }

    #[test]
    fn unsorted_profile_is_bit_identical_to_sorted() {
        // Skewed data, unsorted, large enough for the parallel path.
        let mut x = 0xDEAD_BEEFu64 | 1;
        let values: Vec<i64> = (0..150_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 977) * (x % 31)) as i64
            })
            .collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let reference = FrequencyProfile::from_sorted_sample_threads(1, &sorted);
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                FrequencyProfile::from_unsorted_sample_threads(threads, &values),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn unsorted_empty_sample_rejected() {
        let _ = FrequencyProfile::from_unsorted_sample(&[]);
    }

    #[test]
    fn profile_of_mixed_sample() {
        // 1,1,1,2,3,3,4 -> f_1 = 2 (values 2,4), f_2 = 1 (value 3),
        // f_3 = 1 (value 1).
        let sorted = [1i64, 1, 1, 2, 3, 3, 4];
        let p = FrequencyProfile::from_sorted_sample(&sorted);
        assert_eq!(p.f1(), 2);
        assert_eq!(p.f2(), 1);
        assert_eq!(p.f(3), 1);
        assert_eq!(p.f(4), 0);
        assert_eq!(p.sample_size(), 7);
        assert_eq!(p.distinct_in_sample(), 4);
        assert_eq!(p.repeated(), 2);
        assert_eq!(p.max_multiplicity(), 3);
    }

    #[test]
    fn invariants_sum_correctly() {
        let sorted: Vec<i64> = vec![5, 5, 5, 5, 7, 8, 8, 9, 9, 9];
        let p = FrequencyProfile::from_sorted_sample(&sorted);
        let r: u64 = p.iter().map(|(j, f)| j * f).sum();
        let d: u64 = p.iter().map(|(_, f)| f).sum();
        assert_eq!(r, p.sample_size());
        assert_eq!(d, p.distinct_in_sample());
        assert_eq!(r, 10);
        assert_eq!(d, 4);
    }

    #[test]
    fn all_distinct_profile() {
        let sorted: Vec<i64> = (0..50).collect();
        let p = FrequencyProfile::from_sorted_sample(&sorted);
        assert_eq!(p.f1(), 50);
        assert_eq!(p.repeated(), 0);
        assert_eq!(p.max_multiplicity(), 1);
        assert_eq!(p.sum_j_jm1_f(), 0);
    }

    #[test]
    fn single_value_profile() {
        let sorted = vec![3i64; 20];
        let p = FrequencyProfile::from_sorted_sample(&sorted);
        assert_eq!(p.f(20), 1);
        assert_eq!(p.f1(), 0);
        assert_eq!(p.distinct_in_sample(), 1);
        assert_eq!(p.sum_j_jm1_f(), 20 * 19);
    }

    #[test]
    fn from_pairs_round_trip() {
        let p = FrequencyProfile::from_pairs(vec![(1, 10), (3, 2)]);
        assert_eq!(p.sample_size(), 16);
        assert_eq!(p.distinct_in_sample(), 12);
        assert_eq!(p.f(3), 2);
    }

    #[test]
    fn squared_cv_zero_for_uniform_multiplicities() {
        // All values seen exactly twice: a homogeneous profile.
        let sorted: Vec<i64> = (0..30).flat_map(|v| [v, v]).collect();
        let p = FrequencyProfile::from_sorted_sample(&sorted);
        let cv = p.squared_cv_estimate();
        assert!(cv < 0.1, "cv² = {cv}");
    }

    #[test]
    fn squared_cv_large_for_skew() {
        // One value 100 times plus 50 singletons.
        let mut s = vec![0i64; 100];
        s.extend(1..=50);
        s.sort_unstable();
        let p = FrequencyProfile::from_sorted_sample(&s);
        let cv = p.squared_cv_estimate();
        assert!(cv > 5.0, "cv² = {cv}");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_pairs_rejects_disorder() {
        let _ = FrequencyProfile::from_pairs(vec![(3, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        let _ = FrequencyProfile::from_sorted_sample(&[]);
    }
}
