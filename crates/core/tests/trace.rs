//! Golden-trace tests for the instrumented sampling pipeline, plus the
//! determinism guard: recording must never change what the pipeline
//! computes, at any thread count.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use samplehist_core::histogram::EquiHeightHistogram;
use samplehist_core::sampling::{cvb, CvbConfig, SliceBlocks};
use samplehist_obs::{Event, MemorySink, PromSink, Recorder, Value};

fn shuffled(n: i64, seed: u64) -> Vec<i64> {
    let mut data: Vec<i64> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    data.shuffle(&mut rng);
    data
}

fn field<'a>(fields: &'a [(&'static str, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn as_u64(v: Option<&Value>) -> u64 {
    match v {
        Some(Value::U64(x)) => *x,
        other => panic!("expected a u64 field, got {other:?}"),
    }
}

fn as_str(v: Option<&Value>) -> &str {
    match v {
        Some(Value::Str(s)) => s,
        other => panic!("expected a string field, got {other:?}"),
    }
}

/// The golden shape of a CVB trace: exactly one `cvb.round` span per
/// round in the result log, with 1-based round numbers, strictly
/// growing block counts, and per-round verdicts that reconstruct the
/// algorithm's control flow.
#[test]
fn cvb_trace_has_one_round_span_per_round() {
    let data = shuffled(50_000, 7);
    let source = SliceBlocks::new(&data, 100);
    let config = CvbConfig::theoretical(&source, 20, 0.2, 0.05);
    let sink = Arc::new(MemorySink::new());
    let recorder = Recorder::new(sink.clone());
    let mut rng = StdRng::seed_from_u64(11);
    let result = cvb::run_traced(&source, &config, &mut rng, &recorder);

    let events = sink.events();
    let round_fields: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::SpanEnd { name: "cvb.round", fields, .. } => Some(fields.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(round_fields.len(), result.rounds.len(), "one span end per round");
    assert_eq!(result.rounds_executed, result.rounds.len());

    let mut prev_total = 0;
    for (i, (fields, round)) in round_fields.iter().zip(&result.rounds).enumerate() {
        assert_eq!(as_u64(field(fields, "round")) as usize, i + 1);
        let total = as_u64(field(fields, "total_blocks"));
        assert_eq!(total as usize, round.total_blocks, "trace agrees with the result log");
        assert!(total > prev_total, "block counts must grow monotonically");
        prev_total = total;
        assert_eq!(as_u64(field(fields, "r")), round.total_tuples, "r is the accumulated sample");
        let verdict = as_str(field(fields, "verdict"));
        if i == 0 {
            assert_eq!(verdict, "bootstrap", "round 1 has no histogram to validate");
            assert!(field(fields, "delta_hat").is_none());
        } else {
            assert!(matches!(verdict, "accept" | "reject"), "verdict was {verdict:?}");
            assert!(field(fields, "delta_hat").is_some(), "validated rounds report Δ̂");
        }
        // Only the last round may accept.
        let is_last = i + 1 == round_fields.len();
        assert_eq!(verdict == "accept", is_last && result.converged);
    }

    // And exactly one enclosing cvb.run span, closing with the summary.
    let run_fields: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::SpanEnd { name: "cvb.run", fields, .. } => Some(fields.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(run_fields.len(), 1);
    let run = &run_fields[0];
    assert_eq!(as_u64(field(run, "rounds")) as usize, result.rounds_executed);
    assert_eq!(field(run, "converged"), Some(&Value::Bool(result.converged)));
    assert_eq!(field(run, "terminated_early"), Some(&Value::Bool(result.terminated_early)));
    assert_eq!(as_u64(field(run, "blocks_sampled")) as usize, result.blocks_sampled);
}

/// Round spans nest under the run span (the trace is a tree).
#[test]
fn cvb_round_spans_are_children_of_the_run_span() {
    let data = shuffled(20_000, 17);
    let source = SliceBlocks::new(&data, 100);
    let config = CvbConfig::theoretical(&source, 10, 0.3, 0.05);
    let sink = Arc::new(MemorySink::new());
    let recorder = Recorder::new(sink.clone());
    let mut rng = StdRng::seed_from_u64(19);
    let _ = cvb::run_traced(&source, &config, &mut rng, &recorder);

    let events = sink.events();
    let run_id = events
        .iter()
        .find_map(|e| match e {
            Event::SpanStart { id, name: "cvb.run", .. } => Some(*id),
            _ => None,
        })
        .expect("run span present");
    let mut rounds = 0;
    for e in &events {
        if let Event::SpanStart { parent, name: "cvb.round", .. } = e {
            assert_eq!(*parent, Some(run_id), "round spans hang off the run span");
            rounds += 1;
        }
    }
    assert!(rounds > 0, "at least one round recorded");
}

/// The determinism guard the instrumentation docs promise: with a
/// recorder installed — including the process-global one that the deep
/// layers (radix routing, parallel primitives) report through — every
/// pipeline output is byte-identical to the untraced run, whether the
/// work is done on 1 thread or 4.
#[test]
fn enabling_a_recorder_never_changes_results() {
    let data = shuffled(60_000, 3);
    let source = SliceBlocks::new(&data, 100);
    let config = CvbConfig::theoretical(&source, 20, 0.25, 0.05);

    // Baselines, recording disabled.
    let mut sorted_bare = data.clone();
    samplehist_parallel::par_sort_unstable_threads(1, &mut sorted_bare);
    let hist_bare = EquiHeightHistogram::from_unsorted(data.clone(), 50);
    let mut rng = StdRng::seed_from_u64(21);
    let cvb_bare = cvb::run_traced(&source, &config, &mut rng, &Recorder::disabled());

    // Install the global recorder and redo everything, traced.
    let memory = Arc::new(MemorySink::new());
    let prom = Arc::new(PromSink::new());
    let recorder = Recorder::with_sinks(vec![memory.clone(), prom.clone()]);
    samplehist_obs::set_global(recorder.clone());

    for threads in [1, 4] {
        let mut sorted = data.clone();
        samplehist_parallel::par_sort_unstable_threads(threads, &mut sorted);
        assert_eq!(sorted, sorted_bare, "traced {threads}-thread sort must match the bare sort");
    }
    let hist_traced = EquiHeightHistogram::from_unsorted(data.clone(), 50);
    assert_eq!(hist_traced, hist_bare, "traced radix construction must be byte-identical");

    let mut rng = StdRng::seed_from_u64(21);
    let cvb_traced = cvb::run_traced(&source, &config, &mut rng, &recorder);
    assert_eq!(cvb_traced.histogram, cvb_bare.histogram);
    assert_eq!(cvb_traced.sample_sorted, cvb_bare.sample_sorted);
    assert_eq!(cvb_traced.rounds_executed, cvb_bare.rounds_executed);
    assert_eq!(cvb_traced.terminated_early, cvb_bare.terminated_early);
    assert_eq!(cvb_traced.blocks_sampled, cvb_bare.blocks_sampled);

    // The guard is vacuous if nothing was actually recorded.
    assert!(!memory.is_empty(), "the traced runs must have produced events");
    assert!(
        prom.span_durations().iter().any(|(name, _)| name == "cvb.round"),
        "round spans must have reached the aggregating sink"
    );
}
