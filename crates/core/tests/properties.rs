//! Property tests for the core crate's invariants — the contracts between
//! modules that the unit tests exercise only pointwise.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist_core::bounds::{corollary1_error, corollary1_sample_size, theorem5_sample_size};
use samplehist_core::distinct::{DistinctEstimator, FrequencyProfile, Gee};
use samplehist_core::error::{delta_separation, fractional_max_error};
use samplehist_core::estimate::{
    duplication_density, duplication_density_from_profile, RangeEstimator,
};
use samplehist_core::histogram::{
    selection, CompressedHistogram, CompressedRoute, ConstructionRoute, EquiHeightHistogram,
};
use samplehist_core::math::{hypergeometric_pmf, ln_binomial};
use samplehist_core::sampling::{Reservoir, Schedule, ScheduleContext};

fn multiset() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec((-100i64..100, 1usize..6), 1..50).prop_map(|runs| {
        let mut v: Vec<i64> =
            runs.into_iter().flat_map(|(val, c)| std::iter::repeat(val).take(c)).collect();
        v.sort_unstable();
        v
    })
}

/// Unsorted heavy-duplicate multisets: `runs` runs of 4–7 copies of a
/// value from a small domain (so distinct runs collide on values too).
fn unsorted_multiset(runs: std::ops::Range<usize>) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec((-1000i64..1000, 4usize..8), runs).prop_map(|runs| {
        runs.into_iter().flat_map(|(val, c)| std::iter::repeat(val).take(c)).collect()
    })
}

/// Heavy-duplicate Zipf-like multisets: a few runs big enough to trip the
/// radix refinement's heavy-slice detector (≥ 8192 tuples per run, and
/// heavy mass dominating `n`), plus a light scattered tail, over a domain
/// wide enough that the top radix pass cannot resolve values exactly.
fn skewed_multiset(domain: i64) -> impl Strategy<Value = Vec<i64>> {
    let heavy = prop::collection::vec((-domain..domain, 9000usize..12_000), 1..4);
    let light = prop::collection::vec(-domain..domain, 0..1500);
    (heavy, light).prop_map(|(heavy, light)| {
        let mut v: Vec<i64> = Vec::new();
        for (val, c) in heavy {
            v.resize(v.len() + c, val);
        }
        v.extend(light);
        v
    })
}

/// Install a process-global Prometheus recorder once, so the byte-identity
/// properties below run with recording *enabled* — the paths under test
/// emit spans and counters, and recording must never perturb results.
fn enable_recording() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let sink: std::sync::Arc<dyn samplehist_obs::Sink> =
            std::sync::Arc::new(samplehist_obs::PromSink::new());
        samplehist_obs::set_global(samplehist_obs::Recorder::with_sinks(vec![sink]));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Corollary 1 is monotone in every argument, and its two directions
    /// are mutually consistent for arbitrary parameters.
    #[test]
    fn corollary1_shape(
        k in 1usize..2000,
        f_millis in 1u32..1000,
        n in 1000u64..10_000_000_000,
        gamma_millis in 1u32..999,
    ) {
        let f = f_millis as f64 / 1000.0;
        let gamma = gamma_millis as f64 / 1000.0;
        let r = corollary1_sample_size(k, f, n, gamma);
        prop_assert!(r > 0.0 && r.is_finite());
        prop_assert!(corollary1_sample_size(k + 1, f, n, gamma) > r);
        prop_assert!(corollary1_sample_size(k, f, 2 * n, gamma) > r);
        // Round trip: the error guaranteed by ceil(r) samples is ≤ f.
        let f_back = corollary1_error(r.ceil() as u64, k, n, gamma);
        prop_assert!(f_back <= f + 1e-9);
    }

    /// Theorem 5 always costs at least Theorem 4's k-fold-smaller cousin
    /// at equal δ (for k ≥ 3 where both are in their stated domains).
    #[test]
    fn separation_bound_dominates(k in 3usize..1000, n in 10_000u64..100_000_000) {
        let delta = 0.5 * n as f64 / k as f64;
        let r4 = samplehist_core::bounds::theorem4_sample_size(n, k, delta, 0.01);
        let r5 = theorem5_sample_size(n, k, delta, 0.01);
        prop_assert!(r5 > r4);
    }

    /// δ-separation is symmetric in its two histograms.
    #[test]
    fn separation_is_symmetric(data in multiset(), k in 1usize..8, split in 1usize..10) {
        let h1 = EquiHeightHistogram::from_sorted(&data, k);
        // A second histogram over the same data from a subsample.
        let sub: Vec<i64> = data.iter().copied().step_by(split).collect();
        let sub = if sub.is_empty() { data.clone() } else { sub };
        let h2 = EquiHeightHistogram::from_sorted_sample(&sub, k, data.len() as u64);
        let ab = delta_separation(&h1, &h2, &data).max;
        let ba = delta_separation(&h2, &h1, &data).max;
        prop_assert_eq!(ab, ba);
    }

    /// The fractional metric is invariant under duplicating the observed
    /// multiset (it is a statement about distributions, not counts).
    #[test]
    fn fractional_scale_invariance(data in multiset(), k in 1usize..8) {
        let h = EquiHeightHistogram::from_sorted(&data, k);
        let mut doubled = Vec::with_capacity(data.len() * 2);
        for &v in &data {
            doubled.push(v);
            doubled.push(v);
        }
        let single = fractional_max_error(h.separators(), &data, &data).max;
        let double = fractional_max_error(h.separators(), &data, &doubled).max;
        prop_assert!((single - double).abs() < 1e-12);
    }

    /// Range estimates are additive across a split point.
    #[test]
    fn range_estimate_additive(data in multiset(), k in 1usize..8, m in -100i64..100) {
        let h = EquiHeightHistogram::from_sorted(&data, k);
        let est = RangeEstimator::new(&h);
        let whole = est.estimate_range(-200, 200);
        let left = est.estimate_range(-200, m);
        let right = est.estimate_range(m + 1, 200);
        prop_assert!((whole - (left + right)).abs() < 1e-6,
            "split at {}: {} vs {} + {}", m, whole, left, right);
    }

    /// GEE is monotone in the singleton count: more singletons, more
    /// estimated distinct values (n fixed, everything else fixed).
    #[test]
    fn gee_monotone_in_singletons(f1 in 1u64..500, extra in 0u64..200) {
        let n = 10_000_000u64;
        let base = FrequencyProfile::from_pairs(vec![(1, f1), (3, 40)]);
        let more = FrequencyProfile::from_pairs(vec![(1, f1 + extra + 1), (3, 40)]);
        prop_assert!(Gee.estimate(&more, n) > Gee.estimate(&base, n));
    }

    /// Reservoir size is min(capacity, stream length) for any stream.
    #[test]
    fn reservoir_size_law(cap in 1usize..50, stream_len in 0usize..200, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut res = Reservoir::new(cap);
        for i in 0..stream_len {
            res.offer(i as i64, &mut rng);
        }
        prop_assert_eq!(res.items().len(), cap.min(stream_len));
        prop_assert_eq!(res.seen(), stream_len as u64);
    }

    /// Every schedule proposes at least one block in any state.
    #[test]
    fn schedules_always_progress(
        round in 1usize..30,
        blocks in 0usize..10_000,
        tuples in 0u64..1_000_000,
        n in 1_000u64..10_000_000,
        b in 1u32..1000,
    ) {
        let ctx = ScheduleContext {
            round,
            blocks_so_far: blocks,
            tuples_so_far: tuples,
            total_tuples: n,
            tuples_per_block: b as f64,
        };
        for s in [
            Schedule::Doubling { initial_blocks: 4 },
            Schedule::SqrtSteps { multiplier: 5.0 },
            Schedule::Geometric { initial_blocks: 4, ratio: 2.0 },
            Schedule::Fixed { blocks_per_round: 7 },
        ] {
            prop_assert!(s.next_blocks(&ctx) >= 1, "{:?}", s);
        }
    }

    /// Hypergeometric pmf is a probability distribution for arbitrary
    /// small parameters, and ln_binomial is symmetric.
    #[test]
    fn math_identities(n in 1u64..60, m_frac in 0u32..=100, r_frac in 1u32..=100) {
        let m = n * m_frac as u64 / 100;
        let r = (n * r_frac as u64 / 100).max(1);
        let total: f64 = (0..=r).map(|i| hypergeometric_pmf(n, m, r, i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "pmf sums to {}", total);
        let k = m.min(n);
        prop_assert!((ln_binomial(n, k) - ln_binomial(n, n - k)).abs() < 1e-9);
    }

    /// Codec round trip composed with recounting: persistence does not
    /// change what the optimizer would estimate.
    #[test]
    fn persisted_histograms_estimate_identically(data in multiset(), k in 1usize..8) {
        use samplehist_core::histogram::codec;
        let h = EquiHeightHistogram::from_sorted(&data, k);
        let back = codec::decode(&codec::encode(&h)).expect("round trip");
        let a = RangeEstimator::new(&h);
        let b = RangeEstimator::new(&back);
        for t in [-150i64, -3, 0, 42, 150] {
            prop_assert_eq!(a.estimate_le(t).to_bits(), b.estimate_le(t).to_bits());
        }
    }

    /// Selection-based separator extraction is exactly the sort-based
    /// rule on heavy-duplicate multisets, and the partitioned finishing
    /// passes reproduce the sorted bucket counts and min/max.
    #[test]
    fn selection_separators_equal_sort_separators(
        data in unsorted_multiset(1..400),
        k in 1usize..16,
    ) {
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let reference = EquiHeightHistogram::from_sorted(&sorted, k);
        let mut work = data.clone();
        let (ranks, separators) = selection::select_partition(&mut work, k);
        prop_assert_eq!(&separators[..], reference.separators());
        prop_assert_eq!(
            selection::bucket_counts_partitioned(&work, &ranks, &separators),
            reference.counts().to_vec()
        );
        prop_assert_eq!(
            selection::min_max_partitioned(&work, &ranks),
            (reference.min_value(), reference.max_value())
        );
        // The binary-search counting variant agrees on the original order.
        prop_assert_eq!(
            selection::bucket_counts_unsorted(&data, &separators),
            reference.counts().to_vec()
        );
    }

    /// `from_unsorted` (radix-count routed at this size) is byte-identical
    /// to sort + `from_sorted`, and the sampled variant to
    /// `from_sorted_sample`, for every multiset and bucket count.
    #[test]
    fn from_unsorted_equals_sort_path(
        data in unsorted_multiset(2100..2600), // × runs ⇒ n ≥ 8192: selection route
        k in 2usize..32,
        extra_pop in 0u64..10_000,
    ) {
        let mut sorted = data.clone();
        sorted.sort_unstable();
        prop_assert_eq!(
            EquiHeightHistogram::from_unsorted(data.clone(), k),
            EquiHeightHistogram::from_sorted(&sorted, k)
        );
        let pop = data.len() as u64 + extra_pop;
        prop_assert_eq!(
            EquiHeightHistogram::from_unsorted_sample(data.clone(), k, pop),
            EquiHeightHistogram::from_sorted_sample(&sorted, k, pop)
        );
    }

    /// The parallel frequency-profile builder is bit-identical to the
    /// serial tally for any sorted multiset and thread count.
    #[test]
    fn parallel_frequency_profile_equals_serial(
        data in unsorted_multiset(1..500),
        threads in 1usize..10,
    ) {
        let mut sorted = data;
        sorted.sort_unstable();
        prop_assert_eq!(
            FrequencyProfile::from_sorted_sample_threads(threads, &sorted),
            FrequencyProfile::from_sorted_sample_threads(1, &sorted)
        );
    }

    /// The skew-refined radix route (exact sub-resolution: the ±2³² domain
    /// keeps the refinement's sub-shift at zero) is byte-identical to
    /// sort + `from_sorted` on heavy-duplicate multisets, serial and
    /// parallel, with recording enabled.
    #[test]
    fn refined_radix_exact_equals_sort_path(
        data in skewed_multiset(1 << 32),
        k in 2usize..32,
    ) {
        enable_recording();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let reference = EquiHeightHistogram::from_sorted(&sorted, k);
        for threads in [1usize, 4] {
            let mut work = data.clone();
            let got = EquiHeightHistogram::from_unsorted_with_route_threads(
                threads, &mut work, k, ConstructionRoute::Radix,
            );
            prop_assert_eq!(&got, &reference, "threads = {}", threads);
        }
    }

    /// Same property over a ±2⁴⁵ domain, where refined slices are too wide
    /// to resolve exactly and the sub-slice gather/recursion path runs.
    #[test]
    fn refined_radix_subgather_equals_sort_path(
        data in skewed_multiset(1 << 45),
        k in 2usize..32,
    ) {
        enable_recording();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let reference = EquiHeightHistogram::from_sorted(&sorted, k);
        for threads in [1usize, 4] {
            let mut work = data.clone();
            let got = EquiHeightHistogram::from_unsorted_with_route_threads(
                threads, &mut work, k, ConstructionRoute::Radix,
            );
            prop_assert_eq!(&got, &reference, "threads = {}", threads);
        }
    }

    /// The sort-free compressed histogram (rank probing + exact counting,
    /// no global order ever established) equals the sort-based one on
    /// heavy-duplicate multisets — plain and sampled, serial and parallel.
    /// Routes are forced explicitly: these skewed inputs would otherwise
    /// auto-route to the sorted builder and test nothing.
    #[test]
    fn sortfree_compressed_equals_sort_path(
        data in skewed_multiset(1 << 32),
        k in 1usize..24,
        extra_pop in 0u64..50_000,
    ) {
        enable_recording();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let reference = CompressedHistogram::from_sorted(&sorted, k);
        let pop = data.len() as u64 + extra_pop;
        let sampled_reference = CompressedHistogram::from_sorted_sample(&sorted, k, pop);
        for threads in [1usize, 4] {
            prop_assert_eq!(
                &CompressedHistogram::from_unsorted_with_route_threads(
                    threads, &data, k, CompressedRoute::SortFree,
                ),
                &reference,
                "threads = {}", threads
            );
            prop_assert_eq!(
                &CompressedHistogram::from_unsorted_sample_with_route_threads(
                    threads, &data, k, pop, CompressedRoute::SortFree,
                ),
                &sampled_reference,
                "sampled, threads = {}", threads
            );
        }
    }

    /// The compressed constructor's shape routing is invisible in the
    /// output: for mixtures sweeping the heavy-mass fraction across the
    /// auto-routing threshold, both explicit routes and the auto route
    /// produce byte-identical histograms (plain and sampled).
    #[test]
    fn compressed_routing_is_byte_invisible(
        heavy_count in 0usize..4000,
        light in prop::collection::vec(-1000i64..1000, 2000usize),
        k in 2usize..16,
        extra_pop in 0u64..50_000,
    ) {
        // heavy fraction = heavy_count / (heavy_count + 2000) ∈ [0, 0.67):
        // cases land on both sides of the 0.5 auto threshold.
        let mut data = vec![123i64; heavy_count];
        data.extend(light);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let reference = CompressedHistogram::from_sorted(&sorted, k);
        let pop = data.len() as u64 + extra_pop;
        let sampled_reference = CompressedHistogram::from_sorted_sample(&sorted, k, pop);
        for route in [CompressedRoute::SortFree, CompressedRoute::Sorted, CompressedRoute::Auto] {
            prop_assert_eq!(
                &CompressedHistogram::from_unsorted_with_route_threads(1, &data, k, route),
                &reference,
                "route = {:?}", route
            );
            prop_assert_eq!(
                &CompressedHistogram::from_unsorted_sample_with_route_threads(
                    1, &data, k, pop, route,
                ),
                &sampled_reference,
                "sampled, route = {:?}", route
            );
        }
    }

    /// The hashed (unsorted) frequency profile matches the sorted tally,
    /// and the profile-derived density is bit-identical to the sorted
    /// run-length density — together they justify ANALYZE's sort-free
    /// estimate path.
    #[test]
    fn unsorted_profile_and_density_equal_sorted(
        data in unsorted_multiset(1..500),
        threads in 1usize..10,
    ) {
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let profile = FrequencyProfile::from_unsorted_sample_threads(threads, &data);
        prop_assert_eq!(&profile, &FrequencyProfile::from_sorted_sample(&sorted));
        prop_assert_eq!(
            duplication_density_from_profile(&profile).to_bits(),
            duplication_density(&sorted).to_bits()
        );
    }
}
