//! Byte-identity properties for the serve-time bucket indexes: every
//! estimate a [`BucketIndex`] or [`CompressedIndex`] produces must have
//! the same bits as the bisect path it replaces ([`RangeEstimator`] and
//! [`CompressedHistogram`]'s own estimators), on heavy-duplicate inputs,
//! for histograms built serially and in parallel, with recording enabled.

use proptest::prelude::*;

use samplehist_core::estimate::RangeEstimator;
use samplehist_core::histogram::{
    BucketIndex, CompressedHistogram, CompressedIndex, CompressedRoute, EquiHeightHistogram,
};

/// Heavy-duplicate Zipf-like multisets: a few dominant runs plus a light
/// scattered tail — the duplicate structure that stresses degenerate
/// (single-value) buckets and repeated separators in the tree.
fn skewed_multiset(domain: i64) -> impl Strategy<Value = Vec<i64>> {
    let heavy = prop::collection::vec((-domain..domain, 2000usize..4000), 1..4);
    let light = prop::collection::vec(-domain..domain, 0..1500);
    (heavy, light).prop_map(|(heavy, light)| {
        let mut v: Vec<i64> = Vec::new();
        for (val, c) in heavy {
            v.resize(v.len() + c, val);
        }
        v.extend(light);
        v
    })
}

/// Probe points that hit bucket interiors, exact separators, the domain
/// edges, and far outside the data.
fn probe_points(h: &EquiHeightHistogram) -> Vec<i64> {
    let mut pts = vec![
        i64::MIN,
        i64::MIN + 1,
        h.min_value(),
        h.min_value().saturating_sub(1),
        h.max_value(),
        h.max_value().saturating_add(1),
        i64::MAX - 1,
        i64::MAX,
        0,
        1,
        -1,
    ];
    for &s in h.separators() {
        pts.push(s);
        pts.push(s.saturating_sub(1));
        pts.push(s.saturating_add(1));
    }
    pts
}

/// Install a process-global Prometheus recorder once: the index paths
/// emit counters, and recording must never perturb estimates.
fn enable_recording() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let sink: std::sync::Arc<dyn samplehist_obs::Sink> =
            std::sync::Arc::new(samplehist_obs::PromSink::new());
        samplehist_obs::set_global(samplehist_obs::Recorder::with_sinks(vec![sink]));
    });
}

fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BucketIndex replays RangeEstimator bit-for-bit: `estimate_le`,
    /// `estimate_lt`, `estimate_range` and `estimate_eq` on every probe
    /// point, over histograms built with 1 and 4 threads.
    #[test]
    fn bucket_index_is_byte_identical_to_bisect(
        data in skewed_multiset(1 << 40),
        k in 1usize..24,
    ) {
        enable_recording();
        for threads in [1usize, 4] {
            let mut work = data.clone();
            let h = EquiHeightHistogram::from_unsorted_threads(threads, &mut work, k);
            let idx = BucketIndex::new(&h);
            let est = RangeEstimator::new(&h);
            let pts = probe_points(&h);
            for &t in &pts {
                assert_bits(idx.estimate_le(t), est.estimate_le(t),
                    &format!("le({t}), threads {threads}"));
                assert_bits(idx.estimate_lt(t), est.estimate_lt(t),
                    &format!("lt({t}), threads {threads}"));
                assert_bits(idx.estimate_eq(t), est.estimate_range(t, t),
                    &format!("eq({t}), threads {threads}"));
            }
            for &x in &pts {
                for &y in pts.iter().step_by(3) {
                    assert_bits(
                        idx.estimate_range(x, y),
                        est.estimate_range(x, y),
                        &format!("range({x}, {y}), threads {threads}"),
                    );
                }
            }
        }
    }

    /// The batched entry points agree bit-for-bit with their scalar
    /// counterparts for arbitrary probe lists (full lanes + remainder).
    #[test]
    fn batched_estimates_equal_scalar(
        data in skewed_multiset(1 << 40),
        k in 1usize..24,
        probes in prop::collection::vec((any::<i64>(), any::<i64>()), 1..40),
    ) {
        enable_recording();
        let h = EquiHeightHistogram::from_unsorted(data.clone(), k);
        let idx = BucketIndex::new(&h);
        let mut out = vec![0.0; probes.len()];
        idx.estimate_range_batch(&probes, &mut out);
        for (i, &(x, y)) in probes.iter().enumerate() {
            assert_bits(out[i], idx.estimate_range(x, y), &format!("range batch [{i}]"));
        }
        let eqs: Vec<i64> = probes.iter().map(|&(x, _)| x).collect();
        let mut out = vec![0.0; eqs.len()];
        idx.estimate_eq_batch(&eqs, &mut out);
        for (i, &t) in eqs.iter().enumerate() {
            assert_bits(out[i], idx.estimate_eq(t), &format!("eq batch [{i}]"));
        }
    }

    /// CompressedIndex vs the compressed histogram's own estimators:
    /// equality (heavy and light constants), ranges spanning heavy runs,
    /// and the batch path — threads 1 and 4, sampled population scaling.
    #[test]
    fn compressed_index_is_byte_identical(
        data in skewed_multiset(1 << 40),
        k in 1usize..16,
        extra_pop in 0u64..50_000,
    ) {
        enable_recording();
        let pop = data.len() as u64 + extra_pop;
        for threads in [1usize, 4] {
            let c = CompressedHistogram::from_unsorted_sample_with_route_threads(
                threads, &data, k, pop, CompressedRoute::Auto,
            );
            let idx = CompressedIndex::new(&c);
            let mut pts: Vec<i64> = data.iter().copied().take(6).collect();
            pts.extend([i64::MIN, i64::MAX, 0, -1, 1]);
            for &(v, _) in c.high_frequency_values() {
                pts.push(v);
                pts.push(v.saturating_add(1));
            }
            for &v in &pts {
                assert_bits(idx.estimate_eq(v), c.estimate_eq(v),
                    &format!("compressed eq({v}), threads {threads}"));
                let (est, heavy) = idx.estimate_eq_classified(v);
                prop_assert_eq!(est.to_bits(), c.estimate_eq(v).to_bits());
                let bisect_hit =
                    c.high_frequency_values().binary_search_by_key(&v, |&(x, _)| x).is_ok();
                prop_assert_eq!(heavy, bisect_hit, "classification of {}", v);
            }
            for &x in &pts {
                for &y in pts.iter().step_by(2) {
                    assert_bits(
                        idx.estimate_range(x, y),
                        c.estimate_range(x, y),
                        &format!("compressed range({x}, {y}), threads {threads}"),
                    );
                }
            }
            let mut out = vec![0.0; pts.len()];
            idx.estimate_eq_batch(&pts, &mut out);
            for (i, &v) in pts.iter().enumerate() {
                assert_bits(out[i], c.estimate_eq(v), &format!("compressed eq batch [{i}]"));
            }
        }
    }

    /// Separators at the i64 extremes: the `min − 1` anchor and the
    /// full-span bucket width both leave the i64 range, and the widened
    /// arithmetic must agree between the two paths for arbitrary probes.
    #[test]
    fn edge_separator_histograms_agree(probes in prop::collection::vec(any::<i64>(), 1..64)) {
        enable_recording();
        let h = EquiHeightHistogram::from_parts(
            vec![i64::MIN, -7, 0, i64::MAX - 1, i64::MAX],
            vec![3, 5, 7, 11, 13, 17],
            i64::MIN,
            i64::MAX,
        );
        let idx = BucketIndex::new(&h);
        let est = RangeEstimator::new(&h);
        for &t in &probes {
            assert_bits(idx.estimate_le(t), est.estimate_le(t), &format!("edge le({t})"));
            assert_bits(idx.estimate_lt(t), est.estimate_lt(t), &format!("edge lt({t})"));
        }
        let pairs: Vec<(i64, i64)> =
            probes.iter().zip(probes.iter().rev()).map(|(&a, &b)| (a, b)).collect();
        let mut out = vec![0.0; pairs.len()];
        idx.estimate_range_batch(&pairs, &mut out);
        for (i, &(x, y)) in pairs.iter().enumerate() {
            assert_bits(out[i], est.estimate_range(x, y), &format!("edge range [{i}]"));
        }
    }
}
