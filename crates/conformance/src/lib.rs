//! # samplehist-conformance
//!
//! The statistical conformance harness: seeded multi-trial experiments
//! that check the *probabilistic* claims of the paper — not "the formula
//! is transcribed correctly" (the unit tests in `samplehist-core` do
//! that) but "the implementation actually delivers the promised coverage
//! rates". Each experiment in `tests/theorems.rs` runs `T` independent
//! trials under fixed seeds and compares an empirical failure count or
//! proportion against the theorem's stated bound plus a binomial margin.
//!
//! ## Trial counts: smoke vs full
//!
//! Every experiment takes its trial count from [`trials`], which reads
//! the [`TRIALS_ENV`] environment variable:
//!
//! * unset (the default, and what CI's `conformance-smoke` job uses) —
//!   the *smoke* count, sized so the whole suite finishes in well under
//!   two minutes on one core;
//! * `full` — the *full* count, for a local high-confidence run:
//!   `SAMPLEHIST_CONFORMANCE_TRIALS=full cargo test -p samplehist-conformance`;
//! * a number — that exact count, for experimentation.
//!
//! Seeds are fixed per trial index, so a given trial count is perfectly
//! reproducible: the suite either always passes or always fails for a
//! given build.
//!
//! ## The margins
//!
//! A theorem of the form "the bad event has probability ≤ γ" is checked
//! by counting bad trials and requiring the count to stay below
//! [`binomial_allowance`] — the mean `T·γ` of a Binomial(`T`, γ) plus
//! [`Z_CONFORMANCE`] standard deviations. A claim of the form "this
//! proportion equals p" (e.g. Theorem 8's miss probability) is checked
//! with [`proportion_margin`], a z-interval around `p` widened by a
//! `1/T` continuity term. At `z = 3` a *correct* implementation flips a
//! conformance test with probability ≈ 0.1% per check even at smoke
//! counts; a wrong coverage rate shows up as a deterministic failure at
//! full counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

/// Environment variable selecting the trial count: unset → smoke,
/// `full` → full, a number → that many trials.
pub const TRIALS_ENV: &str = "SAMPLEHIST_CONFORMANCE_TRIALS";

/// The z-score used for every conformance margin: generous enough that
/// a correct implementation passes with overwhelming probability, tight
/// enough that a broken coverage rate (say, realized failure probability
/// 2γ instead of γ) is caught at full trial counts.
pub const Z_CONFORMANCE: f64 = 3.0;

/// Resolve the trial count for one experiment from [`TRIALS_ENV`].
///
/// `smoke` is used when the variable is unset or unparsable, `full` when
/// it is the literal string `full`; any positive integer overrides both.
pub fn trials(smoke: usize, full: usize) -> usize {
    resolve_trials(std::env::var(TRIALS_ENV).ok().as_deref(), smoke, full)
}

/// [`trials`] with the environment lookup factored out, for testability.
pub fn resolve_trials(setting: Option<&str>, smoke: usize, full: usize) -> usize {
    match setting.map(str::trim) {
        Some("full") => full,
        Some(s) => match s.parse::<usize>() {
            Ok(t) if t > 0 => t,
            _ => smoke,
        },
        None => smoke,
    }
}

/// Largest failure count consistent (at `z` standard deviations) with a
/// per-trial failure probability of `p`: `⌈T·p + z·√(T·p·(1−p))⌉`.
///
/// Used to check one-sided bounds: a theorem promising "failure
/// probability ≤ p" conforms as long as the observed failure count does
/// not exceed this allowance.
///
/// # Panics
/// If `p ∉ (0, 1)` or `z ≤ 0`.
pub fn binomial_allowance(trials: usize, p: f64, z: f64) -> usize {
    assert!(p > 0.0 && p < 1.0, "failure probability must be in (0,1), got {p}");
    assert!(z > 0.0, "z must be positive");
    let t = trials as f64;
    (t * p + z * (t * p * (1.0 - p)).sqrt()).ceil() as usize
}

/// Two-sided margin for an observed proportion around its predicted
/// value `p`: `z·√(p(1−p)/T) + 1/T` (the `1/T` is a continuity
/// correction so one trial of slack is always granted).
///
/// # Panics
/// If `p ∉ [0, 1]`, `z ≤ 0`, or `trials == 0`.
pub fn proportion_margin(trials: usize, p: f64, z: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "proportion must be in [0,1], got {p}");
    assert!(z > 0.0, "z must be positive");
    assert!(trials > 0, "need at least one trial");
    let t = trials as f64;
    z * (p * (1.0 - p) / t).sqrt() + 1.0 / t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_count_resolution() {
        assert_eq!(resolve_trials(None, 10, 500), 10);
        assert_eq!(resolve_trials(Some("full"), 10, 500), 500);
        assert_eq!(resolve_trials(Some(" full "), 10, 500), 500);
        assert_eq!(resolve_trials(Some("37"), 10, 500), 37);
        // Garbage and zero fall back to smoke rather than exploding.
        assert_eq!(resolve_trials(Some("many"), 10, 500), 10);
        assert_eq!(resolve_trials(Some("0"), 10, 500), 10);
    }

    #[test]
    fn allowance_tracks_mean_plus_z_sigma() {
        // T=100, p=0.1: mean 10, σ = 3 ⇒ allowance ⌈10 + 9⌉ = 19.
        assert_eq!(binomial_allowance(100, 0.1, 3.0), 19);
        // The allowance always admits at least the mean.
        for &t in &[10usize, 50, 1000] {
            assert!(binomial_allowance(t, 0.05, 3.0) as f64 >= t as f64 * 0.05);
        }
        // More trials ⇒ tighter *relative* allowance (law of large numbers).
        let loose = binomial_allowance(20, 0.1, 3.0) as f64 / 20.0;
        let tight = binomial_allowance(2000, 0.1, 3.0) as f64 / 2000.0;
        assert!(tight < loose);
    }

    #[test]
    fn proportion_margin_shrinks_with_trials() {
        let wide = proportion_margin(25, 0.2, 3.0);
        let narrow = proportion_margin(2500, 0.2, 3.0);
        assert!(narrow < wide);
        assert!(narrow < 0.03, "margin at 2500 trials is {narrow}");
        // Degenerate proportions keep only the continuity term.
        assert!((proportion_margin(50, 0.0, 3.0) - 0.02).abs() < 1e-12);
    }
}
