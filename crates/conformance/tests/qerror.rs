//! Sample size vs. observed q-error: the telemetry plane's accuracy
//! metric must respect the paper's central relationship.
//!
//! Corollary 1 says a larger sample (smaller `f`) yields a histogram
//! with smaller relative error. The serve-time counterpart: **observed
//! q-error quantiles shrink (or at worst hold) as the sample grows**.
//! This experiment builds histograms from Corollary-1 sample sizes at a
//! loose and a tight error target over a Zipf(1) population, routes a
//! fixed probe workload through the batched serve-time kernels
//! ([`BucketIndex::estimate_range_batch`] / `estimate_eq_batch`] — the
//! same entry points production estimation uses), folds every q-error
//! into the telemetry [`QuantileSketch`], and compares the per-trial p95
//! averaged across seeded trials.
//!
//! Run at smoke counts (default) or in full:
//! `SAMPLEHIST_CONFORMANCE_TRIALS=full cargo test -p samplehist-conformance`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use samplehist_conformance::trials;
use samplehist_core::bounds::corollary1_sample_size;
use samplehist_core::histogram::{count_le, count_lt, BucketIndex, EquiHeightHistogram};
use samplehist_core::sampling::with_replacement;
use samplehist_data::Zipf;
use samplehist_engine::qerror;
use samplehist_obs::QuantileSketch;

const DOMAIN: usize = 2_000;
const N: u64 = 200_000;
const K: usize = 20;

/// The fixed probe workload: closed ranges of varied position and width
/// plus equality probes on the head ranks (where Zipf mass concentrates).
fn probe_workload() -> (Vec<(i64, i64)>, Vec<i64>) {
    let mut ranges = Vec::new();
    for i in 0..48i64 {
        let lo = 1 + (i * 41) % DOMAIN as i64;
        let width = 1 + (i * i * 7) % 400;
        ranges.push((lo, (lo + width).min(DOMAIN as i64)));
    }
    let eqs: Vec<i64> = (1..=32).collect();
    (ranges, eqs)
}

/// Build a histogram from `r` with-replacement tuples and fold the
/// workload's q-errors (batched estimates vs. exact truths) into a
/// telemetry sketch; returns its p95.
fn observed_p95(sorted: &[i64], r: usize, rng: &mut StdRng) -> f64 {
    let sample = with_replacement(sorted, r, rng);
    let hist = EquiHeightHistogram::from_unsorted_sample(sample, K, N);
    let index = BucketIndex::new(&hist);
    let (ranges, eqs) = probe_workload();

    let mut est_ranges = vec![0.0f64; ranges.len()];
    let mut est_eqs = vec![0.0f64; eqs.len()];
    index.estimate_range_batch(&ranges, &mut est_ranges);
    index.estimate_eq_batch(&eqs, &mut est_eqs);

    let mut sketch = QuantileSketch::new();
    for (&(lo, hi), &est) in ranges.iter().zip(&est_ranges) {
        let truth = (count_le(sorted, hi) - count_lt(sorted, lo)) as f64;
        sketch.observe(qerror(est, truth));
    }
    // Merge the equality leg separately — the exposition pipeline merges
    // sketches, so exercise that path here too.
    let mut eq_sketch = QuantileSketch::new();
    for (&v, &est) in eqs.iter().zip(&est_eqs) {
        let truth = (count_le(sorted, v) - count_lt(sorted, v)) as f64;
        eq_sketch.observe(qerror(est, truth));
    }
    sketch.merge(&eq_sketch);
    assert_eq!(sketch.count(), (ranges.len() + eqs.len()) as u64);
    sketch.p95().expect("workload is non-empty")
}

/// Corollary-1 sample sizes at f = 0.4 (loose) vs f = 0.1 (tight) — a
/// 16× larger sample — must not yield a *worse* average observed p95
/// q-error. (5% head-room absorbs sketch granularity: buckets resolve
/// 1/16 of an octave, so equal underlying quantiles can differ by one
/// sub-bucket.)
#[test]
fn larger_sample_does_not_worsen_observed_qerror_p95() {
    let data = Zipf::new(1.0, DOMAIN).materialize_exact(N);
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]));
    let gamma = 0.1;
    let r_small = corollary1_sample_size(K, 0.4, N, gamma).ceil() as usize;
    let r_large = corollary1_sample_size(K, 0.1, N, gamma).ceil() as usize;
    assert!(r_large < N as usize, "tight target must stay sub-population, got {r_large}");
    assert!(r_large >= 8 * r_small, "f 0.4 → 0.1 should grow the sample ~16×");

    let t = trials(8, 120);
    let (mut sum_small, mut sum_large) = (0.0f64, 0.0f64);
    for trial in 0..t {
        let mut rng = StdRng::seed_from_u64(0xE000 + trial as u64);
        sum_small += observed_p95(&data, r_small, &mut rng);
        sum_large += observed_p95(&data, r_large, &mut rng);
    }
    let (avg_small, avg_large) = (sum_small / t as f64, sum_large / t as f64);
    assert!(avg_small >= 1.0 && avg_large >= 1.0, "q-error is bounded below by 1");
    assert!(
        avg_large <= avg_small * 1.05,
        "a 16× sample must not worsen observed p95 q-error: \
         small-sample avg {avg_small:.4}, large-sample avg {avg_large:.4} over {t} trials"
    );
}
