//! The four conformance experiments: empirical coverage of Theorem 4 /
//! Corollary 1, Theorem 7's accept/reject error rates, GEE against the
//! Theorem 8 floor, and the fault-injected ANALYZE degradation contract.
//!
//! Run at smoke counts (default) or in full:
//! `SAMPLEHIST_CONFORMANCE_TRIALS=full cargo test -p samplehist-conformance`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use samplehist_conformance::{binomial_allowance, proportion_margin, trials, Z_CONFORMANCE};
use samplehist_core::bounds::{
    corollary1_sample_size, theorem7_lower_validation_size, theorem7_upper_validation_size,
};
use samplehist_core::distinct::adversarial::{theorem8_error_floor, HardPair};
use samplehist_core::distinct::error::ratio_error;
use samplehist_core::distinct::{DistinctEstimator, FrequencyProfile, Gee};
use samplehist_core::error::max_error_against;
use samplehist_core::histogram::EquiHeightHistogram;
use samplehist_core::sampling::with_replacement;
use samplehist_engine::{
    analyze_resilient, AnalyzeMode, AnalyzeOptions, DegradationPolicy, ResilientStatistics,
};
use samplehist_storage::{
    FaultInjectingStorage, FaultSpec, HeapFile, Layout, RetryPolicy, Retrying,
};

/// Theorem 4 / Corollary 1: a sample of `r = 4k·ln(2n/γ)/f²` tuples
/// yields a histogram with relative max deviation ≤ `f` with probability
/// ≥ 1 − γ. Empirically: across `T` seeded trials the number of trials
/// exceeding `f` must stay within the binomial allowance for rate γ.
#[test]
fn theorem4_coverage_meets_one_minus_gamma() {
    let n = 50_000u64;
    let (k, f, gamma) = (20usize, 0.3f64, 0.1f64);
    let data: Vec<i64> = (0..n as i64).collect();
    let r = corollary1_sample_size(k, f, n, gamma).ceil() as usize;
    assert!(r < n as usize, "need a non-degenerate sample size, got r = {r}");

    let t = trials(20, 400);
    let mut failures = 0usize;
    let mut worst = 0.0f64;
    for trial in 0..t {
        let mut rng = StdRng::seed_from_u64(0xA000 + trial as u64);
        let sample = with_replacement(&data, r, &mut rng);
        let h = EquiHeightHistogram::from_unsorted_sample(sample, k, n);
        let realized = max_error_against(&h, &data).relative_max();
        worst = worst.max(realized);
        if realized > f {
            failures += 1;
        }
    }
    assert!(worst > 0.0, "sampling noise must be observable at all");
    let allowed = binomial_allowance(t, gamma, Z_CONFORMANCE);
    assert!(
        failures <= allowed,
        "Theorem 4 coverage violated: {failures}/{t} trials exceeded f = {f} \
         (allowance {allowed}, worst realized {worst})"
    );
}

/// A histogram over the distinct population `0..n` whose bucket sizes we
/// dictate exactly: separators are cumulative sizes minus one, matching
/// the "values ≤ separator fall left" convention of `from_sorted`.
fn histogram_with_sizes(sizes: &[i64], n: i64) -> EquiHeightHistogram {
    assert_eq!(sizes.iter().sum::<i64>(), n);
    let mut separators = Vec::with_capacity(sizes.len() - 1);
    let mut cum = 0i64;
    for &s in &sizes[..sizes.len() - 1] {
        cum += s;
        separators.push(cum - 1);
    }
    let counts: Vec<u64> = sizes.iter().map(|&s| s as u64).collect();
    EquiHeightHistogram::from_parts(separators, counts, 0, n - 1)
}

/// Theorem 7, both directions. Part 1: with a validation sample of
/// `s ≥ 4k·ln(1/γ)/f²`, a histogram whose true deviation exceeds
/// `2f·n/k` passes the test `δ_S ≤ f·s/k` with probability ≤ γ. Part 2:
/// with `s ≥ 16k·ln(k/γ)/f²`, a histogram whose true deviation is at
/// most `f·n/(2k)` *fails* the test with probability ≤ γ.
#[test]
fn theorem7_accept_and_reject_rates_are_bounded() {
    let n = 60_000i64;
    let (k, f, gamma) = (20usize, 0.4f64, 0.1f64);
    let data: Vec<i64> = (0..n).collect();
    let base = n / k as i64; // 3000

    // A "good" histogram: the exact equi-height partition, true deviation
    // ~0 — comfortably inside Part 2's f/2 precondition.
    let good = EquiHeightHistogram::from_sorted(&data, k);
    assert!(max_error_against(&good, &data).relative_max() <= f / 2.0);

    // A "bad" histogram engineered *just past* Part 1's 2f precondition:
    // one bucket overfull by 0.85·n/k, the deficit spread thinly over the
    // rest so no bucket is trivially empty (an empty bucket would make
    // rejection certain and the check vacuous).
    let delta = (0.85 * base as f64) as i64; // 2550
    let spread = delta / (k as i64 - 1);
    let mut remainder = delta - spread * (k as i64 - 1);
    let mut sizes = vec![0i64; k];
    for (i, size) in sizes.iter_mut().enumerate() {
        if i == k / 2 {
            *size = base + delta;
        } else {
            *size = base - spread - i64::from(remainder > 0);
            remainder -= i64::from(remainder > 0);
        }
    }
    let bad = histogram_with_sizes(&sizes, n);
    let bad_dev = max_error_against(&bad, &data).relative_max();
    assert!(
        bad_dev > 2.0 * f && bad_dev < 1.0,
        "bad histogram must sit just past the 2f threshold, got {bad_dev}"
    );

    let s_upper = theorem7_upper_validation_size(k, f, gamma).ceil() as usize;
    let s_lower = theorem7_lower_validation_size(k, f, gamma).ceil() as usize;
    assert!(s_lower > s_upper, "part 2 needs the larger validation sample");

    // The cross-validation test, exactly as CVB applies it: count the
    // validation sample under the histogram's separators and compare the
    // max deviation against f·s/k (relative form: ≤ f).
    let passes = |h: &EquiHeightHistogram, s: usize, seed: u64| -> bool {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sample = with_replacement(&data, s, &mut rng);
        sample.sort_unstable();
        max_error_against(h, &sample).relative_max() <= f
    };

    let t = trials(20, 300);
    let false_accepts = (0..t).filter(|&i| passes(&bad, s_upper, 0xB000 + i as u64)).count();
    let false_rejects = (0..t).filter(|&i| !passes(&good, s_lower, 0xC000 + i as u64)).count();
    let allowed = binomial_allowance(t, gamma, Z_CONFORMANCE);
    assert!(
        false_accepts <= allowed,
        "Theorem 7 part 1 violated: bad histogram accepted {false_accepts}/{t} times \
         (allowance {allowed})"
    );
    assert!(
        false_rejects <= allowed,
        "Theorem 7 part 2 violated: good histogram rejected {false_rejects}/{t} times \
         (allowance {allowed})"
    );
}

/// Theorem 8 made empirical on its own hard instance: samples from the
/// HIGH relation miss every special tuple at the predicted rate, missing
/// forces GEE's ratio error onto the `√(n·ln(1/γ)/r)` floor, and GEE
/// still matches that floor within a small constant on average — the
/// optimality the paper claims for it.
#[test]
fn theorem8_floor_binds_and_gee_matches_it() {
    let (n, r, gamma) = (100_000u64, 1_000u64, 0.2f64);
    let pair = HardPair::new(n, r, gamma);
    let floor = theorem8_error_floor(n, r, gamma);
    // The pair is calibrated so its forced error realizes the floor.
    assert!(pair.forced_error() >= 0.95 * floor);

    let high = pair.high_relation();
    let d_high = pair.d_high();
    let t = trials(60, 600);
    let mut misses = 0usize;
    let mut err_sum = 0.0f64;
    let mut err_max = 0.0f64;
    for trial in 0..t {
        let mut rng = StdRng::seed_from_u64(0xD000 + trial as u64);
        let sample = with_replacement(&high, r as usize, &mut rng);
        let profile = FrequencyProfile::from_unsorted_sample(&sample);
        let err = ratio_error(Gee.estimate(&profile, n), d_high);
        err_sum += err;
        err_max = err_max.max(err);
        if sample.iter().all(|&v| v == 0) {
            misses += 1;
            // An all-zero sample is indistinguishable from LOW, so the
            // estimate is forced off d_high by at least the floor.
            assert!(
                err >= 0.99 * floor,
                "trial {trial}: missed sample escaped the floor ({err} < {floor})"
            );
        }
    }

    // The miss rate is (1 − j/n)^r ≈ γ — the very probability with which
    // Theorem 8 says *any* estimator must fail.
    let miss_rate = misses as f64 / t as f64;
    let margin = proportion_margin(t, pair.miss_probability(), Z_CONFORMANCE);
    assert!(
        (miss_rate - pair.miss_probability()).abs() <= margin,
        "miss rate {miss_rate} vs predicted {} ± {margin}",
        pair.miss_probability()
    );

    // GEE's side of the bargain: worst ratio error O(√(n/r)) even on the
    // hard pair — within small constants of the impossibility bound.
    let sqrt_n_over_r = (n as f64 / r as f64).sqrt();
    let mean = err_sum / t as f64;
    assert!(mean <= 1.6 * sqrt_n_over_r, "mean ratio error {mean} vs √(n/r) = {sqrt_n_over_r}");
    assert!(err_max <= 2.2 * sqrt_n_over_r, "worst ratio error {err_max}");
}

fn conformance_file(seed: u64) -> (HeapFile, Vec<i64>) {
    let n = 30_000i64;
    let sorted: Vec<i64> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let file = HeapFile::with_layout(sorted.clone(), 100, Layout::Random, &mut rng);
    (file, sorted)
}

fn flaky_analyze(
    file: &HeapFile,
    fault_seed: u64,
    rng_seed: u64,
    opts: &AnalyzeOptions,
) -> ResilientStatistics {
    let spec = FaultSpec::healthy(fault_seed)
        .with_transient(0.05, 3)
        .with_unreadable(0.04)
        .with_torn(0.02);
    let storage = Retrying::new(FaultInjectingStorage::new(file, spec), RetryPolicy::default());
    let mut rng = StdRng::seed_from_u64(rng_seed);
    analyze_resilient("conformance", "v", &storage, opts, &DegradationPolicy::default(), &mut rng)
        .expect("storage is mostly healthy")
}

/// The degradation contract under fault injection. Block sampling on a
/// random layout is tuple-uniform, so every trial whose *surviving*
/// sample still has at least the Corollary 1 `r` tuples must meet the
/// raw Theorem 4 target; and every adaptive run must meet the `2·f_eff`
/// bound it certified (where `f_eff` is the possibly-widened threshold
/// from the degradation report) — both at ≥ 1 − γ coverage.
#[test]
fn fault_injected_analyze_keeps_the_theorem4_contract() {
    let (k, f, gamma) = (20usize, 0.3f64, 0.1f64);
    let (file, sorted) = conformance_file(0xF11E);
    let n = file.num_tuples();
    let r_required = corollary1_sample_size(k, f, n, gamma).ceil() as u64;

    let t = trials(12, 120);
    let allowed = binomial_allowance(t, gamma, Z_CONFORMANCE);

    // Part 1: degraded block sampling at a rate whose survivors still
    // clear Corollary 1.
    let block_opts = AnalyzeOptions {
        buckets: k,
        mode: AnalyzeMode::BlockSample { rate: 0.5 },
        compressed: false,
    };
    let mut qualifying = 0usize;
    let mut failures = 0usize;
    for trial in 0..t {
        let result =
            flaky_analyze(&file, 0xE000 + trial as u64, 0xE800 + trial as u64, &block_opts);
        if result.stats.sample_size < r_required {
            continue; // faults ate too much of the sample; no promise made
        }
        qualifying += 1;
        let realized = max_error_against(&result.stats.histogram, &sorted).relative_max();
        if realized > f {
            failures += 1;
        }
    }
    assert!(
        qualifying * 10 >= t * 9,
        "fault schedule too harsh: only {qualifying}/{t} trials kept r ≥ {r_required}"
    );
    assert!(
        failures <= allowed,
        "degraded block sampling broke Theorem 4: {failures}/{qualifying} trials \
         above f = {f} (allowance {allowed})"
    );

    // Part 2: degraded adaptive CVB honours the (possibly widened)
    // threshold it reports.
    let adaptive_opts = AnalyzeOptions {
        buckets: k,
        mode: AnalyzeMode::Adaptive { target_f: f, gamma },
        compressed: false,
    };
    let mut adaptive_failures = 0usize;
    let mut degraded_runs = 0usize;
    for trial in 0..t {
        let result =
            flaky_analyze(&file, 0xF000 + trial as u64, 0xF800 + trial as u64, &adaptive_opts);
        degraded_runs += usize::from(result.degradation.degraded);
        let f_eff = result.degradation.effective_target_f.max(f);
        let realized = max_error_against(&result.stats.histogram, &sorted).relative_max();
        if realized > 2.0 * f_eff {
            adaptive_failures += 1;
        }
    }
    assert!(degraded_runs > 0, "the fault schedule must actually degrade some runs");
    assert!(
        adaptive_failures <= allowed,
        "degraded adaptive ANALYZE broke its certified bound in \
         {adaptive_failures}/{t} trials (allowance {allowed})"
    );
}
