//! Property tests for the storage substrate: layouts are permutations,
//! pages partition the file, samplers meter exactly what they touch.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use samplehist_storage::{BlockSampler, HeapFile, Layout, PageId, RecordSampler};

fn values() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-1000i64..1000, 1..500)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every layout yields a permutation of the input.
    #[test]
    fn layouts_are_permutations(
        vals in values(),
        frac_pct in 0u32..=100,
        seed in 0u64..50,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for layout in [
            Layout::Random,
            Layout::Clustered,
            Layout::PartiallyClustered { clustered_fraction: frac_pct as f64 / 100.0 },
        ] {
            let arranged = layout.arrange(vals.clone(), &mut rng);
            let mut a = arranged.clone();
            let mut b = vals.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "{:?}", layout);
        }
    }

    /// Pages partition the file: concatenating all pages reproduces the
    /// stored order, and page sizes are b except possibly the last.
    #[test]
    fn pages_partition_the_file(vals in values(), b in 1usize..64) {
        let file = HeapFile::new(vals.clone(), b);
        let mut concat = Vec::new();
        for p in 0..file.num_pages() {
            let page = file.page(PageId(p as u32));
            if p + 1 < file.num_pages() {
                prop_assert_eq!(page.len(), b);
            } else {
                prop_assert!(page.len() <= b && !page.is_empty());
            }
            concat.extend_from_slice(page);
        }
        prop_assert_eq!(concat, vals);
    }

    /// Tuple addressing agrees with page layout.
    #[test]
    fn tuple_addressing_consistent(vals in values(), b in 1usize..64) {
        let file = HeapFile::new(vals.clone(), b);
        for idx in [0u64, (vals.len() / 2) as u64, vals.len() as u64 - 1] {
            let (v, page) = file.tuple(idx);
            prop_assert_eq!(v, vals[idx as usize]);
            let on_page = file.page(page);
            prop_assert!(on_page.contains(&v));
            prop_assert_eq!(page.index(), idx as usize / b);
        }
    }

    /// Block sampling meters exactly the tuples it returns, and never
    /// returns a tuple from an unvisited page.
    #[test]
    fn block_sampler_meter_is_exact(vals in values(), b in 1usize..32, seed in 0u64..50) {
        let file = HeapFile::new(vals, b);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = (file.num_pages() / 2).max(1);
        let mut sampler = BlockSampler::new();
        let tuples = sampler.sample(&file, g, &mut rng);
        prop_assert_eq!(sampler.io().pages_read, g as u64);
        prop_assert_eq!(sampler.io().tuples_read, tuples.len() as u64);
    }

    /// Record sampling returns existing values and bills a page each.
    #[test]
    fn record_sampler_meter_is_exact(vals in values(), b in 1usize..32, r in 1usize..100, seed in 0u64..50) {
        let file = HeapFile::new(vals.clone(), b);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = RecordSampler::new();
        let tuples = sampler.sample(&file, r, &mut rng);
        prop_assert_eq!(tuples.len(), r);
        prop_assert_eq!(sampler.io().pages_read, r as u64);
        let mut sorted = vals;
        sorted.sort_unstable();
        prop_assert!(tuples.iter().all(|v| sorted.binary_search(v).is_ok()));
    }

    /// Bernoulli page sampling returns whole pages only.
    #[test]
    fn bernoulli_returns_whole_pages(vals in values(), b in 1usize..32, seed in 0u64..50) {
        let file = HeapFile::new(vals, b);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = BlockSampler::new();
        let tuples = sampler.sample_bernoulli(&file, 0.5, &mut rng);
        prop_assert_eq!(tuples.len() as u64, sampler.io().tuples_read);
        // Pages are whole: tuple count is a sum of page sizes, i.e. at
        // most pages_read * b and at least pages_read (pages non-empty).
        prop_assert!(tuples.len() as u64 <= sampler.io().pages_read * b as u64);
        prop_assert!(tuples.len() as u64 >= sampler.io().pages_read);
    }
}
