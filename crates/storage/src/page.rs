//! Page identity and geometry.

/// Size of a disk page in bytes. SQL Server 7.0 — the paper's platform —
/// introduced 8 KB pages, up from 2 KB in earlier releases.
pub const DEFAULT_PAGE_BYTES: usize = 8192;

/// A page number within one heap file.
///
/// A newtype rather than a bare `usize` so page numbers cannot be mixed up
/// with tuple indices or block *counts* in sampler plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// The page number as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// The blocking factor `b`: how many records of `record_bytes` fit on a
/// page of `page_bytes`. This is the quantity the paper's Figure 8 sweep
/// varies (16–128-byte records on 8 KB pages give b = 512 down to 64).
///
/// # Panics
/// If the record does not fit on a page, or either size is zero.
pub fn tuples_per_page(page_bytes: usize, record_bytes: usize) -> usize {
    assert!(page_bytes > 0 && record_bytes > 0, "sizes must be positive");
    assert!(
        record_bytes <= page_bytes,
        "a {record_bytes}-byte record cannot fit on a {page_bytes}-byte page"
    );
    page_bytes / record_bytes
}

/// Per-page content checksum: FNV-1a over the little-endian bytes of every
/// tuple on the page.
///
/// This is the integrity primitive the fault-injection layer (and any
/// future on-disk format) verifies reads against: a torn write or bit flip
/// anywhere on the page changes the digest. FNV-1a is not cryptographic —
/// it guards against corruption, not adversaries — but it is fast, has no
/// dependencies, and its 64-bit state makes silent collisions on 8 KB
/// pages vanishingly unlikely.
pub fn page_checksum(tuples: &[i64]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut hash = OFFSET;
    for &v in tuples {
        for byte in v.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_detects_any_single_change() {
        let page: Vec<i64> = (0..128).collect();
        let clean = page_checksum(&page);
        assert_eq!(clean, page_checksum(&page), "deterministic");
        for i in [0usize, 1, 64, 127] {
            let mut torn = page.clone();
            torn[i] ^= 1;
            assert_ne!(clean, page_checksum(&torn), "bit flip at tuple {i} undetected");
        }
        assert_ne!(page_checksum(&[0]), page_checksum(&[]), "length is part of the digest");
    }

    #[test]
    fn paper_blocking_factors() {
        // The Section 7.1 record-size sweep on 8 KB pages.
        assert_eq!(tuples_per_page(DEFAULT_PAGE_BYTES, 16), 512);
        assert_eq!(tuples_per_page(DEFAULT_PAGE_BYTES, 32), 256);
        assert_eq!(tuples_per_page(DEFAULT_PAGE_BYTES, 64), 128);
        assert_eq!(tuples_per_page(DEFAULT_PAGE_BYTES, 128), 64);
    }

    #[test]
    fn partial_records_round_down() {
        assert_eq!(tuples_per_page(100, 30), 3);
        assert_eq!(tuples_per_page(100, 100), 1);
    }

    #[test]
    fn page_id_display_and_index() {
        let p = PageId(42);
        assert_eq!(p.index(), 42);
        assert_eq!(p.to_string(), "page#42");
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_record_rejected() {
        let _ = tuples_per_page(100, 200);
    }
}
