//! Physical data placement policies (paper Section 7.1, "Data
//! Generation": "we experimented with two different layouts").

use rand::seq::SliceRandom;
use rand::Rng;

/// How a column's values are ordered before being packed into pages.
///
/// The layout is what creates (or destroys) intra-block correlation, the
/// variable the paper's Section 4 algorithm adapts to:
///
/// * `Random` — scenario (a): tuples placed by random tuple-id; tuples on
///   a page are uncorrelated and block sampling ≈ record sampling.
/// * `Clustered` — scenario (b): the relation is value-sorted (think
///   clustered index on the analyzed column); a page holds one narrow
///   value range and the effective sampling rate collapses to one
///   independent tuple per page.
/// * `PartiallyClustered` — scenario (c) / the paper's experimental
///   middle ground: for every distinct value, a fraction of its
///   duplicates are stored contiguously (the paper used 20%) and the rest
///   are scattered at random.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Layout {
    /// Uniformly random tuple order.
    Random,
    /// Fully value-sorted.
    Clustered,
    /// `clustered_fraction` of each value's duplicates stored
    /// contiguously, the rest scattered.
    PartiallyClustered {
        /// Fraction in `[0, 1]`; the paper's experiments use 0.2.
        clustered_fraction: f64,
    },
}

impl Layout {
    /// The paper's partially-clustered configuration (20%).
    pub fn paper_partial() -> Self {
        Layout::PartiallyClustered { clustered_fraction: 0.2 }
    }

    /// Arrange `values` according to the layout. Consumes and returns the
    /// vector; the result is a permutation of the input.
    ///
    /// # Panics
    /// If a partial-clustering fraction lies outside `[0, 1]`.
    pub fn arrange(self, mut values: Vec<i64>, rng: &mut impl Rng) -> Vec<i64> {
        match self {
            Layout::Random => {
                values.shuffle(rng);
                values
            }
            Layout::Clustered => {
                values.sort_unstable();
                values
            }
            Layout::PartiallyClustered { clustered_fraction } => {
                assert!(
                    (0.0..=1.0).contains(&clustered_fraction),
                    "clustered fraction must be in [0,1], got {clustered_fraction}"
                );
                arrange_partially_clustered(values, clustered_fraction, rng)
            }
        }
    }
}

/// Mirror of the paper's construction: "for every distinct value,
/// generate `0.8·n_t` tuples with randomly generated tuple-ids but assign
/// the same tuple-id to `0.2·n_t` of the tuples", then cluster on
/// tuple-id — so 20% of each value's duplicates land sequentially and the
/// rest are scattered.
///
/// Implementation: sort; split each run of equal values into one
/// contiguous *clump* of `⌈fraction·len⌉` copies plus individual
/// *singles*; shuffle the placement units (clumps stay intact); flatten.
fn arrange_partially_clustered(
    mut values: Vec<i64>,
    fraction: f64,
    rng: &mut impl Rng,
) -> Vec<i64> {
    values.sort_unstable();

    // A unit is (value, copies): copies > 1 for a clump, 1 for a single.
    let mut units: Vec<(i64, u32)> = Vec::new();
    let mut i = 0usize;
    while i < values.len() {
        let v = values[i];
        let start = i;
        while i < values.len() && values[i] == v {
            i += 1;
        }
        let run = i - start;
        let clump = ((run as f64 * fraction).ceil() as usize).min(run);
        if clump > 1 {
            units.push((v, clump as u32));
        } else if clump == 1 {
            units.push((v, 1));
        }
        for _ in clump..run {
            units.push((v, 1));
        }
    }
    units.shuffle(rng);

    let mut out = Vec::with_capacity(values.len());
    for (v, copies) in units {
        for _ in 0..copies {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn is_permutation(a: &[i64], b: &[i64]) -> bool {
        let mut a = a.to_vec();
        let mut b = b.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    #[test]
    fn all_layouts_are_permutations() {
        let data: Vec<i64> = (0..100).flat_map(|v| vec![v; 10]).collect();
        let mut rng = StdRng::seed_from_u64(1);
        for layout in [
            Layout::Random,
            Layout::Clustered,
            Layout::paper_partial(),
            Layout::PartiallyClustered { clustered_fraction: 0.0 },
            Layout::PartiallyClustered { clustered_fraction: 1.0 },
        ] {
            let arranged = layout.arrange(data.clone(), &mut rng);
            assert!(is_permutation(&data, &arranged), "{layout:?}");
        }
    }

    #[test]
    fn clustered_is_sorted() {
        let data = vec![5i64, 3, 9, 1, 3];
        let mut rng = StdRng::seed_from_u64(2);
        let arranged = Layout::Clustered.arrange(data, &mut rng);
        assert_eq!(arranged, vec![1, 3, 3, 5, 9]);
    }

    #[test]
    fn random_is_not_sorted_with_high_probability() {
        let data: Vec<i64> = (0..10_000).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let arranged = Layout::Random.arrange(data, &mut rng);
        assert!(arranged.windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    fn partial_clustering_keeps_clumps_contiguous() {
        // One value with 100 copies at fraction 0.2: a 20-copy clump must
        // appear contiguously somewhere.
        let mut data = vec![7i64; 100];
        data.extend(1000..2000); // 1000 singletons as background
        let mut rng = StdRng::seed_from_u64(4);
        let arranged = Layout::paper_partial().arrange(data, &mut rng);
        // Find the longest run of 7s.
        let mut longest = 0usize;
        let mut current = 0usize;
        for &v in &arranged {
            if v == 7 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        assert!(longest >= 20, "longest run of the clumped value = {longest}");
    }

    #[test]
    fn fraction_one_fully_clusters_each_value() {
        // Every value's copies contiguous (but value order random).
        let data: Vec<i64> = (0..50).flat_map(|v| vec![v; 4]).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let arranged =
            Layout::PartiallyClustered { clustered_fraction: 1.0 }.arrange(data, &mut rng);
        // Each value appears in exactly one run.
        let mut seen: std::collections::HashSet<i64> = std::collections::HashSet::new();
        let mut i = 0usize;
        while i < arranged.len() {
            let v = arranged[i];
            assert!(seen.insert(v), "value {v} appears in two separate runs");
            while i < arranged.len() && arranged[i] == v {
                i += 1;
            }
        }
    }

    #[test]
    fn fraction_zero_behaves_like_random() {
        // No clumps: every unit is a single tuple. Statistically random —
        // just verify it is a permutation and unsorted.
        let data: Vec<i64> = (0..5_000).flat_map(|v| [v, v]).collect();
        let mut rng = StdRng::seed_from_u64(6);
        let arranged =
            Layout::PartiallyClustered { clustered_fraction: 0.0 }.arrange(data.clone(), &mut rng);
        assert!(is_permutation(&data, &arranged));
        assert!(arranged.windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    #[should_panic(expected = "clustered fraction")]
    fn bad_fraction_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let _ = Layout::PartiallyClustered { clustered_fraction: 1.5 }.arrange(vec![1], &mut rng);
    }
}
