//! The heap file: one column's values packed into fixed-capacity pages.

use rand::Rng;

use samplehist_core::BlockSource;

use crate::layout::Layout;
use crate::page::{tuples_per_page, PageId, DEFAULT_PAGE_BYTES};

/// One column of a relation stored as a sequence of pages.
///
/// Values are stored contiguously in page-major order; a page is a slice
/// `values[p·b .. (p+1)·b]` with blocking factor `b` tuples per page (the
/// last page may be short). Construction applies a [`Layout`] first, so
/// the correlation structure of pages is an explicit experimental knob.
#[derive(Debug, Clone)]
pub struct HeapFile {
    values: Vec<i64>,
    tuples_per_page: usize,
}

impl HeapFile {
    /// Store `values` as-is (caller controls ordering) with
    /// `tuples_per_page` records per page.
    ///
    /// # Panics
    /// If `values` is empty or `tuples_per_page` is zero.
    pub fn new(values: Vec<i64>, tuples_per_page: usize) -> Self {
        assert!(!values.is_empty(), "a heap file needs at least one tuple");
        assert!(tuples_per_page > 0, "pages must hold at least one tuple");
        Self { values, tuples_per_page }
    }

    /// Apply `layout` to `values`, then store them.
    pub fn with_layout(
        values: Vec<i64>,
        tuples_per_page: usize,
        layout: Layout,
        rng: &mut impl Rng,
    ) -> Self {
        Self::new(layout.arrange(values, rng), tuples_per_page)
    }

    /// Geometry helper: build from physical sizes — `page_bytes` pages
    /// holding `record_bytes` records, as in the paper's record-size
    /// sweep (Figure 8).
    pub fn with_record_size(
        values: Vec<i64>,
        page_bytes: usize,
        record_bytes: usize,
        layout: Layout,
        rng: &mut impl Rng,
    ) -> Self {
        Self::with_layout(values, tuples_per_page(page_bytes, record_bytes), layout, rng)
    }

    /// Default 8 KB pages.
    pub fn with_default_pages(
        values: Vec<i64>,
        record_bytes: usize,
        layout: Layout,
        rng: &mut impl Rng,
    ) -> Self {
        Self::with_record_size(values, DEFAULT_PAGE_BYTES, record_bytes, layout, rng)
    }

    /// Blocking factor `b` (tuples per full page).
    pub fn blocking_factor(&self) -> usize {
        self.tuples_per_page
    }

    /// Number of tuples.
    pub fn num_tuples(&self) -> u64 {
        self.values.len() as u64
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.values.len().div_ceil(self.tuples_per_page)
    }

    /// The tuples on `page`.
    ///
    /// # Panics
    /// If the page is out of range.
    pub fn page(&self, page: PageId) -> &[i64] {
        let start = page.index() * self.tuples_per_page;
        assert!(start < self.values.len(), "{page} out of range");
        let end = (start + self.tuples_per_page).min(self.values.len());
        &self.values[start..end]
    }

    /// The value of the tuple at global index `idx` — also tells you
    /// which page serving that tuple would fault in.
    pub fn tuple(&self, idx: u64) -> (i64, PageId) {
        let idx = idx as usize;
        assert!(idx < self.values.len(), "tuple {idx} out of range");
        (self.values[idx], PageId((idx / self.tuples_per_page) as u32))
    }

    /// The content checksum of `page` (see [`crate::page_checksum`]) —
    /// what a reader verifying integrity expects the page to hash to.
    ///
    /// # Panics
    /// If the page is out of range.
    pub fn page_checksum(&self, page: PageId) -> u64 {
        crate::page::page_checksum(self.page(page))
    }

    /// Full scan: every value, in storage order (borrow).
    pub fn scan(&self) -> &[i64] {
        &self.values
    }

    /// A sorted copy of the whole column — the "full scan + sort" that
    /// perfect histogram construction performs.
    pub fn sorted_values(&self) -> Vec<i64> {
        let mut v = self.values.clone();
        v.sort_unstable();
        v
    }
}

impl BlockSource for HeapFile {
    fn num_blocks(&self) -> usize {
        self.num_pages()
    }

    fn num_tuples(&self) -> u64 {
        HeapFile::num_tuples(self)
    }

    fn block(&self, index: usize) -> &[i64] {
        self.page(PageId(index as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn geometry() {
        let f = HeapFile::new((0..105).collect(), 10);
        assert_eq!(f.num_tuples(), 105);
        assert_eq!(f.num_pages(), 11);
        assert_eq!(f.blocking_factor(), 10);
        assert_eq!(f.page(PageId(0)), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(f.page(PageId(10)), &[100, 101, 102, 103, 104], "short last page");
    }

    #[test]
    fn tuple_addressing() {
        let f = HeapFile::new((0..100).collect(), 25);
        assert_eq!(f.tuple(0), (0, PageId(0)));
        assert_eq!(f.tuple(24), (24, PageId(0)));
        assert_eq!(f.tuple(25), (25, PageId(1)));
        assert_eq!(f.tuple(99), (99, PageId(3)));
    }

    #[test]
    fn block_source_impl_matches_pages() {
        let f = HeapFile::new((0..55).collect(), 10);
        assert_eq!(BlockSource::num_blocks(&f), 6);
        assert_eq!(BlockSource::num_tuples(&f), 55);
        assert_eq!(BlockSource::block(&f, 5), &[50, 51, 52, 53, 54]);
        assert!((f.avg_tuples_per_block() - 55.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn layout_is_applied_at_construction() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = HeapFile::with_layout((0..1000).rev().collect(), 10, Layout::Clustered, &mut rng);
        assert_eq!(f.page(PageId(0)), (0..10).collect::<Vec<_>>().as_slice());
        let sorted = f.sorted_values();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn record_size_drives_blocking_factor() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = HeapFile::with_default_pages((0..100_000).collect(), 64, Layout::Random, &mut rng);
        assert_eq!(f.blocking_factor(), 128);
        assert_eq!(f.num_pages(), 100_000usize.div_ceil(128));
    }

    #[test]
    fn cvb_runs_against_heap_file() {
        // End-to-end: the core adaptive algorithm accepts a HeapFile.
        use samplehist_core::sampling::{cvb, CvbConfig};
        let mut rng = StdRng::seed_from_u64(3);
        let f = HeapFile::with_layout((0..50_000).collect(), 100, Layout::Random, &mut rng);
        let cfg = CvbConfig::theoretical(&f, 20, 0.3, 0.05);
        let result = cvb::run(&f, &cfg, &mut rng);
        assert!(result.tuples_sampled > 0);
        assert_eq!(result.histogram.total(), 50_000);
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn empty_file_rejected() {
        let _ = HeapFile::new(vec![], 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_out_of_range() {
        let f = HeapFile::new(vec![1, 2, 3], 2);
        let _ = f.page(PageId(2));
    }
}
