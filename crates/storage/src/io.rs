//! I/O accounting.

/// A meter of storage traffic. Experiments report `pages_read` — the
/// paper's "number of disk blocks sampled" (Figure 4) — and
/// `tuples_read`, whose ratio to the relation size is the "sampling rate"
/// on the x-axis of most of the Section 7 figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages fetched (each fetch of a page counts, even a repeat).
    pub pages_read: u64,
    /// Tuples materialized out of those pages.
    pub tuples_read: u64,
}

impl IoStats {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge one page of `tuples` tuples.
    pub fn charge_page(&mut self, tuples: usize) {
        self.pages_read += 1;
        self.tuples_read += tuples as u64;
    }

    /// Fold another meter into this one.
    pub fn merge(&mut self, other: IoStats) {
        self.pages_read += other.pages_read;
        self.tuples_read += other.tuples_read;
    }

    /// Tuples per page actually observed, or 0 when nothing was read.
    pub fn tuples_per_page(&self) -> f64 {
        if self.pages_read == 0 {
            0.0
        } else {
            self.tuples_read as f64 / self.pages_read as f64
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;

    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            pages_read: self.pages_read + rhs.pages_read,
            tuples_read: self.tuples_read + rhs.tuples_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_merge() {
        let mut a = IoStats::new();
        a.charge_page(100);
        a.charge_page(100);
        assert_eq!(a.pages_read, 2);
        assert_eq!(a.tuples_read, 200);

        let mut b = IoStats::new();
        b.charge_page(50);
        a.merge(b);
        assert_eq!(a.pages_read, 3);
        assert_eq!(a.tuples_read, 250);
        assert!((a.tuples_per_page() - 250.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_operator() {
        let a = IoStats { pages_read: 1, tuples_read: 10 };
        let b = IoStats { pages_read: 2, tuples_read: 20 };
        let c = a + b;
        assert_eq!(c, IoStats { pages_read: 3, tuples_read: 30 });
    }

    #[test]
    fn empty_meter_ratio_is_zero() {
        assert_eq!(IoStats::new().tuples_per_page(), 0.0);
    }
}
