//! # samplehist-storage
//!
//! The storage substrate for the histogram-sampling experiments: an
//! in-memory simulator of the paged heap files that the paper's SQL
//! Server 7.0 prototype sampled from.
//!
//! The sampling algorithms only care about two properties of a storage
//! engine: **which tuples share a page** (that is where intra-block
//! correlation, the whole subject of the paper's Section 4, comes from)
//! and **how many pages a plan touches** (the I/O cost being optimized).
//! This crate models exactly those two things and nothing else:
//!
//! * [`HeapFile`] — one column of a relation, laid out in fixed-capacity
//!   pages derived from a page size and a record size (the paper varies
//!   records from 16 to 128 bytes on 8 KB pages, Section 7.1).
//! * [`Layout`] — the physical placements studied in Section 7: random
//!   tuple order, fully clustered (value-sorted), and the partially
//!   clustered layout where a fraction of each value's duplicates are
//!   stored contiguously.
//! * [`BlockSampler`] / [`RecordSampler`] — page- and tuple-grained
//!   samplers that charge their I/O to an [`IoStats`] meter, so
//!   experiments can report "disk blocks read" like the paper's Figure 4.
//! * [`FaultInjectingStorage`] / [`Retrying`] — a seeded, reproducible
//!   fault schedule (transient, dead, and torn pages, the latter detected
//!   via [`page_checksum`]) plus a deterministic retry-with-backoff
//!   policy, for exercising the degradation-aware sampling paths.
//!
//! `HeapFile` implements [`samplehist_core::BlockSource`], so everything
//! in `samplehist_core::sampling` (including the adaptive CVB algorithm)
//! runs against it directly.

//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use samplehist_storage::{BlockSampler, HeapFile, Layout};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // 10k tuples, 64-byte records on 8 KB pages, random placement.
//! let file = HeapFile::with_default_pages((0..10_000).collect(), 64, Layout::Random, &mut rng);
//! assert_eq!(file.blocking_factor(), 128);
//!
//! // Sample 5 whole pages and read the I/O meter.
//! let mut sampler = BlockSampler::new();
//! let tuples = sampler.sample(&file, 5, &mut rng);
//! assert_eq!(tuples.len(), 5 * 128);
//! assert_eq!(sampler.io().pages_read, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod fault;
mod heap_file;
mod io;
mod layout;
mod page;
mod sampler;

pub use fault::{FaultInjectingStorage, FaultSpec, FaultStats, PageFault, RetryPolicy, Retrying};
pub use heap_file::HeapFile;
pub use io::IoStats;
pub use layout::Layout;
pub use page::{page_checksum, tuples_per_page, PageId, DEFAULT_PAGE_BYTES};
pub use sampler::{BlockSampler, RecordSampler};
