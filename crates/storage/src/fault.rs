//! Deterministic fault injection over a heap file, plus the retry policy
//! that absorbs the transient fraction of it.
//!
//! Production ANALYZE runs against disks that fail. To test the pipeline's
//! degradation behavior the failures must be (1) realistic — transient
//! errors, dead pages, torn writes — and (2) **reproducible**: the same
//! schedule every run, independent of access order, so a failing seed can
//! be replayed and traces diffed bit-for-bit.
//!
//! [`FaultInjectingStorage`] wraps a [`HeapFile`] behind
//! [`TryBlockSource`], the sampler-facing trait, and derives each page's
//! fate by hashing `(seed, page)` — not by consuming an RNG stream — so a
//! page is unreadable (or torn, or transiently flaky) regardless of when
//! or how often it is read. Torn pages are detected the way a real engine
//! detects them: the wrapper verifies every read against the page's
//! [`page_checksum`] and refuses to serve contents that do not match.
//!
//! Time is virtual: reads and backoff charge ticks to a counter instead of
//! sleeping, so latency-sensitive assertions stay deterministic and tests
//! run at full speed. [`Retrying`] layers the deterministic
//! retry-with-exponential-backoff policy over any fallible source.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};

use samplehist_core::sampling::{BlockError, TryBlockSource};

use crate::heap_file::HeapFile;
use crate::page::{page_checksum, PageId};

/// The fate of one page, fully determined by `(seed, page)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFault {
    /// Reads succeed (and verify).
    None,
    /// The first `failures` read attempts fail; the page then recovers.
    Transient {
        /// How many consecutive attempts fail before the page reads clean.
        failures: u32,
    },
    /// Every read fails: a dead page (media error).
    Unreadable,
    /// Every read serves corrupted bytes; checksum verification rejects it.
    Torn,
}

/// A reproducible fault schedule: rates for each fault class plus the
/// virtual-clock cost of reads.
///
/// Rates are per page and drawn independently per page from the seeded
/// hash, so the *set* of faulty pages is a deterministic function of
/// `(seed, rates)` alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the schedule. Two wrappers with equal specs inject
    /// identical faults.
    pub seed: u64,
    /// Fraction of pages that fail transiently (in `[0,1]`).
    pub transient_rate: f64,
    /// Max consecutive failures a transiently faulty page serves (the
    /// actual count is hash-drawn from `1..=max_transient_failures`).
    pub max_transient_failures: u32,
    /// Fraction of pages that are permanently unreadable.
    pub unreadable_rate: f64,
    /// Fraction of pages whose contents are torn (checksum mismatch).
    pub torn_rate: f64,
    /// Virtual ticks a successful or failed read attempt costs.
    pub read_latency_ticks: u64,
    /// Extra virtual ticks a faulty attempt costs (error paths are slow —
    /// device timeouts, firmware retries).
    pub fault_latency_ticks: u64,
}

impl FaultSpec {
    /// A schedule with no faults: the wrapper is then a plain metered view.
    pub fn healthy(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 0.0,
            max_transient_failures: 3,
            unreadable_rate: 0.0,
            torn_rate: 0.0,
            read_latency_ticks: 1,
            fault_latency_ticks: 10,
        }
    }

    /// Set the transient-failure rate and per-page failure cap.
    pub fn with_transient(mut self, rate: f64, max_failures: u32) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        assert!(max_failures > 0, "a transient fault must fail at least once");
        self.transient_rate = rate;
        self.max_transient_failures = max_failures;
        self
    }

    /// Set the fraction of permanently unreadable pages.
    pub fn with_unreadable(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.unreadable_rate = rate;
        self
    }

    /// Set the fraction of torn (checksum-failing) pages.
    pub fn with_torn(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0,1]");
        self.torn_rate = rate;
        self
    }

    fn validate(&self) {
        let total = self.unreadable_rate + self.torn_rate + self.transient_rate;
        assert!(total <= 1.0, "fault rates sum to {total}, must be ≤ 1");
    }

    /// The fate of `page` under this schedule — pure function of the spec
    /// and the page number (access order can never perturb it).
    pub fn fault_of(&self, page: usize) -> PageFault {
        let h = splitmix64(self.seed ^ splitmix64(page as u64 + 1));
        // 53 high bits -> uniform in [0,1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.unreadable_rate {
            PageFault::Unreadable
        } else if u < self.unreadable_rate + self.torn_rate {
            PageFault::Torn
        } else if u < self.unreadable_rate + self.torn_rate + self.transient_rate {
            let failures = 1 + (splitmix64(h) % self.max_transient_failures as u64) as u32;
            PageFault::Transient { failures }
        } else {
            PageFault::None
        }
    }
}

/// SplitMix64: one multiply-xor-shift round per step — the standard seeded
/// hash for turning an index into an independent uniform word.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What the wrapper observed: attempt counts by outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads that succeeded and verified.
    pub reads_ok: u64,
    /// Attempts that failed transiently.
    pub transient_errors: u64,
    /// Attempts against dead pages.
    pub unreadable_errors: u64,
    /// Attempts rejected by checksum verification.
    pub checksum_errors: u64,
}

impl FaultStats {
    /// Total read attempts, successful or not.
    pub fn attempts(&self) -> u64 {
        self.reads_ok + self.transient_errors + self.unreadable_errors + self.checksum_errors
    }
}

/// A [`HeapFile`] viewed through a seeded fault schedule.
///
/// Implements [`TryBlockSource`] — the sampler-facing trait — so the whole
/// degradation-aware pipeline (`cvb::try_run`, `analyze_resilient`) runs
/// against it unchanged. Every successful read is verified against the
/// per-page checksum captured at wrap time; torn pages therefore surface
/// as [`BlockError::Corrupted`] with both digests attached.
#[derive(Debug)]
pub struct FaultInjectingStorage<'a> {
    file: &'a HeapFile,
    spec: FaultSpec,
    checksums: Vec<u64>,
    attempts: RefCell<Vec<u32>>,
    clock: Cell<u64>,
    stats: RefCell<FaultStats>,
}

impl<'a> FaultInjectingStorage<'a> {
    /// Wrap `file` under `spec`, capturing each page's clean checksum.
    pub fn new(file: &'a HeapFile, spec: FaultSpec) -> Self {
        spec.validate();
        let pages = file.num_pages();
        let checksums = (0..pages).map(|p| file.page_checksum(PageId(p as u32))).collect();
        Self {
            file,
            spec,
            checksums,
            attempts: RefCell::new(vec![0; pages]),
            clock: Cell::new(0),
            stats: RefCell::new(FaultStats::default()),
        }
    }

    /// The schedule in force.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The fate of `page` under the schedule (for tests and reports).
    pub fn fault_of(&self, page: usize) -> PageFault {
        self.spec.fault_of(page)
    }

    /// Virtual ticks spent on reads so far (no wall-clock is ever sampled).
    pub fn virtual_now(&self) -> u64 {
        self.clock.get()
    }

    /// Attempt counts by outcome.
    pub fn stats(&self) -> FaultStats {
        *self.stats.borrow()
    }

    fn tick(&self, ticks: u64) {
        self.clock.set(self.clock.get() + ticks);
    }
}

impl TryBlockSource for FaultInjectingStorage<'_> {
    fn num_blocks(&self) -> usize {
        self.file.num_pages()
    }

    fn num_tuples(&self) -> u64 {
        self.file.num_tuples()
    }

    fn try_block(&self, index: usize) -> Result<Cow<'_, [i64]>, BlockError> {
        let page = self.file.page(PageId(index as u32));
        let attempt = {
            let mut attempts = self.attempts.borrow_mut();
            attempts[index] += 1;
            attempts[index]
        };
        match self.spec.fault_of(index) {
            PageFault::Unreadable => {
                self.tick(self.spec.read_latency_ticks + self.spec.fault_latency_ticks);
                self.stats.borrow_mut().unreadable_errors += 1;
                Err(BlockError::Unreadable { block: index })
            }
            PageFault::Torn => {
                self.tick(self.spec.read_latency_ticks + self.spec.fault_latency_ticks);
                self.stats.borrow_mut().checksum_errors += 1;
                // A torn write leaves real bytes on disk; model the served
                // (corrupt) contents and report what they hash to.
                let mut torn = page.to_vec();
                torn[0] ^= 1;
                Err(BlockError::Corrupted {
                    block: index,
                    expected: self.checksums[index],
                    actual: page_checksum(&torn),
                })
            }
            PageFault::Transient { failures } if attempt <= failures => {
                self.tick(self.spec.read_latency_ticks + self.spec.fault_latency_ticks);
                self.stats.borrow_mut().transient_errors += 1;
                Err(BlockError::Transient { block: index, attempts: attempt })
            }
            PageFault::Transient { .. } | PageFault::None => {
                self.tick(self.spec.read_latency_ticks);
                debug_assert_eq!(page_checksum(page), self.checksums[index]);
                self.stats.borrow_mut().reads_ok += 1;
                Ok(Cow::Borrowed(page))
            }
        }
    }

    fn avg_tuples_per_block(&self) -> f64 {
        self.file.num_tuples() as f64 / self.file.num_pages() as f64
    }
}

/// Deterministic retry-with-exponential-backoff policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per block (1 = no retries).
    pub max_attempts: u32,
    /// Virtual ticks of backoff before the first retry; doubles per retry.
    pub backoff_base_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, backoff_base_ticks: 2 }
    }
}

/// Retry wrapper over any fallible source: transient errors are retried up
/// to the policy's attempt cap with exponential backoff charged to a
/// virtual clock (never a wall-clock sleep); persistent errors — dead
/// pages, checksum failures — propagate immediately, since retrying them
/// only burns I/O.
#[derive(Debug)]
pub struct Retrying<S> {
    inner: S,
    policy: RetryPolicy,
    retries: Cell<u64>,
    backoff_ticks: Cell<u64>,
}

impl<S: TryBlockSource> Retrying<S> {
    /// Wrap `inner` under `policy`.
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        Self { inner, policy, retries: Cell::new(0), backoff_ticks: Cell::new(0) }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Total virtual backoff ticks charged so far.
    pub fn backoff_ticks(&self) -> u64 {
        self.backoff_ticks.get()
    }
}

impl<S: TryBlockSource> TryBlockSource for Retrying<S> {
    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }

    fn num_tuples(&self) -> u64 {
        self.inner.num_tuples()
    }

    fn try_block(&self, index: usize) -> Result<Cow<'_, [i64]>, BlockError> {
        let mut attempt = 1;
        loop {
            match self.inner.try_block(index) {
                Ok(tuples) => return Ok(tuples),
                Err(err) if err.is_transient() && attempt < self.policy.max_attempts => {
                    self.retries.set(self.retries.get() + 1);
                    self.backoff_ticks.set(
                        self.backoff_ticks.get()
                            + (self.policy.backoff_base_ticks << (attempt - 1)),
                    );
                    attempt += 1;
                }
                Err(BlockError::Transient { block, .. }) => {
                    return Err(BlockError::Transient { block, attempts: attempt })
                }
                Err(err) => return Err(err),
            }
        }
    }

    fn avg_tuples_per_block(&self) -> f64 {
        self.inner.avg_tuples_per_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn file(n: i64, page: usize, seed: u64) -> HeapFile {
        let mut rng = StdRng::seed_from_u64(seed);
        HeapFile::with_layout((0..n).collect(), page, Layout::Random, &mut rng)
    }

    fn spec() -> FaultSpec {
        FaultSpec::healthy(42).with_transient(0.10, 3).with_unreadable(0.05).with_torn(0.03)
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_page() {
        let s = spec();
        for page in 0..500 {
            assert_eq!(s.fault_of(page), s.fault_of(page), "self-consistent");
        }
        // A different seed gives a different schedule somewhere.
        let other = FaultSpec { seed: 43, ..s };
        assert!((0..500).any(|p| s.fault_of(p) != other.fault_of(p)));
        // Rates are roughly honored over many pages.
        let dead = (0..10_000).filter(|&p| s.fault_of(p) == PageFault::Unreadable).count();
        assert!((300..700).contains(&dead), "~5% of 10k pages, got {dead}");
    }

    #[test]
    fn fault_independent_of_access_order() {
        let f = file(10_000, 100, 1);
        let a = FaultInjectingStorage::new(&f, spec());
        let b = FaultInjectingStorage::new(&f, spec());
        // Read in opposite orders; per-page outcomes on first touch differ
        // only via transient attempt counts, which both start at zero.
        let forward: Vec<bool> = (0..f.num_pages()).map(|p| a.try_block(p).is_ok()).collect();
        let backward: Vec<bool> =
            (0..f.num_pages()).rev().map(|p| b.try_block(p).is_ok()).collect();
        let backward_forward: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_forward);
    }

    #[test]
    fn transient_pages_recover_after_their_failure_count() {
        let f = file(20_000, 100, 2);
        let storage = FaultInjectingStorage::new(&f, spec());
        let transient = (0..f.num_pages())
            .find(|&p| matches!(storage.fault_of(p), PageFault::Transient { .. }))
            .expect("10% transient rate over 200 pages");
        let PageFault::Transient { failures } = storage.fault_of(transient) else { unreachable!() };
        for attempt in 1..=failures {
            let err = storage.try_block(transient).expect_err("still failing");
            assert_eq!(err, BlockError::Transient { block: transient, attempts: attempt });
        }
        let page = storage.try_block(transient).expect("recovered");
        assert_eq!(page.as_ref(), f.page(PageId(transient as u32)));
    }

    #[test]
    fn torn_pages_report_both_checksums() {
        let f = file(20_000, 100, 3);
        let storage = FaultInjectingStorage::new(&f, FaultSpec::healthy(7).with_torn(0.2));
        let torn = (0..f.num_pages())
            .find(|&p| storage.fault_of(p) == PageFault::Torn)
            .expect("20% torn rate over 200 pages");
        let err = storage.try_block(torn).expect_err("checksum must reject");
        let BlockError::Corrupted { block, expected, actual } = err else {
            panic!("wrong taxonomy: {err:?}");
        };
        assert_eq!(block, torn);
        assert_eq!(expected, f.page_checksum(PageId(torn as u32)));
        assert_ne!(expected, actual);
        assert_eq!(storage.stats().checksum_errors, 1);
    }

    #[test]
    fn virtual_clock_charges_reads_and_fault_penalties() {
        let f = file(1_000, 100, 4);
        let storage = FaultInjectingStorage::new(&f, FaultSpec::healthy(1));
        assert_eq!(storage.virtual_now(), 0);
        let _ = storage.try_block(0);
        let _ = storage.try_block(1);
        assert_eq!(storage.virtual_now(), 2, "healthy reads cost read_latency_ticks each");

        let flaky = FaultInjectingStorage::new(&f, FaultSpec::healthy(1).with_unreadable(1.0));
        let _ = flaky.try_block(0);
        assert_eq!(flaky.virtual_now(), 11, "faulty attempt adds fault_latency_ticks");
    }

    #[test]
    fn retrying_masks_transients_and_charges_backoff() {
        let f = file(50_000, 100, 5);
        let spec = FaultSpec::healthy(11).with_transient(1.0, 3);
        let storage = Retrying::new(
            FaultInjectingStorage::new(&f, spec),
            RetryPolicy { max_attempts: 4, backoff_base_ticks: 2 },
        );
        // Every page is transient with ≤ 3 failures and we allow 4
        // attempts, so every read eventually succeeds.
        for p in 0..storage.num_blocks() {
            assert!(storage.try_block(p).is_ok(), "page {p} should recover within budget");
        }
        assert!(storage.retries() > 0);
        // Exponential backoff: a page needing 3 retries charges 2+4+8.
        assert!(storage.backoff_ticks() >= storage.retries() * 2);
        assert_eq!(storage.inner().stats().reads_ok, storage.num_blocks() as u64);
    }

    #[test]
    fn retrying_gives_up_with_attempt_count() {
        let f = file(10_000, 100, 6);
        let spec = FaultSpec::healthy(13).with_transient(1.0, 8);
        let storage = Retrying::new(
            FaultInjectingStorage::new(&f, spec),
            RetryPolicy { max_attempts: 2, backoff_base_ticks: 1 },
        );
        let err = storage.try_block(0).expect_err("8 failures > 2 attempts");
        assert_eq!(err, BlockError::Transient { block: 0, attempts: 2 });
    }

    #[test]
    fn retrying_does_not_retry_persistent_faults() {
        let f = file(10_000, 100, 7);
        let spec = FaultSpec::healthy(17).with_unreadable(1.0);
        let storage = Retrying::new(FaultInjectingStorage::new(&f, spec), RetryPolicy::default());
        let err = storage.try_block(3).expect_err("dead page");
        assert_eq!(err, BlockError::Unreadable { block: 3 });
        assert_eq!(storage.retries(), 0);
        assert_eq!(storage.inner().stats().unreadable_errors, 1, "exactly one attempt");
    }

    #[test]
    fn healthy_wrapper_serves_every_page_verbatim() {
        let f = file(5_000, 64, 8);
        let storage = FaultInjectingStorage::new(&f, FaultSpec::healthy(99));
        for p in 0..f.num_pages() {
            let got = storage.try_block(p).expect("healthy");
            assert_eq!(got.as_ref(), f.page(PageId(p as u32)));
        }
        let stats = storage.stats();
        assert_eq!(stats.reads_ok, f.num_pages() as u64);
        assert_eq!(stats.attempts(), stats.reads_ok);
    }
}
