//! Metered samplers over a heap file.
//!
//! These wrap the raw sampling primitives of `samplehist_core::sampling`
//! with I/O accounting, making the cost asymmetry that motivates the
//! paper's Section 4 measurable: a block sampler pays one page per `b`
//! tuples; a record sampler pays one page per *tuple* (each randomly
//! chosen tuple lives on its own page fetch, and at realistic sampling
//! rates almost every fetch is a distinct page).

use rand::Rng;
use samplehist_obs::Recorder;

use crate::heap_file::HeapFile;
use crate::io::IoStats;
use crate::page::PageId;

/// Bytes one stored tuple occupies in the simulated heap file (`i64`
/// values throughout) — used for the `storage.bytes_read` counter.
const TUPLE_BYTES: u64 = 8;

/// Report one batch of page reads to `recorder`: totals plus the
/// sequential-vs-random split (a fetch is *sequential* when it hits the
/// page directly after the previous fetch — the distinction that decides
/// whether block sampling I/O behaves like a scan or like seeks).
fn record_page_reads(recorder: &Recorder, kind: &'static str, pages: &[usize], tuples: u64) {
    if !recorder.is_enabled() || pages.is_empty() {
        return;
    }
    let sequential = pages.windows(2).filter(|w| w[1] == w[0].wrapping_add(1)).count() as u64;
    let mut span = recorder.span("storage.read");
    span.field("kind", kind);
    span.field("pages", pages.len());
    span.field("tuples", tuples);
    recorder.counter("storage.pages_read", pages.len() as u64);
    recorder.counter("storage.tuples_read", tuples);
    recorder.counter("storage.bytes_read", tuples * TUPLE_BYTES);
    recorder.counter("storage.pages_sequential", sequential);
    recorder.counter("storage.pages_random", pages.len() as u64 - sequential);
}

/// Page-grained sampler: draws whole pages without replacement and
/// charges one page read per page.
#[derive(Debug, Default)]
pub struct BlockSampler {
    io: IoStats,
    recorder: Recorder,
}

impl BlockSampler {
    /// New sampler with a zeroed meter, reporting to the process-global
    /// recorder (a no-op unless one is installed).
    pub fn new() -> Self {
        Self { io: IoStats::new(), recorder: samplehist_obs::global() }
    }

    /// New sampler reporting to an explicit recorder (what
    /// `engine::analyze_traced` wires through).
    pub fn with_recorder(recorder: Recorder) -> Self {
        Self { io: IoStats::new(), recorder }
    }

    /// Bernoulli (SYSTEM-style) page sampling: include each page
    /// independently with probability `fraction` — the sampling primitive
    /// SQL Server 7.0 exposed ("specifying the percentage of file to be
    /// sampled", Section 7.1) that the CVB prototype was built on. The
    /// returned sample size is random with mean `fraction · pages`.
    ///
    /// # Panics
    /// If `fraction ∉ [0, 1]`.
    pub fn sample_bernoulli(
        &mut self,
        file: &HeapFile,
        fraction: f64,
        rng: &mut impl Rng,
    ) -> Vec<i64> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "sampling fraction must be in [0,1], got {fraction}"
        );
        // Expected yield is `fraction · pages` full pages; reserving it up
        // front avoids ~log₂(n) reallocation copies of the growing sample.
        let expected =
            (fraction * file.num_pages() as f64).ceil() as usize * file.blocking_factor();
        let mut out = Vec::with_capacity(expected);
        let mut pages = Vec::new();
        for p in 0..file.num_pages() {
            if rng.gen::<f64>() < fraction {
                let page = file.page(PageId(p as u32));
                self.io.charge_page(page.len());
                out.extend_from_slice(page);
                pages.push(p);
            }
        }
        record_page_reads(&self.recorder, "bernoulli_sample", &pages, out.len() as u64);
        out
    }

    /// Draw `g` distinct pages, returning all their tuples.
    ///
    /// # Panics
    /// If `g` exceeds the file's page count.
    pub fn sample(&mut self, file: &HeapFile, g: usize, rng: &mut impl Rng) -> Vec<i64> {
        assert!(
            g <= file.num_pages(),
            "cannot sample {g} of {} pages without replacement",
            file.num_pages()
        );
        let ids: Vec<usize> =
            rand::seq::index::sample(rng, file.num_pages(), g).into_iter().collect();
        let mut out = Vec::with_capacity(g * file.blocking_factor());
        for &id in &ids {
            let page = file.page(PageId(id as u32));
            self.io.charge_page(page.len());
            out.extend_from_slice(page);
        }
        record_page_reads(&self.recorder, "block_sample", &ids, out.len() as u64);
        out
    }

    /// The accumulated I/O.
    pub fn io(&self) -> IoStats {
        self.io
    }
}

/// Tuple-grained sampler: draws tuples uniformly **with replacement** and
/// charges a page read for every draw (the paper's Section 4 premise:
/// "scanning one tuple off the disk is not much faster than scanning the
/// entire group of tuples that are stored in the same disk block" — i.e.
/// you still pay for the page).
#[derive(Debug, Default)]
pub struct RecordSampler {
    io: IoStats,
    recorder: Recorder,
}

impl RecordSampler {
    /// New sampler with a zeroed meter, reporting to the process-global
    /// recorder (a no-op unless one is installed).
    pub fn new() -> Self {
        Self { io: IoStats::new(), recorder: samplehist_obs::global() }
    }

    /// New sampler reporting to an explicit recorder.
    pub fn with_recorder(recorder: Recorder) -> Self {
        Self { io: IoStats::new(), recorder }
    }

    /// Draw `r` tuples with replacement.
    pub fn sample(&mut self, file: &HeapFile, r: usize, rng: &mut impl Rng) -> Vec<i64> {
        let n = file.num_tuples();
        let mut out = Vec::with_capacity(r);
        let mut pages = Vec::new();
        let track = self.recorder.is_enabled();
        for _ in 0..r {
            let idx = rng.gen_range(0..n);
            let (value, page) = file.tuple(idx);
            // One page fault per tuple: even if two draws hit the same
            // page, a tuple-at-a-time executor has no way to know in
            // advance and pays the fetch (no buffer-pool modeling here —
            // the paper's cost argument is about the no-cache worst case).
            self.io.pages_read += 1;
            self.io.tuples_read += 1;
            if track {
                pages.push(page.0 as usize);
            }
            out.push(value);
        }
        record_page_reads(&self.recorder, "record_sample", &pages, out.len() as u64);
        out
    }

    /// The accumulated I/O.
    pub fn io(&self) -> IoStats {
        self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn file(n: i64, b: usize, seed: u64) -> HeapFile {
        let mut rng = StdRng::seed_from_u64(seed);
        HeapFile::with_layout((0..n).collect(), b, Layout::Random, &mut rng)
    }

    #[test]
    fn block_sampler_charges_per_page() {
        let f = file(1000, 50, 1);
        let mut s = BlockSampler::new();
        let mut rng = StdRng::seed_from_u64(2);
        let tuples = s.sample(&f, 4, &mut rng);
        assert_eq!(tuples.len(), 200);
        assert_eq!(s.io(), IoStats { pages_read: 4, tuples_read: 200 });
    }

    #[test]
    fn block_sampler_accumulates_across_calls() {
        let f = file(1000, 50, 3);
        let mut s = BlockSampler::new();
        let mut rng = StdRng::seed_from_u64(4);
        s.sample(&f, 2, &mut rng);
        s.sample(&f, 3, &mut rng);
        assert_eq!(s.io().pages_read, 5);
        assert_eq!(s.io().tuples_read, 250);
    }

    #[test]
    fn record_sampler_pays_a_page_per_tuple() {
        let f = file(1000, 50, 5);
        let mut s = RecordSampler::new();
        let mut rng = StdRng::seed_from_u64(6);
        let tuples = s.sample(&f, 300, &mut rng);
        assert_eq!(tuples.len(), 300);
        assert_eq!(s.io(), IoStats { pages_read: 300, tuples_read: 300 });
    }

    /// The asymmetry the paper exploits: for the same number of tuples,
    /// block sampling does b× less I/O.
    #[test]
    fn block_vs_record_io_asymmetry() {
        let f = file(10_000, 100, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut block = BlockSampler::new();
        let bt = block.sample(&f, 10, &mut rng); // 1000 tuples, 10 pages
        let mut record = RecordSampler::new();
        let rt = record.sample(&f, 1000, &mut rng); // 1000 tuples, 1000 pages
        assert_eq!(bt.len(), rt.len());
        assert_eq!(record.io().pages_read / block.io().pages_read, 100);
    }

    #[test]
    fn bernoulli_sampling_mean_and_metering() {
        let f = file(10_000, 100, 11);
        let mut total_pages = 0u64;
        let trials = 50;
        for seed in 0..trials {
            let mut s = BlockSampler::new();
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let tuples = s.sample_bernoulli(&f, 0.3, &mut rng);
            assert_eq!(tuples.len() as u64, s.io().tuples_read);
            assert_eq!(tuples.len() as u64, s.io().pages_read * 100);
            total_pages += s.io().pages_read;
        }
        // 100 pages at 30%: mean 30 pages per trial, sd ~4.6.
        let mean = total_pages as f64 / trials as f64;
        assert!((mean - 30.0).abs() < 4.0, "mean pages = {mean}");
    }

    #[test]
    fn bernoulli_extremes() {
        let f = file(1_000, 100, 12);
        let mut rng = StdRng::seed_from_u64(13);
        assert!(BlockSampler::new().sample_bernoulli(&f, 0.0, &mut rng).is_empty());
        let all = BlockSampler::new().sample_bernoulli(&f, 1.0, &mut rng);
        assert_eq!(all.len(), 1_000);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn bernoulli_bad_fraction_rejected() {
        let f = file(100, 10, 14);
        let mut rng = StdRng::seed_from_u64(15);
        let _ = BlockSampler::new().sample_bernoulli(&f, 1.5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn block_oversample_rejected() {
        let f = file(100, 10, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let _ = BlockSampler::new().sample(&f, 11, &mut rng);
    }
}
