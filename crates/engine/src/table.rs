//! Tables: named collections of equal-length columns stored in heap
//! files, with per-column modification counters feeding staleness
//! tracking (the auto-update-stats deployment of Section 7: statistics
//! are recomputed when enough of a column has churned, not on a timer).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::Rng;

use samplehist_storage::{HeapFile, Layout, DEFAULT_PAGE_BYTES};

/// Per-column modification counters, shared by every clone of a
/// [`Table`] (an `Arc` inside, so the instance a mutator bumps is the
/// instance the refresh scheduler reads).
#[derive(Debug, Default)]
struct ModCounters {
    per_column: Vec<AtomicU64>,
}

/// One column: a name plus its paged storage.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    file: HeapFile,
}

impl Column {
    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backing heap file.
    pub fn file(&self) -> &HeapFile {
        &self.file
    }
}

/// A relation with at least one column; all columns have the same row
/// count (each column is stored in its own file, one attribute per
/// record, the way a statistics subsystem sees the world).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    num_rows: u64,
    mods: Arc<ModCounters>,
}

impl Table {
    /// Start building a table.
    pub fn builder(name: impl Into<String>) -> TableBuilder {
        TableBuilder { name: name.into(), columns: Vec::new(), num_rows: None }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> u64 {
        self.num_rows
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    fn column_index(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .unwrap_or_else(|| panic!("no column {name:?} in table {:?}", self.name))
    }

    /// Record `count` inserts/updates/deletes against `column` since its
    /// statistics were last built. Counters are monotone and shared by
    /// every clone of this table, so a mutating workload thread and the
    /// refresh scheduler observe the same tally; the catalog snapshots
    /// the counter at ANALYZE time and staleness is the difference.
    ///
    /// # Panics
    /// If the column does not exist (a caller bug, like [`analyze`]'s
    /// unknown-column error — but mutation tracking has no error channel).
    ///
    /// [`analyze`]: crate::analyze
    pub fn record_modifications(&self, column: &str, count: u64) {
        self.mods.per_column[self.column_index(column)].fetch_add(count, Ordering::Relaxed);
    }

    /// Total modifications ever recorded against `column`.
    ///
    /// # Panics
    /// If the column does not exist.
    pub fn modifications(&self, column: &str) -> u64 {
        self.mods.per_column[self.column_index(column)].load(Ordering::Relaxed)
    }
}

/// Builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    columns: Vec<Column>,
    num_rows: Option<u64>,
}

impl TableBuilder {
    /// Add a column from raw values with an explicit blocking factor.
    ///
    /// # Panics
    /// If the row count disagrees with previously added columns, the
    /// column name repeats, or `values` is empty.
    pub fn column_with_blocking(
        mut self,
        name: impl Into<String>,
        values: Vec<i64>,
        tuples_per_page: usize,
        layout: Layout,
        rng: &mut impl Rng,
    ) -> Self {
        let name = name.into();
        assert!(self.columns.iter().all(|c| c.name != name), "duplicate column name {name:?}");
        let rows = values.len() as u64;
        match self.num_rows {
            None => self.num_rows = Some(rows),
            Some(existing) => {
                assert_eq!(existing, rows, "column {name:?} has {rows} rows, table has {existing}")
            }
        }
        let file = HeapFile::with_layout(values, tuples_per_page, layout, rng);
        self.columns.push(Column { name, file });
        self
    }

    /// Add a column with physical sizing: 8 KB pages of
    /// `record_bytes`-sized records (the paper's geometry).
    pub fn column(
        self,
        name: impl Into<String>,
        values: Vec<i64>,
        record_bytes: usize,
        layout: Layout,
        rng: &mut impl Rng,
    ) -> Self {
        let b = DEFAULT_PAGE_BYTES / record_bytes;
        self.column_with_blocking(name, values, b, layout, rng)
    }

    /// Finish.
    ///
    /// # Panics
    /// If no columns were added.
    pub fn build(self) -> Table {
        assert!(!self.columns.is_empty(), "a table needs at least one column");
        let mods =
            ModCounters { per_column: self.columns.iter().map(|_| AtomicU64::new(0)).collect() };
        Table {
            name: self.name,
            num_rows: self.num_rows.expect("columns imply a row count"),
            columns: self.columns,
            mods: Arc::new(mods),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn build_and_lookup() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Table::builder("orders")
            .column("order_id", (0..1000).collect(), 64, Layout::Random, &mut rng)
            .column("amount", (0..1000).map(|i| i % 50).collect(), 64, Layout::Random, &mut rng)
            .build();
        assert_eq!(t.name(), "orders");
        assert_eq!(t.num_rows(), 1000);
        assert_eq!(t.columns().len(), 2);
        assert!(t.column("amount").is_some());
        assert!(t.column("missing").is_none());
        assert_eq!(t.column("order_id").expect("exists").file().num_tuples(), 1000);
        assert_eq!(t.column("order_id").expect("exists").file().blocking_factor(), 128);
    }

    #[test]
    fn modification_counters_are_shared_across_clones() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = Table::builder("t")
            .column_with_blocking("a", vec![1, 2, 3], 2, Layout::Random, &mut rng)
            .column_with_blocking("b", vec![4, 5, 6], 2, Layout::Random, &mut rng)
            .build();
        assert_eq!(t.modifications("a"), 0);
        let clone = t.clone();
        clone.record_modifications("a", 5);
        t.record_modifications("a", 2);
        t.record_modifications("b", 1);
        assert_eq!(t.modifications("a"), 7, "clones share one counter");
        assert_eq!(clone.modifications("b"), 1);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn modifications_on_unknown_column_panic() {
        let mut rng = StdRng::seed_from_u64(10);
        let t = Table::builder("t")
            .column_with_blocking("a", vec![1, 2, 3], 2, Layout::Random, &mut rng)
            .build();
        t.record_modifications("zzz", 1);
    }

    #[test]
    #[should_panic(expected = "has 5 rows, table has 3")]
    fn mismatched_row_counts_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = Table::builder("t")
            .column_with_blocking("a", vec![1, 2, 3], 10, Layout::Random, &mut rng)
            .column_with_blocking("b", vec![1, 2, 3, 4, 5], 10, Layout::Random, &mut rng);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = Table::builder("t")
            .column_with_blocking("a", vec![1, 2, 3], 10, Layout::Random, &mut rng)
            .column_with_blocking("a", vec![4, 5, 6], 10, Layout::Random, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_table_rejected() {
        let _ = Table::builder("t").build();
    }
}
