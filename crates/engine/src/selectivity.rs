//! Selectivity estimation from column statistics — the optimizer-facing
//! consumer that the paper's error analysis (Theorems 1 and 3) is about.

use samplehist_core::estimate::RangeEstimator;

use crate::predicate::Predicate;
use crate::stats::ColumnStatistics;

/// One cardinality estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardinalityEstimate {
    /// Estimated matching rows.
    pub rows: f64,
    /// `rows / num_rows`.
    pub selectivity: f64,
}

/// Estimate the output cardinality of an equi-join `A.x = B.y` from the
/// two columns' statistics.
///
/// The estimator refines the System-R formula `n_a·n_b / max(d_a, d_b)`
/// (paper's reference \[28\], where the paper notes distinct-count error
/// feeds "join-selectivity estimation formulas") by applying it **per
/// aligned domain fragment**: the union of both histograms' separators
/// splits the domain, each side's rows in a fragment come from histogram
/// interpolation, each side's distinct count in a fragment is apportioned
/// from its global distinct estimate in proportion to rows (the
/// uniform-duplication assumption), and the System-R formula is applied
/// fragment-wise. Fragments outside either column's [min, max] contribute
/// nothing — which is how histogram alignment beats the global formula on
/// partially overlapping domains.
pub fn estimate_equijoin(a: &ColumnStatistics, b: &ColumnStatistics) -> f64 {
    let (lo, hi) = (
        a.histogram.min_value().max(b.histogram.min_value()),
        a.histogram.max_value().min(b.histogram.max_value()),
    );
    if lo > hi {
        return 0.0;
    }
    // Fragment boundaries: both separator sets restricted to the overlap,
    // plus the overlap edges.
    let mut bounds: Vec<i64> = a
        .histogram
        .separators()
        .iter()
        .chain(b.histogram.separators())
        .copied()
        .filter(|&s| s > lo && s < hi)
        .collect();
    bounds.push(hi);
    bounds.sort_unstable();
    bounds.dedup();

    let est_a = &a.index().histogram;
    let est_b = &b.index().histogram;
    let (da, db) = (a.distinct_estimate.max(1.0), b.distinct_estimate.max(1.0));
    let (na, nb) = (a.num_rows as f64, b.num_rows as f64);

    // Fragment (prev, bound] as the closed probe [prev+1, bound]: the
    // batched kernel computes (le(bound) − lt(prev+1)).max(0) with the
    // same float operations as the scalar le-difference sweep, so the
    // result is byte-identical — but both sides' descents run through
    // the eight-lane interleaved path. (`prev + 1` cannot overflow:
    // every prev is a bound strictly below `hi`; the first fragment
    // starts at `lo` itself, which also handles `lo == i64::MIN`.)
    let mut probes = Vec::with_capacity(bounds.len());
    let mut start = lo;
    for &bound in &bounds {
        probes.push((start, bound));
        // Wrapping only matters after the final bound (`hi` may be
        // i64::MAX); that value is never pushed as a probe.
        start = bound.wrapping_add(1);
    }
    let mut rows_a = vec![0.0f64; probes.len()];
    let mut rows_b = vec![0.0f64; probes.len()];
    est_a.estimate_range_batch(&probes, &mut rows_a);
    est_b.estimate_range_batch(&probes, &mut rows_b);

    let mut total = 0.0f64;
    for (&ra, &rb) in rows_a.iter().zip(&rows_b) {
        if ra > 0.0 && rb > 0.0 {
            // Distinct values each side brings to this fragment,
            // apportioned by row mass; at least 1 once rows exist.
            let d_frag_a = (da * ra / na).max(1.0);
            let d_frag_b = (db * rb / nb).max(1.0);
            total += ra * rb / d_frag_a.max(d_frag_b);
        }
    }
    total
}

/// Estimate the cardinality of `predicate` from `stats`.
///
/// Range predicates use the histogram with intra-bucket interpolation
/// (paper Section 2.2's "typical strategy"). Equality predicates take the
/// larger of the histogram's one-point range estimate (which catches
/// heavy values whose mass the histogram resolves) and the
/// rows-per-distinct implied by the distinct-count estimate (which
/// catches light values that interpolation would undercount) — the same
/// blend a production optimizer gets from its histogram + density pair.
/// Constants outside the observed [min, max] estimate to zero.
pub fn estimate_cardinality(
    stats: &ColumnStatistics,
    predicate: &Predicate,
) -> CardinalityEstimate {
    let n = stats.num_rows as f64;
    let index = stats.index();
    let rows = match predicate.as_range() {
        None => 0.0,
        Some((lo, hi)) => match (&index.compressed, predicate) {
            // A compressed histogram answers equality on a heavy value
            // exactly and keeps heavy mass out of range interpolation;
            // prefer it whenever ANALYZE built one. A single descent
            // both classifies the constant (heavy/light) and produces
            // the estimate — the old path bisected the side table for
            // membership and then again inside `estimate_eq`.
            (Some(c), Predicate::Eq(v)) => {
                let h = &stats.histogram;
                if *v < h.min_value() || *v > h.max_value() {
                    0.0
                } else {
                    let (est, heavy) = c.estimate_eq_classified(*v);
                    if heavy {
                        est
                    } else {
                        est.max(stats.rows_per_distinct())
                    }
                }
            }
            (Some(c), _) => c.estimate_range(lo, hi),
            (None, Predicate::Eq(v)) => {
                let h = &stats.histogram;
                if *v < h.min_value() || *v > h.max_value() {
                    0.0
                } else {
                    index.histogram.estimate_range(lo, hi).max(stats.rows_per_distinct())
                }
            }
            (None, _) => index.histogram.estimate_range(lo, hi),
        },
    };
    let rows = rows.clamp(0.0, n);
    CardinalityEstimate { rows, selectivity: if n > 0.0 { rows / n } else { 0.0 } }
}

/// The pre-index bisect path of [`estimate_cardinality`]: a fresh
/// [`RangeEstimator`] (with its `O(k)` cumulative rebuild) per call plus
/// binary searches over the raw separator/side-table slices.
///
/// Kept callable on purpose — the byte-identity tests pin
/// [`estimate_cardinality`] against it, and the lookup benchmarks use it
/// as the "scan" baseline the indexed route is gated against.
pub fn estimate_cardinality_scan(
    stats: &ColumnStatistics,
    predicate: &Predicate,
) -> CardinalityEstimate {
    let n = stats.num_rows as f64;
    let rows = match predicate.as_range() {
        None => 0.0,
        Some((lo, hi)) => match (&stats.compressed, predicate) {
            (Some(c), Predicate::Eq(v)) => {
                let h = &stats.histogram;
                if *v < h.min_value() || *v > h.max_value() {
                    0.0
                } else if c.high_frequency_values().binary_search_by_key(v, |&(hv, _)| hv).is_ok() {
                    c.estimate_eq(*v)
                } else {
                    c.estimate_eq(*v).max(stats.rows_per_distinct())
                }
            }
            (Some(c), _) => c.estimate_range(lo, hi),
            (None, Predicate::Eq(v)) => {
                let h = &stats.histogram;
                if *v < h.min_value() || *v > h.max_value() {
                    0.0
                } else {
                    RangeEstimator::new(&stats.histogram)
                        .estimate_range(lo, hi)
                        .max(stats.rows_per_distinct())
                }
            }
            (None, _) => RangeEstimator::new(&stats.histogram).estimate_range(lo, hi),
        },
    };
    let rows = rows.clamp(0.0, n);
    CardinalityEstimate { rows, selectivity: if n > 0.0 { rows / n } else { 0.0 } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalyzeOptions};
    use crate::table::Table;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use samplehist_storage::Layout;

    fn stats_for(values: Vec<i64>, buckets: usize, seed: u64) -> ColumnStatistics {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Table::builder("t")
            .column_with_blocking("c", values, 100, Layout::Random, &mut rng)
            .build();
        analyze(&t, "c", &AnalyzeOptions::full_scan(buckets), &mut rng).expect("exists")
    }

    #[test]
    fn range_estimates_on_uniform_data() {
        let s = stats_for((1..=10_000).collect(), 100, 1);
        let est = estimate_cardinality(&s, &Predicate::Between { low: 1, high: 5000 });
        assert!((est.rows - 5000.0).abs() < 60.0, "rows = {}", est.rows);
        assert!((est.selectivity - 0.5).abs() < 0.01);

        let est = estimate_cardinality(&s, &Predicate::Lt(101));
        assert!((est.rows - 100.0).abs() < 15.0, "rows = {}", est.rows);

        let est = estimate_cardinality(&s, &Predicate::Ge(9001));
        assert!((est.rows - 1000.0).abs() < 30.0, "rows = {}", est.rows);
    }

    #[test]
    fn equality_uses_rows_per_distinct_floor() {
        // 100 copies of each of 100 values: eq estimate should be ~100,
        // not the interpolated sliver.
        let values: Vec<i64> = (0..100).flat_map(|v| vec![v * 1000; 100]).collect();
        let s = stats_for(values, 10, 2);
        let est = estimate_cardinality(&s, &Predicate::Eq(50_000));
        assert!((est.rows - 100.0).abs() < 20.0, "rows = {}", est.rows);
    }

    #[test]
    fn out_of_domain_constants_estimate_zero() {
        let s = stats_for((1..=1000).collect(), 10, 3);
        assert_eq!(estimate_cardinality(&s, &Predicate::Eq(100_000)).rows, 0.0);
        assert_eq!(estimate_cardinality(&s, &Predicate::Eq(-5)).rows, 0.0);
        let est = estimate_cardinality(&s, &Predicate::Gt(1000));
        assert_eq!(est.rows, 0.0);
    }

    #[test]
    fn unsatisfiable_predicate_is_zero() {
        let s = stats_for((1..=1000).collect(), 10, 4);
        let est = estimate_cardinality(&s, &Predicate::Between { low: 9, high: 3 });
        assert_eq!(est.rows, 0.0);
        assert_eq!(est.selectivity, 0.0);
    }

    #[test]
    fn estimates_never_exceed_table() {
        let s = stats_for((1..=1000).collect(), 10, 5);
        let est = estimate_cardinality(&s, &Predicate::Le(i64::MAX));
        assert!(est.rows <= 1000.0);
        assert!(est.selectivity <= 1.0);
    }

    #[test]
    fn compressed_statistics_sharpen_heavy_equality() {
        // One value holds 40% of a skewed column.
        let mut values = vec![777_000i64; 40_000];
        values.extend((0..60_000).map(|i| i * 10));
        let mut rng = StdRng::seed_from_u64(21);
        let t = Table::builder("t")
            .column_with_blocking("c", values, 100, Layout::Random, &mut rng)
            .build();
        let plain = analyze(&t, "c", &AnalyzeOptions::full_scan(20), &mut rng).expect("exists");
        let comp = analyze(&t, "c", &AnalyzeOptions::full_scan(20).with_compressed(), &mut rng)
            .expect("exists");
        assert!(comp.compressed.is_some());

        let truth = 40_000.0f64;
        let e_plain = estimate_cardinality(&plain, &Predicate::Eq(777_000)).rows;
        let e_comp = estimate_cardinality(&comp, &Predicate::Eq(777_000)).rows;
        assert!((e_comp - truth).abs() < 1.0, "compressed equality should be exact: {e_comp}");
        assert!(
            (e_comp - truth).abs() < (e_plain - truth).abs(),
            "compressed ({e_comp}) should beat plain ({e_plain})"
        );

        // Light-value equality still floors at rows-per-distinct.
        let e_light = estimate_cardinality(&comp, &Predicate::Eq(300_000)).rows;
        assert!((1.0..100.0).contains(&e_light), "light eq = {e_light}");

        // And ranges through the compressed path stay sane.
        let est = estimate_cardinality(&comp, &Predicate::Le(i64::MAX));
        assert!((est.rows - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn indexed_path_is_byte_identical_to_scan_path() {
        // Heavy-duplicate data so a compressed histogram (with a
        // non-empty side table) and the plain histogram both exist, and
        // every predicate shape routes through every arm.
        let mut values: Vec<i64> = (0..30_000).map(|i| (i * i) % 2003).collect();
        values.extend(vec![777i64; 10_000]);
        let mut rng = StdRng::seed_from_u64(31);
        let t = Table::builder("t")
            .column_with_blocking("c", values, 100, Layout::Random, &mut rng)
            .build();
        let plain = analyze(&t, "c", &AnalyzeOptions::full_scan(60), &mut rng).expect("exists");
        let comp = analyze(&t, "c", &AnalyzeOptions::full_scan(60).with_compressed(), &mut rng)
            .expect("exists");
        assert!(!comp.compressed.as_ref().unwrap().high_frequency_values().is_empty());

        let mut probes: Vec<Predicate> = Vec::new();
        for i in 0..400i64 {
            let x = (i * 131) % 2500 - 200;
            probes.push(Predicate::Eq(x));
            probes.push(Predicate::Le(x));
            probes.push(Predicate::Gt(x));
            probes.push(Predicate::Between { low: x, high: x + (i % 11) * 40 });
        }
        probes.push(Predicate::Eq(777));
        probes.push(Predicate::Between { low: 9, high: 3 });
        probes.push(Predicate::Le(i64::MAX));
        probes.push(Predicate::Ge(i64::MIN));
        for stats in [&plain, &comp] {
            for p in &probes {
                let fast = estimate_cardinality(stats, p);
                let scan = estimate_cardinality_scan(stats, p);
                assert_eq!(
                    fast.rows.to_bits(),
                    scan.rows.to_bits(),
                    "{p}: indexed {} vs scan {}",
                    fast.rows,
                    scan.rows
                );
            }
        }
    }

    fn true_equijoin(a: &[i64], b_sorted: &[i64]) -> u64 {
        use samplehist_core::histogram::count_le;
        a.iter()
            .map(|&v| {
                let hi = count_le(b_sorted, v);
                let lo = if v == i64::MIN { 0 } else { count_le(b_sorted, v - 1) };
                (hi - lo) as u64
            })
            .sum()
    }

    #[test]
    fn equijoin_self_join_unif_dup() {
        // Each of 100 values appears 50 times: self-join = 100·50² = 250k.
        let values: Vec<i64> = (0..100).flat_map(|v| vec![v * 10; 50]).collect();
        let s = stats_for(values.clone(), 20, 10);
        let est = estimate_equijoin(&s, &s);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let truth = true_equijoin(&values, &sorted) as f64;
        assert_eq!(truth, 250_000.0);
        assert!((est - truth).abs() / truth < 0.25, "self-join est {est} vs truth {truth}");
    }

    #[test]
    fn equijoin_disjoint_domains_is_zero() {
        let a = stats_for((0..1000).collect(), 10, 11);
        let b = stats_for((5000..6000).collect(), 10, 12);
        assert_eq!(estimate_equijoin(&a, &b), 0.0);
    }

    #[test]
    fn equijoin_partial_overlap_beats_global_formula() {
        // A covers 0..10000, B covers 9000..19000: only 10% of each side
        // can join. All values distinct: truth = 1000.
        let a_vals: Vec<i64> = (0..10_000).collect();
        let b_vals: Vec<i64> = (9_000..19_000).collect();
        let a = stats_for(a_vals.clone(), 50, 13);
        let b = stats_for(b_vals.clone(), 50, 14);
        let mut b_sorted = b_vals;
        b_sorted.sort_unstable();
        let truth = true_equijoin(&a_vals, &b_sorted) as f64;
        assert_eq!(truth, 1000.0);

        let est = estimate_equijoin(&a, &b);
        let global = 10_000.0f64 * 10_000.0 / 10_000.0; // System-R, no overlap awareness
        assert!(
            (est - truth).abs() < (global - truth).abs() / 2.0,
            "aligned est {est} should beat global {global} (truth {truth})"
        );
    }

    /// The batched fragment sweep inside [`estimate_equijoin`] must be
    /// byte-identical to the scalar `estimate_le`-difference loop it
    /// replaced: same fragments, same float operations, new lanes.
    #[test]
    fn equijoin_batched_sweep_matches_scalar_reference() {
        let cases = [
            (stats_for((0..5000).map(|i| i % 500).collect(), 25, 41), {
                stats_for((0..3000).map(|i| (i % 300) * 2).collect(), 25, 42)
            }),
            (
                stats_for((0..10_000).collect(), 50, 43),
                stats_for((9_000..19_000).collect(), 50, 44),
            ),
            (
                stats_for((0..100).flat_map(|v| vec![v * 10; 50]).collect(), 20, 45),
                stats_for((0..2000).map(|i| (i * 7) % 990).collect(), 13, 46),
            ),
        ];
        for (a, b) in &cases {
            let scalar = {
                let (lo, hi) = (
                    a.histogram.min_value().max(b.histogram.min_value()),
                    a.histogram.max_value().min(b.histogram.max_value()),
                );
                assert!(lo <= hi, "cases must overlap to exercise the sweep");
                let mut bounds: Vec<i64> = a
                    .histogram
                    .separators()
                    .iter()
                    .chain(b.histogram.separators())
                    .copied()
                    .filter(|&s| s > lo && s < hi)
                    .collect();
                bounds.push(hi);
                bounds.sort_unstable();
                bounds.dedup();
                let est_a = &a.index().histogram;
                let est_b = &b.index().histogram;
                let (da, db) = (a.distinct_estimate.max(1.0), b.distinct_estimate.max(1.0));
                let (na, nb) = (a.num_rows as f64, b.num_rows as f64);
                let mut total = 0.0f64;
                let mut prev = lo - 1;
                for &bound in &bounds {
                    let rows_a = (est_a.estimate_le(bound) - est_a.estimate_le(prev)).max(0.0);
                    let rows_b = (est_b.estimate_le(bound) - est_b.estimate_le(prev)).max(0.0);
                    if rows_a > 0.0 && rows_b > 0.0 {
                        let d_frag_a = (da * rows_a / na).max(1.0);
                        let d_frag_b = (db * rows_b / nb).max(1.0);
                        total += rows_a * rows_b / d_frag_a.max(d_frag_b);
                    }
                    prev = bound;
                }
                total
            };
            let batched = estimate_equijoin(a, b);
            assert_eq!(
                batched.to_bits(),
                scalar.to_bits(),
                "batched {batched} vs scalar reference {scalar}"
            );
        }
    }

    #[test]
    fn equijoin_is_symmetric() {
        let a = stats_for((0..5000).map(|i| i % 500).collect(), 25, 15);
        let b = stats_for((0..3000).map(|i| (i % 300) * 2).collect(), 25, 16);
        let ab = estimate_equijoin(&a, &b);
        let ba = estimate_equijoin(&b, &a);
        assert!((ab - ba).abs() < 1e-6 * ab.max(1.0), "{ab} vs {ba}");
    }

    /// End-to-end sanity: estimates from a *sampled* histogram stay close
    /// to the truth on a mildly skewed column.
    #[test]
    fn sampled_statistics_estimate_well() {
        use crate::analyze::AnalyzeMode;
        let mut rng = StdRng::seed_from_u64(6);
        let values: Vec<i64> = (0..50_000i64).map(|i| (i % 224) * (i % 224)).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let t = Table::builder("t")
            .column_with_blocking("c", values, 100, Layout::Random, &mut rng)
            .build();
        let opts = AnalyzeOptions {
            buckets: 50,
            mode: AnalyzeMode::BlockSample { rate: 0.2 },
            compressed: false,
        };
        let s = analyze(&t, "c", &opts, &mut rng).expect("exists");
        for pred in [
            Predicate::Le(2500),
            Predicate::Between { low: 100, high: 10_000 },
            Predicate::Ge(40_000),
        ] {
            let est = estimate_cardinality(&s, &pred);
            let truth = pred.true_cardinality(&sorted) as f64;
            assert!(
                (est.rows - truth).abs() < 0.05 * 50_000.0,
                "{pred}: est {} vs true {truth}",
                est.rows
            );
        }
    }
}
